//! Adversarial tests of the independent trace checker: take *real* proof
//! traces produced by the engine on the benchmark examples, corrupt them
//! in targeted ways, and require the checker to reject every corruption.
//! This is the reproduction's analogue of testing that the Coq kernel
//! rejects ill-formed proof terms.

use diaframe::core::checker::check;
use diaframe::core::{ProofTrace, TraceStep};
use diaframe::examples::{spin_lock, Example};
use diaframe_term::PureProp;

/// All traces of the spin-lock example (newlock/acquire/release) — small
/// but exercising invariant allocation, opening/closing and pure
/// obligations.
fn real_traces() -> Vec<ProofTrace> {
    let outcome = spin_lock::SpinLock.verify().expect("spin lock verifies");
    outcome.proofs.into_iter().map(|p| p.trace).collect()
}

fn rebuild(steps: Vec<TraceStep>) -> ProofTrace {
    let mut t = ProofTrace::new();
    for s in steps {
        t.push(s);
    }
    t
}

#[test]
fn genuine_traces_replay() {
    for t in real_traces() {
        check(&t).expect("genuine trace must replay");
    }
}

#[test]
fn corrupted_pure_obligations_rejected() {
    // Replace each pure obligation's goal with its negation (one at a
    // time). A trace whose recorded obligation no longer re-proves must
    // be rejected.
    let mut corruptions = 0;
    for trace in real_traces() {
        for (i, step) in trace.steps().iter().enumerate() {
            let TraceStep::PureObligation { goal, .. } = step else {
                continue;
            };
            // Skip obligations whose negation is *also* provable-looking
            // (can't happen for a sound solver, but be explicit).
            let bad_goal = goal.negated();
            let mut steps = trace.steps().to_vec();
            if let TraceStep::PureObligation { goal, .. } = &mut steps[i] {
                *goal = bad_goal;
            }
            let corrupted = rebuild(steps);
            assert!(
                check(&corrupted).is_err(),
                "negated obligation at step {i} still replays"
            );
            corruptions += 1;
        }
    }
    assert!(corruptions > 0, "expected real traces to carry obligations");
}

#[test]
fn absurd_obligation_rejected() {
    // Splice an outright-false obligation into an otherwise-valid trace.
    for trace in real_traces() {
        let mut steps = trace.steps().to_vec();
        steps.insert(
            0,
            TraceStep::PureObligation {
                facts: Vec::new(),
                goal: PureProp::False,
                vars: diaframe_term::VarCtx::new(),
            },
        );
        assert!(check(&rebuild(steps)).is_err());
    }
}

#[test]
fn duplicated_invariant_openings_rejected() {
    // Duplicate each InvOpened step: the second opening of the same
    // namespace is reentrancy unless a close intervenes immediately, so
    // the checker must flag the direct duplicate.
    let mut corruptions = 0;
    for trace in real_traces() {
        for (i, step) in trace.steps().iter().enumerate() {
            let TraceStep::InvOpened { .. } = step else {
                continue;
            };
            let mut steps = trace.steps().to_vec();
            steps.insert(i, step.clone());
            assert!(
                check(&rebuild(steps)).is_err(),
                "duplicated invariant opening at step {i} accepted"
            );
            corruptions += 1;
        }
    }
    assert!(corruptions > 0, "expected real traces to open invariants");
}

#[test]
fn dropped_invariant_closes_rejected() {
    // Remove each InvClosed step. Either a later close of the same
    // namespace becomes unmatched, a later open becomes reentrant, or a
    // non-atomic step runs with the invariant open — in the traces used
    // here at least one of these must trip for at least one drop.
    let mut rejected = 0;
    let mut attempted = 0;
    for trace in real_traces() {
        for (i, step) in trace.steps().iter().enumerate() {
            let TraceStep::InvClosed { .. } = step else {
                continue;
            };
            let mut steps = trace.steps().to_vec();
            steps.remove(i);
            attempted += 1;
            if check(&rebuild(steps)).is_err() {
                rejected += 1;
            }
        }
    }
    assert!(attempted > 0, "expected real traces to close invariants");
    assert!(
        rejected > 0,
        "no dropped-close corruption was caught ({attempted} attempted)"
    );
}

#[test]
fn nonatomic_step_inside_open_invariant_rejected() {
    // Inject a non-atomic function call right after each invariant
    // opening: executing a non-atomic expression with an open invariant
    // violates the mask discipline and must be rejected.
    let mut corruptions = 0;
    for trace in real_traces() {
        for (i, step) in trace.steps().iter().enumerate() {
            let TraceStep::InvOpened { .. } = step else {
                continue;
            };
            let mut steps = trace.steps().to_vec();
            steps.insert(
                i + 1,
                TraceStep::SymEx {
                    spec: "injected-call".into(),
                    atomic: false,
                },
            );
            assert!(
                check(&rebuild(steps)).is_err(),
                "non-atomic call under an open invariant at step {i} accepted"
            );
            corruptions += 1;
        }
    }
    assert!(corruptions > 0, "expected real traces to open invariants");
}

#[test]
fn unbalanced_branch_structure_rejected() {
    // Drop each BranchEnd; the resulting tree is unbalanced.
    let mut attempted = 0;
    for trace in real_traces() {
        for (i, step) in trace.steps().iter().enumerate() {
            let TraceStep::BranchEnd { .. } = step else {
                continue;
            };
            let mut steps = trace.steps().to_vec();
            steps.remove(i);
            attempted += 1;
            assert!(
                check(&rebuild(steps)).is_err(),
                "dropped BranchEnd at step {i} accepted"
            );
        }
    }
    assert!(attempted > 0, "expected branching traces (acquire case-splits)");
}
