//! Cross-crate integration tests: every Figure 6 example verifies, every
//! proof trace replays through the independent checker, every sabotaged
//! variant fails, and every adequacy client runs safely under random
//! schedules with the expected result.

use diaframe::examples::{all_examples, Example};

#[test]
fn every_example_verifies_and_replays() {
    for ex in all_examples() {
        let outcome = ex
            .verify()
            .unwrap_or_else(|e| panic!("{} failed to verify:\n{e}", ex.name()));
        assert!(!outcome.proofs.is_empty(), "{} proved nothing", ex.name());
        outcome
            .check_all()
            .unwrap_or_else(|e| panic!("{}: trace replay failed: {e}", ex.name()));
    }
}

#[test]
fn paper_shape_seven_examples_fully_automatic() {
    // §6: "Diaframe can verify 7 of the examples without any help from
    // the user." Require at least 7 fully automatic ones here, and that
    // the paper's highlighted fully-automatic examples are among them.
    let mut automatic = Vec::new();
    for ex in all_examples() {
        let outcome = ex.verify().expect("verifies");
        if outcome.manual_steps == 0 {
            automatic.push(ex.name());
        }
    }
    assert!(
        automatic.len() >= 7,
        "only {} fully automatic examples: {automatic:?}",
        automatic.len()
    );
    for name in ["spin_lock", "cas_counter", "fork_join", "inc_dec"] {
        assert!(automatic.contains(&name), "{name} should be automatic");
    }
}

#[test]
fn paper_shape_arc_needs_exactly_one_manual_step() {
    // §2.2: drop needs exactly the `destruct (decide (z = 1))` case split.
    let arc = diaframe::examples::arc::Arc;
    let outcome = arc.verify().expect("arc verifies");
    assert_eq!(outcome.manual_steps, 1);
}

#[test]
fn sabotaged_variants_fail() {
    for ex in all_examples() {
        if let Some(result) = ex.verify_broken() {
            assert!(
                result.is_err(),
                "{}: sabotaged variant unexpectedly verified",
                ex.name()
            );
        }
    }
}

#[test]
fn ablations_are_load_bearing() {
    // Each search-order design decision documented in DESIGN.md §5 is
    // necessary: disabling any one of them breaks at least one example
    // that the baseline engine verifies.
    use diaframe::core::{with_ablation_override, Ablation};
    let ablations = [
        Ablation {
            oldest_first: true,
            ..Ablation::none()
        },
        Ablation {
            single_pass: true,
            ..Ablation::none()
        },
        Ablation {
            no_alloc_preference: true,
            ..Ablation::none()
        },
    ];
    for ab in ablations {
        let broke = all_examples().iter().any(|ex| {
            with_ablation_override(ab, || {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ex.verify()))
            })
            .map_or(true, |r| r.is_err())
        });
        assert!(broke, "{ab:?} should break at least one example");
    }
}

#[test]
fn adequacy_all_examples() {
    // Executable adequacy: run each example's client under random
    // schedules; safety (no stuck thread) and the expected result must
    // hold — the runtime counterpart of the proved specifications.
    for ex in all_examples() {
        if let Some((prog, expected)) = ex.adequacy_program() {
            for v in diaframe::heaplang::interp::run_schedules(&prog, 5, 3_000_000) {
                assert_eq!(v, expected, "{}: wrong client result", ex.name());
            }
        }
    }
}
