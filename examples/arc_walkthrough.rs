//! The §2.2 walkthrough: the ARC's `drop` gets stuck without the manual
//! case distinction — this example shows the stuck proof state the paper
//! prints, then completes the proof with the tactic.
//!
//! ```text
//! cargo run --example arc_walkthrough
//! ```

use diaframe::core::VerifyOptions;
use diaframe::examples::arc;
use diaframe::examples::Example;

fn main() {
    // 1. Run drop's verification with NO manual help: the automation
    //    stops at the invariant-closing disjunction, exactly as in §2.2.
    let s = arc::build_with_source(arc::SOURCE);
    let registry = diaframe::ghost::Registry::standard();
    let stuck = s
        .ws
        .verify_all(&registry, &[(&s.specs[3], VerifyOptions::automatic())])
        .expect_err("drop must get stuck without the case split");
    println!("=== drop without the case split: the §2.2 stuck state ===");
    println!("{stuck}");

    // 2. With the one-line case distinction (destruct (decide (z = 1))),
    //    everything goes through.
    let outcome = arc::Arc.verify().expect("arc verifies with the tactic");
    println!("=== with the case split ===");
    println!(
        "verified {} specs, {} manual step(s), hints used: {:?}",
        outcome.proofs.len(),
        outcome.manual_steps,
        outcome.hints_used()
    );
}
