//! Modular client verification: compose the verified CAS counter with its
//! client, and the ticket lock with a critical section — libraries are
//! *not* re-verified (§6's comparison against Caper).
//!
//! ```text
//! cargo run --example lock_client
//! ```

use diaframe::core::TraceStep;
use diaframe::examples::{cas_counter_client::CasCounterClient, ticket_lock_client::TicketLockClient, Example};

fn main() {
    for ex in [
        Box::new(CasCounterClient) as Box<dyn Example>,
        Box::new(TicketLockClient),
    ] {
        let outcome = ex.verify().expect("client verifies");
        // Show that the client proof cuts through the library's
        // specifications instead of inlining its implementation.
        for proof in &outcome.proofs {
            let calls: Vec<String> = proof
                .trace
                .steps()
                .iter()
                .filter_map(|s| match s {
                    TraceStep::SymEx { spec, .. } => Some(spec.clone()),
                    _ => None,
                })
                .collect();
            println!("{}: symbolic-execution steps: {calls:?}", ex.name());
        }
    }
}
