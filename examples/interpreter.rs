//! The HeapLang substrate on its own: parse a concurrent program and run
//! it under several schedulers.
//!
//! ```text
//! cargo run --example interpreter
//! ```

use diaframe::heaplang::interp::Machine;
use diaframe::heaplang::parse_expr;

fn main() {
    let prog = parse_expr(
        "let c := ref 0 in
         fork { FAA(c, 1) ;; () } ;;
         fork { FAA(c, 2) ;; () } ;;
         (rec wait u := if !c = 3 then !c else wait u) ()",
    )
    .expect("parses");

    let v = Machine::new(prog.clone())
        .run_round_robin(1_000_000)
        .expect("runs");
    println!("round-robin: {v}");

    for seed in 0..5 {
        let v = Machine::new(prog.clone())
            .run_random(seed, 1_000_000)
            .expect("runs");
        println!("random seed {seed}: {v}");
    }
}
