//! Quickstart: verify the paper's §2.1 spin lock and inspect the result.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use diaframe::examples::{spin_lock::SpinLock, Example};

fn main() {
    let example = SpinLock;
    println!("source:\n{}", example.source());
    println!("annotation:\n{}", example.annotation());

    let outcome = example.verify().expect("the spin lock verifies");
    println!(
        "verified {} specifications with {} manual steps",
        outcome.proofs.len(),
        outcome.manual_steps
    );
    for proof in &outcome.proofs {
        proof.check().expect("trace replays through the checker");
        println!(
            "  {:<10} {} trace steps, {} symbolic-execution steps",
            proof.name,
            proof.trace.len(),
            proof.trace.symex_steps()
        );
    }
    println!("hints used: {:?}", outcome.hints_used());

    // The runtime counterpart: run the verified client program.
    let (prog, expected) = example.adequacy_program().expect("client");
    let results = diaframe::heaplang::interp::run_schedules(&prog, 10, 2_000_000);
    assert!(results.iter().all(|v| *v == expected));
    println!("client program ran safely under 10 random schedules → {expected}");
}
