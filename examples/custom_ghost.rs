//! Extending the hint database with a *user-defined* ghost library — the
//! §4.2 story: "users can extend the hint database with hints for their
//! own ghost state".
//!
//! We define a **sticky bit**: `unset γ` is the exclusive right to trip
//! the bit, `set γ` is the persistent fact that it was tripped. The
//! library contributes three rules to the proof search:
//!
//! * `sticky-alloc`  — `⊢ ¤|⇛ ∃γ. unset γ` (an `ε₁` last-resort hint);
//! * `sticky-trip`   — `unset γ ⊫ set γ` (a mutation hint);
//! * `sticky-agree`  — owning `unset γ ∗ set γ` is contradictory.
//!
//! With those three rules registered, a write-once cell verifies fully
//! automatically: `trip` trips the bit while storing 1, and `observe`
//! proves it can only ever read 1 afterwards *because* the `b = 0` branch
//! of the invariant clashes with the caller's `set γ`.
//!
//! ```text
//! cargo run --example custom_ghost
//! ```

use diaframe::core::VerifyOptions;
use diaframe::examples::common::{eq, ex, inv, or, pt, sep, tm, Ws};
use diaframe::ghost::{GhostLibrary, HintCandidate, MergeOutcome, Registry};
use diaframe::logic::{Assertion, Atom, GhostAtom, GhostKind, PredTable};
use diaframe::term::{Sort, Term, VarCtx};

/// `unset γ` — the exclusive right to trip the bit.
const UNSET: GhostKind = GhostKind {
    id: 900,
    name: "unset",
};

/// `set γ` — the persistent fact that the bit was tripped.
const SET: GhostKind = GhostKind { id: 901, name: "set" };

fn unset(gname: Term) -> Atom {
    Atom::Ghost(GhostAtom {
        kind: UNSET,
        gname,
        pred: None,
        args: Vec::new(),
    })
}

fn set(gname: Term) -> Atom {
    Atom::Ghost(GhostAtom {
        kind: SET,
        gname,
        pred: None,
        args: Vec::new(),
    })
}

/// The user-defined library: three rules, ~40 lines.
#[derive(Debug, Default)]
struct StickyLib;

impl GhostLibrary for StickyLib {
    fn name(&self) -> &'static str {
        "sticky"
    }

    fn kinds(&self) -> Vec<GhostKind> {
        vec![UNSET, SET]
    }

    fn is_persistent(&self, atom: &GhostAtom) -> bool {
        atom.kind == SET
    }

    fn merge(&self, _ctx: &mut VarCtx, a: &GhostAtom, b: &GhostAtom) -> Option<MergeOutcome> {
        // The right to trip is exclusive…
        if a.kind == UNSET && b.kind == UNSET {
            return Some(MergeOutcome::Contradiction {
                rule: "unset-exclusive",
            });
        }
        // …and incompatible with the bit already being set.
        if (a.kind == UNSET && b.kind == SET) || (a.kind == SET && b.kind == UNSET) {
            return Some(MergeOutcome::Contradiction {
                rule: "sticky-agree",
            });
        }
        None
    }

    fn hints(&self, _ctx: &mut VarCtx, hyp: &GhostAtom, goal: &Atom) -> Vec<HintCandidate> {
        let Atom::Ghost(g) = goal else {
            return Vec::new();
        };
        if hyp.kind == UNSET && g.kind == SET {
            // sticky-trip: unset γ ⊫ set γ ∗ [set γ] — the residue `U` of
            // the hint judgment hands the caller a second (persistent)
            // copy of the freshly set bit, so the postcondition can keep
            // it even though the goal copy goes into the invariant.
            return vec![HintCandidate::new("sticky-trip")
                .unify(g.gname.clone(), hyp.gname.clone())
                .residue(Assertion::atom(set(hyp.gname.clone())))];
        }
        Vec::new()
    }

    fn allocations(&self, ctx: &mut VarCtx, goal: &GhostAtom) -> Vec<HintCandidate> {
        if goal.kind != UNSET {
            return Vec::new();
        }
        let fresh = Term::var(ctx.fresh_var_base(Sort::GhostName, "γ"));
        vec![HintCandidate::new("sticky-alloc").unify(goal.gname.clone(), fresh)]
    }
}

const SOURCE: &str = "\
def make _ := ref 0
def trip f := f <- 1
def observe f := !f
";

/// `is_flag γ v`: `∃ℓ. ⌜v = #ℓ⌝ ∗ inv N (∃b. ℓ ↦ #b ∗ (⌜b = 0⌝ ∗ unset γ ∨ ⌜b = 1⌝ ∗ set γ))`.
fn is_flag(ws: &mut Ws, gamma: Term, v: Term) -> Assertion {
    let l = ws.v(Sort::Loc, "l");
    let b = ws.v(Sort::Int, "b");
    let body = ex(
        b,
        sep([
            pt(Term::var(l), tm::vint(Term::var(b))),
            or(
                sep([
                    eq(Term::var(b), Term::int(0)),
                    Assertion::atom(unset(gamma.clone())),
                ]),
                sep([
                    eq(Term::var(b), Term::int(1)),
                    Assertion::atom(set(gamma)),
                ]),
            ),
        ]),
    );
    ex(l, sep([eq(v, tm::vloc(Term::var(l))), inv("flag", body)]))
}

fn main() {
    // Register the user library *next to* the built-in ones.
    let mut registry = Registry::standard();
    registry.register(Box::new(StickyLib));

    let mut ws = Ws::new(PredTable::new(), SOURCE);

    // SPEC {True} make () {v γ, RET v; is_flag γ v}
    let a = ws.v(Sort::Val, "a");
    let w = ws.v(Sort::Val, "w");
    let g = ws.v(Sort::GhostName, "γ");
    let post = {
        let body = is_flag(&mut ws, Term::var(g), Term::var(w));
        ex(g, body)
    };
    let make = ws.spec("make", "make", a, Vec::new(), Assertion::emp(), w, post);

    // SPEC {is_flag γ f} trip f {RET (); set γ}
    let f = ws.v(Sort::Val, "f");
    let g = ws.v(Sort::GhostName, "γ");
    let w = ws.v(Sort::Val, "w");
    let pre = is_flag(&mut ws, Term::var(g), Term::var(f));
    let post = sep([eq(Term::var(w), tm::unit()), Assertion::atom(set(Term::var(g)))]);
    let trip = ws.spec("trip", "trip", f, vec![g], pre, w, post);

    // SPEC {is_flag γ f ∗ set γ} observe f {RET v; v = #1}
    let f = ws.v(Sort::Val, "f");
    let g = ws.v(Sort::GhostName, "γ");
    let w = ws.v(Sort::Val, "w");
    let pre = sep([
        is_flag(&mut ws, Term::var(g), Term::var(f)),
        Assertion::atom(set(Term::var(g))),
    ]);
    let post = eq(Term::var(w), tm::vint(Term::int(1)));
    let observe = ws.spec("observe", "observe", f, vec![g], pre, w, post);

    let outcome = ws
        .verify_all(
            &registry,
            &[
                (&make, VerifyOptions::automatic()),
                (&trip, VerifyOptions::automatic()),
                (&observe, VerifyOptions::automatic()),
            ],
        )
        .expect("the write-once cell verifies");
    outcome.check_all().expect("traces replay");

    assert_eq!(outcome.manual_steps, 0);
    let hints = outcome.hints_used();
    assert!(hints.contains("sticky-alloc"), "allocation hint fired");
    assert!(hints.contains("sticky-trip"), "mutation hint fired");

    println!("write-once cell verified with a 40-line user ghost library:");
    for proof in &outcome.proofs {
        println!(
            "  {:<8} {} trace steps, {} symbolic-execution steps",
            proof.name,
            proof.trace.len(),
            proof.trace.symex_steps()
        );
    }
    println!("hints used: {hints:?}");

    // `observe` before any `trip` is unprovable: the spec {is_flag γ f}
    // observe f {RET v; v = #1} (without set γ) must get stuck, because
    // the cell may still hold 0.
    let mut ws2 = Ws::new(PredTable::new(), SOURCE);
    let f = ws2.v(Sort::Val, "f");
    let g = ws2.v(Sort::GhostName, "γ");
    let w = ws2.v(Sort::Val, "w");
    let pre = is_flag(&mut ws2, Term::var(g), Term::var(f));
    let post = eq(Term::var(w), tm::vint(Term::int(1)));
    let bad = ws2.spec("observe_unset", "observe", f, vec![g], pre, w, post);
    let err = ws2
        .verify_all(&registry, &[(&bad, VerifyOptions::automatic())])
        .expect_err("reading 1 without set γ must not verify");
    println!("\nwithout set γ the read is rightly rejected:\n{err}");
}
