#![warn(missing_docs)]
//! `diaframe` — a Rust reproduction of *Diaframe: Automated Verification
//! of Fine-Grained Concurrent Programs in Iris* (Mulder, Krebbers,
//! Geuvers; PLDI 2022).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`term`] — terms, evars with scope levels, unification, the pure
//!   solver (the `lia` analogue);
//! * [`heaplang`] — the ML-like concurrent language, parser, operational
//!   semantics and reference interpreter;
//! * [`ra`] — resource algebras backing the ghost-state rules;
//! * [`logic`] — the assertion language of §5.1 (atoms, masks, grammar
//!   classes);
//! * [`ghost`] — the ghost-state libraries with bi-abduction hints;
//! * [`core`] — the proof search strategy, hint search, proof traces and
//!   the replay checker;
//! * [`examples`] — the 24 Figure-6 benchmarks.
//!
//! # Quickstart
//!
//! ```
//! use diaframe::examples::{spin_lock::SpinLock, Example};
//!
//! let outcome = SpinLock.verify().expect("the spin lock verifies");
//! assert_eq!(outcome.manual_steps, 0); // fully automatic, as in the paper
//! outcome.check_all().expect("every proof trace replays");
//! ```

pub use diaframe_core as core;
pub use diaframe_examples as examples;
pub use diaframe_ghost as ghost;
pub use diaframe_heaplang as heaplang;
pub use diaframe_logic as logic;
pub use diaframe_ra as ra;
pub use diaframe_term as term;

/// The names most verifications need, for a single glob import.
///
/// ```
/// use diaframe::prelude::*;
///
/// let s = diaframe::examples::spin_lock::build();
/// let registry = Registry::standard();
/// let outcome = s
///     .ws
///     .verify_all(
///         &registry,
///         &[
///             (&s.newlock, VerifyOptions::automatic()),
///             (&s.acquire, VerifyOptions::automatic()),
///             (&s.release, VerifyOptions::automatic()),
///         ],
///     )
///     .expect("the spin lock verifies");
/// assert_eq!(outcome.manual_steps, 0);
/// outcome.check_all().expect("traces replay");
/// ```
pub mod prelude {
    pub use diaframe_core::{verify, Spec, SpecTable, Stuck, VerifiedProof, VerifyOptions};
    pub use diaframe_examples::common::{Example, ExampleOutcome, Ws};
    pub use diaframe_ghost::Registry;
    pub use diaframe_heaplang::{parse_expr, Expr, Val};
    pub use diaframe_logic::{Assertion, Atom, MaskT, PredTable};
    pub use diaframe_term::{PureProp, Sort, Term, VarCtx};
}
