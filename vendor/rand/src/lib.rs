//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, API-compatible subset of `rand 0.8`: a seeded
//! [`rngs::StdRng`] (SplitMix64 — not the real `StdRng` algorithm, but
//! every use in this workspace seeds explicitly and only needs
//! deterministic-per-seed streams, not cross-crate reproducibility) and
//! the [`Rng::gen_range`] / [`SeedableRng::seed_from_u64`] entry points.

use std::ops::{Range, RangeInclusive};

/// The core of an RNG: a 64-bit output stream.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled element type.
    type Output;

    /// Draws one uniform sample. Panics on an empty range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic seeded PRNG (SplitMix64 under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, one
            // u64 of state, and trivially seedable — plenty for scheduler
            // fuzzing.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
        }
        // Both endpoints of an inclusive range are reachable.
        let mut hits = [false; 2];
        for _ in 0..200 {
            match r.gen_range(0u8..=1) {
                0 => hits[0] = true,
                1 => hits[1] = true,
                _ => unreachable!(),
            }
        }
        assert!(hits[0] && hits[1]);
    }
}
