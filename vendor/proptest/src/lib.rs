//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, API-compatible subset of `proptest 1.x`:
//! [`strategy::Strategy`] with `prop_map` / `prop_recursive` / tuples /
//! integer ranges / a regex-subset string strategy, `prop_oneof!`,
//! `proptest!`, `prop_assert*!` and `prop_assume!`.
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking.** A failing case panics with the drawn values'
//!   assertion message; `.proptest-regressions` files are ignored.
//! - Generation is a plain deterministic sampler seeded per test from the
//!   test's module path (override the case count with `PROPTEST_CASES`).
//! - The regex string strategy supports the subset `[a-z]` classes,
//!   literals and `{m,n}` / `{m}` / `?` / `+` / `*` quantifiers.

pub mod test_runner {
    //! Test execution: the RNG, rejection, and case-count policy.

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` — draw another.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject => f.write_str("case rejected by prop_assume!"),
                TestCaseError::Fail(m) => f.write_str(m),
            }
        }
    }

    /// The deterministic sampler behind every strategy (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A fixed-seed RNG derived from `tag` (typically the test's
        /// module path and name), so every run draws the same cases.
        #[must_use]
        pub fn deterministic(tag: &str) -> TestRng {
            // FNV-1a over the tag gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in tag.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform draw from `0..n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }

        /// A uniform draw from the inclusive range `lo..=hi`.
        pub fn in_i128(&mut self, lo: i128, hi: i128) -> i128 {
            assert!(lo <= hi, "empty range");
            let span = (hi - lo) as u128 + 1;
            let off = u128::from(self.next_u64()) % span;
            lo + off as i128
        }
    }

    /// How many accepted cases each `proptest!` test runs
    /// (`PROPTEST_CASES` env override; default 64).
    #[must_use]
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

pub mod strategy {
    //! Value-generation strategies and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy::new(self)
        }

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            U: 'static,
            F: Fn(Self::Value) -> U + 'static,
        {
            let inner = self;
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| f(inner.sample(rng))))
        }

        /// Builds recursive structures: `f` receives a strategy for the
        /// substructure and returns the branching strategy; leaves come
        /// from `self`. `depth` bounds the nesting (the size/branch
        /// parameters of real proptest are accepted and ignored).
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let branch = f(strat).boxed();
                // 2:1 branch:leaf mix keeps expected size finite while
                // still exercising deep shapes at every level.
                strat = Union::new(vec![branch.clone(), branch, leaf.clone()]).boxed();
            }
            strat
        }
    }

    /// A type-erased strategy (cheaply clonable).
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T: 'static> BoxedStrategy<T> {
        /// Erases `s`.
        pub fn new<S: Strategy<Value = T> + 'static>(s: S) -> BoxedStrategy<T> {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| s.sample(rng)))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniformly picks one of several strategies per draw (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union(self.0.clone())
        }
    }

    impl<T> Union<T> {
        /// A union of the given arms (must be non-empty).
        #[must_use]
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.in_i128(self.start as i128, self.end as i128 - 1) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.in_i128(*self.start() as i128, *self.end() as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128, isize);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.sample(rng),
                self.1.sample(rng),
                self.2.sample(rng),
                self.3.sample(rng),
            )
        }
    }

    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            crate::string::sample_regex(self, rng)
        }
    }
}

pub mod string {
    //! A regex-subset string generator backing the `&str` strategy.

    use crate::test_runner::TestRng;

    /// Generates one string matching the regex subset: literal
    /// characters, `[a-z0-9_]`-style classes, and the quantifiers
    /// `{m,n}` / `{m}` / `?` / `+` / `*` (unbounded repetition capped at
    /// 8). Panics on syntax outside the subset.
    pub fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a class or a literal…
            let atom: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed [ in regex strategy {pattern:?}"))
                        + i;
                    let class = expand_class(&chars[i + 1..close], pattern);
                    i = close + 1;
                    class
                }
                '\\' => {
                    let c = *chars
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("dangling \\ in regex strategy {pattern:?}"));
                    i += 2;
                    vec![c]
                }
                c if "(){}*+?|.^$".contains(c) => {
                    panic!("regex strategy {pattern:?}: {c:?} is outside the supported subset")
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // …followed by an optional quantifier.
            let (lo, hi) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .unwrap_or_else(|| panic!("unclosed {{ in regex strategy {pattern:?}"))
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (parse_rep(m, pattern), parse_rep(n, pattern)),
                        None => {
                            let m = parse_rep(&body, pattern);
                            (m, m)
                        }
                    }
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                _ => (1, 1),
            };
            let reps = rng.in_i128(i128::from(lo), i128::from(hi)) as usize;
            for _ in 0..reps {
                let k = rng.below(atom.len() as u64) as usize;
                out.push(atom[k]);
            }
        }
        out
    }

    fn parse_rep(s: &str, pattern: &str) -> u32 {
        s.trim()
            .parse()
            .unwrap_or_else(|_| panic!("bad repetition {s:?} in regex strategy {pattern:?}"))
    }

    fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
        assert!(
            body.first() != Some(&'^'),
            "negated classes unsupported in regex strategy {pattern:?}"
        );
        let mut out = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (lo, hi) = (body[i], body[i + 2]);
                assert!(lo <= hi, "bad class range in regex strategy {pattern:?}");
                for c in lo..=hi {
                    out.push(c);
                }
                i += 3;
            } else {
                out.push(body[i]);
                i += 1;
            }
        }
        assert!(!out.is_empty(), "empty class in regex strategy {pattern:?}");
        out
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec-length range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// A strategy generating `Vec`s of `elem` with length drawn from the
    /// size range.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy with element strategy `elem` and a length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.in_i128(self.size.lo as i128, self.size.hi as i128) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// One accepted case of a `proptest!` body.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::test_runner::cases();
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                while __accepted < __cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= __cases.saturating_mul(64),
                        "proptest {}: too many cases rejected by prop_assume!",
                        stringify!($name),
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        Ok(()) => __accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => {}
                        Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest {} failed (case {}): {}",
                                stringify!($name),
                                __accepted,
                                __msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` returning a [`test_runner::TestCaseError`] instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` returning a [`test_runner::TestCaseError`] instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l != __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if __l != __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r,
            )));
        }
    }};
}

/// Rejects the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniformly picks one of the listed strategies per draw.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// The `prop::` module alias (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// The macro pipeline end-to-end: tuples, oneof, map, assume.
        #[test]
        fn macro_pipeline(x in 0u64..=40, pair in (1i64..10, -3i64..=3), tag in prop_oneof![Just(0u8), 1u8..=3]) {
            prop_assume!(x != 13);
            prop_assert!(x <= 40);
            prop_assert!(pair.0 >= 1 && pair.0 < 10);
            prop_assert_eq!(pair.1 - pair.1, 0);
            prop_assert!(tag <= 3, "tag {} out of range", tag);
        }

        /// Vec + regex-string strategies produce matching shapes.
        #[test]
        fn vec_and_regex(names in prop::collection::vec("[a-d]{1,3}", 0..4)) {
            prop_assert!(names.len() < 4);
            for n in &names {
                prop_assert!((1..=3).contains(&n.len()));
                prop_assert!(n.chars().all(|c| ('a'..='d').contains(&c)));
            }
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf(#[allow(dead_code)] i64),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (-9i64..=9).prop_map(T::Leaf).prop_recursive(4, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::deterministic("recursive");
        let mut max = 0;
        for _ in 0..200 {
            max = max.max(depth(&strat.sample(&mut rng)));
        }
        assert!(max > 0, "never drew a branch");
        assert!(max <= 4, "depth bound violated: {max}");
    }

    #[test]
    fn deterministic_per_tag() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        let s = 0u64..=1_000_000;
        let (va, vb, vc) = (s.sample(&mut a), s.sample(&mut b), s.sample(&mut c));
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
