//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, API-compatible subset of `criterion 0.5`: timed
//! samples with min/median/max reporting, but no statistical analysis,
//! no plots, and no baseline storage. Benchmarks still run under
//! `cargo bench` and print one summary line each.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver: collects samples and prints a summary line.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let sample_size = std::env::var("CRITERION_SAMPLE_SIZE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20);
        Criterion { sample_size }
    }
}

impl Criterion {
    /// Runs one benchmark under the given id.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Criterion {
        run_bench(id.as_ref(), self.sample_size, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_owned(),
            sample_size,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self {
        run_bench(
            &format!("{}/{}", self.name, id.as_ref()),
            self.sample_size,
            f,
        );
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one execution of `routine` (the stand-in takes one timed
    /// call per sample instead of criterion's auto-scaled batches).
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    // One untimed warm-up pass populates caches and lazy statics.
    let mut b = Bencher {
        elapsed: Duration::ZERO,
    };
    f(&mut b);

    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed);
    }
    times.sort();
    let min = times[0];
    let median = times[times.len() / 2];
    let max = times[times.len() - 1];
    println!("{id:<50} time: [{min:>10.2?} {median:>10.2?} {max:>10.2?}]  ({samples} samples)");
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);

        let mut group = c.benchmark_group("group");
        group.sample_size(3);
        group.bench_function("inner", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
    }
}
