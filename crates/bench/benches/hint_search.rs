//! Criterion microbench for `find_hint` on a wide hypothesis context:
//! the atom-head index versus the plain linear scan.
//!
//! The context holds 96 hypotheses — points-to facts, foreign abstract
//! predicates, pure facts and invariant wrappers — with the one
//! hypothesis matching the goal added *first*, i.e. scanned *last* by
//! the newest-first scan. The linear scan must probe (checkpoint,
//! descend, unify, roll back) every non-matching hypothesis on the way;
//! the indexed scan skips them all by head.

use criterion::{criterion_group, criterion_main, Criterion};
use diaframe_core::hint::find_hint;
use diaframe_core::{set_hint_index_enabled, ProofCtx, VerifyOptions};
use diaframe_ghost::Registry;
use diaframe_logic::{Assertion, Atom, Mask, Namespace, PredTable};
use diaframe_term::{PureProp, Term};

/// 96 hypotheses, exactly one (the oldest) matching the goal.
fn wide_ctx() -> (ProofCtx, Atom) {
    let mut preds = PredTable::new();
    let target = preds.fresh_plain("target");
    let goal = Atom::PredApp {
        pred: target,
        args: Vec::new(),
    };
    let mut foreign = Vec::new();
    for i in 0..31 {
        foreign.push(preds.fresh_plain(&format!("P{i}")));
    }
    let mut ctx = ProofCtx::new(preds);
    // The matching hypothesis, scanned last (newest-first order).
    ctx.add_hyp(Assertion::atom(goal.clone()), false);
    for i in 0..95u64 {
        let a = match i % 3 {
            0 => Assertion::atom(Atom::points_to(
                Term::Loc(i + 1),
                Term::v_int_lit(i128::from(i)),
            )),
            1 => Assertion::atom(Atom::PredApp {
                pred: foreign[usize::try_from(i).unwrap() % foreign.len()],
                args: Vec::new(),
            }),
            _ => Assertion::atom(Atom::invariant(
                Namespace::new(&format!("N{i}")),
                Assertion::sep(
                    Assertion::pure(PureProp::True),
                    Assertion::atom(Atom::points_to(Term::Loc(1000 + i), Term::v_unit())),
                ),
            )),
        };
        ctx.add_hyp(a, false);
    }
    (ctx, goal)
}

fn bench_hint_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("hint_search");
    let registry = Registry::standard();
    let opts = VerifyOptions::automatic();
    let (ctx, goal) = wide_ctx();
    // Each iteration clones the context (find_hint instantiates evars on
    // success); this baseline isolates that shared cost, so the scan-only
    // difference is (indexed|linear) − clone-baseline.
    group.bench_function("clone-baseline-96hyps", |b| {
        b.iter(|| criterion::black_box(ctx.clone().delta.len()));
    });
    for (label, indexed) in [("indexed-96hyps", true), ("linear-96hyps", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let prev = set_hint_index_enabled(indexed);
                let mut ctx = ctx.clone();
                let found = find_hint(&mut ctx, &registry, &opts, &goal, &Mask::top());
                set_hint_index_enabled(prev);
                assert!(found.is_some(), "the matching hypothesis must be found");
                criterion::black_box(found.is_some())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hint_search);
criterion_main!(benches);
