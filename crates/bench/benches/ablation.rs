//! Criterion bench: full-suite verification time under each search-order
//! ablation (the experiment `figure6 -- --ablation` tabulates). Only the
//! configurations under which the whole suite still verifies are timed;
//! configurations that break examples are covered by the table instead.

use criterion::{criterion_group, criterion_main, Criterion};
use diaframe_core::{with_ablation_override, Ablation};
use diaframe_examples::all_examples;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("baseline-suite", |b| {
        b.iter(|| {
            let mut verified = 0usize;
            for ex in all_examples() {
                verified += usize::from(ex.verify().is_ok());
            }
            assert_eq!(verified, 24);
            criterion::black_box(verified)
        });
    });
    // Ablated runs verify fewer examples; time how quickly the engine
    // disposes of the whole suite anyway (stuck reports are cheap).
    for (name, ab) in [
        (
            "oldest-first-suite",
            Ablation {
                oldest_first: true,
                ..Ablation::none()
            },
        ),
        (
            "single-pass-suite",
            Ablation {
                single_pass: true,
                ..Ablation::none()
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut verified = 0usize;
                for ex in all_examples() {
                    let ok = with_ablation_override(ab, || {
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            ex.verify().is_ok()
                        }))
                        .unwrap_or(false)
                    });
                    verified += usize::from(ok);
                }
                criterion::black_box(verified)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
