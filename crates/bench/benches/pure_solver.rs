//! Criterion benches for the pure solver on *real* obligations,
//! harvested from the rwlock_ticket_bounded search (the Figure 6 example
//! that leans hardest on linear arithmetic). Three costs are separated:
//! the rebuild-per-query baseline (legacy [`PureSolver`] and a fresh
//! [`EGraph`] per query), the incremental query path (one persistent
//! e-graph, facts asserted once), and the assert/rollback trail churn a
//! checker branch frame produces. No interner scope is opened, so every
//! number is the uncached cost — what a memo miss pays.

use criterion::{criterion_group, criterion_main, Criterion};
use diaframe_core::trace::TraceStep;
use diaframe_examples::all_examples;
use diaframe_term::solver::egraph::EGraph;
use diaframe_term::solver::PureSolver;
use diaframe_term::{PureProp, VarCtx};

/// One harvested pure obligation: hypothesis facts, goal, and the
/// variable context that sorts them.
struct Obligation {
    vars: VarCtx,
    facts: Vec<PureProp>,
    goal: PureProp,
}

/// The largest pure obligations (by rendered size, a cheap proxy for
/// term depth and fact count) the rwlock_ticket_bounded search
/// discharges.
fn harvest(limit: usize) -> Vec<Obligation> {
    let ex = all_examples()
        .into_iter()
        .find(|e| e.name() == "rwlock_ticket_bounded")
        .expect("rwlock_ticket_bounded is in the registry");
    let outcome = ex.verify().expect("rwlock_ticket_bounded verifies");
    let mut obls = Vec::new();
    for proof in &outcome.proofs {
        for step in proof.trace.steps() {
            let TraceStep::PureObligation { facts, goal, vars } = step else {
                continue;
            };
            let size: usize = facts
                .iter()
                .chain(std::iter::once(goal))
                .map(|p| format!("{p:?}").len())
                .sum();
            obls.push((size, Obligation {
                vars: vars.clone(),
                facts: facts.clone(),
                goal: goal.clone(),
            }));
        }
    }
    obls.sort_by_key(|(s, _)| std::cmp::Reverse(*s));
    obls.truncate(limit);
    obls.into_iter().map(|(_, o)| o).collect()
}

fn bench_pure_solver(c: &mut Criterion) {
    let obls = harvest(16);
    assert!(!obls.is_empty(), "search discharged pure obligations");

    // Rebuild-per-query baseline: what every query paid before the
    // persistent e-graph (and what `DIAFRAME_EGRAPH=off` still pays).
    c.bench_function("pure_solver/legacy-rebuild", |b| {
        b.iter(|| {
            for o in &obls {
                let solver = PureSolver::new(&o.facts);
                criterion::black_box(solver.prove_frozen(&mut o.vars.clone(), &o.goal));
            }
        });
    });

    c.bench_function("pure_solver/egraph-rebuild", |b| {
        b.iter(|| {
            for o in &obls {
                let mut eg = EGraph::from_facts(&o.facts);
                criterion::black_box(eg.prove_frozen(&mut o.vars.clone(), &o.goal));
            }
        });
    });

    // Incremental query: facts asserted once, the per-query cost is the
    // goal refutation alone (catch-up is a no-op).
    c.bench_function("pure_solver/egraph-incremental-query", |b| {
        let mut graphs: Vec<EGraph> = obls.iter().map(|o| EGraph::from_facts(&o.facts)).collect();
        b.iter(|| {
            for (eg, o) in graphs.iter_mut().zip(&obls) {
                criterion::black_box(eg.prove_frozen(&mut o.vars.clone(), &o.goal));
            }
        });
    });

    // Branch-frame churn: assert the obligation's facts on top of a
    // persistent e-graph and roll them back, the shape every checker
    // branch entry/exit produces. Measures the undo trail, not search.
    c.bench_function("pure_solver/egraph-assert-rollback", |b| {
        let mut graphs: Vec<EGraph> = obls.iter().map(|o| EGraph::from_facts(&o.facts)).collect();
        b.iter(|| {
            for (eg, o) in graphs.iter_mut().zip(&obls) {
                let n = o.facts.len();
                for f in &o.facts {
                    eg.push_fact(f.clone());
                }
                criterion::black_box(eg.prove_frozen(&mut o.vars.clone(), &o.goal));
                eg.truncate_facts(n);
            }
        });
    });
}

criterion_group!(benches, bench_pure_solver);
criterion_main!(benches);
