//! Criterion bench: checker *replay* of a stored trace versus full proof
//! *search*, on the five slowest Figure 6 examples.
//!
//! The ratio between the two is the persistent proof store's value
//! proposition — a warm `diaframe serve` hit pays only the `replay`
//! side. The measured ratio is recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use diaframe_core::trace_json::{parse_json_value, traces_from_compact_value, traces_to_compact_json};
use diaframe_examples::all_examples;

/// The five slowest examples by the committed snapshot's `search_ms`.
const SLOWEST: [&str; 5] = [
    "rwlock_ticket_bounded",
    "rwlock_ticket_unbounded",
    "rwlock_duolock",
    "msc_queue",
    "peterson",
];

fn bench_replay_vs_search(c: &mut Criterion) {
    let examples = all_examples();
    for name in SLOWEST {
        let ex = examples
            .iter()
            .find(|ex| ex.name() == name)
            .unwrap_or_else(|| panic!("no example named {name}"));
        let outcome = ex.verify().expect("verifies");
        // Round-trip through the store's compact bundle codec so the
        // replay side measures exactly what a warm hit pays: checksum,
        // parse, bundle decode, checker replay.
        let specs: Vec<(&str, &diaframe_core::ProofTrace)> = outcome
            .proofs
            .iter()
            .map(|p| (p.name.as_str(), &p.trace))
            .collect();
        let stored = traces_to_compact_json(&specs);

        let mut group = c.benchmark_group(name);
        group.sample_size(10);
        group.bench_function("search", |b| {
            b.iter(|| {
                let outcome = ex.verify().expect("verifies");
                criterion::black_box(outcome.proofs.len())
            });
        });
        group.bench_function("replay", |b| {
            b.iter(|| {
                let checksum = diaframe_core::sha256_hex(stored.as_bytes());
                let bundle = parse_json_value(&stored).expect("stored bundle parses");
                let traces = traces_from_compact_value(&bundle).expect("stored bundle decodes");
                for (_, trace) in &traces {
                    diaframe_core::checker::check(trace).expect("stored trace replays");
                }
                criterion::black_box((checksum.len(), traces.len()))
            });
        });
        group.finish();
    }
}

criterion_group!(benches, bench_replay_vs_search);
criterion_main!(benches);
