//! Criterion benches for the term-level hot path: unify, subst, zonk
//! and normalize on *real* deep terms, harvested from the pure
//! obligations the rwlock_ticket_bounded search discharges. These are
//! the operations the hash-consing interner memoizes; run with
//! `DIAFRAME_INTERN=off` to measure the structural baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use diaframe_core::trace::TraceStep;
use diaframe_examples::all_examples;
use diaframe_term::normalize::normalize;
use diaframe_term::{unify, PureProp, Subst, Term, VarCtx};

/// Terms from the deepest pure obligation of the rwlock_ticket_bounded
/// search, with the variable context that sorts them. The obligation is
/// picked by rendered size, a cheap proxy for term depth.
fn harvest() -> (VarCtx, Vec<PureProp>, Vec<Term>) {
    let ex = all_examples()
        .into_iter()
        .find(|e| e.name() == "rwlock_ticket_bounded")
        .expect("rwlock_ticket_bounded is in the registry");
    let outcome = ex.verify().expect("rwlock_ticket_bounded verifies");
    let mut best: Option<(usize, VarCtx, Vec<PureProp>)> = None;
    for proof in &outcome.proofs {
        for step in proof.trace.steps() {
            let TraceStep::PureObligation { facts, goal, vars } = step else {
                continue;
            };
            let mut props: Vec<PureProp> = facts.clone();
            props.push(goal.clone());
            let size: usize = props.iter().map(|p| format!("{p:?}").len()).sum();
            if best.as_ref().is_none_or(|(s, _, _)| size > *s) {
                best = Some((size, vars.clone(), props));
            }
        }
    }
    let (_, ctx, props) = best.expect("search discharged at least one pure obligation");
    let mut terms = Vec::new();
    for p in &props {
        p.visit_terms(&mut |t| terms.push(t.clone()));
    }
    terms.sort_by_key(|t| std::cmp::Reverse(format!("{t:?}").len()));
    terms.truncate(16);
    (ctx, props, terms)
}

fn bench_term_ops(c: &mut Criterion) {
    let (ctx, props, terms) = harvest();

    c.bench_function("term_ops/zonk-harvested", |b| {
        b.iter(|| {
            for t in &terms {
                criterion::black_box(t.zonk(&ctx));
            }
        });
    });

    c.bench_function("term_ops/normalize-harvested", |b| {
        let numeric: Vec<&Term> = terms
            .iter()
            .filter(|t| t.sort(&ctx).is_numeric())
            .collect();
        b.iter(|| {
            for t in &numeric {
                criterion::black_box(normalize(&ctx, t));
            }
        });
    });

    c.bench_function("term_ops/unify-harvested-self", |b| {
        b.iter(|| {
            for t in &terms {
                let mut vars = ctx.clone();
                criterion::black_box(unify(&mut vars, t, t).is_ok());
            }
        });
    });

    c.bench_function("term_ops/unify-harvested-evar", |b| {
        // A bi-abduction-shaped probe: each deep term against a fresh
        // evar of its sort, the common case when a hint side condition
        // pins an output parameter.
        b.iter(|| {
            for t in &terms {
                let mut vars = ctx.clone();
                let e = vars.fresh_evar(t.sort(&vars));
                criterion::black_box(unify(&mut vars, &Term::evar(e), t).is_ok());
            }
        });
    });

    c.bench_function("term_ops/subst-harvested", |b| {
        // Substitute every free variable of the obligation set in one
        // pass, the shape `WpPost::at` and hint closure instantiation
        // produce.
        let mut free = Vec::new();
        for p in &props {
            free.extend(p.free_vars());
        }
        free.sort_unstable();
        free.dedup();
        let mut vars = ctx.clone();
        let mut subst = Subst::new();
        for v in &free {
            let sort = vars.var_sort(*v);
            let fresh = vars.fresh_var(sort, "b");
            subst.insert(*v, Term::var(fresh));
        }
        b.iter(|| {
            for t in &terms {
                criterion::black_box(subst.apply(t));
            }
        });
    });
}

criterion_group!(benches, bench_term_ops);
criterion_main!(benches);
