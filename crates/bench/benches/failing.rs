//! Criterion benches for the §6 failing-verification experiment: how fast
//! sabotaged variants are *rejected*, compared to successful runs.

use criterion::{criterion_group, criterion_main, Criterion};
use diaframe_examples::all_examples;

fn bench_failing(c: &mut Criterion) {
    let mut group = c.benchmark_group("failing");
    group.sample_size(10);
    for ex in all_examples() {
        if ex.verify_broken().is_none() {
            continue;
        }
        group.bench_function(format!("{}/success", ex.name()), |b| {
            b.iter(|| criterion::black_box(ex.verify().is_ok()));
        });
        group.bench_function(format!("{}/failure", ex.name()), |b| {
            b.iter(|| criterion::black_box(ex.verify_broken().unwrap().is_err()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_failing);
criterion_main!(benches);
