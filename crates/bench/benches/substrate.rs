//! Criterion benches for the substrates: the pure solver, unification,
//! and the HeapLang interpreter (ablation-style measurements for the
//! design choices DESIGN.md calls out).

use criterion::{criterion_group, criterion_main, Criterion};
use diaframe_heaplang::interp::Machine;
use diaframe_heaplang::parse_expr;
use diaframe_term::solver::PureSolver;
use diaframe_term::{unify, PureProp, Sort, Term, VarCtx};

fn bench_solver(c: &mut Criterion) {
    c.bench_function("solver/integer-tightening", |b| {
        let mut ctx = VarCtx::new();
        let z = Term::var(ctx.fresh_var(Sort::Int, "z"));
        let facts = vec![
            PureProp::lt(Term::int(0), z.clone()),
            PureProp::ne(z.clone(), Term::int(1)),
        ];
        let solver = PureSolver::new(&facts);
        b.iter(|| {
            let mut vars = ctx.clone();
            criterion::black_box(solver.prove(&mut vars, &PureProp::lt(Term::int(1), z.clone())))
        });
    });
    c.bench_function("solver/chain-elimination", |b| {
        let mut ctx = VarCtx::new();
        let vars: Vec<Term> = (0..8)
            .map(|i| Term::var(ctx.fresh_var(Sort::Int, &format!("x{i}"))))
            .collect();
        let mut facts = Vec::new();
        for w in vars.windows(2) {
            facts.push(PureProp::le(w[0].clone(), w[1].clone()));
        }
        let solver = PureSolver::new(&facts);
        let goal = PureProp::le(vars[0].clone(), vars[7].clone());
        b.iter(|| {
            let mut v = ctx.clone();
            criterion::black_box(solver.prove(&mut v, &goal))
        });
    });
}

fn bench_unify(c: &mut Criterion) {
    c.bench_function("unify/arithmetic", |b| {
        b.iter(|| {
            let mut ctx = VarCtx::new();
            let z = Term::var(ctx.fresh_var(Sort::Int, "z"));
            let e = ctx.fresh_evar(Sort::Int);
            criterion::black_box(unify(
                &mut ctx,
                &Term::add(Term::evar(e), Term::int(1)),
                &z,
            ))
        });
    });
}

fn bench_interp(c: &mut Criterion) {
    let prog = parse_expr(
        "let c := ref 0 in
         (rec go n := if n = 0 then !c else (FAA(c, n) ;; go (n - 1))) 100",
    )
    .expect("parses");
    c.bench_function("interp/faa-loop-100", |b| {
        b.iter(|| {
            criterion::black_box(
                Machine::new(prog.clone())
                    .run_round_robin(1_000_000)
                    .expect("runs"),
            )
        });
    });
}

criterion_group!(benches, bench_solver, bench_unify, bench_interp);
criterion_main!(benches);
