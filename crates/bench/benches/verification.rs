//! Criterion benches: verification time per Figure 6 example (the paper's
//! `time` column).

use criterion::{criterion_group, criterion_main, Criterion};
use diaframe_examples::all_examples;

fn bench_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("verification");
    group.sample_size(10);
    for ex in all_examples() {
        group.bench_function(ex.name(), |b| {
            b.iter(|| {
                let outcome = ex.verify().expect("verifies");
                criterion::black_box(outcome.proofs.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_verification);
criterion_main!(benches);
