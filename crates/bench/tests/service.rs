//! End-to-end daemon tests: a `diaframe serve` instance over a Unix
//! socket, driven through the framed-JSON protocol by the library
//! client. Covers verify (single and batch), the deterministic verdict
//! table, stats, shutdown, and warm restarts against a shared store.
#![cfg(unix)]

use diaframe_bench::server::{serve, Client, Endpoint, ServerConfig};
use diaframe_bench::{verdict_table_for, SuiteCache, Variant};
use diaframe_core::trace_json::{parse_json_value, JsonValue};
use diaframe_examples::{all_examples, Example};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("diaframe-svc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Starts a daemon thread and blocks until its socket accepts.
fn start_daemon(socket: PathBuf, config: ServerConfig) -> std::thread::JoinHandle<()> {
    let endpoint = Endpoint::Unix(socket.clone());
    let handle = std::thread::spawn(move || {
        serve(&Endpoint::Unix(socket), &config).expect("daemon runs");
    });
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match Client::connect(&endpoint) {
            Ok(_) => return handle,
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("daemon never came up: {e}"),
        }
    }
}

fn call(endpoint: &Endpoint, body: &str) -> JsonValue {
    let mut client = Client::connect(endpoint).expect("connect");
    let response = client.call(body).expect("call");
    parse_json_value(&response).unwrap_or_else(|e| panic!("bad response {response:?}: {e}"))
}

fn shutdown(endpoint: &Endpoint, handle: std::thread::JoinHandle<()>) {
    let v = call(endpoint, "{\"op\":\"shutdown\"}");
    assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(v.get("stopping").and_then(JsonValue::as_bool), Some(true));
    handle.join().expect("daemon thread exits after shutdown");
}

const BATCH: [&str; 3] = ["fork_join_client", "barrier_client", "inc_dec"];

fn batch_request() -> String {
    let names: Vec<String> = BATCH.iter().map(|n| format!("\"{n}\"")).collect();
    format!("{{\"op\":\"verify\",\"examples\":[{}]}}", names.join(","))
}

#[test]
fn daemon_verifies_batches_and_restarts_warm() {
    let dir = tmp_dir("warm");
    let store_dir = dir.join("store");
    let config = ServerConfig {
        store_dir: Some(store_dir.clone()),
        budget: None,
        jobs: 2,
    };
    let socket = dir.join("daemon.sock");
    let endpoint = Endpoint::Unix(socket.clone());

    // The local reference table the daemon must reproduce byte-for-byte.
    let examples = all_examples();
    let picked: Vec<&dyn Example> = BATCH
        .iter()
        .map(|n| examples.iter().find(|e| e.name() == *n).unwrap().as_ref())
        .collect();
    let reference = SuiteCache::new();
    for ex in &picked {
        reference.get_or_run(*ex, Variant::Ok);
    }
    let reference_table = verdict_table_for(&reference, &picked);

    // Cold daemon: every verdict verified, nothing from the store.
    let handle = start_daemon(socket.clone(), config.clone());
    let v = call(&endpoint, &batch_request());
    assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true), "{v:?}");
    let results = v.get("results").and_then(JsonValue::as_array).unwrap();
    assert_eq!(results.len(), BATCH.len());
    for (name, row) in BATCH.iter().zip(results) {
        assert_eq!(row.get("example").and_then(JsonValue::as_str), Some(*name));
        assert_eq!(row.get("verdict").and_then(JsonValue::as_str), Some("verified"));
        assert_eq!(row.get("from_store").and_then(JsonValue::as_bool), Some(false));
    }
    assert_eq!(
        v.get("table").and_then(JsonValue::as_str),
        Some(reference_table.as_str()),
        "daemon table must equal the serial in-process table"
    );

    // Stats reflect the populated store.
    let stats = call(&endpoint, "{\"op\":\"stats\"}");
    assert_eq!(stats.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(
        stats.get("engine").and_then(JsonValue::as_str).map(str::len),
        Some(64)
    );
    let store_stats = stats.get("store").unwrap();
    assert_eq!(
        store_stats.get("entries").and_then(JsonValue::as_u64),
        Some(BATCH.len() as u64)
    );
    let counters = store_stats.get("counters").unwrap();
    assert_eq!(
        counters.get("misses").and_then(JsonValue::as_u64),
        Some(BATCH.len() as u64)
    );
    assert_eq!(counters.get("hits").and_then(JsonValue::as_u64), Some(0));
    shutdown(&endpoint, handle);

    // Restarted daemon, same store: the whole batch replays, the table
    // is still byte-identical.
    let handle = start_daemon(socket.clone(), config);
    let v = call(&endpoint, &batch_request());
    assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true), "{v:?}");
    for row in v.get("results").and_then(JsonValue::as_array).unwrap() {
        assert_eq!(row.get("verdict").and_then(JsonValue::as_str), Some("verified"));
        assert_eq!(
            row.get("from_store").and_then(JsonValue::as_bool),
            Some(true),
            "warm daemon must serve from the store: {row:?}"
        );
    }
    assert_eq!(
        v.get("table").and_then(JsonValue::as_str),
        Some(reference_table.as_str())
    );
    let stats = call(&endpoint, "{\"op\":\"stats\"}");
    let counters = stats.get("store").unwrap().get("counters").unwrap();
    assert_eq!(
        counters.get("hits").and_then(JsonValue::as_u64),
        Some(BATCH.len() as u64)
    );
    assert_eq!(counters.get("misses").and_then(JsonValue::as_u64), Some(0));
    shutdown(&endpoint, handle);
    assert!(!socket.exists(), "shutdown removes the socket file");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_rejects_bad_requests_and_keeps_serving() {
    let dir = tmp_dir("errors");
    let socket = dir.join("daemon.sock");
    let endpoint = Endpoint::Unix(socket.clone());
    let handle = start_daemon(
        socket,
        ServerConfig {
            store_dir: None,
            budget: None,
            jobs: 1,
        },
    );

    for (body, expect) in [
        ("{\"op\":\"frobnicate\"}", "unknown op"),
        ("not json", "does not parse"),
        ("{\"op\":\"verify\"}", "requires an"),
        (
            "{\"op\":\"verify\",\"examples\":[\"no_such_example\"]}",
            "unknown example",
        ),
        ("{\"op\":\"verify\",\"examples\":[7]}", "must be strings"),
    ] {
        let v = call(&endpoint, body);
        assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(false), "{body}");
        let error = v.get("error").and_then(JsonValue::as_str).unwrap_or("");
        assert!(error.contains(expect), "{body}: got {error:?}");
    }

    // Errors must not wedge the daemon: a good request still works, and
    // one connection can carry several requests back to back.
    let mut client = Client::connect(&endpoint).unwrap();
    for _ in 0..2 {
        let response = client
            .call("{\"op\":\"verify\",\"examples\":[\"inc_dec\"]}")
            .unwrap();
        let v = parse_json_value(&response).unwrap();
        assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true), "{v:?}");
    }
    drop(client);
    shutdown(&endpoint, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn storeless_daemon_serves_and_reports_null_store() {
    let dir = tmp_dir("storeless");
    let socket = dir.join("daemon.sock");
    let endpoint = Endpoint::Unix(socket.clone());
    let handle = start_daemon(
        socket,
        ServerConfig {
            store_dir: None,
            budget: None,
            jobs: 1,
        },
    );
    let v = call(&endpoint, "{\"op\":\"verify\",\"examples\":[\"spin_lock\"]}");
    assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true), "{v:?}");
    let stats = call(&endpoint, "{\"op\":\"stats\"}");
    assert_eq!(stats.get("store"), Some(&JsonValue::Null));
    shutdown(&endpoint, handle);
    let _ = std::fs::remove_dir_all(&dir);
}
