//! The profiler must be pure observability: installing a hierarchical
//! profile session (every span hook firing, every lane recording) cannot
//! change a single byte of any proof trace or rendered Figure 6 table.
//! On top of that, the span tree must *reconcile* with the flat
//! telemetry counters of the same run — two independent instrumentation
//! paths, one ledger — and the exported Chrome trace must pass the
//! structural validator (balanced begin/end, monotonic timestamps per
//! lane).
//!
//! The profiler switch is ambient (thread-local session, adopted by the
//! pool and speculation workers), so the tests serialize on a file-local
//! lock like `tests/speculation_identity.rs`.

use diaframe_bench::{
    figure6_rows, prefetch_suite, profile_identity_report, render_figure6, Measured, SuiteCache,
};
use diaframe_core::{profile, speculate, trace_json};
use diaframe_examples::all_examples;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

static CONFIG_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    CONFIG_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn zeroed(mut m: Measured) -> Measured {
    m.time = Duration::ZERO;
    m.check_time = Duration::ZERO;
    m.counters.check_overlap_ms = 0;
    m
}

/// The tentpole guarantee, example by example: verifying with a profile
/// session installed produces byte-identical proof-trace JSON to
/// verifying with no session at all, across the whole suite — and the
/// profiled runs really did record spans (the test would be vacuous
/// otherwise).
#[test]
fn profiling_on_and_off_traces_are_byte_identical() {
    let _lock = lock();
    let examples = all_examples();
    let session = profile::ProfileSession::new();
    let mut compared_proofs = 0usize;
    for ex in &examples {
        let off = ex
            .verify()
            .unwrap_or_else(|e| panic!("{} (profiling off): {e}", ex.name()));

        let guard = session.install();
        let on = ex.verify();
        drop(guard);
        let on = on.unwrap_or_else(|e| panic!("{} (profiling on): {e}", ex.name()));

        assert_eq!(
            off.proofs.len(),
            on.proofs.len(),
            "{}: proof count changed under the profiler",
            ex.name()
        );
        for (a, b) in off.proofs.iter().zip(&on.proofs) {
            assert_eq!(a.name, b.name, "{}", ex.name());
            assert_eq!(
                trace_json::trace_to_json(&a.trace),
                trace_json::trace_to_json(&b.trace),
                "{}/{}: trace JSON differs with profiling on",
                ex.name(),
                a.name
            );
            compared_proofs += 1;
        }
    }
    assert!(
        compared_proofs >= 24,
        "expected at least one proof per example, compared {compared_proofs}"
    );

    // Non-vacuity: the session was live across every profiled run.
    let rollup = session.rollup();
    assert!(
        rollup[profile::SpanKind::FindHint.index()].count > 0,
        "no hint probes were recorded — the identity test is vacuous"
    );
    assert!(rollup[profile::SpanKind::Search.index()].spans > 0);

    // The exported trace of the whole run must validate structurally.
    profile::validate_chrome_trace(&session.chrome_trace())
        .unwrap_or_else(|e| panic!("per-example profile trace fails validation: {e}"));
}

/// An ambient profile session around the whole parallel suite must not
/// change the rendered Figure 6 table (timings zeroed — the only
/// legitimate nondeterminism), and its span rollups must satisfy the
/// accounting identities against the suite's flat telemetry counters.
#[test]
fn suite_tables_unaffected_by_profiling_and_rollups_reconcile() {
    let _lock = lock();
    // Speculation off for the *row comparison*: a cancelled worker's
    // wasted-probe count is scheduling-dependent, so effort counters
    // legitimately vary run to run (see tests/telemetry.rs). The
    // identity-report leg below re-enables it — the whole point of the
    // `spec_wasted_probes` term is to reconcile under speculation.
    speculate::force_disable(true);
    let plain = SuiteCache::new();
    prefetch_suite(&plain, 2, false);

    let profile = profile::ProfileSession::new();
    let guard = profile.install();
    let profiled = SuiteCache::new();
    prefetch_suite(&profiled, 2, false);
    drop(guard);
    speculate::force_disable(false);

    let a: Vec<Measured> = figure6_rows(&plain).into_iter().map(zeroed).collect();
    let b: Vec<Measured> = figure6_rows(&profiled).into_iter().map(zeroed).collect();
    assert_eq!(a, b, "rows (counters included) must not depend on an ambient profiler");
    assert_eq!(render_figure6(&a), render_figure6(&b), "tables must be byte-identical");

    // The span tree and the flat counters are two instrumentation paths
    // over the same run; the asserted identities must hold exactly.
    let report = profile_identity_report(&profile, &profiled)
        .unwrap_or_else(|e| panic!("profile/telemetry accounting identity violated: {e}"));
    assert!(report.contains("profile identity ok"));

    // The structural validator accepts the suite-wide trace, and the
    // folded stacks cover the span kinds the suite must exercise.
    let (events, lanes) = profile::validate_chrome_trace(&profile.chrome_trace())
        .unwrap_or_else(|e| panic!("suite profile trace fails validation: {e}"));
    assert!(events > 0 && lanes >= 2, "suite trace too small: {events} events, {lanes} lanes");
    // Folded frames are `kind:label`; spans with <1µs self time are
    // dropped, so only the macroscopic kinds are guaranteed a line.
    let folded = profile.folded_stacks();
    for kind in ["verify:", "search"] {
        assert!(folded.contains(kind), "folded stacks missing {kind:?}");
    }
}
