//! Store concurrency: racing lookups of the same spec share one search
//! (single-flight), parallel batches produce byte-identical verdict
//! tables to serial runs, and LRU eviction under concurrent readers
//! never surfaces a half-written or torn entry.

use diaframe_bench::{verdict_table_for, ProofStore, SuiteCache, Variant};
use diaframe_core::run_ordered;
use diaframe_examples::{all_examples, Example};
use std::path::PathBuf;
use std::sync::{Arc, Barrier};

fn tmp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("diaframe-conc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn pick<'a>(examples: &'a [Box<dyn Example>], names: &[&str]) -> Vec<&'a dyn Example> {
    names
        .iter()
        .map(|n| {
            examples
                .iter()
                .find(|e| e.name() == *n)
                .unwrap_or_else(|| panic!("example {n}"))
                .as_ref()
        })
        .collect()
}

#[test]
fn same_spec_race_shares_one_search() {
    let dir = tmp_store("race");
    let store = Arc::new(ProofStore::open(&dir, None).unwrap());
    const THREADS: usize = 8;
    let barrier = Arc::new(Barrier::new(THREADS));
    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let store = Arc::clone(&store);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let examples = all_examples();
            let ex = examples.iter().find(|e| e.name() == "spin_lock").unwrap().as_ref();
            barrier.wait();
            let run = store.get_or_run(ex, Variant::Ok);
            let outcome = run.outcome.as_ref().unwrap().as_ref().unwrap();
            format!("{:?}", outcome.proofs.iter().map(|p| &p.trace).collect::<Vec<_>>())
        }));
    }
    let rendered: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let stats = store.stats();
    assert_eq!(
        stats.misses, 1,
        "all {THREADS} racers must share the single in-flight search"
    );
    // Racers that arrived after the winner published may hit the disk
    // entry instead of the in-flight cell; either way nobody searched
    // twice and everybody saw the same traces.
    assert!(stats.hits < THREADS as u64);
    for r in &rendered[1..] {
        assert_eq!(r, &rendered[0], "every racer sees identical traces");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parallel_batch_matches_serial_byte_for_byte() {
    let examples = all_examples();
    let batch = pick(
        &examples,
        &[
            "fork_join_client",
            "barrier_client",
            "cas_counter_client",
            "ticket_lock_client",
            "inc_dec",
            "spin_lock",
        ],
    );

    // Serial, storeless reference.
    let serial = SuiteCache::new();
    for ex in &batch {
        serial.get_or_run(*ex, Variant::Ok);
    }
    let reference = verdict_table_for(&serial, &batch);

    // Cold store-backed batch across a pool.
    let dir = tmp_store("batch");
    let store = Arc::new(ProofStore::open(&dir, None).unwrap());
    let cold_cache = SuiteCache::with_store(Arc::clone(&store));
    let runs = run_ordered(&batch, 4, |_, ex| cold_cache.get_or_run(*ex, Variant::Ok));
    assert!(runs.iter().all(Result::is_ok));
    assert_eq!(
        verdict_table_for(&cold_cache, &batch),
        reference,
        "store-backed parallel batch must render the serial table"
    );

    // Warm replayed batch across the same pool.
    let warm_cache = SuiteCache::with_store(Arc::clone(&store));
    let runs = run_ordered(&batch, 4, |_, ex| warm_cache.get_or_run(*ex, Variant::Ok));
    for run in &runs {
        assert!(run.as_ref().unwrap().from_store, "warm batch must replay");
    }
    assert_eq!(
        verdict_table_for(&warm_cache, &batch),
        reference,
        "replayed batch must render the serial table"
    );
    assert_eq!(store.stats().misses, batch.len() as u64);
    assert_eq!(store.stats().hits, batch.len() as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn eviction_under_concurrent_readers_never_tears() {
    let examples = all_examples();
    let names = ["fork_join_client", "barrier_client", "cas_counter_client"];

    // Budget ≈ one entry: every insert evicts someone, so readers race
    // unlink/rename constantly.
    let dir = tmp_store("evict-probe");
    let budget = {
        let probe = ProofStore::open(&dir, None).unwrap();
        let ex = pick(&examples, &names[..1])[0];
        probe.get_or_run(ex, Variant::Ok);
        probe.total_bytes() + probe.total_bytes() / 4
    };
    let _ = std::fs::remove_dir_all(&dir);

    let dir = tmp_store("evict");
    let store = Arc::new(ProofStore::open(&dir, Some(budget)).unwrap());
    const THREADS: usize = 4;
    const ROUNDS: usize = 6;
    let barrier = Arc::new(Barrier::new(THREADS));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let store = Arc::clone(&store);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let examples = all_examples();
            barrier.wait();
            for round in 0..ROUNDS {
                // Stagger the rotation per thread so inserts and reads
                // of different keys interleave.
                let name = ["fork_join_client", "barrier_client", "cas_counter_client"]
                    [(t + round) % 3];
                let ex = examples.iter().find(|e| e.name() == name).unwrap().as_ref();
                let run = store.get_or_run(ex, Variant::Ok);
                let outcome = run
                    .outcome
                    .as_ref()
                    .unwrap_or_else(|| panic!("{name}: missing outcome"))
                    .as_ref()
                    .unwrap_or_else(|e| panic!("{name}: verification failed under eviction: {e}"));
                assert!(!outcome.proofs.is_empty(), "{name}");
            }
        }));
    }
    for h in handles {
        h.join().expect("no reader may panic");
    }
    let stats = store.stats();
    assert!(stats.evictions > 0, "the budget must have forced evictions");
    assert_eq!(
        stats.corruptions, 0,
        "evictions must read as clean misses (whole-file unlink), never as torn entries"
    );
    assert!(store.total_bytes() <= budget);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn distinct_specs_verify_concurrently() {
    let dir = tmp_store("distinct");
    let store = Arc::new(ProofStore::open(&dir, None).unwrap());
    let examples = all_examples();
    let batch = pick(
        &examples,
        &["fork_join_client", "barrier_client", "cas_counter_client", "inc_dec"],
    );
    let runs = run_ordered(&batch, batch.len(), |_, ex| {
        store.get_or_run(*ex, Variant::Ok)
    });
    for (ex, run) in batch.iter().zip(&runs) {
        let run = run.as_ref().expect("no panic");
        assert!(run.outcome.as_ref().unwrap().is_ok(), "{}", ex.name());
    }
    assert_eq!(store.stats().misses, batch.len() as u64);
    assert_eq!(store.len(), batch.len(), "every spec landed its own entry");
    let _ = std::fs::remove_dir_all(&dir);
}
