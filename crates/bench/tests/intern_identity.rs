//! The hash-consing interner must be a pure accelerator: running the
//! search with the term arena and its zonk/normalize/pure-entailment
//! memos active must produce byte-identical proof traces to the legacy
//! structural path, example by example, across the whole Figure 6
//! suite. This is the same guarantee the soundness-fuzzing oracle
//! demands of its codecs — exercised here on the real examples.

use diaframe_core::trace_json;
use diaframe_examples::all_examples;
use diaframe_term::intern;

/// Verifies every Figure 6 example twice — interner on, then forced
/// off — and demands byte-identical trace JSON from both runs. The
/// interned traces are also replayed through the independent checker
/// from their JSON form, so the comparison covers the exact bytes a
/// `--json-out` consumer would see.
#[test]
fn interned_and_structural_traces_are_byte_identical() {
    let examples = all_examples();
    let mut compared_proofs = 0usize;
    for ex in &examples {
        let interned = ex
            .verify()
            .unwrap_or_else(|e| panic!("{} (intern on): {e}", ex.name()));

        // Process-global switch: any example verified concurrently by
        // another test in this binary simply runs structurally too,
        // which is exactly the equivalence under test.
        intern::force_disable(true);
        let structural = ex.verify();
        intern::force_disable(false);
        let structural =
            structural.unwrap_or_else(|e| panic!("{} (intern off): {e}", ex.name()));

        assert_eq!(
            interned.manual_steps,
            structural.manual_steps,
            "{}: manual-step count changed",
            ex.name()
        );
        assert_eq!(
            interned.proofs.len(),
            structural.proofs.len(),
            "{}: proof count changed",
            ex.name()
        );
        for (a, b) in interned.proofs.iter().zip(&structural.proofs) {
            assert_eq!(a.name, b.name, "{}", ex.name());
            let ja = trace_json::trace_to_json(&a.trace);
            let jb = trace_json::trace_to_json(&b.trace);
            assert_eq!(
                ja,
                jb,
                "{}/{}: trace JSON differs between interned and structural runs",
                ex.name(),
                a.name
            );
            diaframe_core::checker::check_json(&ja).unwrap_or_else(|e| {
                panic!("{}/{}: interned trace fails replay: {e}", ex.name(), a.name)
            });
            compared_proofs += 1;
        }
    }
    assert!(
        compared_proofs >= 24,
        "expected at least one proof per example, compared {compared_proofs}"
    );
}
