//! The incremental e-graph solver must be a pure accelerator: running
//! the search with the persistent backtrackable solver active must
//! produce byte-identical proof traces to the rebuild-per-query legacy
//! path (the `DIAFRAME_EGRAPH=off` escape hatch), example by example,
//! across the whole Figure 6 suite.

use diaframe_core::trace_json;
use diaframe_examples::all_examples;
use diaframe_term::solver::egraph;

/// Verifies every Figure 6 example twice — e-graph on, then forced off —
/// and demands byte-identical trace JSON from both runs. The e-graph
/// traces are also replayed through the independent checker from their
/// JSON form (which itself exercises the per-frame incremental replay
/// solver), so the comparison covers the exact bytes a `--json-out`
/// consumer would see.
#[test]
fn egraph_and_rebuild_traces_are_byte_identical() {
    let examples = all_examples();
    let mut compared_proofs = 0usize;
    for ex in &examples {
        let incremental = ex
            .verify()
            .unwrap_or_else(|e| panic!("{} (egraph on): {e}", ex.name()));

        // Process-global switch: any example verified concurrently by
        // another test in this binary simply runs on the rebuild path
        // too, which is exactly the equivalence under test.
        egraph::force_disable(true);
        let rebuild = ex.verify();
        egraph::force_disable(false);
        let rebuild = rebuild.unwrap_or_else(|e| panic!("{} (egraph off): {e}", ex.name()));

        assert_eq!(
            incremental.manual_steps,
            rebuild.manual_steps,
            "{}: manual-step count changed",
            ex.name()
        );
        assert_eq!(
            incremental.proofs.len(),
            rebuild.proofs.len(),
            "{}: proof count changed",
            ex.name()
        );
        for (a, b) in incremental.proofs.iter().zip(&rebuild.proofs) {
            assert_eq!(a.name, b.name, "{}", ex.name());
            let ja = trace_json::trace_to_json(&a.trace);
            let jb = trace_json::trace_to_json(&b.trace);
            assert_eq!(
                ja,
                jb,
                "{}/{}: trace JSON differs between e-graph and rebuild runs",
                ex.name(),
                a.name
            );
            diaframe_core::checker::check_json(&ja).unwrap_or_else(|e| {
                panic!("{}/{}: e-graph trace fails replay: {e}", ex.name(), a.name)
            });
            compared_proofs += 1;
        }
    }
    assert!(
        compared_proofs >= 24,
        "expected at least one proof per example, compared {compared_proofs}"
    );
}
