//! Intra-verification parallelism must be a pure accelerator: running
//! the search with speculative branch workers (and with the pipelined
//! checker in either of its modes) must produce byte-identical proof
//! traces and Figure 6 tables to the serial path, example by example,
//! across the whole suite. Only wall-clock attribution and the `spec_*`
//! effort counters may move.
//!
//! Both switches are process-global (`speculate::force_disable`, the
//! pipeline overrides), so the two tests serialize on a file-local lock
//! rather than trampling each other's configuration mid-run.

use diaframe_bench::{figure6_rows, prefetch_suite, render_figure6, Measured, SuiteCache};
use diaframe_core::{speculate, trace_json, verify, CounterSnapshot, TelemetrySession};
use diaframe_examples::all_examples;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

static CONFIG_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    CONFIG_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Verifies every Figure 6 example twice — speculation allowed under a
/// generous budget, then forced serial — and demands byte-identical
/// trace JSON from both runs. The speculative traces are also replayed
/// through the independent checker from their JSON form, so the
/// comparison covers the exact bytes a `--json-out` consumer would see.
/// The telemetry session pins that speculation actually fired (the test
/// would be vacuous otherwise) and that every spawn was resolved
/// (`spec_spawned == spec_won + spec_cancelled`).
#[test]
fn speculative_and_serial_traces_are_byte_identical() {
    let _lock = lock();
    let examples = all_examples();
    let session = TelemetrySession::new("speculation-identity");
    let mut compared_proofs = 0usize;
    for ex in &examples {
        // A budget well above the split fan-out: every 2-way case split
        // may speculate, maximizing the surface compared below.
        let budget = diaframe_core::budget_scope(8);
        let guard = session.install();
        let speculative = ex.verify();
        drop(guard);
        drop(budget);
        let speculative =
            speculative.unwrap_or_else(|e| panic!("{} (speculative): {e}", ex.name()));

        speculate::force_disable(true);
        let serial = ex.verify();
        speculate::force_disable(false);
        let serial = serial.unwrap_or_else(|e| panic!("{} (serial): {e}", ex.name()));

        assert_eq!(
            speculative.manual_steps,
            serial.manual_steps,
            "{}: manual-step count changed",
            ex.name()
        );
        assert_eq!(
            speculative.proofs.len(),
            serial.proofs.len(),
            "{}: proof count changed",
            ex.name()
        );
        for (a, b) in speculative.proofs.iter().zip(&serial.proofs) {
            assert_eq!(a.name, b.name, "{}", ex.name());
            let ja = trace_json::trace_to_json(&a.trace);
            let jb = trace_json::trace_to_json(&b.trace);
            assert_eq!(
                ja,
                jb,
                "{}/{}: trace JSON differs between speculative and serial search",
                ex.name(),
                a.name
            );
            diaframe_core::checker::check_json(&ja).unwrap_or_else(|e| {
                panic!("{}/{}: speculative trace fails replay: {e}", ex.name(), a.name)
            });
            compared_proofs += 1;
        }
    }
    assert!(
        compared_proofs >= 24,
        "expected at least one proof per example, compared {compared_proofs}"
    );

    session.flush();
    let snap = session.snapshot();
    assert!(
        snap.spec_spawned > 0,
        "no speculation fired across the whole suite — the identity test is vacuous"
    );
    snap.check_invariants()
        .unwrap_or_else(|e| panic!("speculation counters violate invariants: {e}"));
}

fn zeroed(mut m: Measured) -> Measured {
    m.time = Duration::ZERO;
    m.check_time = Duration::ZERO;
    m.counters.check_overlap_ms = 0;
    m
}

fn scrubbed(mut m: Measured) -> Measured {
    m = zeroed(m);
    m.counters = CounterSnapshot::default();
    m
}

fn rows_with_pipeline(check: Option<bool>, frames: Option<bool>) -> Vec<Measured> {
    verify::override_pipeline_check(check);
    verify::override_pipeline_frames(frames);
    let cache = SuiteCache::new();
    prefetch_suite(&cache, 2, true);
    verify::override_pipeline_check(None);
    verify::override_pipeline_frames(None);
    figure6_rows(&cache)
}

/// The pipelined checker — per-spec trace streaming and the
/// frame-streaming mode — must leave every Figure 6 row untouched.
///
/// Per-spec pipelining vs the serial check is compared on *full* rows
/// (every counter included, timings zeroed): the consumer replays the
/// same proofs under the same kind of fresh interner scope, so nothing
/// but wall-clock may move. The frames mode replays all of a run's step
/// windows inside one long-lived interner scope (deliberately, for
/// cache reuse), which legitimately shifts interner effort counters —
/// so it is compared on rows with counters scrubbed plus the rendered
/// table, which pins names, line counts, manual steps, hints and spec
/// counts byte-for-byte.
#[test]
fn pipelined_checking_leaves_tables_byte_identical() {
    let _lock = lock();
    // Speculation off throughout: its effort counters depend on permit
    // availability (see tests/driver_equivalence.rs); this test isolates
    // the pipeline switches.
    speculate::force_disable(true);
    let piped = rows_with_pipeline(Some(true), None);
    let serial = rows_with_pipeline(Some(false), None);
    let frames = rows_with_pipeline(Some(true), Some(true));
    speculate::force_disable(false);

    let piped_rows: Vec<Measured> = piped.into_iter().map(zeroed).collect();
    let serial_rows: Vec<Measured> = serial.into_iter().map(zeroed).collect();
    assert_eq!(
        piped_rows, serial_rows,
        "per-spec pipelined rows must match serially-checked rows, counters included"
    );
    assert_eq!(
        render_figure6(&piped_rows),
        render_figure6(&serial_rows),
        "rendered tables must be byte-identical"
    );

    let frames_rows: Vec<Measured> = frames.into_iter().map(scrubbed).collect();
    let base_rows: Vec<Measured> = serial_rows.into_iter().map(scrubbed).collect();
    assert_eq!(
        frames_rows, base_rows,
        "frame-streamed rows must match serially-checked rows"
    );
    assert_eq!(
        render_figure6(&frames_rows),
        render_figure6(&base_rows),
        "rendered tables must be byte-identical under frame streaming"
    );
}
