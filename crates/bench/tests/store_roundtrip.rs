//! Proof-store round trips: a miss searches and persists, a later lookup
//! — same process or a "restarted" one (a fresh [`ProofStore`] handle) —
//! replays the entry through the independent checker and reproduces the
//! original outcome exactly.

use diaframe_bench::{store_key, ProofStore, SuiteCache, Variant};
use diaframe_core::{current_ablation, Ablation};
use diaframe_examples::{all_examples, Example, ExampleOutcome};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("diaframe-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn outcome_of(run: &diaframe_bench::CachedRun) -> &ExampleOutcome {
    run.outcome
        .as_ref()
        .expect("variant exists")
        .as_ref()
        .expect("verification succeeds")
}

/// A stable rendering of everything the harness derives from an outcome.
fn rendered(outcome: &ExampleOutcome) -> String {
    let mut out = format!(
        "manual={} hints={:?} custom={:?}\n",
        outcome.manual_steps,
        outcome.hints_used(),
        outcome.custom_hints_used()
    );
    for proof in &outcome.proofs {
        out.push_str(&format!("{}: {:?}\n", proof.name, proof.trace));
    }
    out
}

#[test]
fn miss_searches_then_hits_replay_identically() {
    let examples = all_examples();
    let ex = examples
        .iter()
        .find(|e| e.name() == "spin_lock")
        .expect("spin_lock example")
        .as_ref();
    let dir = tmp_store("roundtrip");

    let store = ProofStore::open(&dir, None).unwrap();
    let cold = store.get_or_run(ex, Variant::Ok);
    assert!(!cold.from_store, "first lookup must search");
    assert_eq!(store.stats().misses, 1);
    assert_eq!(store.stats().hits, 0);
    assert_eq!(store.len(), 1);
    assert!(store.total_bytes() > 0);
    // The run's own telemetry counters carry the store events.
    assert_eq!(cold.counters.store_misses, 1);
    assert_eq!(cold.counters.store_hits, 0);

    // Same handle, second lookup: the single-flight cell is gone, so
    // this goes back to disk and replays.
    let warm = store.get_or_run(ex, Variant::Ok);
    assert!(warm.from_store, "second lookup must replay from disk");
    assert_eq!(store.stats().hits, 1);
    assert_eq!(warm.counters.store_hits, 1);
    assert_eq!(
        warm.search_time,
        std::time::Duration::ZERO,
        "a hit performs no search"
    );
    assert_eq!(rendered(outcome_of(&cold)), rendered(outcome_of(&warm)));

    // A fresh handle over the same directory — a daemon restart — must
    // hit the persisted entry.
    drop(store);
    let reopened = ProofStore::open(&dir, None).unwrap();
    assert_eq!(reopened.len(), 1, "index survives reopen");
    let restarted = reopened.get_or_run(ex, Variant::Ok);
    assert!(restarted.from_store);
    assert_eq!(reopened.stats().hits, 1);
    assert_eq!(reopened.stats().misses, 0);
    assert_eq!(rendered(outcome_of(&cold)), rendered(outcome_of(&restarted)));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn broken_variant_bypasses_the_store() {
    let examples = all_examples();
    let ex = examples
        .iter()
        .find(|e| e.verify_broken().is_some())
        .expect("an example with a broken variant")
        .as_ref();
    let dir = tmp_store("broken");
    let store = ProofStore::open(&dir, None).unwrap();
    let run = store.get_or_run(ex, Variant::Broken);
    assert!(!run.from_store);
    assert_eq!(
        store.stats(),
        diaframe_bench::StoreStats::default(),
        "broken variants must not touch the hit/miss ledger"
    );
    assert_eq!(store.len(), 0, "rejections are never persisted");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_key_separates_every_input() {
    let examples = all_examples();
    let a = examples[0].as_ref();
    let b = examples[1].as_ref();
    let ablation = current_ablation();
    let base = store_key(a, Variant::Ok, ablation);
    assert_eq!(base.len(), 64);
    assert_ne!(base, store_key(b, Variant::Ok, ablation), "examples");
    assert_ne!(base, store_key(a, Variant::Broken, ablation), "variants");
    let flipped = Ablation {
        oldest_first: !ablation.oldest_first,
        ..ablation
    };
    assert_ne!(base, store_key(a, Variant::Ok, flipped), "ablations");
    // Deterministic within a configuration.
    assert_eq!(base, store_key(a, Variant::Ok, ablation));
}

#[test]
fn index_is_an_optimization_not_a_source_of_truth() {
    let examples = all_examples();
    let ex = examples
        .iter()
        .find(|e| e.name() == "inc_dec")
        .expect("inc_dec example")
        .as_ref();
    let dir = tmp_store("heal");
    {
        let store = ProofStore::open(&dir, None).unwrap();
        store.get_or_run(ex, Variant::Ok);
    }
    // Losing the index must not lose the entries: reopen rebuilds it by
    // scanning the objects directory.
    std::fs::remove_file(dir.join("index.json")).unwrap();
    {
        let store = ProofStore::open(&dir, None).unwrap();
        assert_eq!(store.len(), 1, "index rebuilt from objects");
        assert!(store.get_or_run(ex, Variant::Ok).from_store);
    }
    // Losing an entry behind the index's back must demote to a plain
    // miss (and repair), not an error.
    let key = store_key(ex, Variant::Ok, current_ablation());
    {
        let store = ProofStore::open(&dir, None).unwrap();
        std::fs::remove_file(store.entry_path(&key)).unwrap();
        let run = store.get_or_run(ex, Variant::Ok);
        assert!(!run.from_store);
        assert_eq!(store.stats().misses, 1);
        assert_eq!(store.stats().corruptions, 0, "a vanished file is a miss, not corruption");
        assert!(store.entry_path(&key).exists(), "entry re-inserted");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lru_eviction_respects_the_byte_budget() {
    let examples = all_examples();
    let names = ["fork_join_client", "barrier_client", "cas_counter_client"];
    let picked: Vec<&dyn Example> = names
        .iter()
        .map(|n| {
            examples
                .iter()
                .find(|e| e.name() == *n)
                .unwrap_or_else(|| panic!("example {n}"))
                .as_ref()
        })
        .collect();
    let dir = tmp_store("lru");
    // Learn one entry's size, then budget for roughly two of them.
    let budget = {
        let probe = ProofStore::open(&dir, None).unwrap();
        probe.get_or_run(picked[0], Variant::Ok);
        probe.total_bytes() * 2 + probe.total_bytes() / 2
    };
    let _ = std::fs::remove_dir_all(&dir);

    let store = ProofStore::open(&dir, Some(budget)).unwrap();
    for ex in &picked {
        store.get_or_run(*ex, Variant::Ok);
    }
    assert!(
        store.stats().evictions > 0,
        "three entries cannot fit a two-entry budget"
    );
    assert!(store.total_bytes() <= budget, "sweep enforces the budget");
    assert!(store.len() < picked.len());
    // The oldest entry was the victim; the newest must still hit.
    let newest = store.get_or_run(picked[2], Variant::Ok);
    assert!(newest.from_store);
    // Every lookup still verifies, evicted or not.
    for ex in &picked {
        let run = store.get_or_run(*ex, Variant::Ok);
        assert!(run.outcome.as_ref().unwrap().is_ok(), "{}", ex.name());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn suite_cache_memoizes_in_front_of_the_store() {
    let examples = all_examples();
    let ex = examples
        .iter()
        .find(|e| e.name() == "ticket_lock_client")
        .expect("ticket_lock_client example")
        .as_ref();
    let dir = tmp_store("suitecache");
    let store = Arc::new(ProofStore::open(&dir, None).unwrap());

    let cache = SuiteCache::with_store(Arc::clone(&store));
    let first = cache.get_or_run(ex, Variant::Ok);
    let second = cache.get_or_run(ex, Variant::Ok);
    assert!(Arc::ptr_eq(&first, &second), "second lookup is memoized in memory");
    assert_eq!(store.stats().misses, 1);
    assert_eq!(store.stats().hits, 0, "memoized lookups never reach the store");

    // A fresh cache over the same store replays from disk.
    let fresh = SuiteCache::with_store(Arc::clone(&store));
    let replayed = fresh.get_or_run(ex, Variant::Ok);
    assert!(replayed.from_store);
    assert_eq!(store.stats().hits, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
