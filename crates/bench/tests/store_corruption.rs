//! Store robustness: a corrupted entry — truncated, bit-flipped,
//! replaced with garbage, or structurally damaged behind a valid
//! checksum — must be *detected* (counted as a corruption), *demoted* to
//! a miss, and *repaired* by the re-search. It must never change a
//! verdict and never panic.

use diaframe_bench::{store_key, ProofStore, Variant};
use diaframe_core::{current_ablation, sha256_hex};
use diaframe_examples::all_examples;
use std::path::{Path, PathBuf};

fn tmp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("diaframe-corrupt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Populates a fresh store with `name`'s entry and returns the rendered
/// reference outcome plus the entry's path and key.
fn populate(dir: &Path, name: &str) -> (String, PathBuf, String) {
    let examples = all_examples();
    let ex = examples.iter().find(|e| e.name() == name).unwrap().as_ref();
    let store = ProofStore::open(dir, None).unwrap();
    let run = store.get_or_run(ex, Variant::Ok);
    let reference = render(&run);
    let key = store_key(ex, Variant::Ok, current_ablation());
    let path = store.entry_path(&key);
    assert!(path.exists());
    (reference, path, key)
}

fn render(run: &diaframe_bench::CachedRun) -> String {
    let outcome = run.outcome.as_ref().unwrap().as_ref().unwrap();
    let mut out = format!("manual={}\n", outcome.manual_steps);
    for proof in &outcome.proofs {
        out.push_str(&format!("{}: {:?}\n", proof.name, proof.trace));
    }
    out
}

/// The shared scenario: corrupt the entry with `damage`, then assert the
/// lookup detects it, still verifies correctly, repairs the file, and a
/// final fresh lookup hits cleanly.
fn assert_detected_demoted_repaired(tag: &str, damage: impl Fn(&PathBuf)) {
    let dir = tmp_store(tag);
    let (reference, path, _key) = populate(&dir, "spin_lock");
    damage(&path);

    let examples = all_examples();
    let ex = examples.iter().find(|e| e.name() == "spin_lock").unwrap().as_ref();

    // Detected + demoted: the damaged entry reads as one corruption and
    // one miss, and the verdict is the re-searched (correct) one.
    let store = ProofStore::open(&dir, None).unwrap();
    let run = store.get_or_run(ex, Variant::Ok);
    assert!(!run.from_store, "{tag}: corrupt entry must not serve a hit");
    let stats = store.stats();
    assert_eq!(stats.corruptions, 1, "{tag}: corruption must be counted");
    assert_eq!(stats.misses, 1, "{tag}: corruption demotes to a miss");
    assert_eq!(stats.hits, 0, "{tag}");
    assert_eq!(run.counters.store_corruptions, 1, "{tag}: telemetry counter");
    assert_eq!(render(&run), reference, "{tag}: verdict must not change");

    // Repaired: the re-search re-inserted a good entry, so a fresh
    // handle replays it cleanly.
    drop(store);
    let healed = ProofStore::open(&dir, None).unwrap();
    let replay = healed.get_or_run(ex, Variant::Ok);
    assert!(replay.from_store, "{tag}: repaired entry must hit");
    assert_eq!(healed.stats().corruptions, 0, "{tag}");
    assert_eq!(render(&replay), reference, "{tag}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_entry_is_detected_demoted_repaired() {
    assert_detected_demoted_repaired("truncate", |path| {
        let bytes = std::fs::read(path).unwrap();
        std::fs::write(path, &bytes[..bytes.len() / 2]).unwrap();
    });
}

#[test]
fn bit_flip_in_payload_is_detected() {
    assert_detected_demoted_repaired("bitflip", |path| {
        let mut bytes = std::fs::read(path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(path, bytes).unwrap();
    });
}

#[test]
fn bit_flip_in_checksum_is_detected() {
    assert_detected_demoted_repaired("sumflip", |path| {
        let mut bytes = std::fs::read(path).unwrap();
        // Offset 14 is inside the 64-hex checksum of the fixed envelope
        // `{"checksum":"…`.
        bytes[14] = if bytes[14] == b'0' { b'1' } else { b'0' };
        std::fs::write(path, bytes).unwrap();
    });
}

#[test]
fn garbage_entry_is_detected() {
    assert_detected_demoted_repaired("garbage", |path| {
        std::fs::write(path, "this is not an entry at all").unwrap();
    });
}

#[test]
fn empty_entry_is_detected() {
    assert_detected_demoted_repaired("empty", |path| {
        std::fs::write(path, "").unwrap();
    });
}

#[test]
fn valid_checksum_over_undecodable_bundle_is_detected() {
    // The checksum only guards byte integrity; structural damage behind
    // a recomputed checksum must still die in the decoder, not panic or
    // serve a bogus outcome.
    assert_detected_demoted_repaired("badbundle", |path| {
        let text = std::fs::read_to_string(path).unwrap();
        let payload_start = text.find(",\"payload\":").unwrap() + ",\"payload\":".len();
        let payload = &text[payload_start..text.len() - 1];
        // Point the first varctx row at itself (a forward reference the
        // decoder must reject).
        let broken = payload.replacen("\"base\":null", "\"base\":0", 1);
        assert_ne!(&broken, payload, "fixture must actually damage the bundle");
        std::fs::write(
            path,
            format!(
                "{{\"checksum\":\"{}\",\"payload\":{broken}}}",
                sha256_hex(broken.as_bytes())
            ),
        )
        .unwrap();
    });
}

#[test]
fn entry_for_the_wrong_key_is_detected() {
    // Copy inc_dec's (valid!) entry over spin_lock's address: the
    // checksum passes, the bundle decodes, but the key binding fails —
    // a content-addressed store must never serve another spec's proof.
    let dir = tmp_store("wrongkey");
    let (_, donor_path, _) = populate(&dir, "inc_dec");
    let donor = std::fs::read(&donor_path).unwrap();
    assert_detected_demoted_repaired("wrongkey-inner", move |path| {
        std::fs::write(path, &donor).unwrap();
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_file_is_removed_even_before_repair() {
    // The demotion deletes the bad file immediately, so even if the
    // re-insert failed the poisoned bytes would be gone.
    let dir = tmp_store("unlink");
    let (_, path, _) = populate(&dir, "spin_lock");
    std::fs::write(&path, "garbage").unwrap();
    let examples = all_examples();
    let ex = examples.iter().find(|e| e.name() == "spin_lock").unwrap().as_ref();
    let store = ProofStore::open(&dir, None).unwrap();
    let _ = store.get_or_run(ex, Variant::Ok);
    let bytes = std::fs::read_to_string(&path).unwrap();
    assert!(
        bytes.starts_with("{\"checksum\":\""),
        "the re-inserted entry replaced the garbage"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
