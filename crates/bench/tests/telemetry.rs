//! Telemetry must be a pure side channel: enabling it cannot change a
//! single byte of any proof trace or rendered table, its counters must
//! satisfy their accounting identities on the real suite, and the
//! exported trace JSON must replay through the independent checker.

use diaframe_bench::{figure6_json, figure6_rows, prefetch_suite, render_figure6, Measured, SuiteCache};
use diaframe_core::{trace_json, TelemetrySession};
use diaframe_examples::all_examples;
use std::time::Duration;

fn zeroed(mut m: Measured) -> Measured {
    m.time = Duration::ZERO;
    m.check_time = Duration::ZERO;
    // The pipelined-checking overlap is wall-clock, like the two timings.
    m.counters.check_overlap_ms = 0;
    m
}

/// The tentpole guarantee: verifying with a telemetry session installed
/// (counters live, every hook firing) produces byte-identical proof
/// traces to verifying with no session at all.
#[test]
fn telemetry_on_and_off_traces_are_byte_identical() {
    let examples = all_examples();
    let mut compared = 0usize;
    for ex in examples.iter().take(4) {
        let off = ex
            .verify()
            .unwrap_or_else(|e| panic!("{} (telemetry off): {e}", ex.name()));

        let session = TelemetrySession::new(ex.name());
        let guard = session.install();
        let on = ex.verify();
        drop(guard);
        let on = on.unwrap_or_else(|e| panic!("{} (telemetry on): {e}", ex.name()));

        assert_eq!(off.proofs.len(), on.proofs.len(), "{}", ex.name());
        for (a, b) in off.proofs.iter().zip(&on.proofs) {
            assert_eq!(a.name, b.name, "{}", ex.name());
            assert_eq!(
                format!("{:?}", a.trace),
                format!("{:?}", b.trace),
                "{}: trace differs with telemetry on",
                ex.name()
            );
        }
        // …and the session really was live: the hooks counted.
        let snap = session.snapshot();
        assert!(snap.probes_attempted > 0, "{}: no probes counted", ex.name());
        assert!(snap.rule_applications() > 0, "{}: no steps counted", ex.name());
        snap.check_invariants()
            .unwrap_or_else(|e| panic!("{}: {e}", ex.name()));
        compared += 1;
    }
    assert!(compared >= 3);
}

/// An ambient session around the whole parallel suite must not change
/// the rendered Figure 6 table (timings zeroed — the only legitimate
/// nondeterminism) or the suite's counter accounting.
#[test]
fn suite_tables_unaffected_by_telemetry() {
    // Speculation off: a speculative worker searches on cold caches and
    // a cancelled one's wasted-probe count is scheduling-dependent, so
    // the *effort* counters legitimately vary run to run once the pool
    // tail starts speculating. This test isolates the telemetry switch;
    // `tests/speculation_identity.rs` pins the speculative mode's own
    // guarantee (traces and tables byte-identical).
    diaframe_core::speculate::force_disable(true);
    let plain = SuiteCache::new();
    prefetch_suite(&plain, 2, false);

    let session = TelemetrySession::new("suite");
    let guard = session.install();
    let telemetered = SuiteCache::new();
    prefetch_suite(&telemetered, 2, false);
    drop(guard);
    diaframe_core::speculate::force_disable(false);

    let a: Vec<Measured> = figure6_rows(&plain).into_iter().map(zeroed).collect();
    let b: Vec<Measured> = figure6_rows(&telemetered).into_iter().map(zeroed).collect();
    assert_eq!(a, b, "rows (counters included) must not depend on an outer session");
    assert_eq!(render_figure6(&a), render_figure6(&b), "tables must be byte-identical");

    // The v7 snapshot carries the telemetry blocks, the per-span-kind
    // duration histograms, and a non-trivial aggregate (`figure6_json`
    // re-checks every row's invariants).
    let json = figure6_json(&plain, 2, Duration::ZERO, None);
    assert!(json.contains("\"schema\": \"diaframe-bench/figure6/v7\""));
    assert!(json.contains("\"telemetry\""));
    assert!(json.contains("\"probes_attempted\""));
    assert!(json.contains("\"spans\""));
    assert!(json.contains("\"p95_ns\""));
    assert!(json.contains("\"search\": { \"count\":"));
    let aggregate: u64 = figure6_rows(&plain)
        .iter()
        .map(|m| m.counters.probes_attempted)
        .sum();
    assert!(aggregate > 0, "suite-wide probe count must be non-zero");
}

/// S3: a sabotaged spec must produce a structured stuck report that
/// names the goal head no hypothesis could key.
#[test]
fn sabotaged_spec_reports_unmatched_goal_head() {
    let examples = all_examples();
    let mut with_head = 0usize;
    for ex in &examples {
        let session = TelemetrySession::new(ex.name());
        let guard = session.install();
        let verdict = ex.verify_broken();
        drop(guard);
        let Some(Err(stuck)) = verdict else { continue };
        let explained = stuck.render_explain();
        // The plain IPM rendering is always a byte-identical prefix.
        assert!(explained.starts_with(&stuck.render()), "{}", ex.name());
        assert!(explained.contains("unmatched goal head"), "{}", ex.name());
        if let Some(head) = &stuck.unmatched_head {
            assert!(
                explained.contains(&format!("unmatched goal head: {head}")),
                "{}: head {head:?} not rendered",
                ex.name()
            );
            with_head += 1;
        }
        // The engine ran under our session, so the diagnostics are
        // attached and populated.
        let diag = stuck.diag.as_ref().unwrap_or_else(|| {
            panic!("{}: stuck report lost its diagnostics", ex.name())
        });
        diag.counters
            .check_invariants()
            .unwrap_or_else(|e| panic!("{}: {e}", ex.name()));
    }
    assert!(
        with_head >= 1,
        "at least one sabotaged example must die in hint search with a named head"
    );
}

/// A real proof trace survives the JSON codec byte-for-byte and still
/// replays through the independent checker from its JSON form.
#[test]
fn real_traces_round_trip_through_json_and_recheck() {
    let examples = all_examples();
    let outcome = examples[0]
        .verify()
        .unwrap_or_else(|e| panic!("{}: {e}", examples[0].name()));
    let mut steps = 0usize;
    for proof in &outcome.proofs {
        let json = trace_json::trace_to_json(&proof.trace);
        let back = trace_json::trace_from_json(&json).expect("exported trace decodes");
        assert_eq!(
            format!("{:?}", proof.trace),
            format!("{back:?}"),
            "{}: JSON round-trip altered the trace",
            proof.name
        );
        diaframe_core::checker::check_json(&json)
            .unwrap_or_else(|e| panic!("{}: exported trace fails replay: {e}", proof.name));
        steps += proof.trace.len();
    }
    assert!(steps > 0, "round-tripped a non-trivial amount of steps");
}
