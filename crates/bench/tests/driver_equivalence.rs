//! Equivalence guarantees for the performance machinery: parallelism and
//! head-indexed hint search must be invisible in every observable result.
//!
//! 1. A parallel suite run (4 workers) and a serial one (1 worker)
//!    produce identical `Measured` rows and byte-identical rendered
//!    Figure 6 tables (timings zeroed — they are the only
//!    nondeterminism), and every trace cached by the parallel run still
//!    replays through the independent checker.
//! 2. Verifying with the atom-head index enabled and disabled yields
//!    identical proof traces — skipping a structurally hopeless
//!    hypothesis probe must be observationally identical to running it
//!    and rolling it back.

use diaframe_bench::{figure6_rows, prefetch_suite, render_figure6, Measured, SuiteCache, Variant};
use diaframe_core::set_hint_index_enabled;
use diaframe_examples::all_examples;
use std::time::Duration;

fn zeroed(mut m: Measured) -> Measured {
    m.time = Duration::ZERO;
    m.check_time = Duration::ZERO;
    // The pipelined-checking overlap is wall-clock, like the two timings.
    m.counters.check_overlap_ms = 0;
    m
}

#[test]
fn parallel_and_serial_runs_agree() {
    let n = all_examples().len();

    // Speculative branch search is forced off here: a speculative worker
    // searches its branch on cold caches, so the *effort* counters
    // (interner/solver hits and misses, spec_*) legitimately depend on
    // permit availability. This test pins the stronger claim for the
    // pool itself — spec-level parallelism is invisible in every
    // counter; `tests/speculation_identity.rs` pins the speculative
    // mode's own guarantee (traces and tables byte-identical).
    diaframe_core::speculate::force_disable(true);
    let serial = SuiteCache::new();
    prefetch_suite(&serial, 1, true);
    let parallel = SuiteCache::new();
    prefetch_suite(&parallel, 4, true);
    diaframe_core::speculate::force_disable(false);

    // Exactly one verification per (example, variant) task, regardless
    // of the worker count.
    assert_eq!(serial.misses(), 2 * n);
    assert_eq!(parallel.misses(), 2 * n);

    let s: Vec<Measured> = figure6_rows(&serial).into_iter().map(zeroed).collect();
    let p: Vec<Measured> = figure6_rows(&parallel).into_iter().map(zeroed).collect();
    assert_eq!(s, p, "parallel rows must match the serial rows");
    assert_eq!(
        render_figure6(&s),
        render_figure6(&p),
        "rendered tables must be byte-identical"
    );

    // Rendering the rows consumed cache hits only.
    assert_eq!(parallel.misses(), 2 * n);
    assert!(parallel.hits() >= n);

    // Every trace produced under parallel execution still replays.
    let mut checked = 0usize;
    for ((name, _, variant), run) in parallel.snapshot() {
        match (&run.outcome, variant) {
            (Some(Ok(outcome)), _) => {
                outcome
                    .check_all()
                    .unwrap_or_else(|e| panic!("{name}: cached trace fails replay: {e}"));
                checked += 1;
            }
            (Some(Err(_)) | None, Variant::Broken) => {}
            (Some(Err(e)), Variant::Ok) => panic!("{name} failed under the parallel driver:\n{e}"),
            (None, Variant::Ok) => panic!("{name}: missing Ok outcome"),
        }
    }
    assert_eq!(checked, n, "all examples' cached traces were re-checked");
}

#[test]
fn indexed_and_linear_hint_search_agree() {
    // A cross-section of the suite: plain sequential, lock-based and
    // counter examples exercise points-to, invariant and ghost heads.
    let examples = all_examples();
    let mut compared = 0usize;
    for ex in examples.iter().take(5) {
        let indexed = ex
            .verify()
            .unwrap_or_else(|e| panic!("{} (indexed): {e}", ex.name()));
        let prev = set_hint_index_enabled(false);
        let linear = ex.verify();
        set_hint_index_enabled(prev);
        let linear = linear.unwrap_or_else(|e| panic!("{} (linear): {e}", ex.name()));

        assert_eq!(indexed.proofs.len(), linear.proofs.len(), "{}", ex.name());
        assert_eq!(indexed.manual_steps, linear.manual_steps, "{}", ex.name());
        for (a, b) in indexed.proofs.iter().zip(&linear.proofs) {
            assert_eq!(a.name, b.name, "{}", ex.name());
            assert_eq!(
                format!("{:?}", a.trace),
                format!("{:?}", b.trace),
                "{}: trace differs between indexed and linear hint search",
                ex.name()
            );
        }
        compared += 1;
    }
    assert!(compared >= 3, "at least three examples compared");
}
