//! The `DIAFRAME_TELEMETRY=file` sink must be deterministic under a
//! parallel suite run: sessions are flushed in task-submission order
//! (not completion order), so two `--jobs 4` runs of the same binary
//! produce byte-identical JSON-lines once wall-clock durations are
//! masked. Durations are the *only* nondeterminism allowed — every
//! event name, counter and span structure must match exactly, in
//! exactly the same file order.

use std::process::Command;

/// Runs figure6 with the file sink attached and returns the sink bytes.
/// Speculation and pipelined checking are forced off: a cancelled
/// speculative worker's effort counters are scheduling-dependent (see
/// tests/speculation_identity.rs), and this test pins the *sink
/// ordering*, not the parallelism counters.
fn sink_lines(path: &std::path::Path) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_figure6"))
        .args(["--jobs", "4"])
        .env("DIAFRAME_TELEMETRY", path)
        .env("DIAFRAME_SPECULATE", "off")
        .env("DIAFRAME_PIPELINE_CHECK", "off")
        .output()
        .expect("figure6 runs");
    assert!(
        out.status.success(),
        "figure6 --jobs 4 exited {:?}: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::read_to_string(path).expect("sink file written")
}

/// Zeroes the digits after every duration key: durations are wall-clock
/// samples, legitimately different run to run. Everything else in the
/// line — including the line's *position in the file* — must be stable.
fn mask_durations(s: &str) -> String {
    let mut out = s.to_string();
    for key in ["\"dur_ns\":", "\"total_ns\":", "\"p50_ns\":", "\"p95_ns\":", "\"max_ns\":"] {
        let mut at = 0;
        while let Some(i) = out[at..].find(key) {
            let mut j = at + i + key.len();
            while out.as_bytes().get(j) == Some(&b' ') {
                j += 1;
            }
            let start = j;
            while out.as_bytes().get(j).is_some_and(u8::is_ascii_digit) {
                j += 1;
            }
            out.replace_range(start..j, "0");
            at = start + 1;
        }
    }
    out
}

#[test]
fn file_sink_is_byte_identical_across_parallel_runs() {
    let dir = std::env::temp_dir();
    let a_path = dir.join(format!("diaframe-sink-a-{}.jsonl", std::process::id()));
    let b_path = dir.join(format!("diaframe-sink-b-{}.jsonl", std::process::id()));
    let a = mask_durations(&sink_lines(&a_path));
    let b = mask_durations(&sink_lines(&b_path));
    let _ = std::fs::remove_file(&a_path);
    let _ = std::fs::remove_file(&b_path);

    // Diagnose a mismatch by line so CI output points at the first
    // diverging event instead of dumping two whole files.
    for (n, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        assert_eq!(la, lb, "sink line {} differs between two --jobs 4 runs", n + 1);
    }
    assert_eq!(
        a.lines().count(),
        b.lines().count(),
        "sink line count differs between two --jobs 4 runs"
    );

    // The ordering contract is what makes the bytes line up: one
    // summary per suite task, flushed in submission order — so the
    // first summary is the suite's first example, not whichever
    // worker finished first.
    let summaries: Vec<&str> = a.lines().filter(|l| l.contains("\"event\":\"summary\"")).collect();
    assert!(
        summaries.len() >= 24,
        "expected a summary per example, saw {}",
        summaries.len()
    );
    let first = summaries[0];
    assert!(
        first.contains("\"verify\":\"arc\""),
        "first summary is not the first submitted task (Figure 6 row order): {first}"
    );
}
