//! Integration test of the adequacy schedule-sweep driver: the proved
//! suite sweeps clean, every negative example is flagged with an
//! actionable witness, and the JSON snapshot is byte-identical across
//! runs and worker counts.
//!
//! Runs at reduced seed counts to stay test-suite-fast; the full-scale
//! gate (1000+ seeds per proved example) lives in `ci.sh` via the
//! `adequacy` binary.

use diaframe_bench::{adequacy_json, render_adequacy, run_adequacy, AdequacyConfig};
use diaframe_examples::{all_examples, negative_examples};

fn small_cfg(jobs: usize) -> AdequacyConfig {
    AdequacyConfig {
        seeds: 25,
        fuel: 100_000,
        dfs_max_runs: 48,
        dfs_max_steps: 300_000,
        neg_seeds: 40,
        neg_fuel: 20_000,
        jobs,
        ..AdequacyConfig::default()
    }
}

#[test]
fn proved_examples_sweep_clean_and_negatives_are_flagged() {
    let report = run_adequacy(&small_cfg(diaframe_core::default_jobs()));

    assert_eq!(report.proved.len(), all_examples().len(), "one row per example");
    for row in &report.proved {
        assert!(
            row.outcome.clean(),
            "{}: proved example swept dirty: {:?}",
            row.name,
            row.outcome.findings()
        );
        // ≥ seeds random runs + the fair DFS root schedule.
        assert!(row.outcome.runs > 25, "{}: only {} runs", row.name, row.outcome.runs);
        assert_eq!(row.outcome.terminated, row.outcome.runs);
    }

    assert_eq!(report.negatives.len(), negative_examples().len());
    for row in &report.negatives {
        assert!(
            row.verdict_ok,
            "{}: expected {:?} (forbidding {:?}), flagged {:?}",
            row.name, row.must, row.forbidden, row.flags
        );
        assert!(
            !row.outcome.findings().is_empty(),
            "{}: flagged without an actionable finding",
            row.name
        );
    }

    assert!(report.pass(), "gate must pass on the healthy suite");

    let rendered = render_adequacy(&report);
    assert!(rendered.contains("gate: PASS"));
    assert!(rendered.contains("rwlock_duolock"));
    assert!(rendered.contains("racy_counter"));
}

#[test]
fn adequacy_json_is_byte_stable_across_runs_and_worker_counts() {
    let a = adequacy_json(&run_adequacy(&small_cfg(1)));
    let b = adequacy_json(&run_adequacy(&small_cfg(4)));
    assert_eq!(a, b, "snapshot must not depend on run or worker count");

    assert!(a.starts_with("{\n  \"schema\": \"diaframe-bench/adequacy/v1\","));
    assert!(a.contains("\"verdict\": \"pass\""));
    assert!(a.contains("\"name\": \"lock_inversion\""));
    assert!(a.contains("\"verdict\": \"flagged\""));
    // The duolock row records its detector exemption.
    assert!(a.contains("\"name\": \"rwlock_duolock\", \"sync_model\": \"infer_atomics\", \"lock_order\": false"));
}
