//! End-to-end coverage for `figure6 --explain`, the stuck-state
//! diagnosis mode `ci.sh` smoke-tests with a pipeline grep. These tests
//! pin the exit-code contract that grep relies on (`set -euo pipefail`
//! turns a wrong exit code into a silent CI pass or a spurious
//! failure).

use std::process::Command;

fn figure6(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_figure6"))
        .args(args)
        .output()
        .expect("figure6 runs")
}

/// The success path: the sabotaged variant fails to verify, and the
/// rendered diagnosis names the unmatched goal head — with exit code 0,
/// because *diagnosing* the failure is this mode's job.
#[test]
fn explain_renders_the_unmatched_goal_head() {
    let out = figure6(&["--explain", "spin_lock"]);
    assert!(
        out.status.success(),
        "explain spin_lock exited {:?}: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("unmatched goal head"),
        "diagnosis missing the goal-head line:\n{stdout}"
    );
    // The head taxonomy comes from `goal_head`, so the line carries a
    // concrete head description, not an empty placeholder.
    let line = stdout
        .lines()
        .find(|l| l.contains("unmatched goal head"))
        .expect("checked above");
    assert!(
        line.trim_end().len() > "unmatched goal head:".len(),
        "goal-head line names no head: {line:?}"
    );
}

/// An unknown example is a usage error: exit 2 and a hint listing the
/// known names.
#[test]
fn explain_unknown_example_exits_2() {
    let out = figure6(&["--explain", "no_such_example"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("no example named") && stderr.contains("spin_lock"),
        "stderr should list known examples:\n{stderr}"
    );
}

/// An example without a sabotaged variant cannot be explained: also a
/// usage error, also exit 2.
#[test]
fn explain_without_broken_variant_exits_2() {
    // Client examples reuse a library's proof and carry no sabotage.
    let out = figure6(&["--explain", "cas_counter_client"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("no sabotaged variant"),
        "unexpected stderr:\n{stderr}"
    );
}
