//! Property test: feeding a trace to the incremental [`Replay`] in
//! windows — any chunking whatsoever — reaches exactly the verdict of
//! the one-shot batch [`check`], on valid traces *and* on
//! certified-invalid mutants (same step index, same message). This is
//! the guarantee the pipelined-checking consumer leans on: windowing
//! changes *when* steps are validated, never the verdict.
//!
//! Corpus: the deterministic fuzz generator's traces (and structured
//! mutations of them), plus every proof trace of the 24 verified
//! examples.

use diaframe_bench::{prefetch_suite, SuiteCache, Variant};
use diaframe_core::checker::{check, CheckError, Replay};
use diaframe_core::fuzz::{gen_trace, mutate_trace, trace_of_steps};
use diaframe_core::TraceStep;
use diaframe_examples::all_examples;

/// A tiny deterministic PRNG for window sizes (xorshift64*); the test
/// must not depend on wall-clock or global randomness.
struct WindowRng(u64);

impl WindowRng {
    fn next_window(&mut self) -> usize {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 % 7 + 1) as usize
    }
}

/// Replays `steps` in pseudo-random windows of 1–7 steps.
fn windowed_check(steps: &[TraceStep], seed: u64) -> Result<(), CheckError> {
    // One interner scope per trace, mirroring the batch `check` path.
    let scope = diaframe_term::intern::scope();
    let mut rng = WindowRng(seed | 1);
    let mut replay = Replay::new();
    let mut fed = 0;
    let mut verdict = Ok(());
    'outer: while fed < steps.len() {
        let w = rng.next_window().min(steps.len() - fed);
        for s in &steps[fed..fed + w] {
            if let Err(e) = replay.feed(s) {
                verdict = Err(e);
                break 'outer;
            }
        }
        fed += w;
    }
    if verdict.is_ok() {
        verdict = replay.finish();
    }
    drop(scope);
    verdict
}

const WINDOW_SEEDS: [u64; 4] = [1, 0xBEEF, 0x5EED_5EED, u64::MAX];

#[test]
fn windowed_replay_agrees_with_one_shot_check_on_fuzz_corpus() {
    for i in 0..48 {
        let trace = gen_trace(0xD1AF, i);
        let one_shot = check(&trace);
        assert!(one_shot.is_ok(), "synth-{i}: generated trace invalid: {one_shot:?}");
        for seed in WINDOW_SEEDS {
            assert_eq!(
                windowed_check(trace.steps(), seed),
                one_shot,
                "synth-{i}: windowed verdict diverged (window seed {seed})"
            );
        }
    }
}

#[test]
fn windowed_replay_agrees_with_one_shot_check_on_mutants() {
    let mut mutants_seen = 0;
    for i in 0..16 {
        let trace = gen_trace(0xD1AF, i);
        for (j, mutant) in mutate_trace(trace.steps(), 0xC0FF_EE00 + i as u64, 4)
            .into_iter()
            .enumerate()
        {
            mutants_seen += 1;
            let one_shot = check(&trace_of_steps(&mutant.steps));
            assert!(
                one_shot.is_err(),
                "synth-{i}/mutant-{j} ({}): certified-invalid mutant passed",
                mutant.description
            );
            for seed in WINDOW_SEEDS {
                assert_eq!(
                    windowed_check(&mutant.steps, seed),
                    one_shot,
                    "synth-{i}/mutant-{j} ({}): windowed error diverged (window seed {seed})",
                    mutant.description
                );
            }
        }
    }
    assert!(mutants_seen > 0, "mutation corpus was empty");
}

#[test]
fn windowed_replay_agrees_on_every_example_trace() {
    let cache = SuiteCache::new();
    prefetch_suite(&cache, diaframe_core::default_jobs(), false);
    let examples = all_examples();
    let mut traces = 0;
    for ex in &examples {
        let run = cache.get_or_run(ex.as_ref(), Variant::Ok);
        let outcome = run.expect_ok(ex.name());
        for (k, proof) in outcome.proofs.iter().enumerate() {
            traces += 1;
            let one_shot = check(&proof.trace);
            assert!(one_shot.is_ok(), "{} proof {k}: {one_shot:?}", ex.name());
            // One pseudo-random chunking per trace keeps the suite pass
            // cheap; the window seed still varies per (example, proof).
            let seed = (k as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            assert_eq!(
                windowed_check(proof.trace.steps(), seed),
                one_shot,
                "{} proof {k}: windowed verdict diverged",
                ex.name()
            );
        }
    }
    assert_eq!(examples.len(), 24, "suite size changed — update this test");
    assert!(traces >= examples.len(), "every example has at least one proof");
}
