//! Edge cases of the `figure6 --diff` snapshot reporter: examples
//! missing in either direction, degenerate (empty) snapshots and
//! telemetry blocks, and the exact counter-floor boundary.

use diaframe_bench::{diff_snapshots, DiffOptions};
use std::fmt::Write as _;

/// Builds a v6-shaped snapshot from `(name, search_ms, telemetry-json)`
/// rows. Includes an empty `spans` histogram block per example — the
/// diff must tolerate (and ignore) it.
fn snap(rows: &[(&str, f64, &str)]) -> String {
    let mut s =
        String::from("{\n  \"schema\": \"diaframe-bench/figure6/v6\",\n  \"spans\": { },\n  \"examples\": [\n");
    for (i, (n, t, tele)) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{ \"name\": \"{n}\", \"search_ms\": {t:.3}, \"telemetry\": {tele}, \"spans\": {{ }} }}{}",
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    s.push_str("  ]\n}\n");
    s
}

#[test]
fn example_missing_from_current_gates_but_new_example_only_notes() {
    let base = snap(&[("a", 100.0, "{ }"), ("gone", 50.0, "{ }")]);
    let cur = snap(&[("a", 100.0, "{ }"), ("brand_new", 50.0, "{ }")]);
    let r = diff_snapshots(&base, &cur, &DiffOptions::default()).unwrap();
    // Losing an example is a regression (coverage shrank)…
    assert_eq!(r.regressions.len(), 1, "{:?}", r.regressions);
    assert!(r.regressions[0].contains("gone"));
    assert!(r.regressions[0].contains("missing from current"));
    assert!(r.markdown.contains("**MISSING**"));
    // …but gaining one is informational only.
    assert!(r.notes.iter().any(|l| l.contains("brand_new") && l.contains("new")));
    assert!(!r.regressions.iter().any(|l| l.contains("brand_new")));
}

#[test]
fn empty_baseline_makes_the_aggregate_gate_fire_not_divide_by_zero() {
    // No baseline examples: aggregate base sum is 0 ms, so any current
    // work is an infinite ratio — the diff must gate, not panic or pass.
    let base = snap(&[]);
    let cur = snap(&[("a", 100.0, "{ }")]);
    let r = diff_snapshots(&base, &cur, &DiffOptions::default()).unwrap();
    assert!(
        r.regressions.iter().any(|l| l.starts_with("aggregate")),
        "{:?}",
        r.regressions
    );
    assert!(r.notes.iter().any(|l| l.contains("a") && l.contains("new")));
}

#[test]
fn two_empty_snapshots_diff_clean() {
    let empty = snap(&[]);
    let r = diff_snapshots(&empty, &empty, &DiffOptions::default()).unwrap();
    assert!(r.regressions.is_empty(), "{:?}", r.regressions);
    assert!(r.markdown.contains("PASS — 0 regressions"));
}

#[test]
fn empty_telemetry_blocks_are_tolerated() {
    // No counters at all (and empty span histograms): parse, compare,
    // pass — absence of data is not drift.
    let a = snap(&[("a", 10.0, "{ }")]);
    let r = diff_snapshots(&a, &a, &DiffOptions::default()).unwrap();
    assert!(r.regressions.is_empty(), "{:?}", r.regressions);
    assert!(r.markdown.contains("none"), "counter sections should be empty");
}

#[test]
fn counter_floor_boundary_is_exact() {
    let opts = DiffOptions::default();
    assert_eq!(opts.counter_floor, 100, "test pins the default floor");
    // hi == 99 < floor: even an infinite ratio (0 → 99) must not gate.
    let base = snap(&[("a", 10.0, "{ \"probes_attempted\": 0 }")]);
    let cur = snap(&[("a", 10.0, "{ \"probes_attempted\": 99 }")]);
    let r = diff_snapshots(&base, &cur, &opts).unwrap();
    assert!(r.regressions.is_empty(), "{:?}", r.regressions);

    // hi == 100 == floor: the counter now participates, and 0 → 100 is
    // infinite drift — gates.
    let cur = snap(&[("a", 10.0, "{ \"probes_attempted\": 100 }")]);
    let r = diff_snapshots(&base, &cur, &opts).unwrap();
    assert_eq!(r.regressions.len(), 1, "{:?}", r.regressions);
    assert!(r.regressions[0].contains("probes_attempted"));

    // At the floor but within the ratio: 100 → 120 (1.2× ≤ 1.5×) passes.
    let base = snap(&[("a", 10.0, "{ \"probes_attempted\": 100 }")]);
    let cur = snap(&[("a", 10.0, "{ \"probes_attempted\": 120 }")]);
    let r = diff_snapshots(&base, &cur, &opts).unwrap();
    assert!(r.regressions.is_empty(), "{:?}", r.regressions);
}

#[test]
fn zero_to_zero_counters_and_timings_are_not_drift() {
    let a = snap(&[("a", 0.0, "{ \"probes_attempted\": 0 }")]);
    let r = diff_snapshots(&a, &a, &DiffOptions::default()).unwrap();
    assert!(r.regressions.is_empty(), "{:?}", r.regressions);
}

#[test]
fn counter_improvements_gate_too_because_determinism_cuts_both_ways() {
    // Deterministic counters gate on drift in *either* direction: a 3×
    // drop means the engine changed and the baseline is stale.
    let base = snap(&[("a", 10.0, "{ \"probes_attempted\": 3000 }")]);
    let cur = snap(&[("a", 10.0, "{ \"probes_attempted\": 1000 }")]);
    let r = diff_snapshots(&base, &cur, &DiffOptions::default()).unwrap();
    assert_eq!(r.regressions.len(), 1, "{:?}", r.regressions);
    assert!(r.regressions[0].contains("probes_attempted"));
}
