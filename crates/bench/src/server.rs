//! The `diaframe serve` verification daemon.
//!
//! One long-lived process keeps the JIT-warmed engine, the in-memory
//! [`SuiteCache`] and (optionally) a persistent [`ProofStore`] resident,
//! and answers [`proto`](crate::proto) requests over TCP or a Unix
//! socket. Batch `verify` requests fan out over the engine's own
//! deterministic work pool ([`diaframe_core::run_ordered`]), so a batch
//! submitted to the daemon produces the same verdict table as a serial
//! run — byte-identical, which the CI gate checks with `cmp`.
//!
//! Threading model: one acceptor loop, one handler thread per
//! connection, shared state behind an [`Arc`]. `shutdown` answers its
//! requester, flips a flag, and pokes the acceptor with a self-connect
//! so the blocking `accept` observes the flag and exits.

use crate::proto::{read_frame, write_frame, PROTO_VERSION};
use crate::{json_escape, verdict_table_for, CachedRun, ProofStore, SuiteCache, Variant};
use diaframe_core::trace_json::{parse_json_value, JsonValue};
use diaframe_core::{engine_fingerprint, run_ordered};
use diaframe_examples::{all_examples, Example};
use std::fmt::Write as _;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Where a daemon listens (and where a client connects).
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// A TCP address like `127.0.0.1:7878`.
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Back the suite cache with a persistent proof store at this root.
    pub store_dir: Option<PathBuf>,
    /// LRU byte budget for the store (`None` = unbounded).
    pub budget: Option<u64>,
    /// Worker count for batch verify requests.
    pub jobs: usize,
}

struct ServerState {
    cache: SuiteCache,
    store: Option<Arc<ProofStore>>,
    jobs: usize,
    requests: AtomicU64,
    shutdown: AtomicBool,
}

/// Runs the daemon until a `shutdown` request arrives. Prints one
/// `listening on …` line to stdout once the socket is bound, so a
/// supervisor (or ci.sh) can wait for readiness by reading it.
///
/// # Errors
///
/// Returns the error if the endpoint cannot be bound or the store
/// cannot be opened.
pub fn serve(endpoint: &Endpoint, config: &ServerConfig) -> io::Result<()> {
    let store = match &config.store_dir {
        Some(dir) => Some(Arc::new(ProofStore::open(dir, config.budget)?)),
        None => None,
    };
    let cache = match &store {
        Some(s) => SuiteCache::with_store(Arc::clone(s)),
        None => SuiteCache::new(),
    };
    let state = Arc::new(ServerState {
        cache,
        store,
        jobs: config.jobs.max(1),
        requests: AtomicU64::new(0),
        shutdown: AtomicBool::new(false),
    });
    match endpoint {
        Endpoint::Tcp(addr) => {
            let listener = TcpListener::bind(addr)?;
            println!("listening on tcp {}", listener.local_addr()?);
            accept_loop(|| listener.accept().map(|(s, _)| s), &state, endpoint);
        }
        #[cfg(unix)]
        Endpoint::Unix(path) => {
            // A previous daemon's leftover socket file would make bind
            // fail; a stale file is dead weight, not a live listener.
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            println!("listening on unix {}", path.display());
            accept_loop(|| listener.accept().map(|(s, _)| s), &state, endpoint);
            let _ = std::fs::remove_file(path);
        }
        #[cfg(not(unix))]
        Endpoint::Unix(_) => {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are unavailable on this platform",
            ));
        }
    }
    Ok(())
}

fn accept_loop<S>(accept: impl Fn() -> io::Result<S>, state: &Arc<ServerState>, endpoint: &Endpoint)
where
    S: Read + Write + Send + 'static,
{
    std::thread::scope(|scope| loop {
        let conn = accept();
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let state = Arc::clone(state);
        let endpoint = endpoint.clone();
        scope.spawn(move || handle_connection(stream, &state, &endpoint));
    });
}

/// Serves one connection: a sequence of frames until the peer hangs up.
fn handle_connection<S: Read + Write>(mut stream: S, state: &ServerState, endpoint: &Endpoint) {
    loop {
        let body = match read_frame(&mut stream) {
            Ok(Some(body)) => body,
            Ok(None) | Err(_) => return,
        };
        state.requests.fetch_add(1, Ordering::Relaxed);
        let (response, is_shutdown) = handle_request(&body, state);
        let _ = write_frame(&mut stream, &response);
        if is_shutdown {
            state.shutdown.store(true, Ordering::SeqCst);
            // Wake the blocked acceptor so it can observe the flag.
            poke(endpoint);
            return;
        }
    }
}

/// Self-connects to the daemon's own endpoint (and immediately hangs
/// up) to unblock `accept` after a shutdown.
fn poke(endpoint: &Endpoint) {
    match endpoint {
        Endpoint::Tcp(addr) => drop(TcpStream::connect(addr)),
        #[cfg(unix)]
        Endpoint::Unix(path) => drop(UnixStream::connect(path)),
        #[cfg(not(unix))]
        Endpoint::Unix(_) => {}
    }
}

fn error_response(message: &str) -> String {
    format!(
        "{{\"ok\":false,\"proto\":{PROTO_VERSION},\"error\":\"{}\"}}",
        json_escape(message)
    )
}

/// Dispatches one request body. The second component is true when the
/// daemon should stop accepting after this response.
fn handle_request(body: &str, state: &ServerState) -> (String, bool) {
    let parsed = match parse_json_value(body) {
        Ok(v) => v,
        Err(e) => return (error_response(&format!("request does not parse: {e}")), false),
    };
    let op = parsed.get("op").and_then(JsonValue::as_str).unwrap_or("");
    match op {
        "verify" | "verify_all" => {
            let examples = all_examples();
            let selected: Vec<&dyn Example> = if op == "verify_all" {
                examples.iter().map(AsRef::as_ref).collect()
            } else {
                let Some(wanted) = parsed.get("examples").and_then(JsonValue::as_array) else {
                    return (
                        error_response("verify requires an \"examples\" array of names"),
                        false,
                    );
                };
                let mut selected = Vec::with_capacity(wanted.len());
                for want in wanted {
                    let Some(name) = want.as_str() else {
                        return (error_response("example names must be strings"), false);
                    };
                    match examples
                        .iter()
                        .find(|ex| ex.name() == name || ex.cache_key() == name)
                    {
                        Some(ex) => selected.push(ex.as_ref()),
                        None => {
                            return (error_response(&format!("unknown example {name:?}")), false)
                        }
                    }
                }
                selected
            };
            (verify_response(state, &selected), false)
        }
        "stats" => (stats_response(state), false),
        "shutdown" => (
            format!("{{\"ok\":true,\"proto\":{PROTO_VERSION},\"stopping\":true}}"),
            true,
        ),
        other => (error_response(&format!("unknown op {other:?}")), false),
    }
}

/// Runs the batch over the engine's work pool and renders the verdict
/// rows plus the deterministic verdict table.
fn verify_response(state: &ServerState, selected: &[&dyn Example]) -> String {
    let runs = run_ordered(selected, state.jobs, |_, ex| {
        state.cache.get_or_run(*ex, Variant::Ok)
    });
    let mut rows = String::new();
    for (ex, run) in selected.iter().zip(&runs) {
        if !rows.is_empty() {
            rows.push(',');
        }
        match run {
            Ok(run) => rows.push_str(&result_row(*ex, run)),
            Err(p) => {
                return error_response(&format!("{} panicked: {}", ex.name(), p.message));
            }
        }
    }
    if let Some(failed) = selected.iter().zip(&runs).find_map(|(ex, run)| match run {
        Ok(run) => match &run.outcome {
            Some(Ok(_)) => None,
            Some(Err(e)) => Some(format!("{}: {e}", ex.name())),
            None => Some(format!("{}: no such variant", ex.name())),
        },
        Err(_) => None,
    }) {
        // A red example means no deterministic table; report it rather
        // than rendering a partial one.
        return error_response(&failed);
    }
    let table = verdict_table_for(&state.cache, selected);
    format!(
        "{{\"ok\":true,\"proto\":{PROTO_VERSION},\"results\":[{rows}],\"table\":\"{}\"}}",
        json_escape(&table)
    )
}

fn result_row(ex: &dyn Example, run: &CachedRun) -> String {
    let mut row = String::new();
    let _ = write!(row, "{{\"example\":\"{}\"", json_escape(ex.name()));
    match &run.outcome {
        Some(Ok(outcome)) => {
            let _ = write!(
                row,
                ",\"verdict\":\"verified\",\"specs\":{},\"manual\":{},\"hints\":{},\"custom\":{}",
                outcome.proofs.len(),
                outcome.manual_steps,
                outcome.hints_used().len(),
                outcome.custom_hints_used().len()
            );
        }
        Some(Err(e)) => {
            let _ = write!(row, ",\"verdict\":\"failed\",\"error\":\"{}\"", json_escape(e));
        }
        None => {
            row.push_str(",\"verdict\":\"missing\"");
        }
    }
    let _ = write!(
        row,
        ",\"from_store\":{},\"search_ms\":{},\"replay_ms\":{}}}",
        run.from_store,
        run.search_time.as_millis(),
        run.check_time.as_millis()
    );
    row
}

fn stats_response(state: &ServerState) -> String {
    let store = match &state.store {
        Some(store) => format!(
            "{{ \"entries\": {}, \"bytes\": {}, \"counters\": {} }}",
            store.len(),
            store.total_bytes(),
            store.stats().json_object()
        ),
        None => String::from("null"),
    };
    format!(
        "{{\"ok\":true,\"proto\":{PROTO_VERSION},\"engine\":\"{}\",\"requests\":{},\
         \"cache\":{{\"hits\":{},\"misses\":{}}},\"store\":{store}}}",
        engine_fingerprint(),
        state.requests.load(Ordering::Relaxed),
        state.cache.hits(),
        state.cache.misses(),
    )
}

/// A simple blocking client for the daemon protocol: one connection,
/// sequential request/response calls.
pub struct Client {
    stream: Box<dyn ReadWriteStream>,
}

trait ReadWriteStream: Read + Write {}
impl<T: Read + Write> ReadWriteStream for T {}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Returns the connection error.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Client> {
        let stream: Box<dyn ReadWriteStream> = match endpoint {
            Endpoint::Tcp(addr) => Box::new(TcpStream::connect(addr)?),
            #[cfg(unix)]
            Endpoint::Unix(path) => Box::new(UnixStream::connect(path)?),
            #[cfg(not(unix))]
            Endpoint::Unix(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix sockets are unavailable on this platform",
                ))
            }
        };
        Ok(Client { stream })
    }

    /// Sends one request body and returns the response body.
    ///
    /// # Errors
    ///
    /// Returns the I/O error, or `UnexpectedEof` if the daemon hung up
    /// without responding.
    pub fn call(&mut self, body: &str) -> io::Result<String> {
        write_frame(&mut self.stream, body)?;
        read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed the connection")
        })
    }
}
