//! The adequacy schedule-sweep driver: executable Iris adequacy at
//! scale.
//!
//! For every proved example's client program this fans out — on
//! [`diaframe_core::run_ordered`] — a [`diaframe_heaplang::sweep`]
//! sweep: `seeds` seeded random interleavings plus a
//! preemption-bounded DFS enumeration, every run executed to
//! quiescence with the lock-order, manifest-deadlock and vector-clock
//! race detectors threaded through each step, and each terminating
//! run's final value/heap checked against the example's proved
//! postcondition. Iris adequacy says the proofs make all of that
//! unfalsifiable, so the gate is absolute: 0 violations, 0 races, 0
//! cycles, 0 deadlocks across every proved example.
//!
//! The same harness then runs the intentionally-buggy
//! [`diaframe_examples::negative_examples`] suite, where the gate flips:
//! every negative must be flagged with its expected categories (and
//! none of its forbidden ones) and produce an actionable finding. A
//! detector that cannot catch a planted bug would make the proved
//! suite's silence worthless.
//!
//! The JSON report (schema `diaframe-bench/adequacy/v1`) is a pure
//! function of the config: fixed seeds, deterministic DFS order, no
//! timestamps and no worker-count dependence, so two runs at any
//! `--jobs` produce byte-identical bytes — which CI checks with `cmp`.

use crate::json_escape;
use diaframe_core::{run_ordered, JobPanic};
use diaframe_examples::{all_examples, negative_examples};
use diaframe_heaplang::monitor::SyncModel;
use diaframe_heaplang::sweep::{sweep, SweepConfig, SweepOutcome};
use std::fmt::Write as _;

/// Configuration of one adequacy run.
#[derive(Debug, Clone)]
pub struct AdequacyConfig {
    /// Seeded random interleavings per proved example.
    pub seeds: u64,
    /// Per-run step budget for proved examples.
    pub fuel: u64,
    /// DFS preemption bound (both suites).
    pub preemption_bound: u32,
    /// Maximum DFS runs per example (both suites).
    pub dfs_max_runs: u64,
    /// Total DFS step budget per example (both suites).
    pub dfs_max_steps: u64,
    /// Seeded random interleavings per negative example. Lower than
    /// `seeds`: the negatives' bugs manifest within a few dozen
    /// schedules, and their nonterminating runs each burn `neg_fuel`.
    pub neg_seeds: u64,
    /// Per-run step budget for negative examples (kept small because
    /// lost-wakeup runs spin to the budget by design).
    pub neg_fuel: u64,
    /// Worker count for the per-example fan-out. Does not affect the
    /// report bytes.
    pub jobs: usize,
}

impl Default for AdequacyConfig {
    fn default() -> AdequacyConfig {
        AdequacyConfig {
            seeds: 1000,
            fuel: 200_000,
            preemption_bound: 2,
            dfs_max_runs: 256,
            dfs_max_steps: 1_000_000,
            neg_seeds: 120,
            neg_fuel: 30_000,
            jobs: diaframe_core::default_jobs(),
        }
    }
}

impl AdequacyConfig {
    fn proved_cfg(&self, sync_model: SyncModel, lock_order: bool) -> SweepConfig {
        SweepConfig {
            seeds: self.seeds,
            seed_base: 0,
            fuel: self.fuel,
            preemption_bound: self.preemption_bound,
            dfs_max_runs: self.dfs_max_runs,
            dfs_max_steps: self.dfs_max_steps,
            sync_model,
            lock_order,
        }
    }

    fn negative_cfg(&self, sync_model: SyncModel) -> SweepConfig {
        SweepConfig {
            seeds: self.neg_seeds,
            fuel: self.neg_fuel,
            ..self.proved_cfg(sync_model, true)
        }
    }
}

/// One proved example's sweep result.
#[derive(Debug)]
pub struct ProvedRow {
    /// Example name (Figure 6 row).
    pub name: &'static str,
    /// Atomicity model the example's spec chose.
    pub sync_model: SyncModel,
    /// Whether the lock-order cycle heuristic applied (see
    /// [`diaframe_heaplang::sweep::SweepConfig::lock_order`]).
    pub lock_order: bool,
    /// Human rendering of the checked postcondition.
    pub post_desc: String,
    /// The sweep outcome; must be [`SweepOutcome::clean`].
    pub outcome: SweepOutcome,
}

/// One negative example's sweep result and verdict.
#[derive(Debug)]
pub struct NegativeRow {
    /// Negative example name.
    pub name: &'static str,
    /// What the planted bug is.
    pub description: &'static str,
    /// Categories the sweep had to flag.
    pub must: Vec<&'static str>,
    /// Categories the sweep had to stay silent on.
    pub forbidden: Vec<&'static str>,
    /// Categories the sweep actually flagged.
    pub flags: Vec<&'static str>,
    /// Whether the flags match the expectation and the report carries
    /// at least one actionable finding.
    pub verdict_ok: bool,
    /// The sweep outcome.
    pub outcome: SweepOutcome,
}

/// The whole adequacy run: proved suite + negative suite.
#[derive(Debug)]
pub struct AdequacyReport {
    /// The configuration the run used.
    pub config: AdequacyConfig,
    /// One row per proved example, in Figure 6 order.
    pub proved: Vec<ProvedRow>,
    /// One row per negative example, in registry order.
    pub negatives: Vec<NegativeRow>,
}

impl AdequacyReport {
    /// The gate: every proved example sweeps clean AND every negative
    /// example is flagged exactly as expected.
    #[must_use]
    pub fn pass(&self) -> bool {
        self.proved.iter().all(|r| r.outcome.clean())
            && self.negatives.iter().all(|r| r.verdict_ok)
    }
}

fn sync_model_name(m: SyncModel) -> &'static str {
    match m {
        SyncModel::InferAtomics => "infer_atomics",
        SyncModel::AllAtomic => "all_atomic",
    }
}

fn unpanic<T>(results: Vec<Result<T, JobPanic>>, what: &str) -> Vec<T> {
    results
        .into_iter()
        .map(|r| r.unwrap_or_else(|p| panic!("{what} sweep worker panicked: {}", p.message)))
        .collect()
}

/// Runs the full adequacy experiment: sweeps every proved example's
/// client and every negative example, fanned out over `cfg.jobs`
/// workers. The report is a pure function of `cfg` — worker count and
/// scheduling of the fan-out cannot change it.
///
/// # Panics
///
/// Panics if a proved example has no sweep spec (every Figure 6 example
/// must ship a client + executable postcondition) or a sweep worker
/// panics.
#[must_use]
pub fn run_adequacy(cfg: &AdequacyConfig) -> AdequacyReport {
    let examples = all_examples();
    let proved = unpanic(
        run_ordered(&examples, cfg.jobs, |_, ex| {
            let spec = ex
                .sweep_spec()
                .unwrap_or_else(|| panic!("{}: no sweep spec", ex.name()));
            let outcome = sweep(
                &spec.prog,
                &spec.post,
                &cfg.proved_cfg(spec.sync_model, spec.lock_order),
            );
            ProvedRow {
                name: ex.name(),
                sync_model: spec.sync_model,
                lock_order: spec.lock_order,
                post_desc: spec.post_desc,
                outcome,
            }
        }),
        "proved",
    );
    let negs = negative_examples();
    let negatives = unpanic(
        run_ordered(&negs, cfg.jobs, |_, neg| {
            let outcome = sweep(
                &neg.prog(),
                &neg.post_predicate(),
                &cfg.negative_cfg(neg.sync_model),
            );
            let flags = outcome.flags();
            let verdict_ok = neg.expected.must.iter().all(|f| flags.contains(f))
                && neg.expected.forbidden.iter().all(|f| !flags.contains(f))
                && !outcome.findings().is_empty();
            NegativeRow {
                name: neg.name,
                description: neg.description,
                must: neg.expected.must.to_vec(),
                forbidden: neg.expected.forbidden.to_vec(),
                flags: flags.into_iter().collect(),
                verdict_ok,
                outcome,
            }
        }),
        "negative",
    );
    AdequacyReport {
        config: cfg.clone(),
        proved,
        negatives,
    }
}

fn str_array(items: &[&str]) -> String {
    let parts: Vec<String> = items.iter().map(|s| format!("\"{}\"", json_escape(s))).collect();
    format!("[{}]", parts.join(", "))
}

/// The shared per-outcome JSON fields (no trailing brace or comma).
fn outcome_json(o: &SweepOutcome) -> String {
    let values: Vec<&str> = o.distinct_values.iter().map(String::as_str).collect();
    format!(
        "\"runs\": {}, \"random_runs\": {}, \"dfs_runs\": {}, \"dfs_truncated\": {}, \
         \"terminated\": {}, \"nonterminating\": {}, \"stuck\": {}, \"post_violations\": {}, \
         \"deadlock_runs\": {}, \"race_runs\": {}, \"lock_cycle_runs\": {}, \
         \"total_steps\": {}, \"max_threads\": {}, \"values\": {}, \"values_truncated\": {}",
        o.runs,
        o.random_runs,
        o.dfs_runs,
        o.dfs_truncated,
        o.terminated,
        o.nonterminating,
        o.stuck_errors,
        o.post_violations,
        o.deadlock_runs,
        o.race_runs,
        o.cycle_runs,
        o.total_steps,
        o.max_threads,
        str_array(&values),
        o.distinct_values_truncated,
    )
}

/// Serializes an adequacy run as JSON (schema
/// `diaframe-bench/adequacy/v1`) for committing as
/// `BENCH_adequacy.json`. Byte-reproducible: the bytes depend only on
/// [`AdequacyConfig`]'s sweep parameters (fixed seeds, deterministic
/// DFS, no timestamps); `jobs` is deliberately not serialized so runs
/// at different worker counts compare equal with `cmp`.
#[must_use]
pub fn adequacy_json(report: &AdequacyReport) -> String {
    let c = &report.config;
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"diaframe-bench/adequacy/v1\",");
    let _ = writeln!(
        out,
        "  \"config\": {{ \"seeds\": {}, \"fuel\": {}, \"preemption_bound\": {}, \"dfs_max_runs\": {}, \"dfs_max_steps\": {}, \"neg_seeds\": {}, \"neg_fuel\": {} }},",
        c.seeds, c.fuel, c.preemption_bound, c.dfs_max_runs, c.dfs_max_steps, c.neg_seeds, c.neg_fuel
    );
    let _ = writeln!(
        out,
        "  \"verdict\": \"{}\",",
        if report.pass() { "pass" } else { "fail" }
    );
    let _ = writeln!(out, "  \"proved\": [");
    for (i, r) in report.proved.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{ \"name\": \"{}\", \"sync_model\": \"{}\", \"lock_order\": {}, \"post\": \"{}\", \"clean\": {},\n      {} }}{}",
            json_escape(r.name),
            sync_model_name(r.sync_model),
            r.lock_order,
            json_escape(&r.post_desc),
            r.outcome.clean(),
            outcome_json(&r.outcome),
            if i + 1 == report.proved.len() { "" } else { "," }
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"negatives\": [");
    for (i, r) in report.negatives.iter().enumerate() {
        let findings: Vec<String> = r.outcome.findings();
        let findings: Vec<&str> = findings.iter().map(String::as_str).collect();
        let _ = writeln!(
            out,
            "    {{ \"name\": \"{}\", \"description\": \"{}\", \"expected\": {}, \"forbidden\": {}, \"flags\": {}, \"verdict\": \"{}\",\n      {},\n      \"findings\": {} }}{}",
            json_escape(r.name),
            json_escape(r.description),
            str_array(&r.must),
            str_array(&r.forbidden),
            str_array(&r.flags),
            if r.verdict_ok { "flagged" } else { "missed" },
            outcome_json(&r.outcome),
            str_array(&findings),
            if i + 1 == report.negatives.len() { "" } else { "," }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the adequacy run as a human-readable report: the proved
/// table, the negative table, and every negative's actionable findings.
#[must_use]
pub fn render_adequacy(report: &AdequacyReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} | {:<14} {:>6} {:>5} {:>10} {:>4} | {:<8} postcondition",
        "proved example", "sync model", "runs", "dfs", "steps", "thr", "verdict"
    );
    let _ = writeln!(out, "{}", "-".repeat(110));
    let mut any_order_off = false;
    for r in &report.proved {
        let o = &r.outcome;
        any_order_off |= !r.lock_order;
        let model = format!(
            "{}{}",
            sync_model_name(r.sync_model),
            if r.lock_order { "" } else { "*" }
        );
        let _ = writeln!(
            out,
            "{:<24} | {:<14} {:>6} {:>5} {:>10} {:>4} | {:<8} {}",
            r.name,
            model,
            o.runs,
            o.dfs_runs,
            o.total_steps,
            o.max_threads,
            if o.clean() { "clean" } else { "DIRTY" },
            r.post_desc,
        );
        if !o.clean() {
            for f in o.findings() {
                let _ = writeln!(out, "{:<24} |   !! {f}", "");
            }
        }
    }
    if any_order_off {
        let _ = writeln!(
            out,
            "* lock-order cycle heuristic off: lock ownership is transferred\n  logically between threads (group-held lock); the manifest-deadlock\n  detector stays on."
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<16} | {:<28} {:<28} | {:<8}",
        "negative", "expected", "flagged", "verdict"
    );
    let _ = writeln!(out, "{}", "-".repeat(92));
    for r in &report.negatives {
        let _ = writeln!(
            out,
            "{:<16} | {:<28} {:<28} | {:<8}",
            r.name,
            r.must.join(","),
            r.flags.join(","),
            if r.verdict_ok { "flagged" } else { "MISSED" },
        );
        for f in r.outcome.findings() {
            let _ = writeln!(out, "{:<16} |   -> {f}", "");
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "gate: {} — proved examples must sweep clean (adequacy makes every\ninterleaving safe); negatives must be flagged with their expected\ncategories and an actionable witness.",
        if report.pass() { "PASS" } else { "FAIL" }
    );
    out
}
