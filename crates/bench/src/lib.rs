#![warn(missing_docs)]
//! The benchmark harness regenerating the paper's evaluation (Figure 6
//! and the §6 failing-verification experiment).
//!
//! The `figure6` binary prints the full comparison table; the criterion
//! benches (`verification`, `failing`, `substrate`) measure wall-clock
//! verification times.

use diaframe_examples::{all_examples, count_lines, Example, ToolStat};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Measured statistics for one example.
pub struct Measured {
    /// Row name.
    pub name: &'static str,
    /// Lines of implementation (HeapLang source).
    pub impl_lines: usize,
    /// Lines of annotation (specs + invariants rendering).
    pub annot_lines: usize,
    /// Manual steps (tactics + custom hints).
    pub manual: usize,
    /// Distinct hints used, and how many were custom.
    pub hints: (usize, usize),
    /// Verification wall-clock time.
    pub time: Duration,
    /// Number of verified specifications.
    pub specs: usize,
}

/// Verifies one example and collects its row.
///
/// # Panics
///
/// Panics if the example fails to verify (the whole suite is expected to
/// be green).
#[must_use]
pub fn measure(ex: &dyn Example) -> Measured {
    let start = Instant::now();
    let outcome = ex
        .verify()
        .unwrap_or_else(|e| panic!("{} failed to verify:\n{e}", ex.name()));
    let time = start.elapsed();
    outcome
        .check_all()
        .unwrap_or_else(|e| panic!("{}: trace replay failed: {e}", ex.name()));
    Measured {
        name: ex.name(),
        impl_lines: count_lines(ex.source()),
        annot_lines: count_lines(ex.annotation()),
        manual: outcome.manual_steps,
        hints: (
            outcome.hints_used().len(),
            outcome.custom_hints_used().len(),
        ),
        time,
        specs: outcome.proofs.len(),
    }
}

fn tool(t: Option<ToolStat>) -> String {
    match t {
        Some(t) => format!("{}/{}", t.total, t.proof),
        None => String::from("—"),
    }
}

/// Renders the Figure 6 reproduction table (measured columns side by side
/// with the paper-reported ones).
#[must_use]
#[allow(clippy::missing_panics_doc)]
pub fn figure6_table() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} | {:>5} {:>6} {:>7} {:>9} {:>9} | {:>5} {:>7} {:>7} {:>7} | {:>8} {:>8} {:>8} {:>8}",
        "name", "impl", "annot", "manual", "hints", "time",
        "impl*", "annot*", "hints*", "time*",
        "iris*", "starl*", "caper*", "voila*"
    );
    let _ = writeln!(out, "{}", "-".repeat(150));
    let mut tot = (0usize, 0usize, 0usize, Duration::ZERO);
    for ex in all_examples() {
        let m = measure(ex.as_ref());
        let p = ex.paper();
        tot.0 += m.impl_lines;
        tot.1 += m.annot_lines;
        tot.2 += m.manual;
        tot.3 += m.time;
        let _ = writeln!(
            out,
            "{:<24} | {:>5} {:>6} {:>7} {:>6}({:>1}) {:>8.2?} | {:>5} {:>4}/{:<2} {:>4}({:<1}) {:>7} | {:>8} {:>8} {:>8} {:>8}",
            m.name,
            m.impl_lines,
            m.annot_lines,
            m.manual,
            m.hints.0,
            m.hints.1,
            m.time,
            p.impl_lines,
            p.annot.0,
            p.annot.1,
            p.hints.0,
            p.hints.1,
            p.time,
            tool(p.iris),
            tool(p.starling),
            tool(p.caper),
            tool(p.voila),
        );
    }
    let _ = writeln!(out, "{}", "-".repeat(150));
    let _ = writeln!(
        out,
        "{:<24} | {:>5} {:>6} {:>7} {:>12} {:>8.2?} | paper totals: impl 823, annot 1162/164, custom 154, hints 38(8), time 32:30",
        "total", tot.0, tot.1, tot.2, "", tot.3
    );
    out.push_str("\ncolumns marked * are the paper-reported values (Figure 6); — = not verified by that tool\n");
    out
}

/// The §6 failing-verification experiment: for every example with a
/// sabotaged variant, measure that the failure is detected and how long
/// detection takes compared with the successful verification.
#[must_use]
#[allow(clippy::missing_panics_doc)]
pub fn failing_table() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} | {:>12} {:>12} {:>9}",
        "name", "success", "failure", "fail<succ"
    );
    let _ = writeln!(out, "{}", "-".repeat(64));
    for ex in all_examples() {
        let Some(broken) = ex.verify_broken() else {
            continue;
        };
        assert!(broken.is_err(), "{}: sabotage not detected", ex.name());
        let t0 = Instant::now();
        let _ = ex.verify();
        let ok_time = t0.elapsed();
        let t1 = Instant::now();
        let _ = ex.verify_broken();
        let fail_time = t1.elapsed();
        let _ = writeln!(
            out,
            "{:<24} | {:>10.2?} {:>10.2?} {:>9}",
            ex.name(),
            ok_time,
            fail_time,
            if fail_time <= ok_time { "yes" } else { "no" }
        );
    }
    out.push_str(
        "\npaper (§6): \"In all these cases, failing times were lower than the final\nverification time\" — failures verify fewer specs, so detection is fast.\n",
    );
    out
}

/// The ablation experiment (beyond the paper): re-runs the whole suite
/// with one search-order design decision disabled at a time, reporting how
/// many examples still verify. Quantifies what the decisions documented in
/// DESIGN.md §5 buy.
#[must_use]
pub fn ablation_table() -> String {
    use diaframe_core::{with_ablation_override, Ablation};
    let configs: &[(&str, Ablation)] = &[
        ("baseline", Ablation::none()),
        (
            "oldest-first scan",
            Ablation {
                oldest_first: true,
                ..Ablation::none()
            },
        ),
        (
            "single-pass hints",
            Ablation {
                single_pass: true,
                ..Ablation::none()
            },
        ),
        (
            "no alloc preference",
            Ablation {
                no_alloc_preference: true,
                ..Ablation::none()
            },
        ),
        (
            "all ablated",
            Ablation {
                oldest_first: true,
                single_pass: true,
                no_alloc_preference: true,
            },
        ),
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} | {:>8} {:>7} {:>9} {:>10}",
        "config", "verified", "stuck", "automatic", "time"
    );
    let _ = writeln!(out, "{}", "-".repeat(64));
    for (name, ab) in configs {
        let (mut ok, mut stuck, mut auto) = (0usize, 0usize, 0usize);
        let t0 = Instant::now();
        let mut failures: Vec<&'static str> = Vec::new();
        for ex in all_examples() {
            // Ablated searches may hit engine invariants the normal order
            // upholds; a panic counts as a failure, not a crash.
            let verdict = with_ablation_override(*ab, || {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ex.verify()))
            });
            match verdict {
                Ok(Ok(outcome)) => {
                    ok += 1;
                    if outcome.manual_steps == 0 {
                        auto += 1;
                    }
                }
                Ok(Err(_)) | Err(_) => {
                    stuck += 1;
                    failures.push(ex.name());
                }
            }
        }
        let _ = writeln!(
            out,
            "{:<22} | {:>8} {:>7} {:>9} {:>8.2?}{}",
            name,
            ok,
            stuck,
            auto,
            t0.elapsed(),
            if failures.is_empty() {
                String::new()
            } else {
                format!("   fails: {}", failures.join(", "))
            }
        );
    }
    out.push_str(
        "\neach row disables one search-order decision from DESIGN.md §5; the\nbaseline row is the normal engine (all 24 verify).\n",
    );
    out
}

/// Aggregate claims from §6, re-checked on the reproduction.
#[must_use]
#[allow(clippy::missing_panics_doc)]
pub fn aggregate_table() -> String {
    let mut automatic = 0usize;
    let mut total = 0usize;
    let mut manual = 0usize;
    let mut impl_lines = 0usize;
    for ex in all_examples() {
        let m = measure(ex.as_ref());
        total += 1;
        if m.manual == 0 {
            automatic += 1;
        }
        manual += m.manual;
        impl_lines += m.impl_lines;
    }
    format!(
        "examples: {total}\nfully automatic: {automatic}  (paper: 7 of 24)\n\
         manual steps per implementation line: {:.3}  (paper: ~0.4 proof lines/impl line; \
         our unit is tactics+hints, not lines)\n",
        manual as f64 / impl_lines as f64
    )
}
