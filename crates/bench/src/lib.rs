#![warn(missing_docs)]
//! The benchmark harness regenerating the paper's evaluation (Figure 6
//! and the §6 failing-verification experiment).
//!
//! The `figure6` binary prints the full comparison table; the
//! `adequacy` binary runs the schedule-sweep adequacy experiment (see
//! [`adequacy`]); the criterion benches (`verification`, `failing`,
//! `substrate`, `hint_search`) measure wall-clock verification times.
//!
//! Measurement and rendering are split: the [`suite`] driver verifies
//! every `(example, variant, ablation)` task once — in parallel, on
//! `diaframe_core`'s work pool — into a [`SuiteCache`], and the table
//! functions are pure cache readers. Rendered output therefore does not
//! depend on the worker count, which the equivalence tests check
//! byte-for-byte.

pub mod adequacy;
mod cache;
pub mod diff;
pub mod proto;
pub mod server;
pub mod store;
mod suite;

pub use adequacy::{
    adequacy_json, render_adequacy, run_adequacy, AdequacyConfig, AdequacyReport, NegativeRow,
    ProvedRow,
};
pub use cache::{CachedRun, SuiteCache, Variant};
pub use diff::{diff_snapshots, DiffOptions, DiffReport};
pub use store::{store_key, ProofStore, StoreStats};
pub use suite::{ablation_configs, assert_counter_invariants, prefetch_ablations, prefetch_suite};

use diaframe_core::{CounterSnapshot, TelemetrySession};
use diaframe_examples::{all_examples, count_lines, Example, ToolStat};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Measured statistics for one example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Measured {
    /// Row name.
    pub name: &'static str,
    /// Lines of implementation (HeapLang source).
    pub impl_lines: usize,
    /// Lines of annotation (specs + invariants rendering).
    pub annot_lines: usize,
    /// Manual steps (tactics + custom hints).
    pub manual: usize,
    /// Distinct hints used, and how many were custom.
    pub hints: (usize, usize),
    /// Proof-search wall-clock time.
    pub time: Duration,
    /// Independent trace-replay wall-clock time.
    pub check_time: Duration,
    /// Number of verified specifications.
    pub specs: usize,
    /// Search-effort counters for the run (see
    /// [`CounterSnapshot::check_invariants`] for the invariants they
    /// obey).
    pub counters: CounterSnapshot,
}

/// Verifies one example from scratch (no cache) and collects its row.
/// The criterion benches use this; reports should go through
/// [`measure_cached`] so repeated tables share one verification.
///
/// # Panics
///
/// Panics if the example fails to verify (the whole suite is expected to
/// be green).
#[must_use]
pub fn measure(ex: &dyn Example) -> Measured {
    let session = TelemetrySession::new(ex.name());
    let _guard = session.install();
    let start = Instant::now();
    let outcome = ex
        .verify()
        .unwrap_or_else(|e| panic!("{} failed to verify:\n{e}", ex.name()));
    let time = start.elapsed();
    let t1 = Instant::now();
    outcome
        .check_all()
        .unwrap_or_else(|e| panic!("{}: trace replay failed: {e}", ex.name()));
    let check_time = t1.elapsed();
    row(ex, outcome.manual_steps, outcome.hints_used().len(), outcome.custom_hints_used().len(), outcome.proofs.len(), time, check_time, session.snapshot())
}

/// Collects one example's row from the shared cache, verifying it only
/// on the first request.
///
/// # Panics
///
/// Panics if the example fails to verify or its trace fails replay.
#[must_use]
pub fn measure_cached(cache: &SuiteCache, ex: &dyn Example) -> Measured {
    let run = cache.get_or_run(ex, Variant::Ok);
    let outcome = run.expect_ok(ex.name());
    row(ex, outcome.manual_steps, outcome.hints_used().len(), outcome.custom_hints_used().len(), outcome.proofs.len(), run.search_time, run.check_time, run.counters.clone())
}

#[allow(clippy::too_many_arguments)]
fn row(
    ex: &dyn Example,
    manual: usize,
    hints: usize,
    custom: usize,
    specs: usize,
    time: Duration,
    check_time: Duration,
    counters: CounterSnapshot,
) -> Measured {
    Measured {
        name: ex.name(),
        impl_lines: count_lines(ex.source()),
        annot_lines: count_lines(ex.annotation()),
        manual,
        hints: (hints, custom),
        time,
        check_time,
        specs,
        counters,
    }
}

/// The Figure 6 rows, in the paper's row order, from the shared cache.
///
/// # Panics
///
/// Panics if any example fails to verify.
#[must_use]
pub fn figure6_rows(cache: &SuiteCache) -> Vec<Measured> {
    all_examples()
        .iter()
        .map(|ex| measure_cached(cache, ex.as_ref()))
        .collect()
}

fn tool(t: Option<ToolStat>) -> String {
    match t {
        Some(t) => format!("{}/{}", t.total, t.proof),
        None => String::from("—"),
    }
}

/// Renders the Figure 6 reproduction table (measured columns side by
/// side with the paper-reported ones) from already-measured rows. Pure:
/// equal rows render byte-identically.
///
/// # Panics
///
/// Panics if `rows` does not line up with the example list.
#[must_use]
pub fn render_figure6(rows: &[Measured]) -> String {
    let examples = all_examples();
    assert_eq!(rows.len(), examples.len(), "one row per example");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} | {:>5} {:>6} {:>7} {:>9} {:>9} | {:>5} {:>7} {:>7} {:>7} | {:>8} {:>8} {:>8} {:>8}",
        "name", "impl", "annot", "manual", "hints", "time",
        "impl*", "annot*", "hints*", "time*",
        "iris*", "starl*", "caper*", "voila*"
    );
    let _ = writeln!(out, "{}", "-".repeat(150));
    let mut tot = (0usize, 0usize, 0usize, Duration::ZERO);
    for (m, ex) in rows.iter().zip(&examples) {
        assert_eq!(m.name, ex.name(), "rows must be in Figure 6 order");
        let p = ex.paper();
        tot.0 += m.impl_lines;
        tot.1 += m.annot_lines;
        tot.2 += m.manual;
        tot.3 += m.time;
        let _ = writeln!(
            out,
            "{:<24} | {:>5} {:>6} {:>7} {:>6}({:>1}) {:>8.2?} | {:>5} {:>4}/{:<2} {:>4}({:<1}) {:>7} | {:>8} {:>8} {:>8} {:>8}",
            m.name,
            m.impl_lines,
            m.annot_lines,
            m.manual,
            m.hints.0,
            m.hints.1,
            m.time,
            p.impl_lines,
            p.annot.0,
            p.annot.1,
            p.hints.0,
            p.hints.1,
            p.time,
            tool(p.iris),
            tool(p.starling),
            tool(p.caper),
            tool(p.voila),
        );
    }
    let _ = writeln!(out, "{}", "-".repeat(150));
    let _ = writeln!(
        out,
        "{:<24} | {:>5} {:>6} {:>7} {:>12} {:>8.2?} | paper totals: impl 823, annot 1162/164, custom 154, hints 38(8), time 32:30",
        "total", tot.0, tot.1, tot.2, "", tot.3
    );
    out.push_str("\ncolumns marked * are the paper-reported values (Figure 6); — = not verified by that tool\n");
    out
}

/// Renders the Figure 6 reproduction table from the shared cache.
///
/// # Panics
///
/// Panics if any example fails to verify.
#[must_use]
pub fn figure6_table(cache: &SuiteCache) -> String {
    render_figure6(&figure6_rows(cache))
}

/// Renders the deterministic *verdict table* for the given examples:
/// what was proved and with how much manual help — and none of the
/// timings. A cold search and a store replay that prove the same things
/// render byte-identically (verdicts, spec counts and hint usage all
/// derive from the byte-deterministic traces), which is exactly what
/// the `diaframe serve` gate and `figure6 --store` compare with `cmp`.
///
/// # Panics
///
/// Panics if an example fails to verify.
#[must_use]
pub fn verdict_table_for(cache: &SuiteCache, examples: &[&dyn Example]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} | {:>5} {:>6} {:>9} | verdict",
        "name", "specs", "manual", "hints"
    );
    let _ = writeln!(out, "{}", "-".repeat(64));
    for ex in examples {
        let run = cache.get_or_run(*ex, Variant::Ok);
        let outcome = run.expect_ok(ex.name());
        let _ = writeln!(
            out,
            "{:<24} | {:>5} {:>6} {:>6}({:>1}) | verified",
            ex.name(),
            outcome.proofs.len(),
            outcome.manual_steps,
            outcome.hints_used().len(),
            outcome.custom_hints_used().len()
        );
    }
    out
}

/// The verdict table over the whole Figure 6 suite, in row order.
///
/// # Panics
///
/// Panics if any example fails to verify.
#[must_use]
pub fn verdict_table(cache: &SuiteCache) -> String {
    let examples = all_examples();
    let refs: Vec<&dyn Example> = examples.iter().map(AsRef::as_ref).collect();
    verdict_table_for(cache, &refs)
}

/// The §6 failing-verification experiment: for every example with a
/// sabotaged variant, check that the failure is detected and compare how
/// long detection took with the successful verification. Both timings
/// come from the cache, so each variant is verified exactly once.
///
/// # Panics
///
/// Panics if a sabotaged variant is *not* rejected.
#[must_use]
pub fn failing_table(cache: &SuiteCache) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} | {:>12} {:>12} {:>9}",
        "name", "success", "failure", "fail<succ"
    );
    let _ = writeln!(out, "{}", "-".repeat(64));
    for ex in all_examples() {
        let broken = cache.get_or_run(ex.as_ref(), Variant::Broken);
        let Some(broken_outcome) = &broken.outcome else {
            continue;
        };
        assert!(
            broken_outcome.is_err(),
            "{}: sabotage not detected",
            ex.name()
        );
        let ok = cache.get_or_run(ex.as_ref(), Variant::Ok);
        let (ok_time, fail_time) = (ok.search_time, broken.search_time);
        let _ = writeln!(
            out,
            "{:<24} | {:>10.2?} {:>10.2?} {:>9}",
            ex.name(),
            ok_time,
            fail_time,
            if fail_time <= ok_time { "yes" } else { "no" }
        );
    }
    out.push_str(
        "\npaper (§6): \"In all these cases, failing times were lower than the final\nverification time\" — failures verify fewer specs, so detection is fast.\n",
    );
    out
}

/// The ablation experiment (beyond the paper): re-runs the whole suite
/// with one search-order design decision disabled at a time, reporting
/// how many examples still verify. Quantifies what the decisions
/// documented in DESIGN.md §5 buy. The baseline row shares its cache
/// entries with Figure 6.
#[must_use]
pub fn ablation_table(cache: &SuiteCache) -> String {
    use diaframe_core::with_ablation_override;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} | {:>8} {:>7} {:>9} {:>10}",
        "config", "verified", "stuck", "automatic", "time"
    );
    let _ = writeln!(out, "{}", "-".repeat(64));
    for (name, ab) in ablation_configs() {
        let (mut ok, mut stuck, mut auto) = (0usize, 0usize, 0usize);
        let mut search = Duration::ZERO;
        let mut failures: Vec<&'static str> = Vec::new();
        for ex in all_examples() {
            // A panic under an ablated order is memoized as an error by
            // the cache (engine invariants the normal order upholds).
            let run = with_ablation_override(ab, || cache.get_or_run(ex.as_ref(), Variant::Ok));
            search += run.search_time;
            match &run.outcome {
                Some(Ok(outcome)) => {
                    ok += 1;
                    if outcome.manual_steps == 0 {
                        auto += 1;
                    }
                }
                Some(Err(_)) | None => {
                    stuck += 1;
                    failures.push(ex.name());
                }
            }
        }
        let _ = writeln!(
            out,
            "{:<22} | {:>8} {:>7} {:>9} {:>8.2?}{}",
            name,
            ok,
            stuck,
            auto,
            search,
            if failures.is_empty() {
                String::new()
            } else {
                format!("   fails: {}", failures.join(", "))
            }
        );
    }
    out.push_str(
        "\neach row disables one search-order decision from DESIGN.md §5; the\nbaseline row is the normal engine (all 24 verify); time sums the\nper-example search times (runs execute in parallel).\n",
    );
    out
}

/// Aggregate claims from §6, re-checked on the reproduction.
///
/// # Panics
///
/// Panics if any example fails to verify.
#[must_use]
pub fn aggregate_table(cache: &SuiteCache) -> String {
    let rows = figure6_rows(cache);
    let total = rows.len();
    let automatic = rows.iter().filter(|m| m.manual == 0).count();
    let manual: usize = rows.iter().map(|m| m.manual).sum();
    let impl_lines: usize = rows.iter().map(|m| m.impl_lines).sum();
    format!(
        "examples: {total}\nfully automatic: {automatic}  (paper: 7 of 24)\n\
         manual steps per implementation line: {:.3}  (paper: ~0.4 proof lines/impl line; \
         our unit is tactics+hints, not lines)\n",
        manual as f64 / impl_lines as f64
    )
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1000.0)
}

/// Renders a set of telemetry span duration samples as the v6 `spans`
/// JSON object: per span name (sorted), the sample count, total, and
/// the p50/p95/max duration in nanoseconds.
fn spans_json(mut durs: Vec<(&'static str, Vec<u64>)>) -> String {
    durs.sort_by_key(|(name, _)| *name);
    let mut parts: Vec<String> = Vec::new();
    for (name, mut d) in durs {
        if d.is_empty() {
            continue;
        }
        d.sort_unstable();
        let count = d.len();
        let total: u64 = d.iter().sum();
        let p50 = diaframe_core::telemetry::percentile(&d, 50);
        let p95 = diaframe_core::telemetry::percentile(&d, 95);
        let max = *d.last().expect("non-empty samples");
        parts.push(format!(
            "\"{}\": {{ \"count\": {count}, \"total_ns\": {total}, \"p50_ns\": {p50}, \"p95_ns\": {p95}, \"max_ns\": {max} }}",
            json_escape(name)
        ));
    }
    format!("{{ {} }}", parts.join(", "))
}

/// Renders the top-`n` profiler hotspots — `(kind, label)` pairs ranked
/// by self time — as the `figure6 --hotspots` table. Self time is the
/// span's wall-clock minus its same-lane children, so a rule that is
/// expensive *itself* ranks above one that merely sits atop a deep
/// subtree; `count` is the span kind's payload counter (probes for
/// `find_hint` batches, replayed steps for the checker).
#[must_use]
pub fn render_hotspots(profile: &diaframe_core::ProfileSession, n: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:<28} | {:>7} {:>11} {:>11} {:>9}",
        "kind", "label", "calls", "self ms", "cum ms", "count"
    );
    let _ = writeln!(out, "{}", "-".repeat(88));
    #[allow(clippy::cast_precision_loss)]
    for h in profile.hotspots(n) {
        let _ = writeln!(
            out,
            "{:<12} {:<28} | {:>7} {:>11.3} {:>11.3} {:>9}",
            h.kind.name(),
            h.label,
            h.calls,
            h.self_ns as f64 / 1e6,
            h.cum_ns as f64 / 1e6,
            h.count
        );
    }
    out.push_str(
        "\nself = span wall-clock minus same-lane child spans; cum = span wall-clock;\ncount = the kind's payload (hint probes, checker steps, solver facts).\n",
    );
    out
}

/// Cross-checks the profiler's span rollups against the flat telemetry
/// counters summed over every cached run: the span tree and the counter
/// ledger are independent instrumentation paths, so agreement means
/// neither lost events.
///
/// Asserted identities:
///
/// * Σ `find_hint` span counts == Σ `probes_attempted` + Σ
///   `spec_wasted_probes` — a cancelled speculative worker's probes
///   stay in the span tree but leave the winning session's ledger via
///   `spec_wasted_probes`;
/// * Σ (`check` + `check_window`) span counts == Σ `checker_steps`.
///
/// # Errors
///
/// Returns the violated identity with both sides' values.
pub fn profile_identity_report(
    profile: &diaframe_core::ProfileSession,
    cache: &SuiteCache,
) -> Result<String, String> {
    use diaframe_core::SpanKind;
    let rollup = profile.rollup();
    let (mut probes, mut wasted, mut steps) = (0u64, 0u64, 0u64);
    for (_, run) in cache.snapshot() {
        probes += run.counters.probes_attempted;
        wasted += run.counters.spec_wasted_probes;
        steps += run.counters.checker_steps;
    }
    let find_hint = rollup[SpanKind::FindHint.index()].count;
    if find_hint != probes + wasted {
        return Err(format!(
            "profile identity violated: find_hint span count {find_hint} != \
             probes_attempted {probes} + spec_wasted_probes {wasted}"
        ));
    }
    let check =
        rollup[SpanKind::Check.index()].count + rollup[SpanKind::CheckWindow.index()].count;
    if check != steps {
        return Err(format!(
            "profile identity violated: check+check_window span count {check} != \
             checker_steps {steps}"
        ));
    }
    Ok(format!(
        "profile identity ok: find_hint span count {find_hint} == probes_attempted {probes} + spec_wasted_probes {wasted}\n\
         profile identity ok: check+check_window span count {check} == checker_steps {steps}"
    ))
}

/// The warm-vs-cold proof-store experiment attached to a v7 snapshot by
/// `figure6 --store`: the same suite prefetched twice against one
/// persistent [`ProofStore`] — a cold pass that searches and populates,
/// then a warm pass from a fresh [`SuiteCache`] that replays.
#[derive(Debug, Clone)]
pub struct StoreExperiment {
    /// Suite wall-clock of the cold (populate) pass.
    pub cold_wall: Duration,
    /// Suite wall-clock of the warm (replay) pass.
    pub warm_wall: Duration,
    /// Store counter deltas attributable to the cold pass.
    pub cold: StoreStats,
    /// Store counter deltas attributable to the warm pass.
    pub warm: StoreStats,
    /// Entries resident after both passes.
    pub entries: usize,
    /// Bytes resident after both passes.
    pub bytes: u64,
}

impl StoreExperiment {
    /// Cold wall over warm wall (how many times faster the warm pass
    /// ran); infinite if the warm pass rounded to zero.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.cold_wall.as_secs_f64() / self.warm_wall.as_secs_f64().max(f64::EPSILON)
    }

    fn json_object(&self) -> String {
        format!(
            "{{ \"cold_wall_ms\": {}, \"warm_wall_ms\": {}, \"speedup\": {:.2}, \
             \"entries\": {}, \"bytes\": {}, \"cold\": {}, \"warm\": {} }}",
            ms(self.cold_wall),
            ms(self.warm_wall),
            self.speedup(),
            self.entries,
            self.bytes,
            self.cold.json_object(),
            self.warm.json_object()
        )
    }
}

/// Serializes the Figure 6 run as JSON (schema
/// `diaframe-bench/figure6/v7`) for committing as a `BENCH_*.json`
/// snapshot: per-example search/check/total timings and search-effort
/// counters, the run's worker count, stack size, wall-clock, cache
/// accounting, and the suite-wide counter aggregate.
///
/// v2 extends v1 with the `telemetry` blocks (one per example, one
/// aggregated); every v1 field is unchanged, so v1 consumers that
/// ignore unknown keys keep working. v3 adds the term-interner
/// counters (`interner_hits`/`interner_misses`/`zonk_cache_hits`/
/// `normalize_cache_hits`) to every telemetry block; timings in a v3
/// snapshot are measured with the hash-consing interner active and are
/// not comparable to v2 timings run without it. v4 adds the incremental
/// pure-solver counters (`solver_facts_asserted`/`solver_merges`/
/// `solver_undo_ops`/`solver_queries_incremental`/
/// `solver_queries_rebuild`/`solver_verdict_hits`/
/// `solver_verdict_misses`); timings in a v4 snapshot are measured with
/// the persistent backtrackable e-graph solver active
/// (`DIAFRAME_EGRAPH` unset) and are not comparable to v3 timings run
/// on the rebuild-per-query path. v5 adds the intra-verification
/// parallelism counters (`spec_spawned`/`spec_won`/`spec_cancelled`/
/// `spec_wasted_probes`/`check_overlap_ms`) to every telemetry block;
/// timings in a v5 snapshot are measured with speculative branch search
/// and pipelined checking active (`DIAFRAME_SPECULATE` and
/// `DIAFRAME_PIPELINE_CHECK` unset), which changes wall-clock but never
/// traces or verdicts. v6 adds the `spans` duration-histogram blocks
/// (one per example, one aggregated over the suite): for each
/// telemetry span kind (`search`/`find_hint`/`check`), the sample
/// count, total, and p50/p95/max duration in nanoseconds — the
/// spread behind the flat `search_ms` column, and the input to the
/// `figure6 --diff` regression reporter. The per-example jobs-scaling
/// sweep lives in a separate snapshot (see [`jobs_sweep_json`], schema
/// `diaframe-bench/jobs-sweep/v1`), keeping this file's shape stable
/// for per-field consumers. v7 adds the persistent-proof-store counters
/// (`store_hits`/`store_misses`/`store_corruptions`/`store_evictions`/
/// `store_replay_ms`/`store_search_ms`) to every telemetry block, and a
/// top-level `store` block (`null` unless the run was `figure6
/// --store`) recording the warm-vs-cold experiment: both suite walls,
/// per-pass store counters, resident entries/bytes and the speedup.
/// Store counters are cache-temperature, so the `--diff` reporter
/// treats them as informational, never gating.
///
/// # Panics
///
/// Panics if any example fails to verify or its counters violate the
/// [`CounterSnapshot::check_invariants`] accounting identities.
#[must_use]
pub fn figure6_json(
    cache: &SuiteCache,
    jobs: usize,
    wall: Duration,
    store: Option<&StoreExperiment>,
) -> String {
    let rows = figure6_rows(cache);
    let mut aggregate = CounterSnapshot::default();
    for m in &rows {
        m.counters
            .check_invariants()
            .unwrap_or_else(|e| panic!("{}: counter invariant violated: {e}", m.name));
        aggregate.merge(&m.counters);
    }
    // Span duration histograms come straight from the cached sessions
    // (every request below is a warm hit), keeping `Measured` — which
    // the driver-equivalence tests compare across worker counts — free
    // of wall-clock samples.
    let examples = all_examples();
    let mut agg_durs: std::collections::BTreeMap<&'static str, Vec<u64>> =
        std::collections::BTreeMap::new();
    let mut per_spans: Vec<String> = Vec::with_capacity(examples.len());
    for ex in &examples {
        let run = cache.get_or_run(ex.as_ref(), Variant::Ok);
        let durs = run.session.span_durations();
        for (name, d) in &durs {
            agg_durs.entry(name).or_default().extend(d);
        }
        per_spans.push(spans_json(durs));
    }
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"diaframe-bench/figure6/v7\",");
    let _ = writeln!(out, "  \"jobs\": {jobs},");
    let _ = writeln!(
        out,
        "  \"stack_mb\": {},",
        diaframe_core::verify::session_stack_bytes() / (1024 * 1024)
    );
    let _ = writeln!(out, "  \"wall_ms\": {},", ms(wall));
    let _ = writeln!(
        out,
        "  \"cache\": {{ \"hits\": {}, \"misses\": {} }},",
        cache.hits(),
        cache.misses()
    );
    let _ = writeln!(
        out,
        "  \"store\": {},",
        store.map_or_else(|| String::from("null"), StoreExperiment::json_object)
    );
    let _ = writeln!(out, "  \"telemetry\": {},", aggregate.json_object());
    let _ = writeln!(
        out,
        "  \"spans\": {},",
        spans_json(agg_durs.into_iter().collect())
    );
    let _ = writeln!(out, "  \"examples\": [");
    for (i, m) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{ \"name\": \"{}\", \"specs\": {}, \"manual\": {}, \"hints\": {}, \"custom_hints\": {}, \"search_ms\": {}, \"check_ms\": {}, \"total_ms\": {},\n      \"telemetry\": {},\n      \"spans\": {} }}{}",
            json_escape(m.name),
            m.specs,
            m.manual,
            m.hints.0,
            m.hints.1,
            ms(m.time),
            ms(m.check_time),
            ms(m.time + m.check_time),
            m.counters.json_object(),
            per_spans[i],
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// One level of the jobs-scaling sweep: the whole suite re-verified from
/// a fresh cache at one worker count.
#[derive(Debug)]
pub struct SweepLevel {
    /// The worker count this level ran at.
    pub jobs: usize,
    /// Suite wall-clock at this level.
    pub wall: Duration,
    /// The per-example rows measured at this level.
    pub rows: Vec<Measured>,
}

impl SweepLevel {
    /// The example with the largest search+check time at this level —
    /// the suite's critical path once `jobs` exceeds the example count.
    ///
    /// # Panics
    ///
    /// Panics on an empty row set (the suite always has examples).
    #[must_use]
    pub fn slowest(&self) -> &Measured {
        self.rows
            .iter()
            .max_by_key(|m| m.time + m.check_time)
            .expect("sweep level with no rows")
    }

    /// Sum of per-example search times at this level.
    #[must_use]
    pub fn aggregate_search(&self) -> Duration {
        self.rows.iter().map(|m| m.time).sum()
    }
}

/// Runs the whole suite once per entry of `levels`, each from a **fresh**
/// cache (so every level re-verifies everything), and collects the
/// scaling data. This is the `figure6 --jobs-sweep` backend: it answers
/// both "does the suite scale?" (`wall`) and — the interesting question
/// for intra-verification parallelism — "does the *slowest single
/// example* scale?", which spec-level fan-out alone cannot improve.
#[must_use]
pub fn run_jobs_sweep(levels: &[usize], include_broken: bool) -> Vec<SweepLevel> {
    levels
        .iter()
        .map(|&jobs| {
            let cache = SuiteCache::new();
            let wall = prefetch_suite(&cache, jobs, include_broken);
            SweepLevel {
                jobs,
                wall,
                rows: figure6_rows(&cache),
            }
        })
        .collect()
}

/// Renders the jobs-scaling sweep as a human-readable table.
#[must_use]
pub fn render_jobs_sweep(levels: &[SweepLevel]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<6} | {:>10} {:>12} | {:<24} {:>10}",
        "jobs", "suite wall", "sum(search)", "slowest example", "its time"
    );
    let _ = writeln!(out, "{}", "-".repeat(72));
    for l in levels {
        let slow = l.slowest();
        let _ = writeln!(
            out,
            "{:<6} | {:>10.2?} {:>12.2?} | {:<24} {:>10.2?}",
            l.jobs,
            l.wall,
            l.aggregate_search(),
            slow.name,
            slow.time + slow.check_time,
        );
    }
    out.push_str(
        "\nsum(search) is per-example search time summed (the work done);\nslowest-example time shrinking as jobs grow is intra-verification\nparallelism — spec-level fan-out alone cannot speed up one example.\n",
    );
    out
}

/// Serializes a jobs-scaling sweep as JSON (schema
/// `diaframe-bench/jobs-sweep/v1`) for committing as
/// `BENCH_jobs_sweep.json` — deliberately a separate snapshot from
/// [`figure6_json`], whose per-run shape (one `search_ms` per example)
/// per-field consumers rely on.
#[must_use]
pub fn jobs_sweep_json(levels: &[SweepLevel]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"diaframe-bench/jobs-sweep/v1\",");
    let _ = writeln!(out, "  \"levels\": [");
    for (i, l) in levels.iter().enumerate() {
        let slow = l.slowest();
        let _ = writeln!(out, "    {{ \"jobs\": {},", l.jobs);
        let _ = writeln!(out, "      \"suite_wall_ms\": {},", ms(l.wall));
        let _ = writeln!(
            out,
            "      \"aggregate_search_ms\": {},",
            ms(l.aggregate_search())
        );
        let _ = writeln!(
            out,
            "      \"slowest_example\": {{ \"name\": \"{}\", \"search_ms\": {}, \"total_ms\": {} }},",
            json_escape(slow.name),
            ms(slow.time),
            ms(slow.time + slow.check_time)
        );
        let _ = writeln!(out, "      \"examples\": [");
        for (j, m) in l.rows.iter().enumerate() {
            let _ = writeln!(
                out,
                "        {{ \"name\": \"{}\", \"search_ms\": {}, \"check_ms\": {}, \"total_ms\": {}, \"spec_spawned\": {}, \"spec_won\": {}, \"check_overlap_ms\": {} }}{}",
                json_escape(m.name),
                ms(m.time),
                ms(m.check_time),
                ms(m.time + m.check_time),
                m.counters.spec_spawned,
                m.counters.spec_won,
                m.counters.check_overlap_ms,
                if j + 1 == l.rows.len() { "" } else { "," }
            );
        }
        let _ = writeln!(
            out,
            "      ]\n    }}{}",
            if i + 1 == levels.len() { "" } else { "," }
        );
    }
    out.push_str("  ]\n}\n");
    out
}
