//! The persistent, content-addressed proof store: search once, replay
//! forever.
//!
//! Proof *search* dominates the harness's wall-clock; the independent
//! trace replay is roughly an order of magnitude cheaper (see the
//! `replay_vs_search` bench). Since PR 5 pinned traces byte-deterministic
//! for a fixed engine configuration, a completed search is a pure
//! function of `(spec, hints, engine version, semantics-affecting
//! knobs)` — so this module caches it on disk, keyed by a SHA-256
//! fingerprint of exactly those inputs
//! ([`diaframe_core::engine_fingerprint`] plus the example's sources and
//! the thread's [`Ablation`]).
//!
//! Trust model: a stored trace is **never believed blindly**. A lookup
//! only counts as a hit after the entry's checksum matches *and* the
//! decoded traces replay cleanly through the independent
//! [`checker`](diaframe_core::checker) — the same TCB that guards fresh
//! searches. Any corruption (truncation, bit flips, garbage, or a trace
//! the checker refuses) demotes the lookup to a miss: the entry is
//! deleted, the search re-runs, and the repaired result is re-inserted.
//! A corrupt store can cost time; it can never change a verdict.
//!
//! On-disk layout under the store root:
//!
//! ```text
//! root/
//!   index.json            # {version, engine, clock, entries: [{key, bytes, last_used}]}
//!   objects/<key>.json    # {"checksum":"<sha256>","payload":{…}}
//! ```
//!
//! Entry files are immutable once written: writers stage a temp file and
//! `rename` it into place, so concurrent readers see either the complete
//! entry or nothing — never a half-written file. Eviction is LRU by a
//! persisted *logical* clock (not wall time, which would make store
//! bytes nondeterministic) against an optional byte budget.

use crate::cache::{run_once, CachedRun, Variant};
use diaframe_core::trace_json::{
    parse_json_value, traces_from_compact_value, traces_to_compact_json, JsonValue,
};
use diaframe_core::{
    current_ablation, engine_fingerprint, sha256_hex, telemetry, Ablation, Fingerprinter,
    TelemetrySession, VerifiedProof,
};
use diaframe_examples::{Example, ExampleOutcome};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// The revision of the on-disk envelope + index layout. Bump on any
/// incompatible change; old entries then read as corrupt and are
/// re-searched (the store is a cache, so that is always safe).
pub const STORE_FORMAT: u32 = 1;

/// The content-addressed key of one store entry: a SHA-256 fingerprint
/// over everything that determines the proof trace.
///
/// The engine fingerprint covers crate versions, the trace-format
/// revision and the process-wide semantics knobs
/// (`DIAFRAME_EGRAPH`/`DIAFRAME_INTERN`/`DIAFRAME_SPECULATE`/hint
/// index); the per-thread [`Ablation`] is keyed here because it varies
/// per lookup, not per process.
#[must_use]
pub fn store_key(ex: &dyn Example, variant: Variant, ablation: Ablation) -> String {
    let mut fp = Fingerprinter::new();
    fp.field("engine", &engine_fingerprint());
    fp.field("example", &ex.cache_key());
    fp.field("source", ex.source());
    fp.field("annotation", ex.annotation());
    fp.field(
        "variant",
        match variant {
            Variant::Ok => "ok",
            Variant::Broken => "broken",
        },
    );
    fp.field(
        "ablation",
        &format!(
            "oldest_first={},single_pass={},no_alloc_preference={}",
            ablation.oldest_first, ablation.single_pass, ablation.no_alloc_preference
        ),
    );
    fp.finish()
}

/// Counter totals for one store, independent of any telemetry session
/// (the `diaframe serve` stats endpoint and the `figure6 --store` report
/// read these; the same events also feed the per-run telemetry counters
/// of [`diaframe_core::CounterSnapshot`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups answered by a successfully replayed entry.
    pub hits: u64,
    /// Lookups that fell through to a full search.
    pub misses: u64,
    /// Entries rejected as corrupt (each also counted as a miss).
    pub corruptions: u64,
    /// Entries evicted by the LRU byte-budget sweep.
    pub evictions: u64,
    /// Milliseconds spent replaying stored traces on the hit path.
    pub replay_ms: u64,
    /// Milliseconds spent in full search on the miss path.
    pub search_ms: u64,
}

impl StoreStats {
    /// Counterwise difference `self - earlier`, for attributing counter
    /// deltas to one pass over a shared store.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds, via underflow) if `earlier` is not an
    /// earlier snapshot of the same store — counters only grow.
    #[must_use]
    pub fn delta_since(&self, earlier: &StoreStats) -> StoreStats {
        StoreStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            corruptions: self.corruptions - earlier.corruptions,
            evictions: self.evictions - earlier.evictions,
            replay_ms: self.replay_ms - earlier.replay_ms,
            search_ms: self.search_ms - earlier.search_ms,
        }
    }

    /// Renders the stats as a JSON object with a fixed key order.
    #[must_use]
    pub fn json_object(&self) -> String {
        format!(
            "{{ \"hits\": {}, \"misses\": {}, \"corruptions\": {}, \"evictions\": {}, \
             \"replay_ms\": {}, \"search_ms\": {} }}",
            self.hits, self.misses, self.corruptions, self.evictions, self.replay_ms,
            self.search_ms
        )
    }
}

#[derive(Debug, Clone)]
struct IndexEntry {
    bytes: u64,
    last_used: u64,
}

struct Index {
    clock: u64,
    entries: HashMap<String, IndexEntry>,
    /// In-memory LRU clocks ahead of the persisted index. Hits only
    /// mark this (persisting on every hit would serialize the whole
    /// warm path behind the index file); inserts, evictions and drop
    /// write through.
    dirty: bool,
}

impl Index {
    fn total_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.bytes).sum()
    }
}

/// A persistent content-addressed proof store rooted at one directory.
///
/// Cheap to share behind an [`Arc`]; all methods take `&self`. Lookups
/// for the same key are *single-flighted*: concurrent requests block on
/// the one in-flight search/replay instead of duplicating it, exactly
/// like the in-memory [`SuiteCache`](crate::SuiteCache).
pub struct ProofStore {
    root: PathBuf,
    budget: Option<u64>,
    index: Mutex<Index>,
    inflight: Mutex<HashMap<String, Arc<OnceLock<Arc<CachedRun>>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    corruptions: AtomicU64,
    evictions: AtomicU64,
    replay_ms: AtomicU64,
    search_ms: AtomicU64,
}

impl ProofStore {
    /// Opens (creating if necessary) the store rooted at `root`, with an
    /// optional LRU byte budget for entry files (`None` = unbounded).
    ///
    /// A missing or unreadable index is rebuilt by scanning the objects
    /// directory — the index is an optimization, never a source of
    /// truth, so a crash between an object rename and an index write
    /// loses nothing.
    ///
    /// # Errors
    ///
    /// Returns the error if the store directories cannot be created.
    pub fn open(root: &Path, budget: Option<u64>) -> io::Result<ProofStore> {
        fs::create_dir_all(root.join("objects"))?;
        let mut index = read_index(&root.join("index.json")).unwrap_or(Index {
            clock: 0,
            entries: HashMap::new(),
            dirty: false,
        });
        // Heal the index against the objects directory: drop entries
        // whose file vanished, adopt files the index never recorded.
        let mut on_disk = HashMap::new();
        for dirent in fs::read_dir(root.join("objects"))? {
            let dirent = dirent?;
            let name = dirent.file_name();
            let Some(key) = name.to_str().and_then(|n| n.strip_suffix(".json")) else {
                continue;
            };
            on_disk.insert(key.to_owned(), dirent.metadata()?.len());
        }
        index.entries.retain(|k, _| on_disk.contains_key(k));
        for (key, bytes) in on_disk {
            index
                .entries
                .entry(key)
                .or_insert(IndexEntry { bytes, last_used: 0 });
        }
        Ok(ProofStore {
            root: root.to_owned(),
            budget,
            index: Mutex::new(index),
            inflight: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corruptions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            replay_ms: AtomicU64::new(0),
            search_ms: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The path of the entry file for `key` (immutable once present;
    /// the corruption tests overwrite these directly).
    #[must_use]
    pub fn entry_path(&self, key: &str) -> PathBuf {
        self.root.join("objects").join(format!("{key}.json"))
    }

    /// Counter totals since this handle was opened.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            corruptions: self.corruptions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            replay_ms: self.replay_ms.load(Ordering::Relaxed),
            search_ms: self.search_ms.load(Ordering::Relaxed),
        }
    }

    /// Number of entries currently indexed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.lock().unwrap().entries.len()
    }

    /// Whether the store holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes of indexed entry files.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.index.lock().unwrap().total_bytes()
    }

    /// Serves `(ex, variant)` from the store if possible, searching (and
    /// inserting) on a miss. This is the store-backed analogue of
    /// [`SuiteCache::get_or_run`](crate::SuiteCache::get_or_run) and is
    /// what a store-carrying `SuiteCache` calls instead of a bare run.
    ///
    /// Only successful [`Variant::Ok`] verifications are cacheable:
    /// `Broken` variants and failed searches bypass the store (and its
    /// hit/miss ledger) entirely — a rejection's evidence is the *fresh*
    /// search, not a memo.
    pub fn get_or_run(&self, ex: &dyn Example, variant: Variant) -> Arc<CachedRun> {
        if variant == Variant::Broken {
            return Arc::new(run_once(ex, variant));
        }
        let key = store_key(ex, variant, current_ablation());
        let cell = {
            let mut map = self.inflight.lock().unwrap();
            Arc::clone(map.entry(key.clone()).or_default())
        };
        let mut ran = false;
        let run = Arc::clone(cell.get_or_init(|| {
            ran = true;
            Arc::new(self.lookup_or_search(&key, ex, variant))
        }));
        if ran {
            // The in-flight map is *only* the single-flight rendezvous:
            // concurrent same-key requests share one search/replay, but
            // a later lookup (e.g. a fresh SuiteCache over the same
            // store) goes back to disk and counts as its own hit —
            // in-memory memoization is the SuiteCache's job.
            self.inflight.lock().unwrap().remove(&key);
        }
        run
    }

    /// One uncontended lookup: replay the stored entry, or search and
    /// insert.
    fn lookup_or_search(&self, key: &str, ex: &dyn Example, variant: Variant) -> CachedRun {
        match self.try_replay(key, ex) {
            Ok(run) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.touch(key);
                run
            }
            Err(corrupt) => {
                if corrupt.is_some() {
                    // A present-but-bad entry: count it, drop it, and
                    // let the re-search below repair it (the reason
                    // itself only matters to the telemetry counters).
                    self.corruptions.fetch_add(1, Ordering::Relaxed);
                    let _ = fs::remove_file(self.entry_path(key));
                    self.index.lock().unwrap().entries.remove(key);
                    let _ = self.write_index();
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                let mut run = run_once(ex, variant);
                let search_ms = u64::try_from(run.search_time.as_millis()).unwrap_or(u64::MAX);
                self.search_ms.fetch_add(search_ms, Ordering::Relaxed);
                {
                    // Land the store events in the run's own counter
                    // session, where the invariant checks and the
                    // per-run telemetry lines will see them.
                    let guard = run.session.install();
                    telemetry::store_miss();
                    if corrupt.is_some() {
                        telemetry::store_corruption();
                    }
                    telemetry::store_search_ms(search_ms);
                    drop(guard);
                    run.counters = run.session.snapshot();
                }
                if let Some(Ok(outcome)) = &run.outcome {
                    if let Err(e) = self.insert(key, ex, outcome) {
                        // Disk trouble only costs future hits.
                        eprintln!("proof store: failed to insert {}: {e}", ex.name());
                    }
                }
                run
            }
        }
    }

    /// Attempts to serve `key` by replaying the stored entry.
    ///
    /// `Err(None)` is a plain miss (no entry); `Err(Some(reason))` is a
    /// detected corruption (the caller deletes and re-searches).
    fn try_replay(&self, key: &str, ex: &dyn Example) -> Result<CachedRun, Option<String>> {
        let text = match fs::read_to_string(self.entry_path(key)) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(None),
            Err(e) => return Err(Some(format!("unreadable entry: {e}"))),
        };
        let session = TelemetrySession::new(ex.name());
        let guard = session.install();
        let t0 = Instant::now();
        let replayed = replay_entry(&text, key, ex);
        let replay_time = t0.elapsed();
        let outcome = match replayed {
            Ok(outcome) => outcome,
            Err(reason) => {
                drop(guard);
                return Err(Some(reason));
            }
        };
        let replay_ms = u64::try_from(replay_time.as_millis()).unwrap_or(u64::MAX);
        self.replay_ms.fetch_add(replay_ms, Ordering::Relaxed);
        telemetry::store_hit();
        telemetry::store_replay_ms(replay_ms);
        drop(guard);
        Ok(CachedRun {
            outcome: Some(Ok(outcome)),
            // No search happened; the entire cost of a hit is the
            // checker replay.
            search_time: std::time::Duration::ZERO,
            check_time: replay_time,
            counters: session.snapshot(),
            session,
            from_store: true,
        })
    }

    /// Serializes and atomically publishes one verified outcome, then
    /// sweeps the LRU budget.
    fn insert(&self, key: &str, ex: &dyn Example, outcome: &ExampleOutcome) -> io::Result<()> {
        let payload = encode_payload(key, ex, outcome);
        let file = format!("{{\"checksum\":\"{}\",\"payload\":{payload}}}", sha256_hex(payload.as_bytes()));
        let tmp = self.root.join(format!("tmp-{key}-{}", std::process::id()));
        fs::write(&tmp, &file)?;
        // The rename is the publication point: readers either see the
        // complete entry or the previous state, never a partial write.
        fs::rename(&tmp, self.entry_path(key))?;
        {
            let mut index = self.index.lock().unwrap();
            index.clock += 1;
            let last_used = index.clock;
            index.entries.insert(
                key.to_owned(),
                IndexEntry {
                    bytes: file.len() as u64,
                    last_used,
                },
            );
        }
        self.sweep_budget();
        self.write_index()
    }

    /// Marks `key` as freshly used (LRU bookkeeping on hits). Memory
    /// only; the clocks persist at the next insert/evict or on drop.
    fn touch(&self, key: &str) {
        let mut index = self.index.lock().unwrap();
        index.clock += 1;
        let clock = index.clock;
        if let Some(entry) = index.entries.get_mut(key) {
            entry.last_used = clock;
            index.dirty = true;
        }
    }

    /// Persists any in-memory LRU bookkeeping. Called automatically on
    /// drop; exposed for long-lived holders (the daemon) that want the
    /// clocks durable at a known point.
    ///
    /// # Errors
    ///
    /// Returns the error from writing the index file.
    pub fn flush(&self) -> io::Result<()> {
        if self.index.lock().unwrap().dirty {
            self.write_index()?;
        }
        Ok(())
    }

    /// Evicts least-recently-used entries until the byte budget holds.
    /// Readers racing an eviction fall back to a miss: entry files are
    /// immutable and unlinked whole, so a reader sees the full entry or
    /// `NotFound` — never a torn one.
    fn sweep_budget(&self) {
        let Some(budget) = self.budget else { return };
        let mut evicted = 0u64;
        loop {
            let victim = {
                let index = self.index.lock().unwrap();
                if index.total_bytes() <= budget {
                    break;
                }
                index
                    .entries
                    .iter()
                    .min_by_key(|(k, e)| (e.last_used, (*k).clone()))
                    .map(|(k, _)| k.clone())
            };
            let Some(key) = victim else { break };
            let _ = fs::remove_file(self.entry_path(&key));
            self.index.lock().unwrap().entries.remove(&key);
            evicted += 1;
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            telemetry::store_evictions(evicted);
        }
    }

    /// Atomically persists the index.
    fn write_index(&self) -> io::Result<()> {
        let body = {
            let index = self.index.lock().unwrap();
            let mut keys: Vec<&String> = index.entries.keys().collect();
            keys.sort();
            let mut out = String::new();
            let _ = write!(
                out,
                "{{\"version\":{STORE_FORMAT},\"engine\":\"{}\",\"clock\":{},\"entries\":[",
                engine_fingerprint(),
                index.clock
            );
            for (i, key) in keys.iter().enumerate() {
                let entry = &index.entries[*key];
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"key\":\"{key}\",\"bytes\":{},\"last_used\":{}}}",
                    entry.bytes, entry.last_used
                );
            }
            out.push_str("]}");
            out
        };
        self.index.lock().unwrap().dirty = false;
        let tmp = self.root.join(format!("tmp-index-{}", std::process::id()));
        fs::write(&tmp, body)?;
        fs::rename(&tmp, self.root.join("index.json"))
    }
}

impl Drop for ProofStore {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// Reads and minimally validates the index file. `None` means "rebuild
/// from the objects directory".
fn read_index(path: &Path) -> Option<Index> {
    let text = fs::read_to_string(path).ok()?;
    let v = parse_json_value(&text).ok()?;
    if v.get("version")?.as_u64()? != u64::from(STORE_FORMAT) {
        return None;
    }
    let clock = v.get("clock")?.as_u64()?;
    let mut entries = HashMap::new();
    for item in v.get("entries")?.as_array()? {
        entries.insert(
            item.get("key")?.as_str()?.to_owned(),
            IndexEntry {
                bytes: item.get("bytes")?.as_u64()?,
                last_used: item.get("last_used")?.as_u64()?,
            },
        );
    }
    Some(Index { clock, entries, dirty: false })
}

/// Serializes the payload half of an entry (the checksummed bytes).
/// Traces go through the compact bundle codec
/// ([`traces_to_compact_json`]): variable-context snapshots are
/// delta-shared across the example's specs, which keeps both the store
/// small and the warm replay path fast (the hit path's cost is
/// dominated by bytes hashed and parsed).
fn encode_payload(key: &str, ex: &dyn Example, outcome: &ExampleOutcome) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"format\":{STORE_FORMAT},\"key\":\"{key}\",\"example\":\"{}\",\"variant\":\"ok\",\"manual_steps\":{},\"bundle\":",
        crate::json_escape(&ex.cache_key()),
        outcome.manual_steps
    );
    let specs: Vec<(&str, &diaframe_core::ProofTrace)> = outcome
        .proofs
        .iter()
        .map(|p| (p.name.as_str(), &p.trace))
        .collect();
    out.push_str(&traces_to_compact_json(&specs));
    out.push('}');
    out
}

/// Decodes, checksums and **replays** one entry file. Every failure
/// mode — truncation, bit flips, garbage, a mismatched key, or a trace
/// the independent checker refuses — comes back as `Err(reason)` and is
/// treated as corruption by the caller.
fn replay_entry(text: &str, key: &str, ex: &dyn Example) -> Result<ExampleOutcome, String> {
    // The envelope is written in exactly one shape, so the checksummed
    // payload bytes can be recovered textually (the hand-rolled JSON
    // parser does not preserve raw spans).
    let rest = text
        .strip_prefix("{\"checksum\":\"")
        .ok_or("envelope prefix mismatch")?;
    let (checksum, rest) = rest.split_at_checked(64).ok_or("truncated checksum")?;
    let payload = rest
        .strip_prefix("\",\"payload\":")
        .and_then(|r| r.strip_suffix('}'))
        .ok_or("envelope framing mismatch")?;
    if sha256_hex(payload.as_bytes()) != checksum {
        return Err("checksum mismatch".to_owned());
    }
    let v = parse_json_value(payload).map_err(|e| format!("payload does not parse: {e}"))?;
    let format = v.get("format").and_then(JsonValue::as_u64);
    if format != Some(u64::from(STORE_FORMAT)) {
        return Err(format!("unsupported entry format {format:?}"));
    }
    if v.get("key").and_then(JsonValue::as_str) != Some(key) {
        return Err("entry key does not match its address".to_owned());
    }
    if v.get("example").and_then(JsonValue::as_str) != Some(ex.cache_key().as_str()) {
        return Err("entry is for a different example".to_owned());
    }
    let manual_steps = v
        .get("manual_steps")
        .and_then(JsonValue::as_u64)
        .ok_or("missing manual_steps")?;
    let bundle = v.get("bundle").ok_or("missing bundle")?;
    let decoded =
        traces_from_compact_value(bundle).map_err(|e| format!("bundle does not decode: {e}"))?;
    let mut proofs = Vec::with_capacity(decoded.len());
    for (name, trace) in decoded {
        // The actual line of defense: the independent checker must
        // accept the stored trace before it is served.
        diaframe_core::checker::check(&trace)
            .map_err(|e| format!("{name}: stored trace failed replay: {e}"))?;
        proofs.push(VerifiedProof { name, trace });
    }
    Ok(ExampleOutcome {
        proofs,
        manual_steps: usize::try_from(manual_steps).map_err(|_| "manual_steps overflow")?,
    })
}
