//! The parallel suite driver: fans `(example × variant × ablation)`
//! verification jobs over `diaframe_core`'s deterministic work pool,
//! filling a shared [`SuiteCache`].
//!
//! Examples are independent verifications (each owns its `ProofCtx`; the
//! ghost registry and spec tables are read-only), so the suite
//! parallelizes embarrassingly well. The pool claims tasks in Figure-6
//! row order and the cache memoizes each result, so the tables rendered
//! afterwards are pure (and serial) cache reads — byte-identical
//! whatever `jobs` was.

use crate::cache::{SuiteCache, Variant};
use diaframe_core::{collect_ordered, current_ablation, run_ordered, with_ablation_override, Ablation};
use diaframe_examples::all_examples;
use std::time::{Duration, Instant};

/// The ablation configurations tabulated by `figure6 --ablation`: each
/// named entry disables one search-order decision from DESIGN.md §5
/// (plus the all-off baseline and the everything-disabled row).
#[must_use]
pub fn ablation_configs() -> Vec<(&'static str, Ablation)> {
    vec![
        ("baseline", Ablation::none()),
        (
            "oldest-first scan",
            Ablation {
                oldest_first: true,
                ..Ablation::none()
            },
        ),
        (
            "single-pass hints",
            Ablation {
                single_pass: true,
                ..Ablation::none()
            },
        ),
        (
            "no alloc preference",
            Ablation {
                no_alloc_preference: true,
                ..Ablation::none()
            },
        ),
        (
            "all ablated",
            Ablation {
                oldest_first: true,
                single_pass: true,
                no_alloc_preference: true,
            },
        ),
    ]
}

/// Verifies the whole suite into `cache` on a pool of `jobs` workers and
/// returns the wall-clock time. With `include_broken`, each example's
/// sabotaged variant is verified alongside (needed by `failing_table`).
///
/// Idempotent: tasks already in the cache are near-free hits, so calling
/// this before any combination of tables costs one suite pass total.
pub fn prefetch_suite(cache: &SuiteCache, jobs: usize, include_broken: bool) -> Duration {
    let examples = all_examples();
    let mut tasks: Vec<(usize, Variant)> = Vec::new();
    for i in 0..examples.len() {
        tasks.push((i, Variant::Ok));
        if include_broken {
            tasks.push((i, Variant::Broken));
        }
    }
    let t0 = Instant::now();
    let results = run_ordered(&tasks, jobs, |_, &(i, variant)| {
        cache.get_or_run(examples[i].as_ref(), variant);
    });
    let wall = t0.elapsed();
    // `get_or_run` contains panics itself, so a worker-level panic here
    // is a harness bug, not a failing example. Aggregate deterministically:
    // every panicked task, in task order, payload verbatim — the report
    // is the same whatever `jobs` was and however the pool interleaved.
    collect_ordered(results, |t| {
        let (i, variant) = tasks[t];
        format!("{} ({variant:?})", examples[i].name())
    })
    .unwrap_or_else(|e| panic!("suite driver job panicked: {e}"));
    assert_counter_invariants(cache);
    // Flush each run's telemetry JSON line in *task-submission* order:
    // runs complete in whatever order the pool interleaves them, so
    // flushing at completion time (the old behavior) made the file
    // sink's line order depend on `jobs`. Flushing here, serially from
    // the ordered task list, makes the sink output stable across runs
    // and worker counts (flush is idempotent, so re-prefetching a warm
    // cache emits nothing twice).
    for &(i, variant) in &tasks {
        if let Some(run) = cache.peek(&examples[i].cache_key(), current_ablation(), variant) {
            run.session.flush();
        }
    }
    wall
}

/// The counter-drift guard: every cached run's counters must satisfy the
/// accounting identities of
/// [`diaframe_core::CounterSnapshot::check_invariants`] — in particular
/// `probes_attempted == probes_skipped + probes_indexed_hit`, so an
/// instrumentation hook going missing (or double-firing) at one of the
/// `find_hint` call sites fails the suite loudly instead of silently
/// skewing the telemetry.
///
/// # Panics
///
/// Panics naming the offending `(example, variant)` entry and the
/// violated identity.
pub fn assert_counter_invariants(cache: &SuiteCache) {
    for ((name, _, variant), run) in cache.snapshot() {
        run.counters.check_invariants().unwrap_or_else(|e| {
            panic!("{name} ({variant:?}): counter invariant violated: {e}")
        });
    }
}

/// Verifies the whole suite under every [`ablation_configs`] entry into
/// `cache` on a pool of `jobs` workers and returns the wall-clock time.
/// The baseline configuration shares its entries with [`prefetch_suite`].
pub fn prefetch_ablations(cache: &SuiteCache, jobs: usize) -> Duration {
    let examples = all_examples();
    let configs = ablation_configs();
    let mut tasks: Vec<(Ablation, usize)> = Vec::new();
    for (_, ab) in &configs {
        for i in 0..examples.len() {
            tasks.push((*ab, i));
        }
    }
    let t0 = Instant::now();
    let results = run_ordered(&tasks, jobs, |_, &(ab, i)| {
        with_ablation_override(ab, || {
            cache.get_or_run(examples[i].as_ref(), Variant::Ok);
        });
    });
    let wall = t0.elapsed();
    collect_ordered(results, |t| {
        let (ab, i) = tasks[t];
        format!("{} under {ab:?}", examples[i].name())
    })
    .unwrap_or_else(|e| panic!("ablation driver job panicked: {e}"));
    assert_counter_invariants(cache);
    // Same ordered-flush discipline as `prefetch_suite` (each task ran
    // under its own ablation override, which is part of the cache key).
    for &(ab, i) in &tasks {
        if let Some(run) = cache.peek(&examples[i].cache_key(), ab, Variant::Ok) {
            run.session.flush();
        }
    }
    wall
}
