//! The memoized suite cache: every `(example, ablation, variant)`
//! verification runs **at most once** per cache, however many tables or
//! reports consume it.
//!
//! The harness used to re-verify examples wholesale: `figure6_table` and
//! `aggregate_table` each ran the full suite, and `failing_table` ran
//! every sabotaged example twice (once to detect the failure, once to
//! time it). A [`SuiteCache`] shared across the tables makes each
//! verification a one-time cost — the `--all` report re-verifies nothing
//! — and the hit/miss counters make that property checkable (and
//! checked, in `tests/driver_equivalence.rs`).
//!
//! Entries are keyed by [`Example::cache_key`] plus the thread's current
//! [`Ablation`] override, so the ablation experiment shares its baseline
//! rows with Figure 6 while ablated runs get their own entries. A
//! per-key `OnceLock` guarantees exactly-once execution even when
//! parallel workers race on the same key.

use diaframe_core::{current_ablation, Ablation, CounterSnapshot, TelemetrySession};
use diaframe_examples::{Example, ExampleOutcome};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Which variant of an example a cache entry describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// The example as published (expected to verify).
    Ok,
    /// The sabotaged variant from the §6 failing-verification
    /// experiment (expected to be rejected).
    Broken,
}

/// The memoized result of one verification run.
#[derive(Debug)]
pub struct CachedRun {
    /// `None` means the example has no such variant (only possible for
    /// [`Variant::Broken`]). `Err` renders a stuck report, a trace-replay
    /// failure, or a panic.
    pub outcome: Option<Result<ExampleOutcome, String>>,
    /// Wall-clock of the proof search itself.
    pub search_time: Duration,
    /// Wall-clock of the independent trace replay (zero when nothing
    /// verified).
    pub check_time: Duration,
    /// Search-effort counters for this run (probes, rule applications,
    /// backtracks, checker steps — see
    /// [`CounterSnapshot::check_invariants`]). Collected by a per-run
    /// [`TelemetrySession`], so runs are counted in isolation even when
    /// the pool interleaves them.
    pub counters: CounterSnapshot,
    /// The per-run session itself, kept so consumers can read span
    /// duration histograms (`span_stats`) and flush the run's telemetry
    /// JSON line *in a deterministic order* — `run_once` no longer
    /// flushes at completion time, which under `--jobs N` depended on
    /// the pool interleaving; the suite driver flushes cached runs in
    /// task-submission order instead.
    pub session: TelemetrySession,
    /// Whether this run was served by replaying a persistent-store
    /// entry (no search happened; `search_time` is zero).
    pub from_store: bool,
}

impl CachedRun {
    /// The successful outcome.
    ///
    /// # Panics
    ///
    /// Panics with the example name and the cached error if the run did
    /// not verify.
    #[must_use]
    pub fn expect_ok(&self, name: &str) -> &ExampleOutcome {
        match &self.outcome {
            Some(Ok(o)) => o,
            Some(Err(e)) => panic!("{name} failed to verify:\n{e}"),
            None => panic!("{name}: no such variant was run"),
        }
    }
}

type Key = (String, Ablation, Variant);

/// Memoizes `(example, ablation, variant) → outcome + timings` across a
/// whole benchmark/report run. Cheap to share by reference between the
/// driver's worker threads.
#[derive(Default)]
pub struct SuiteCache {
    entries: Mutex<HashMap<Key, Arc<OnceLock<Arc<CachedRun>>>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    /// When present, first-time runs consult the persistent proof store
    /// (replaying a stored trace instead of searching when possible).
    store: Option<Arc<crate::ProofStore>>,
}

impl SuiteCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> SuiteCache {
        SuiteCache::default()
    }

    /// An empty cache whose first-time runs go through the persistent
    /// proof `store`: a hit replays the stored trace through the
    /// checker, a miss searches and inserts. Everything downstream
    /// (tables, telemetry flushes, counter invariants) is unchanged —
    /// the store only swaps how a [`CachedRun`] gets produced.
    #[must_use]
    pub fn with_store(store: Arc<crate::ProofStore>) -> SuiteCache {
        SuiteCache {
            store: Some(store),
            ..SuiteCache::default()
        }
    }

    /// Returns the memoized run for `ex` under the thread's current
    /// ablation override, verifying it first if this is the first
    /// request for its key. Concurrent requests for the same key block
    /// on the single in-flight run instead of duplicating it.
    pub fn get_or_run(&self, ex: &dyn Example, variant: Variant) -> Arc<CachedRun> {
        let key = (ex.cache_key(), current_ablation(), variant);
        let cell = {
            let mut map = self.entries.lock().unwrap();
            Arc::clone(map.entry(key).or_default())
        };
        let mut ran = false;
        let run = Arc::clone(cell.get_or_init(|| {
            ran = true;
            match &self.store {
                Some(store) => store.get_or_run(ex, variant),
                None => Arc::new(run_once(ex, variant)),
            }
        }));
        if ran {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        run
    }

    /// Looks up a completed entry without running anything and without
    /// touching the hit/miss counters (which several tests treat as an
    /// exact re-verification ledger). Used by the suite driver to flush
    /// telemetry in task-submission order after a pool run.
    #[must_use]
    pub fn peek(&self, cache_key: &str, ablation: Ablation, variant: Variant) -> Option<Arc<CachedRun>> {
        let key = (cache_key.to_owned(), ablation, variant);
        let cell = Arc::clone(self.entries.lock().unwrap().get(&key)?);
        let run = cell.get()?;
        Some(Arc::clone(run))
    }

    /// How many requests were served from the cache.
    #[must_use]
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// How many requests actually ran a verification.
    #[must_use]
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// All completed entries, for offline inspection (e.g. re-checking
    /// every cached trace).
    #[must_use]
    pub fn snapshot(&self) -> Vec<(Key, Arc<CachedRun>)> {
        self.entries
            .lock()
            .unwrap()
            .iter()
            .filter_map(|(k, cell)| Some((k.clone(), Arc::clone(cell.get()?))))
            .collect()
    }
}

/// Runs one `(example, variant)` verification, timing search and trace
/// replay separately. Panics (ablated searches can trip engine
/// invariants) are contained and rendered as errors.
///
/// With `DIAFRAME_PIPELINE_CHECK` on (the default), checking is
/// *pipelined*: completed traces stream to a consumer thread over a
/// bounded channel, so the replay of spec 1 overlaps with the search of
/// spec 2. Verdicts are identical to the serial path — the consumer
/// replays the same steps in the same order — only the wall-clock
/// attribution moves (`check_time` becomes the consumer's busy time and
/// the saved wall-clock is reported as the `check_overlap_ms` counter).
pub(crate) fn run_once(ex: &dyn Example, variant: Variant) -> CachedRun {
    // A per-run session isolates this run's counters from whatever
    // session the pool worker carries (nested installs shadow the outer
    // one and restore it on drop). Counters are a pure side channel, so
    // the verification itself — and its trace — is unaffected.
    let label = match variant {
        Variant::Ok => ex.name().to_owned(),
        Variant::Broken => format!("{}!broken", ex.name()),
    };
    let session = TelemetrySession::new(&label);
    let guard = session.install();
    let mut prof_span = diaframe_core::profile::span(diaframe_core::profile::SpanKind::Verify);
    prof_span.set_label(&label);
    let (outcome, search_time, check_time) = if diaframe_core::pipeline_check_enabled() {
        run_pipelined(ex, variant, &session)
    } else {
        run_serial(ex, variant)
    };
    drop(prof_span);
    drop(guard);
    CachedRun {
        outcome,
        search_time,
        check_time,
        counters: session.snapshot(),
        session,
        from_store: false,
    }
}

type RunResult = (Option<Result<ExampleOutcome, String>>, Duration, Duration);

/// The pre-pipelining path: search everything, then check everything.
fn run_serial(ex: &dyn Example, variant: Variant) -> RunResult {
    let t0 = Instant::now();
    let verdict = catch_unwind(AssertUnwindSafe(|| match variant {
        Variant::Ok => Some(ex.verify()),
        Variant::Broken => ex.verify_broken(),
    }));
    let search_time = t0.elapsed();
    let mut check_time = Duration::ZERO;
    let outcome = match verdict {
        Err(payload) => Some(Err(format!("panicked: {}", panic_message(payload.as_ref())))),
        Ok(None) => None,
        Ok(Some(Err(stuck))) => Some(Err(stuck.to_string())),
        Ok(Some(Ok(outcome))) => {
            let t1 = Instant::now();
            let checked = outcome.check_all();
            check_time = t1.elapsed();
            match checked {
                Ok(()) => Some(Ok(outcome)),
                Err(e) => Some(Err(format!("trace replay failed: {e}"))),
            }
        }
    };
    (outcome, search_time, check_time)
}

/// The pipelined path: a consumer thread replays completed traces (and,
/// with `DIAFRAME_PIPELINE_FRAMES`, live step streams) while the search
/// continues on the remaining specs.
fn run_pipelined(ex: &dyn Example, variant: Variant, session: &TelemetrySession) -> RunResult {
    use diaframe_core::{PipelineEvent, PipelineSink};
    // Bounded: a slow consumer applies backpressure to the search
    // instead of buffering every event of a large example.
    let (tx, rx) = std::sync::mpsc::sync_channel::<PipelineEvent>(256);
    let consumer_session = session.clone();
    let consumer_profile = diaframe_core::profile::current();
    let consumer_parent = diaframe_core::profile::current_span_id();
    let (verdict, search_time, busy, first_err, checked, whole) = std::thread::scope(|scope| {
        let consumer = std::thread::Builder::new()
            .name("diaframe-check".to_owned())
            // Replaying a deep trace re-proves its pure obligations;
            // give the consumer the same stack headroom as a search.
            .stack_size(diaframe_core::verify::session_stack_bytes())
            .spawn_scoped(scope, move || {
                // The consumer gets its own timeline lane; its replay
                // windows hang off this run's `Verify` span.
                let _prof_guard = consumer_profile
                    .as_ref()
                    .map(|p| p.install_with_parent(consumer_parent));
                consume_events(&rx, &consumer_session)
            })
            .expect("spawn pipelined checker");
        let sink: PipelineSink = Arc::new(move |ev| {
            // The consumer only hangs up after the channel closes, so a
            // failed send can only mean the consumer panicked — which
            // `join` below will surface.
            let _ = tx.send(ev);
        });
        let sink_guard = diaframe_core::install_pipeline_sink(sink);
        let t0 = Instant::now();
        let verdict = catch_unwind(AssertUnwindSafe(|| match variant {
            Variant::Ok => Some(ex.verify()),
            Variant::Broken => ex.verify_broken(),
        }));
        let search_time = t0.elapsed();
        // Uninstalling the sink drops the last sender: the consumer
        // drains the queue and exits.
        drop(sink_guard);
        let (busy, first_err, checked) = consumer.join().expect("pipelined checker died");
        (verdict, search_time, busy, first_err, checked, t0.elapsed())
    });
    // The serial path would have cost search + check back to back; the
    // pipeline's saving is whatever overlapped.
    let overlap = (search_time + busy).saturating_sub(whole);
    diaframe_core::telemetry::check_overlap(u64::try_from(overlap.as_millis()).unwrap_or(u64::MAX));
    let mut check_time = busy;
    let outcome = match verdict {
        Err(payload) => Some(Err(format!("panicked: {}", panic_message(payload.as_ref())))),
        Ok(None) => None,
        Ok(Some(Err(stuck))) => Some(Err(stuck.to_string())),
        Ok(Some(Ok(outcome))) => {
            let mut err = first_err;
            if err.is_none() {
                // Defense in depth: a proof constructed outside
                // `diaframe_core::verify` never hit the pipeline; check
                // any such remainder here so pipelining can only ever
                // check *more* than the serial path, never less.
                let t1 = Instant::now();
                for p in outcome.proofs.iter().skip(checked) {
                    if let Err(e) = p.check() {
                        err = Some(format!("trace replay failed: {e}"));
                        break;
                    }
                }
                check_time += t1.elapsed();
            }
            match err {
                None => Some(Ok(outcome)),
                Some(e) => Some(Err(e)),
            }
        }
    };
    (outcome, search_time, check_time)
}

/// The consumer loop: replays streamed proofs/steps as they arrive.
/// Returns its busy time (the pipelined equivalent of `check_time`),
/// the first replay failure rendered like the serial path renders it,
/// and how many complete traces it covered.
fn consume_events(
    rx: &std::sync::mpsc::Receiver<diaframe_core::PipelineEvent>,
    session: &TelemetrySession,
) -> (Duration, Option<String>, usize) {
    use diaframe_core::checker::Replay;
    use diaframe_core::PipelineEvent;
    // Checker replays count into the same per-run session as the search.
    let _guard = session.install();
    // Frame streams replay outside `checker::check` (which scopes each
    // batch replay itself); give them one interner scope for cache reuse
    // across this run's windows.
    let _intern = diaframe_term::intern::scope();
    let mut busy = Duration::ZERO;
    let mut first_err: Option<String> = None;
    let mut checked = 0usize;
    // Frames mode: the live replay of the current stream window, plus
    // its failure if one already occurred (later steps are skipped, but
    // the stream must keep draining so the search never blocks).
    let mut replay = Replay::new();
    let mut window_failed: Option<diaframe_core::checker::CheckError> = None;
    // The live replay window's profile span: opened on the window's
    // first streamed step, closed (and its step count recorded) at the
    // `SpecSearched`/`SpecAbandoned` boundary. Its counts reconcile with
    // the flat `checker_steps` counter, which is likewise bumped only at
    // the searched boundary.
    let mut window_span: Option<diaframe_core::profile::Span> = None;
    while let Ok(ev) = rx.recv() {
        let t = Instant::now();
        match ev {
            PipelineEvent::Proof(p) => {
                if first_err.is_none() {
                    if let Err(e) = p.check() {
                        first_err = Some(format!("trace replay failed: {e}"));
                    }
                }
                checked += 1;
            }
            PipelineEvent::Step(step) => {
                if window_span.is_none() && diaframe_core::profile::active() {
                    window_span = Some(diaframe_core::profile::span(
                        diaframe_core::profile::SpanKind::CheckWindow,
                    ));
                }
                if first_err.is_none() && window_failed.is_none() {
                    if let Err(e) = replay.feed(&step) {
                        window_failed = Some(e);
                    }
                }
            }
            PipelineEvent::SpecSearched { name } => {
                let done = std::mem::take(&mut replay);
                diaframe_core::telemetry::checker_steps(done.steps_seen() as u64);
                if let Some(mut sp) = window_span.take() {
                    diaframe_core::profile::bump(done.steps_seen() as u64);
                    sp.set_label(&name);
                }
                if first_err.is_none() {
                    let verdict = match window_failed.take() {
                        Some(e) => Err(e),
                        None => done.finish(),
                    };
                    if let Err(e) = verdict {
                        first_err = Some(format!("trace replay failed: {e}"));
                    }
                }
                window_failed = None;
                checked += 1;
            }
            PipelineEvent::SpecAbandoned => {
                // The search got stuck: the window's steps are not a
                // finished trace. Discard and start fresh.
                if let Some(mut sp) = window_span.take() {
                    sp.set_label("(abandoned)");
                }
                replay = Replay::new();
                window_failed = None;
            }
        }
        busy += t.elapsed();
    }
    (busy, first_err, checked)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diaframe_examples::all_examples;

    #[test]
    fn repeated_requests_verify_once() {
        let cache = SuiteCache::new();
        let examples = all_examples();
        let ex = examples[0].as_ref();
        let a = cache.get_or_run(ex, Variant::Ok);
        let b = cache.get_or_run(ex, Variant::Ok);
        assert!(Arc::ptr_eq(&a, &b), "second request must be a cache hit");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert!(!a.expect_ok(ex.name()).proofs.is_empty());
    }

    #[test]
    fn ablation_is_part_of_the_key() {
        use diaframe_core::{with_ablation_override, Ablation};
        let cache = SuiteCache::new();
        let examples = all_examples();
        let ex = examples[0].as_ref();
        let base = cache.get_or_run(ex, Variant::Ok);
        let ablated = with_ablation_override(
            Ablation {
                oldest_first: true,
                ..Ablation::none()
            },
            || cache.get_or_run(ex, Variant::Ok),
        );
        assert!(!Arc::ptr_eq(&base, &ablated));
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn missing_broken_variant_is_memoized_too() {
        let cache = SuiteCache::new();
        let examples = all_examples();
        let no_broken = examples
            .iter()
            .find(|ex| ex.verify_broken().is_none())
            .map(|ex| {
                let run = cache.get_or_run(ex.as_ref(), Variant::Broken);
                assert!(run.outcome.is_none());
                cache.get_or_run(ex.as_ref(), Variant::Broken);
            });
        if no_broken.is_some() {
            assert_eq!(cache.misses(), 1);
            assert_eq!(cache.hits(), 1);
        }
    }
}
