//! The `diaframe serve` wire protocol: length-prefixed JSON frames.
//!
//! Every message — request or response — is one *frame*: a 4-byte
//! big-endian `u32` byte length followed by that many bytes of UTF-8
//! JSON. Frames larger than [`MAX_FRAME`] are rejected before any
//! allocation, so a garbage length prefix cannot OOM the daemon.
//!
//! Requests (the `op` field selects the operation):
//!
//! ```text
//! {"op":"verify","examples":["arc","spin_lock"]}   // batch (or one)
//! {"op":"verify_all"}                              // the whole suite
//! {"op":"stats"}                                   // store + cache counters
//! {"op":"shutdown"}                                // drain and exit
//! ```
//!
//! Responses always carry `"ok": true|false`; failures carry `"error"`.
//! A verify response carries one `results` row per requested example
//! (name, verdict, spec/manual/hint counts, whether the proof came from
//! a store replay, and the replay/search milliseconds) plus `table`, the
//! deterministic [`verdict_table_for`](crate::verdict_table_for)
//! rendering that clients byte-compare across runs.
//!
//! The protocol is deliberately version-stamped: every response includes
//! `"proto": 1`, and the engine fingerprint is available via `stats`, so
//! a client can refuse to mix daemons across engine versions.

use std::io::{self, Read, Write};

/// Protocol revision carried in every response.
pub const PROTO_VERSION: u32 = 1;

/// Upper bound on a single frame's body, requests and responses alike.
/// Generous for batch verdict tables; tiny compared to a bad length
/// prefix's 4 GiB ceiling.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Returns the underlying I/O error, or `InvalidInput` if `body`
/// exceeds [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, body: &str) -> io::Result<()> {
    let len = u32::try_from(body.len())
        .ok()
        .filter(|l| *l <= MAX_FRAME)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("frame of {} bytes exceeds the {MAX_FRAME}-byte cap", body.len()),
            )
        })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream (the peer hung
/// up between frames); an EOF *inside* a frame is an error.
///
/// # Errors
///
/// Returns the underlying I/O error, `InvalidData` for an oversized
/// length prefix or non-UTF-8 body, or `UnexpectedEof` for a truncated
/// frame.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("frame is not UTF-8: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"op\":\"stats\"}").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("{\"op\":\"stats\"}"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut buf = Vec::from(u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"junk");
        let err = read_frame(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"op\":\"shutdown\"}").unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_frame(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn non_utf8_body_is_rejected() {
        let mut buf = Vec::from(2u32.to_be_bytes());
        buf.extend_from_slice(&[0xff, 0xfe]);
        let err = read_frame(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
