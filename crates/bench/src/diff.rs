//! The snapshot-diff regression reporter behind `figure6 --diff`.
//!
//! Compares two `figure6 --json` snapshots (the committed
//! `BENCH_figure6.json` baseline against a fresh run, or any two files)
//! per example and per counter, and renders a markdown report. Timing
//! gates are *relative* with an absolute noise floor, replacing the old
//! crude whole-suite `2×` aggregate gate in `ci.sh`: a single example
//! regressing `4×` now fails even when the aggregate hides it, and a
//! machine-wide slowdown still fails via the aggregate gate.
//!
//! Counters are split by determinism. Search-shaped counters (probes,
//! backtracks, checker steps, per-kind trace steps…) are deterministic
//! for a fixed engine, so drift beyond the threshold gates — an engine
//! change that legitimately moves them must regenerate the baseline.
//! Scheduler-shaped counters (`spec_*`, `check_overlap_ms`, interner
//! and solver cache hit rates) depend on speculation permit timing and
//! are reported informationally only.

use diaframe_core::trace_json::{parse_json_value, JsonValue};
use std::fmt::Write as _;

/// Thresholds for [`diff_snapshots`]. All gates are "current worse than
/// baseline by more than the ratio"; improvements never gate.
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Per-example search-time gate: fail when
    /// `cur > base × example_ratio` (and the floor is exceeded).
    pub example_ratio: f64,
    /// Suite-aggregate (summed per-example search time) gate.
    pub aggregate_ratio: f64,
    /// Absolute per-example noise floor in milliseconds: a timing
    /// regression only gates when the current time also exceeds the
    /// baseline by at least this much (sub-millisecond examples jitter
    /// far beyond any sane ratio).
    pub min_ms: f64,
    /// Deterministic-counter drift gate (relative, either direction).
    pub counter_ratio: f64,
    /// Counters below this on both sides never flag (small counts make
    /// ratios meaningless).
    pub counter_floor: u64,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions {
            example_ratio: 3.0,
            aggregate_ratio: 2.0,
            min_ms: 25.0,
            counter_ratio: 1.5,
            counter_floor: 100,
        }
    }
}

/// The outcome of a snapshot comparison: the rendered markdown report
/// plus the gating verdicts it was derived from.
#[derive(Debug)]
pub struct DiffReport {
    /// The full markdown report (what `figure6 --diff` prints).
    pub markdown: String,
    /// Gate failures: timing regressions past the thresholds, missing
    /// examples, deterministic-counter drift. Empty means the diff
    /// passes.
    pub regressions: Vec<String>,
    /// Informational drift (scheduler-shaped counters, new examples).
    pub notes: Vec<String>,
}

struct SnapExample {
    name: String,
    search_ms: f64,
    /// Flattened telemetry counters: `steps_by_kind` children appear as
    /// `steps_by_kind/<kind>`.
    counters: Vec<(String, u64)>,
}

struct Snapshot {
    schema: String,
    examples: Vec<SnapExample>,
}

fn parse_snapshot(which: &str, text: &str) -> Result<Snapshot, String> {
    let v = parse_json_value(text).map_err(|e| format!("{which}: not valid JSON: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("{which}: missing \"schema\""))?
        .to_owned();
    if !schema.starts_with("diaframe-bench/figure6/") {
        return Err(format!("{which}: unexpected schema {schema:?}"));
    }
    let examples = v
        .get("examples")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("{which}: missing \"examples\" array"))?;
    let mut out = Vec::with_capacity(examples.len());
    for e in examples {
        let name = e
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{which}: example without a name"))?
            .to_owned();
        let search_ms = e
            .get("search_ms")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("{which}: {name}: missing search_ms"))?;
        let mut counters = Vec::new();
        if let Some(entries) = e.get("telemetry").and_then(JsonValue::entries) {
            for (k, val) in entries {
                match val {
                    JsonValue::Obj(inner) => {
                        for (ik, iv) in inner {
                            if let Some(n) = iv.as_u64() {
                                counters.push((format!("{k}/{ik}"), n));
                            }
                        }
                    }
                    _ => {
                        if let Some(n) = val.as_u64() {
                            counters.push((k.clone(), n));
                        }
                    }
                }
            }
        }
        out.push(SnapExample {
            name,
            search_ms,
            counters,
        });
    }
    Ok(Snapshot {
        schema,
        examples: out,
    })
}

/// Whether a counter is scheduler-shaped (speculation permits, pipeline
/// overlap, cache temperature — including the persistent proof store's
/// hit/miss ledger, which depends on what happens to be on disk) and
/// therefore never gates.
fn counter_is_informational(key: &str) -> bool {
    ["spec_", "check_overlap", "interner_", "zonk_", "normalize_", "solver_", "store_"]
        .iter()
        .any(|p| key.starts_with(p))
}

fn ratio(base: f64, cur: f64) -> f64 {
    if base <= 0.0 {
        if cur <= 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        cur / base
    }
}

/// Compares a baseline snapshot against a current one and renders the
/// regression report. Both arguments are the raw JSON text of a
/// `figure6 --json` run (any schema version with an `examples` array;
/// only fields present on both sides are compared).
///
/// # Errors
///
/// Returns an error when either snapshot fails to parse — a parse
/// failure is a harness bug or a truncated file, not a regression.
pub fn diff_snapshots(
    baseline: &str,
    current: &str,
    opts: &DiffOptions,
) -> Result<DiffReport, String> {
    let base = parse_snapshot("baseline", baseline)?;
    let cur = parse_snapshot("current", current)?;
    let mut regressions: Vec<String> = Vec::new();
    let mut notes: Vec<String> = Vec::new();
    let mut md = String::new();
    let _ = writeln!(md, "# figure6 snapshot diff\n");
    let _ = writeln!(
        md,
        "baseline: `{}` ({} examples)  ",
        base.schema,
        base.examples.len()
    );
    let _ = writeln!(
        md,
        "current:  `{}` ({} examples)\n",
        cur.schema,
        cur.examples.len()
    );

    // Aggregate search time.
    let base_sum: f64 = base.examples.iter().map(|e| e.search_ms).sum();
    let cur_sum: f64 = cur.examples.iter().map(|e| e.search_ms).sum();
    let agg_ratio = ratio(base_sum, cur_sum);
    let agg_fails = agg_ratio > opts.aggregate_ratio;
    let _ = writeln!(
        md,
        "aggregate search: {base_sum:.1} ms → {cur_sum:.1} ms ({agg_ratio:.2}×, gate {:.1}×): {}\n",
        opts.aggregate_ratio,
        if agg_fails { "**REGRESSION**" } else { "ok" }
    );
    if agg_fails {
        regressions.push(format!(
            "aggregate search time {base_sum:.1} ms → {cur_sum:.1} ms ({agg_ratio:.2}× > {:.1}×)",
            opts.aggregate_ratio
        ));
    }

    // Per-example timings.
    let _ = writeln!(
        md,
        "## per-example search time (gate {:.1}× and +{:.0} ms)\n",
        opts.example_ratio, opts.min_ms
    );
    let _ = writeln!(md, "| example | base ms | cur ms | ratio | verdict |");
    let _ = writeln!(md, "|---|---:|---:|---:|---|");
    for b in &base.examples {
        let Some(c) = cur.examples.iter().find(|c| c.name == b.name) else {
            regressions.push(format!("example {} missing from current run", b.name));
            let _ = writeln!(md, "| {} | {:.2} | — | — | **MISSING** |", b.name, b.search_ms);
            continue;
        };
        let r = ratio(b.search_ms, c.search_ms);
        let fails = r > opts.example_ratio && (c.search_ms - b.search_ms) > opts.min_ms;
        let verdict = if fails {
            regressions.push(format!(
                "{}: search {:.2} ms → {:.2} ms ({r:.2}× > {:.1}×)",
                b.name, b.search_ms, c.search_ms, opts.example_ratio
            ));
            "**REGRESSION**"
        } else if r > opts.example_ratio {
            "slower (under floor)"
        } else if r < 1.0 / opts.example_ratio && (b.search_ms - c.search_ms) > opts.min_ms {
            "improved"
        } else {
            "ok"
        };
        let _ = writeln!(
            md,
            "| {} | {:.2} | {:.2} | {r:.2}× | {verdict} |",
            b.name, b.search_ms, c.search_ms
        );
    }
    for c in &cur.examples {
        if !base.examples.iter().any(|b| b.name == c.name) {
            notes.push(format!("example {} is new (not in baseline)", c.name));
        }
    }

    // Per-example, per-counter drift.
    let mut det_lines: Vec<String> = Vec::new();
    let mut info_lines: Vec<String> = Vec::new();
    for b in &base.examples {
        let Some(c) = cur.examples.iter().find(|c| c.name == b.name) else {
            continue;
        };
        for (key, bv) in &b.counters {
            let Some((_, cv)) = c.counters.iter().find(|(k, _)| k == key) else {
                continue;
            };
            let (lo, hi) = (*bv.min(cv), *bv.max(cv));
            if hi < opts.counter_floor {
                continue;
            }
            #[allow(clippy::cast_precision_loss)]
            let r = if lo == 0 {
                f64::INFINITY
            } else {
                hi as f64 / lo as f64
            };
            if r <= opts.counter_ratio {
                continue;
            }
            let line = format!("{}: {key} {bv} → {cv} ({r:.2}×)", b.name);
            if counter_is_informational(key) {
                info_lines.push(line);
            } else {
                det_lines.push(line);
            }
        }
    }
    let _ = writeln!(
        md,
        "\n## deterministic counter drift (gate {:.1}×, floor {})\n",
        opts.counter_ratio, opts.counter_floor
    );
    if det_lines.is_empty() {
        let _ = writeln!(md, "none");
    }
    for l in &det_lines {
        let _ = writeln!(md, "- **REGRESSION** {l}");
        regressions.push(l.clone());
    }
    let _ = writeln!(md, "\n## scheduler-shaped counter drift (informational)\n");
    if info_lines.is_empty() {
        let _ = writeln!(md, "none");
    }
    const INFO_CAP: usize = 40;
    for l in info_lines.iter().take(INFO_CAP) {
        let _ = writeln!(md, "- {l}");
    }
    if info_lines.len() > INFO_CAP {
        let _ = writeln!(md, "- … and {} more", info_lines.len() - INFO_CAP);
    }
    notes.extend(info_lines);

    let _ = writeln!(
        md,
        "\nverdict: {}",
        if regressions.is_empty() {
            "PASS — 0 regressions".to_owned()
        } else {
            format!("FAIL — {} regression(s)", regressions.len())
        }
    );
    Ok(DiffReport {
        markdown: md,
        regressions,
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(name_times: &[(&str, f64, u64)]) -> String {
        let mut s = String::from("{\n  \"schema\": \"diaframe-bench/figure6/v6\",\n  \"examples\": [\n");
        for (i, (n, t, probes)) in name_times.iter().enumerate() {
            let _ = writeln!(
                s,
                "    {{ \"name\": \"{n}\", \"search_ms\": {t:.3}, \"telemetry\": {{ \"probes_attempted\": {probes}, \"spec_won\": 5000 }} }}{}",
                if i + 1 == name_times.len() { "" } else { "," }
            );
        }
        s.push_str("  ]\n}\n");
        s
    }

    #[test]
    fn self_diff_is_clean() {
        let a = snap(&[("a", 100.0, 1000), ("b", 0.4, 50)]);
        let r = diff_snapshots(&a, &a, &DiffOptions::default()).unwrap();
        assert!(r.regressions.is_empty(), "{:?}", r.regressions);
        assert!(r.markdown.contains("PASS — 0 regressions"));
    }

    #[test]
    fn timing_regression_gates_and_noise_floor_holds() {
        let base = snap(&[("a", 100.0, 1000), ("tiny", 0.2, 50)]);
        // `a` regresses 4×; `tiny` regresses 10× but stays under the
        // absolute floor and must not gate.
        let cur = snap(&[("a", 400.0, 1000), ("tiny", 2.0, 50)]);
        let r = diff_snapshots(&base, &cur, &DiffOptions::default()).unwrap();
        assert_eq!(r.regressions.len(), 2, "{:?}", r.regressions); // example + aggregate
        assert!(r.regressions.iter().any(|l| l.starts_with("a: search")));
        assert!(r.regressions.iter().any(|l| l.starts_with("aggregate")));
        assert!(r.markdown.contains("| tiny | 0.20 | 2.00 |"));
    }

    #[test]
    fn deterministic_counters_gate_but_scheduler_ones_do_not() {
        let base = snap(&[("a", 100.0, 1000)]);
        // probes 3× (deterministic → gates); spec_won differs wildly in
        // `snap` too but is prefixed as scheduler-shaped.
        let mut cur = snap(&[("a", 100.0, 3000)]);
        cur = cur.replace("\"spec_won\": 5000", "\"spec_won\": 1");
        let r = diff_snapshots(&base, &cur, &DiffOptions::default()).unwrap();
        assert_eq!(r.regressions.len(), 1, "{:?}", r.regressions);
        assert!(r.regressions[0].contains("probes_attempted"));
        assert!(r.notes.iter().any(|l| l.contains("spec_won")));
    }

    #[test]
    fn missing_example_is_a_regression() {
        let base = snap(&[("a", 100.0, 1000), ("b", 50.0, 500)]);
        let cur = snap(&[("a", 100.0, 1000)]);
        let r = diff_snapshots(&base, &cur, &DiffOptions::default()).unwrap();
        assert!(r.regressions.iter().any(|l| l.contains("missing")));
    }

    #[test]
    fn malformed_snapshots_error_instead_of_passing() {
        assert!(diff_snapshots("{", "{}", &DiffOptions::default()).is_err());
        assert!(diff_snapshots("{}", "{}", &DiffOptions::default()).is_err());
        let no_examples = "{ \"schema\": \"diaframe-bench/figure6/v6\" }";
        assert!(diff_snapshots(no_examples, no_examples, &DiffOptions::default()).is_err());
    }
}
