//! `fuzz_driver` — the soundness-fuzzing campaign runner.
//!
//! Drives `diaframe_core::fuzz` end to end, in parallel:
//!
//! 1. **differential pass** — generates `--cases` entailments, runs the
//!    search engine on each, and cross-checks every proved case through
//!    the oracle's legs (telemetry on/off, `check` vs `check_json`,
//!    codec byte-stability, executable spec);
//! 2. **index pass** — re-runs every proved case with the `HeadSet`
//!    hint index disabled (a process-global toggle, hence a separate
//!    whole pass) and demands byte-identical trace JSON;
//! 3. **mutation pass** — mutates every engine trace, a synthetic
//!    valid-by-construction corpus, and the real example-suite traces;
//!    every certified-invalid mutant must be killed by the checker, and
//!    survivors are shrunk to a minimal witness.
//!
//! The JSON report is **byte-reproducible**: same seed, same report, no
//! timestamps (wall time goes to the console only). `ci.sh` runs a
//! fixed seed twice and `cmp`s the two reports.
//!
//! ```text
//! fuzz_driver [--seed 0xD1AF] [--cases 200] [--mutations-per-trace 8]
//!             [--jobs N] [--json-out PATH]
//! ```
//!
//! Exits non-zero when any divergence, surviving mutant, or unexpected
//! proof (an "unprovable-by-construction" case the engine proved) is
//! found.

use diaframe_core::fuzz::{
    gen_trace, mutation_round, run_case, search_once, CaseReport, GenConfig, MutationKind,
    MutationOutcome,
};
use diaframe_core::trace_json::trace_to_json;
use diaframe_core::{hint_index_enabled, run_ordered, set_hint_index_enabled, TraceStep};
use diaframe_examples::all_examples;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Minimal JSON string escaping for report detail strings.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

struct MutationRow {
    label: String,
    outcomes: Vec<MutationOutcome>,
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "fuzz_driver [--seed 0xD1AF] [--cases 200] [--mutations-per-trace 8] \
             [--jobs N] [--json-out PATH]"
        );
        return;
    }
    let seed = match flag_value(&args, "--seed") {
        Some(v) => parse_seed(&v).unwrap_or_else(|| {
            eprintln!("fuzz_driver: bad --seed {v:?} (decimal or 0x-hex u64)");
            std::process::exit(2);
        }),
        None => 0xD1AF,
    };
    let cases: usize = flag_value(&args, "--cases")
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let mutations_per_trace: usize = flag_value(&args, "--mutations-per-trace")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let jobs = flag_value(&args, "--jobs")
        .and_then(|v| v.parse::<usize>().ok())
        .map_or_else(diaframe_core::default_jobs, |n| n.max(1));
    let json_out = flag_value(&args, "--json-out");

    // DIAFRAME_PROFILE=<path>: run the whole campaign under a
    // hierarchical profile session and write the validated Chrome
    // trace-event JSON there at the end. The report bytes are
    // unaffected (the trace goes to its own file and the report
    // carries no timings), so the reproducibility `cmp` in ci.sh
    // holds with profiling on or off.
    let profile_path = std::env::var("DIAFRAME_PROFILE")
        .ok()
        .filter(|p| !p.is_empty());
    let profile = profile_path
        .as_ref()
        .map(|_| diaframe_core::ProfileSession::new());
    let profile_guard = profile.as_ref().map(diaframe_core::ProfileSession::install);

    let t0 = Instant::now();
    let cfg = GenConfig::default();

    // ---- phase 1: differential battery ---------------------------------
    let idxs: Vec<usize> = (0..cases).collect();
    let reports: Vec<CaseReport> = run_ordered(&idxs, jobs, |_, &i| run_case(seed, i, &cfg))
        .into_iter()
        .map(|r| {
            r.unwrap_or_else(|p| {
                eprintln!("fuzz_driver: worker panicked in differential pass: {p:?}");
                std::process::exit(2);
            })
        })
        .collect();

    let mut divergences: Vec<String> = Vec::new();
    let mut provable_expected = 0usize;
    let mut proved_of_expected = 0usize;
    let mut proved_unexpected: Vec<usize> = Vec::new();
    let mut flavors: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
    for r in &reports {
        divergences.extend(r.divergences.iter().cloned());
        let slot = flavors.entry(r.flavor).or_insert((0, 0));
        slot.0 += 1;
        if r.proved {
            slot.1 += 1;
        }
        if r.expect_provable {
            provable_expected += 1;
            if r.proved {
                proved_of_expected += 1;
            }
        } else if r.proved {
            proved_unexpected.push(r.index);
        }
    }
    let missed_provable = provable_expected - proved_of_expected;

    // ---- phase 2: indexed vs linear hint search ------------------------
    // The index toggle is process-global, so this is a whole second pass
    // rather than a per-case leg: every worker of the pass must see the
    // same setting.
    let proved_idx: Vec<usize> = reports
        .iter()
        .filter(|r| r.trace_json.is_some())
        .map(|r| r.index)
        .collect();
    let index_was_on = hint_index_enabled();
    set_hint_index_enabled(false);
    let linear: Vec<Option<String>> = run_ordered(&proved_idx, jobs, |_, &i| {
        search_once(seed, i, &cfg)
            .trace
            .map(|t| trace_to_json(&t))
    })
    .into_iter()
    .map(|r| {
        r.unwrap_or_else(|p| {
            eprintln!("fuzz_driver: worker panicked in index pass: {p:?}");
            std::process::exit(2);
        })
    })
    .collect();
    set_hint_index_enabled(index_was_on);
    for (slot, &i) in linear.iter().zip(&proved_idx) {
        let indexed = reports[i].trace_json.as_deref().expect("filtered above");
        match slot.as_deref() {
            Some(j) if j == indexed => {}
            Some(_) => divergences.push(format!(
                "case {i}: linear hint search produced a different trace than indexed"
            )),
            None => divergences.push(format!(
                "case {i}: proved with the hint index but stuck without it"
            )),
        }
    }

    // ---- phase 3: adversarial mutation ---------------------------------
    // Corpus: engine traces from phase 1, a synthetic valid-by-
    // construction batch, and the real example-suite traces.
    let mut corpus: Vec<(String, Vec<TraceStep>)> = Vec::new();
    for r in &reports {
        if let Some(json) = &r.trace_json {
            let trace =
                diaframe_core::trace_json::trace_from_json(json).expect("round-trip checked");
            if !trace.is_empty() {
                corpus.push((format!("gen-{}", r.index), trace.steps().to_vec()));
            }
        }
    }
    let n_synth = (cases / 4).max(16);
    for j in 0..n_synth {
        corpus.push((format!("synth-{j}"), gen_trace(seed, j).steps().to_vec()));
    }
    let examples = all_examples();
    let example_traces: Vec<(String, Vec<TraceStep>)> =
        run_ordered(&examples, jobs, |_, ex| match ex.verify() {
            Ok(outcome) => outcome
                .proofs
                .into_iter()
                .enumerate()
                .map(|(k, p)| (format!("example-{}-{k}", ex.name()), p.trace.steps().to_vec()))
                .collect::<Vec<_>>(),
            Err(stuck) => {
                eprintln!(
                    "fuzz_driver: example {} failed to verify: {}",
                    ex.name(),
                    stuck.reason
                );
                std::process::exit(2);
            }
        })
        .into_iter()
        .flat_map(|r| {
            r.unwrap_or_else(|p| {
                eprintln!("fuzz_driver: worker panicked verifying examples: {p:?}");
                std::process::exit(2);
            })
        })
        .collect();
    corpus.extend(example_traces);

    let rows: Vec<MutationRow> = run_ordered(&corpus, jobs, |ci, (label, steps)| MutationRow {
        label: label.clone(),
        outcomes: mutation_round(
            steps,
            diaframe_core::fuzz::FuzzRng::new(seed ^ 0x4D55_7A7E)
                .fork(ci as u64)
                .next_u64(),
            mutations_per_trace,
        ),
    })
    .into_iter()
    .map(|r| {
        r.unwrap_or_else(|p| {
            eprintln!("fuzz_driver: worker panicked in mutation pass: {p:?}");
            std::process::exit(2);
        })
    })
    .collect();

    let mut mutants = 0usize;
    let mut killed = 0usize;
    let mut by_kind: BTreeMap<&'static str, (usize, usize)> = MutationKind::ALL
        .iter()
        .map(|k| (k.name(), (0, 0)))
        .collect();
    let mut survivor_json = Vec::new();
    let mut survivor_console = Vec::new();
    for row in &rows {
        for out in &row.outcomes {
            mutants += 1;
            let slot = by_kind.get_mut(out.kind.name()).expect("all kinds seeded");
            slot.0 += 1;
            if out.killed {
                killed += 1;
                slot.1 += 1;
            } else {
                let minimized = out
                    .minimized
                    .as_deref()
                    .map(|s| trace_to_json(&diaframe_core::fuzz::trace_of_steps(s)))
                    .unwrap_or_default();
                survivor_json.push(format!(
                    "{{ \"trace\": \"{}\", \"kind\": \"{}\", \"description\": \"{}\", \
                     \"minimized\": \"{}\" }}",
                    esc(&row.label),
                    out.kind.name(),
                    esc(&out.description),
                    esc(&minimized)
                ));
                survivor_console.push(format!(
                    "SURVIVING MUTANT [{}] on {}: {}\n  minimized: {}",
                    out.kind.name(),
                    row.label,
                    out.description,
                    minimized
                ));
            }
        }
    }
    let survivors = mutants - killed;

    // ---- report --------------------------------------------------------
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"diaframe-bench/fuzz/v1\",");
    let _ = writeln!(json, "  \"seed\": \"0x{seed:x}\",");
    let _ = writeln!(json, "  \"cases\": {cases},");
    let _ = writeln!(json, "  \"mutations_per_trace\": {mutations_per_trace},");
    let _ = writeln!(json, "  \"provable_expected\": {provable_expected},");
    let _ = writeln!(json, "  \"proved\": {proved_of_expected},");
    let _ = writeln!(json, "  \"missed_provable\": {missed_provable},");
    let _ = writeln!(json, "  \"proved_unexpected\": {},", proved_unexpected.len());
    let _ = writeln!(json, "  \"flavors\": {{");
    let n_flavors = flavors.len();
    for (fi, (name, (total, proved))) in flavors.iter().enumerate() {
        let comma = if fi + 1 == n_flavors { "" } else { "," };
        let _ = writeln!(
            json,
            "    \"{name}\": {{ \"cases\": {total}, \"proved\": {proved} }}{comma}"
        );
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"divergences\": {},", divergences.len());
    let _ = writeln!(json, "  \"divergence_details\": [");
    for (di, d) in divergences.iter().enumerate() {
        let comma = if di + 1 == divergences.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{}\"{comma}", esc(d));
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"index_pass\": {{ \"compared\": {} }},",
        proved_idx.len()
    );
    let _ = writeln!(json, "  \"mutation\": {{");
    let _ = writeln!(json, "    \"traces\": {},", corpus.len());
    let _ = writeln!(json, "    \"mutants\": {mutants},");
    let _ = writeln!(json, "    \"killed\": {killed},");
    let _ = writeln!(json, "    \"survivors\": {survivors},");
    let _ = writeln!(json, "    \"by_kind\": {{");
    for (ki, kind) in MutationKind::ALL.iter().enumerate() {
        let (gen, kill) = by_kind[kind.name()];
        let comma = if ki + 1 == MutationKind::ALL.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            json,
            "      \"{}\": {{ \"mutants\": {gen}, \"killed\": {kill} }}{comma}",
            kind.name()
        );
    }
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"survivor_details\": [");
    for (si, s) in survivor_json.iter().enumerate() {
        let comma = if si + 1 == survivor_json.len() { "" } else { "," };
        let _ = writeln!(json, "    {s}{comma}");
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("fuzz_driver: cannot write {path}: {e}");
            std::process::exit(2);
        }
    } else {
        print!("{json}");
    }

    println!("== fuzz campaign ==");
    println!("seed 0x{seed:x} · {cases} cases · {jobs} jobs");
    println!(
        "search: {proved_of_expected}/{provable_expected} provable-by-construction proved \
         ({missed_provable} completeness misses), {} unexpected proofs",
        proved_unexpected.len()
    );
    println!(
        "differential: {} divergences (telemetry, verdict, codec, spec legs + index pass \
         over {} proved cases)",
        divergences.len(),
        proved_idx.len()
    );
    println!(
        "mutation: {mutants} certified mutants over {} traces ({} kinds) — {killed} killed, \
         {survivors} survivors",
        corpus.len(),
        MutationKind::ALL.len()
    );
    println!("wall: {:.2?}", t0.elapsed());
    if let Some(path) = &json_out {
        println!("report: {path}");
    }
    drop(profile_guard);
    if let (Some(path), Some(p)) = (&profile_path, &profile) {
        let trace = p.chrome_trace();
        match diaframe_core::profile::validate_chrome_trace(&trace) {
            Ok((events, lanes)) => {
                if let Err(e) = std::fs::write(path, &trace) {
                    eprintln!("fuzz_driver: cannot write {path}: {e}");
                    std::process::exit(2);
                }
                println!(
                    "profile: {events} span events across {lanes} lanes, validated, written to {path}"
                );
            }
            Err(e) => {
                eprintln!("fuzz_driver: profile trace failed validation: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut failed = false;
    for d in &divergences {
        eprintln!("DIVERGENCE: {d}");
        failed = true;
    }
    for s in &survivor_console {
        eprintln!("{s}");
        failed = true;
    }
    for i in &proved_unexpected {
        eprintln!("UNEXPECTED PROOF: case {i} was built to be unprovable");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
