//! Regenerates the paper's Figure 6 (and, with flags, the §6 aggregate
//! data and failing-verification experiment).
//!
//! ```text
//! cargo run -p diaframe-bench --bin figure6 [-- --aggregate] [-- --failing] [-- --ablation]
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--failing") {
        println!("== §6 failing-verification experiment ==");
        println!("{}", diaframe_bench::failing_table());
        return;
    }
    if args.iter().any(|a| a == "--ablation") {
        println!("== ablation experiment (search-order design decisions) ==");
        println!("{}", diaframe_bench::ablation_table());
        return;
    }
    if args.iter().any(|a| a == "--aggregate") {
        println!("== §6 aggregated data ==");
        println!("{}", diaframe_bench::aggregate_table());
        return;
    }
    println!("== Figure 6 reproduction ==");
    println!("{}", diaframe_bench::figure6_table());
}
