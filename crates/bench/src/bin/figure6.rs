//! Regenerates the paper's Figure 6 (and, with flags, the §6 aggregate
//! data, the failing-verification experiment and the ablation table).
//!
//! ```text
//! cargo run -p diaframe-bench --bin figure6 -- \
//!     [--aggregate] [--failing] [--ablation] [--all] \
//!     [--jobs N] [--json] [--json-out PATH] [--explain EXAMPLE] \
//!     [--jobs-sweep 1,2,4,8] [--sweep-out PATH]
//! ```
//!
//! The suite is verified once, in parallel (`--jobs`, default
//! `DIAFRAME_JOBS` or the core count), into a shared cache; every
//! requested table is then rendered from that cache without re-running
//! anything. `--json` prints the machine-readable timing + telemetry
//! snapshot (schema `diaframe-bench/figure6/v4`) instead of tables;
//! `--json-out` writes it to a file alongside the tables — the committed
//! `BENCH_figure6.json` is produced that way. `--explain EXAMPLE` skips
//! the suite and instead runs EXAMPLE's sabotaged variant under a
//! telemetry session, printing the structured stuck report
//! (`Stuck::render_explain`): the unmatched goal head, the hypotheses
//! the search kept failing to key on, and the search-effort counters.
//! `--jobs-sweep 1,2,4,8` skips the normal tables and instead re-runs
//! the whole suite once per worker count from a fresh cache, reporting
//! how the suite wall-clock *and the slowest single example* scale;
//! `--sweep-out PATH` writes the machine-readable sweep (schema
//! `diaframe-bench/jobs-sweep/v1`, the committed
//! `BENCH_jobs_sweep.json`).

use diaframe_bench::{
    ablation_table, aggregate_table, failing_table, figure6_json, figure6_table, jobs_sweep_json,
    prefetch_ablations, prefetch_suite, render_jobs_sweep, run_jobs_sweep, SuiteCache,
};
use diaframe_core::TelemetrySession;
use diaframe_examples::all_examples;

/// Runs `name`'s sabotaged variant under a telemetry session and prints
/// the structured stuck report. Exits non-zero when the example is
/// unknown, has no sabotaged variant, or (a harness bug) verifies anyway.
fn explain(name: &str) -> ! {
    let examples = all_examples();
    let Some(ex) = examples.iter().find(|ex| ex.name() == name) else {
        eprintln!("--explain: no example named {name:?}; known examples:");
        for ex in &examples {
            eprintln!("  {}", ex.name());
        }
        std::process::exit(2);
    };
    let session = TelemetrySession::new(name);
    let guard = session.install();
    let verdict = diaframe_core::with_verification_session(|| ex.verify_broken());
    drop(guard);
    session.flush();
    match verdict {
        None => {
            eprintln!("--explain: {name} has no sabotaged variant");
            std::process::exit(2);
        }
        Some(Ok(_)) => {
            eprintln!("--explain: {name}'s sabotaged variant unexpectedly verified");
            std::process::exit(1);
        }
        Some(Err(stuck)) => {
            println!("== {name}: why the sabotaged variant gets stuck ==");
            print!("{}", stuck.render_explain());
            std::process::exit(0);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    if let Some(name) = args
        .iter()
        .position(|a| a == "--explain")
        .and_then(|i| args.get(i + 1))
    {
        explain(name);
    }
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .map_or_else(diaframe_core::default_jobs, |n| n.max(1));
    let json_out = args
        .iter()
        .position(|a| a == "--json-out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    if let Some(list) = args
        .iter()
        .position(|a| a == "--jobs-sweep")
        .and_then(|i| args.get(i + 1))
    {
        let levels: Vec<usize> = list
            .split(',')
            .map(|v| {
                v.trim()
                    .parse::<usize>()
                    .map(|n| n.max(1))
                    .unwrap_or_else(|_| panic!("--jobs-sweep: bad worker count {v:?}"))
            })
            .collect();
        assert!(!levels.is_empty(), "--jobs-sweep: empty level list");
        let sweep = run_jobs_sweep(&levels, false);
        println!("== jobs-scaling sweep ==");
        println!("{}", render_jobs_sweep(&sweep));
        if let Some(path) = args
            .iter()
            .position(|a| a == "--sweep-out")
            .and_then(|i| args.get(i + 1))
        {
            let snapshot = jobs_sweep_json(&sweep);
            std::fs::write(path, &snapshot)
                .unwrap_or_else(|e| panic!("writing {path}: {e}"));
            println!("[jobs-sweep snapshot written to {path}]");
        }
        return;
    }

    let all = has("--all");
    let (failing, ablation, aggregate) = (has("--failing"), has("--ablation"), has("--aggregate"));
    let figure6 = all || !(failing || ablation || aggregate);

    let cache = SuiteCache::new();
    // One parallel pass fills the cache with everything the requested
    // tables will read; rendering below re-runs nothing.
    let mut wall = prefetch_suite(&cache, jobs, all || failing);
    if all || ablation {
        wall += prefetch_ablations(&cache, jobs);
    }

    let json = has("--json");
    if !json {
        if figure6 {
            println!("== Figure 6 reproduction ==");
            println!("{}", figure6_table(&cache));
        }
        if all || aggregate {
            println!("== §6 aggregated data ==");
            println!("{}", aggregate_table(&cache));
        }
        if all || failing {
            println!("== §6 failing-verification experiment ==");
            println!("{}", failing_table(&cache));
        }
        if all || ablation {
            println!("== ablation experiment (search-order design decisions) ==");
            println!("{}", ablation_table(&cache));
        }
        println!(
            "[suite: {} jobs, {:.2?} wall, cache {} hits / {} misses]",
            jobs,
            wall,
            cache.hits(),
            cache.misses()
        );
    }
    if json || json_out.is_some() {
        let snapshot = figure6_json(&cache, jobs, wall);
        if let Some(path) = json_out {
            std::fs::write(&path, &snapshot)
                .unwrap_or_else(|e| panic!("writing {path}: {e}"));
            println!("[timing snapshot written to {path}]");
        }
        if json {
            print!("{snapshot}");
        }
    }
}
