//! Regenerates the paper's Figure 6 (and, with flags, the §6 aggregate
//! data, the failing-verification experiment and the ablation table).
//!
//! ```text
//! cargo run -p diaframe-bench --bin figure6 -- \
//!     [--aggregate] [--failing] [--ablation] [--all] \
//!     [--jobs N] [--json] [--json-out PATH]
//! ```
//!
//! The suite is verified once, in parallel (`--jobs`, default
//! `DIAFRAME_JOBS` or the core count), into a shared cache; every
//! requested table is then rendered from that cache without re-running
//! anything. `--json` prints the machine-readable timing snapshot
//! (schema `diaframe-bench/figure6/v1`) instead of tables; `--json-out`
//! writes it to a file alongside the tables — the committed
//! `BENCH_figure6.json` is produced that way.

use diaframe_bench::{
    ablation_table, aggregate_table, failing_table, figure6_json, figure6_table,
    prefetch_ablations, prefetch_suite, SuiteCache,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .map_or_else(diaframe_core::default_jobs, |n| n.max(1));
    let json_out = args
        .iter()
        .position(|a| a == "--json-out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let all = has("--all");
    let (failing, ablation, aggregate) = (has("--failing"), has("--ablation"), has("--aggregate"));
    let figure6 = all || !(failing || ablation || aggregate);

    let cache = SuiteCache::new();
    // One parallel pass fills the cache with everything the requested
    // tables will read; rendering below re-runs nothing.
    let mut wall = prefetch_suite(&cache, jobs, all || failing);
    if all || ablation {
        wall += prefetch_ablations(&cache, jobs);
    }

    let json = has("--json");
    if !json {
        if figure6 {
            println!("== Figure 6 reproduction ==");
            println!("{}", figure6_table(&cache));
        }
        if all || aggregate {
            println!("== §6 aggregated data ==");
            println!("{}", aggregate_table(&cache));
        }
        if all || failing {
            println!("== §6 failing-verification experiment ==");
            println!("{}", failing_table(&cache));
        }
        if all || ablation {
            println!("== ablation experiment (search-order design decisions) ==");
            println!("{}", ablation_table(&cache));
        }
        println!(
            "[suite: {} jobs, {:.2?} wall, cache {} hits / {} misses]",
            jobs,
            wall,
            cache.hits(),
            cache.misses()
        );
    }
    if json || json_out.is_some() {
        let snapshot = figure6_json(&cache, jobs, wall);
        if let Some(path) = json_out {
            std::fs::write(&path, &snapshot)
                .unwrap_or_else(|e| panic!("writing {path}: {e}"));
            println!("[timing snapshot written to {path}]");
        }
        if json {
            print!("{snapshot}");
        }
    }
}
