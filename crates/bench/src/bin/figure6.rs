//! Regenerates the paper's Figure 6 (and, with flags, the §6 aggregate
//! data, the failing-verification experiment and the ablation table).
//!
//! ```text
//! cargo run -p diaframe-bench --bin figure6 -- \
//!     [--aggregate] [--failing] [--ablation] [--all] \
//!     [--jobs N] [--json] [--json-out PATH] [--explain EXAMPLE] \
//!     [--store DIR] [--jobs-sweep 1,2,4,8] [--sweep-out PATH] \
//!     [--profile-out PATH] [--folded-out PATH] [--hotspots N] \
//!     [--diff BASELINE.json] [--diff-current CURRENT.json] \
//!     [--diff-ratio X] [--diff-aggregate-ratio X] [--diff-min-ms X] \
//!     [--diff-counter-ratio X] [--diff-counter-floor N]
//! ```
//!
//! The suite is verified once, in parallel (`--jobs`, default
//! `DIAFRAME_JOBS` or the core count), into a shared cache; every
//! requested table is then rendered from that cache without re-running
//! anything. `--json` prints the machine-readable timing + telemetry
//! snapshot (schema `diaframe-bench/figure6/v7`) instead of tables;
//! `--json-out` writes it to a file alongside the tables — the committed
//! `BENCH_figure6.json` is produced that way. `--store DIR` runs the
//! warm-vs-cold proof-store experiment: the suite is prefetched twice
//! against a persistent content-addressed store rooted at DIR (cold
//! pass searches and populates; warm pass must be answered entirely by
//! checker-replayed store hits, render a byte-identical verdict table,
//! and finish in at most half the cold wall — the run exits non-zero
//! otherwise), and the snapshot gains a `store` block recording both
//! passes. `--explain EXAMPLE` skips
//! the suite and instead runs EXAMPLE's sabotaged variant under a
//! telemetry session, printing the structured stuck report
//! (`Stuck::render_explain`): the unmatched goal head, the hypotheses
//! the search kept failing to key on, and the search-effort counters.
//! `--jobs-sweep 1,2,4,8` skips the normal tables and instead re-runs
//! the whole suite once per worker count from a fresh cache, reporting
//! how the suite wall-clock *and the slowest single example* scale;
//! `--sweep-out PATH` writes the machine-readable sweep (schema
//! `diaframe-bench/jobs-sweep/v1`, the committed
//! `BENCH_jobs_sweep.json`).
//!
//! Profiling: any of `--profile-out` (Chrome trace-event JSON, loadable
//! in Perfetto / `chrome://tracing`, one lane per pool, speculation and
//! checker thread), `--folded-out` (folded stacks for
//! `flamegraph.pl`-style tools) and `--hotspots N` (top-N `(kind,
//! label)` pairs by self time) runs the suite under a hierarchical
//! profile session. The trace is validated (balanced begin/end events,
//! monotonic timestamps per lane) before it is written, and the span
//! rollups are cross-checked against the flat telemetry counters — the
//! run aborts if the two instrumentation paths disagree.
//!
//! Snapshot diffing: `--diff BASELINE.json` compares this run's v7
//! snapshot against a committed baseline and prints a markdown
//! regression report (per-example search-time ratios, deterministic
//! counter drift); the exit code is non-zero when any gate fails. With
//! `--diff-current CURRENT.json` both sides come from files and the
//! suite is not run at all.

use diaframe_bench::{
    ablation_table, aggregate_table, diff_snapshots, failing_table, figure6_json, figure6_table,
    jobs_sweep_json, prefetch_ablations, prefetch_suite, profile_identity_report, render_hotspots,
    render_jobs_sweep, run_jobs_sweep, verdict_table, DiffOptions, ProofStore, StoreExperiment,
    SuiteCache,
};
use diaframe_core::{ProfileSession, TelemetrySession};
use diaframe_examples::all_examples;

/// Reads a whole file or exits with a diagnostic (used for the diff
/// baselines, where a missing file is an operator error, not a panic).
fn read_or_exit(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("--diff: cannot read {path}: {e}");
        std::process::exit(2);
    })
}

/// Runs the snapshot diff and exits non-zero when a gate fails.
fn run_diff(baseline: &str, current: &str, opts: &DiffOptions) -> ! {
    match diff_snapshots(baseline, current, opts) {
        Ok(report) => {
            print!("{}", report.markdown);
            std::process::exit(i32::from(!report.regressions.is_empty()));
        }
        Err(e) => {
            eprintln!("--diff: {e}");
            std::process::exit(2);
        }
    }
}

/// Runs `name`'s sabotaged variant under a telemetry session and prints
/// the structured stuck report. Exits non-zero when the example is
/// unknown, has no sabotaged variant, or (a harness bug) verifies anyway.
fn explain(name: &str) -> ! {
    let examples = all_examples();
    let Some(ex) = examples.iter().find(|ex| ex.name() == name) else {
        eprintln!("--explain: no example named {name:?}; known examples:");
        for ex in &examples {
            eprintln!("  {}", ex.name());
        }
        std::process::exit(2);
    };
    let session = TelemetrySession::new(name);
    let guard = session.install();
    let verdict = diaframe_core::with_verification_session(|| ex.verify_broken());
    drop(guard);
    session.flush();
    match verdict {
        None => {
            eprintln!("--explain: {name} has no sabotaged variant");
            std::process::exit(2);
        }
        Some(Ok(_)) => {
            eprintln!("--explain: {name}'s sabotaged variant unexpectedly verified");
            std::process::exit(1);
        }
        Some(Err(stuck)) => {
            println!("== {name}: why the sabotaged variant gets stuck ==");
            print!("{}", stuck.render_explain());
            std::process::exit(0);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    if let Some(name) = args
        .iter()
        .position(|a| a == "--explain")
        .and_then(|i| args.get(i + 1))
    {
        explain(name);
    }
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .map_or_else(diaframe_core::default_jobs, |n| n.max(1));
    let json_out = args
        .iter()
        .position(|a| a == "--json-out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let opt = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let mut diff_opts = DiffOptions::default();
    let parse_f64 = |flag: &str| {
        opt(flag).map(|v| {
            v.parse::<f64>()
                .unwrap_or_else(|_| panic!("{flag}: bad number {v:?}"))
        })
    };
    if let Some(v) = parse_f64("--diff-ratio") {
        diff_opts.example_ratio = v;
    }
    if let Some(v) = parse_f64("--diff-aggregate-ratio") {
        diff_opts.aggregate_ratio = v;
    }
    if let Some(v) = parse_f64("--diff-min-ms") {
        diff_opts.min_ms = v;
    }
    if let Some(v) = parse_f64("--diff-counter-ratio") {
        diff_opts.counter_ratio = v;
    }
    if let Some(v) = opt("--diff-counter-floor") {
        diff_opts.counter_floor = v
            .parse()
            .unwrap_or_else(|_| panic!("--diff-counter-floor: bad count {v:?}"));
    }
    let diff_baseline = opt("--diff").cloned();
    let diff_current = opt("--diff-current").cloned();
    if let (Some(b), Some(c)) = (&diff_baseline, &diff_current) {
        // Pure file-vs-file mode: nothing is verified.
        run_diff(&read_or_exit(b), &read_or_exit(c), &diff_opts);
    }
    let profile_out = opt("--profile-out").cloned();
    let folded_out = opt("--folded-out").cloned();
    let hotspots: Option<usize> = opt("--hotspots").map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--hotspots: bad count {v:?}"))
    });

    if let Some(list) = args
        .iter()
        .position(|a| a == "--jobs-sweep")
        .and_then(|i| args.get(i + 1))
    {
        let levels: Vec<usize> = list
            .split(',')
            .map(|v| {
                v.trim()
                    .parse::<usize>()
                    .map(|n| n.max(1))
                    .unwrap_or_else(|_| panic!("--jobs-sweep: bad worker count {v:?}"))
            })
            .collect();
        assert!(!levels.is_empty(), "--jobs-sweep: empty level list");
        let sweep = run_jobs_sweep(&levels, false);
        println!("== jobs-scaling sweep ==");
        println!("{}", render_jobs_sweep(&sweep));
        if let Some(path) = args
            .iter()
            .position(|a| a == "--sweep-out")
            .and_then(|i| args.get(i + 1))
        {
            let snapshot = jobs_sweep_json(&sweep);
            std::fs::write(path, &snapshot)
                .unwrap_or_else(|e| panic!("writing {path}: {e}"));
            println!("[jobs-sweep snapshot written to {path}]");
        }
        return;
    }

    let all = has("--all");
    let (failing, ablation, aggregate) = (has("--failing"), has("--ablation"), has("--aggregate"));
    let figure6 = all || !(failing || ablation || aggregate);
    let store_dir = opt("--store").cloned();
    if store_dir.is_some()
        && (profile_out.is_some() || folded_out.is_some() || hotspots.is_some())
    {
        // The profile identity report reconciles span rollups against
        // exactly one prefetch pass; the store experiment runs two.
        eprintln!("--store cannot be combined with the profiling flags");
        std::process::exit(2);
    }

    // The profile session covers exactly the prefetch passes below —
    // every verification, and nothing else — so its span rollups must
    // reconcile with the cached runs' flat counters.
    let profile =
        (profile_out.is_some() || folded_out.is_some() || hotspots.is_some()).then(ProfileSession::new);
    let profile_guard = profile.as_ref().map(ProfileSession::install);
    let mut store_exp: Option<StoreExperiment> = None;
    // One parallel pass fills the cache with everything the requested
    // tables will read; rendering below re-runs nothing.
    let (cache, wall) = if let Some(dir) = &store_dir {
        // Warm-vs-cold store experiment: the same suite twice against
        // one persistent store — a cold pass that searches and
        // populates, then a warm pass (fresh in-memory cache, same
        // store) that must be answered by checker-replayed store hits.
        let store = std::sync::Arc::new(
            ProofStore::open(std::path::Path::new(dir), None)
                .unwrap_or_else(|e| panic!("--store: cannot open {dir}: {e}")),
        );
        let cold_cache = SuiteCache::with_store(std::sync::Arc::clone(&store));
        let mut cold_wall = prefetch_suite(&cold_cache, jobs, all || failing);
        if all || ablation {
            cold_wall += prefetch_ablations(&cold_cache, jobs);
        }
        let cold = store.stats();
        let warm_cache = SuiteCache::with_store(std::sync::Arc::clone(&store));
        let warm_wall = prefetch_suite(&warm_cache, jobs, false);
        let warm = store.stats().delta_since(&cold);
        let suite_len = all_examples().len() as u64;
        let cold_table = verdict_table(&cold_cache);
        let warm_table = verdict_table(&warm_cache);
        let speedup = cold_wall.as_secs_f64() / warm_wall.as_secs_f64().max(f64::EPSILON);
        let mut failures = Vec::new();
        if warm.hits != suite_len || warm.misses != 0 {
            failures.push(format!(
                "warm pass must be all store hits: {} hits / {} misses over {suite_len} examples",
                warm.hits, warm.misses
            ));
        }
        if cold_table != warm_table {
            failures.push(String::from(
                "verdict tables differ between the cold search and the warm replay",
            ));
        }
        if warm_wall.as_secs_f64() > 0.5 * cold_wall.as_secs_f64() {
            failures.push(format!(
                "warm wall {warm_wall:.2?} exceeds half the cold wall {cold_wall:.2?}"
            ));
        }
        if failures.is_empty() {
            println!(
                "store gate: PASS — warm {}/{suite_len} hits, 0 misses, byte-identical verdict \
                 tables, {warm_wall:.2?} warm vs {cold_wall:.2?} cold ({speedup:.1}x)",
                warm.hits
            );
        } else {
            for f in &failures {
                eprintln!("store gate: FAIL — {f}");
            }
            std::process::exit(1);
        }
        store_exp = Some(StoreExperiment {
            cold_wall,
            warm_wall,
            cold,
            warm,
            entries: store.len(),
            bytes: store.total_bytes(),
        });
        (cold_cache, cold_wall)
    } else {
        let cache = SuiteCache::new();
        let mut wall = prefetch_suite(&cache, jobs, all || failing);
        if all || ablation {
            wall += prefetch_ablations(&cache, jobs);
        }
        (cache, wall)
    };
    drop(profile_guard);

    let json = has("--json");
    if !json {
        if figure6 {
            println!("== Figure 6 reproduction ==");
            println!("{}", figure6_table(&cache));
        }
        if all || aggregate {
            println!("== §6 aggregated data ==");
            println!("{}", aggregate_table(&cache));
        }
        if all || failing {
            println!("== §6 failing-verification experiment ==");
            println!("{}", failing_table(&cache));
        }
        if all || ablation {
            println!("== ablation experiment (search-order design decisions) ==");
            println!("{}", ablation_table(&cache));
        }
        println!(
            "[suite: {} jobs, {:.2?} wall, cache {} hits / {} misses]",
            jobs,
            wall,
            cache.hits(),
            cache.misses()
        );
    }
    if json || json_out.is_some() {
        let snapshot = figure6_json(&cache, jobs, wall, store_exp.as_ref());
        if let Some(path) = json_out {
            std::fs::write(&path, &snapshot)
                .unwrap_or_else(|e| panic!("writing {path}: {e}"));
            println!("[timing snapshot written to {path}]");
        }
        if json {
            print!("{snapshot}");
        }
    }
    if let Some(p) = &profile {
        // Two independent instrumentation paths, one ledger: abort if
        // the span tree and the flat counters disagree.
        match profile_identity_report(p, &cache) {
            Ok(lines) => println!("{lines}"),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
        if let Some(n) = hotspots {
            println!("== profile hotspots (top {n} by self time) ==");
            print!("{}", render_hotspots(p, n));
        }
        if let Some(path) = &profile_out {
            let trace = p.chrome_trace();
            let (events, lanes) = diaframe_core::profile::validate_chrome_trace(&trace)
                .unwrap_or_else(|e| panic!("--profile-out: trace failed validation: {e}"));
            std::fs::write(path, &trace).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            println!(
                "[profile trace written to {path}: {events} span events across {lanes} lanes, validated]"
            );
        }
        if let Some(path) = &folded_out {
            std::fs::write(path, p.folded_stacks())
                .unwrap_or_else(|e| panic!("writing {path}: {e}"));
            println!("[folded stacks written to {path}]");
        }
    }
    if let Some(b) = &diff_baseline {
        // Fresh-run mode: this run's v7 snapshot against the committed
        // baseline. Exits non-zero on any regression.
        let current = figure6_json(&cache, jobs, wall, store_exp.as_ref());
        run_diff(&read_or_exit(b), &current, &diff_opts);
    }
}
