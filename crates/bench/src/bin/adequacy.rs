//! Runs the schedule-sweep adequacy experiment: every proved example's
//! client under seeded random interleavings + preemption-bounded DFS
//! with the deadlock/lock-cycle/race detectors on, plus the
//! intentionally-buggy negative suite the detectors must flag.
//!
//! ```text
//! cargo run -p diaframe-bench --bin adequacy -- \
//!     [--seeds N] [--fuel N] [--preemption-bound N] \
//!     [--dfs-max-runs N] [--dfs-max-steps N] \
//!     [--neg-seeds N] [--neg-fuel N] \
//!     [--jobs N] [--json] [--json-out PATH]
//! ```
//!
//! Prints the human-readable report (or, with `--json`, the
//! machine-readable snapshot — schema `diaframe-bench/adequacy/v1`);
//! `--json-out` writes the snapshot to a file alongside the report —
//! the committed `BENCH_adequacy.json` is produced that way. The
//! snapshot is byte-reproducible: it depends only on the sweep
//! parameters, never on `--jobs`, wall-clock or timestamps, which CI
//! checks by running twice and `cmp`-ing. Exits non-zero when the gate
//! fails (a proved example swept dirty or a negative went unflagged).

use diaframe_bench::{adequacy_json, render_adequacy, run_adequacy, AdequacyConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let opt = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let num = |flag: &str| {
        opt(flag).map(|v| {
            v.parse::<u64>()
                .unwrap_or_else(|_| panic!("{flag}: bad number {v:?}"))
        })
    };
    let mut cfg = AdequacyConfig::default();
    if let Some(v) = num("--seeds") {
        cfg.seeds = v;
    }
    if let Some(v) = num("--fuel") {
        cfg.fuel = v;
    }
    if let Some(v) = num("--preemption-bound") {
        cfg.preemption_bound = u32::try_from(v).expect("--preemption-bound: out of range");
    }
    if let Some(v) = num("--dfs-max-runs") {
        cfg.dfs_max_runs = v;
    }
    if let Some(v) = num("--dfs-max-steps") {
        cfg.dfs_max_steps = v;
    }
    if let Some(v) = num("--neg-seeds") {
        cfg.neg_seeds = v;
    }
    if let Some(v) = num("--neg-fuel") {
        cfg.neg_fuel = v;
    }
    if let Some(v) = num("--jobs") {
        cfg.jobs = usize::try_from(v).map_or(1, |n| n.max(1));
    }

    let start = std::time::Instant::now();
    let report = run_adequacy(&cfg);
    let wall = start.elapsed();

    let json = has("--json");
    if json {
        print!("{}", adequacy_json(&report));
    } else {
        println!("== adequacy schedule sweep ==");
        print!("{}", render_adequacy(&report));
        println!("[{} jobs, {wall:.2?} wall]", cfg.jobs);
    }
    if let Some(path) = opt("--json-out") {
        let snapshot = adequacy_json(&report);
        std::fs::write(path, &snapshot).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        if !json {
            println!("[adequacy snapshot written to {path}]");
        }
    }
    std::process::exit(i32::from(!report.pass()));
}
