//! The `diaframe` verification service CLI: a long-lived daemon with a
//! persistent content-addressed proof cache, and its thin client.
//!
//! ```text
//! diaframe serve  (--listen ADDR | --socket PATH)
//!                 [--store DIR] [--budget BYTES] [--jobs N]
//! diaframe client (--connect ADDR | --socket PATH)
//!                 verify NAME...            # batch-verify named examples
//!                 verify-all [--table-out PATH]
//!                 stats
//!                 shutdown
//! ```
//!
//! The daemon answers `verify` requests from the persistent store when
//! it can (replaying stored traces through the independent checker) and
//! falls back to a full parallel search otherwise; see
//! [`diaframe_bench::server`] for the protocol and
//! [`diaframe_bench::store`] for the cache's trust model.
//! `verify-all --table-out` writes the deterministic verdict table,
//! which CI byte-compares across a cold and a warm run.

use diaframe_bench::server::{serve, Client, Endpoint, ServerConfig};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage:\n  diaframe serve  (--listen ADDR | --socket PATH) [--store DIR] [--budget BYTES] [--jobs N]\n  diaframe client (--connect ADDR | --socket PATH) (verify NAME... | verify-all [--table-out PATH] | stats | shutdown)"
    );
    std::process::exit(2);
}

fn endpoint(args: &[String], tcp_flag: &str) -> Endpoint {
    let opt = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    match (opt(tcp_flag), opt("--socket")) {
        (Some(addr), None) => Endpoint::Tcp(addr.clone()),
        (None, Some(path)) => Endpoint::Unix(PathBuf::from(path)),
        _ => usage(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opt = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    match args.first().map(String::as_str) {
        Some("serve") => {
            let config = ServerConfig {
                store_dir: opt("--store").map(PathBuf::from),
                budget: opt("--budget").map(|v| {
                    v.parse()
                        .unwrap_or_else(|_| panic!("--budget: bad byte count {v:?}"))
                }),
                jobs: opt("--jobs")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(diaframe_core::default_jobs),
            };
            let ep = endpoint(&args, "--listen");
            if let Err(e) = serve(&ep, &config) {
                eprintln!("diaframe serve: {e}");
                std::process::exit(1);
            }
        }
        Some("client") => {
            let ep = endpoint(&args, "--connect");
            // The verb is the first non-flag argument after "client".
            let mut i = 1;
            let verb = loop {
                match args.get(i).map(String::as_str) {
                    Some("--connect" | "--socket" | "--table-out") => i += 2,
                    Some(v) => break v,
                    None => usage(),
                }
            };
            let request = match verb {
                "verify" => {
                    let names: Vec<String> = args[i + 1..]
                        .iter()
                        .take_while(|a| !a.starts_with("--"))
                        .map(|n| format!("\"{n}\""))
                        .collect();
                    if names.is_empty() {
                        usage();
                    }
                    format!("{{\"op\":\"verify\",\"examples\":[{}]}}", names.join(","))
                }
                "verify-all" => String::from("{\"op\":\"verify_all\"}"),
                "stats" => String::from("{\"op\":\"stats\"}"),
                "shutdown" => String::from("{\"op\":\"shutdown\"}"),
                _ => usage(),
            };
            let mut client = Client::connect(&ep).unwrap_or_else(|e| {
                eprintln!("diaframe client: cannot connect: {e}");
                std::process::exit(1);
            });
            let response = client.call(&request).unwrap_or_else(|e| {
                eprintln!("diaframe client: {e}");
                std::process::exit(1);
            });
            let parsed = diaframe_core::trace_json::parse_json_value(&response)
                .unwrap_or_else(|e| panic!("malformed response: {e}\n{response}"));
            let ok = parsed
                .get("ok")
                .and_then(diaframe_core::trace_json::JsonValue::as_bool)
                .unwrap_or(false);
            if let Some(path) = opt("--table-out") {
                let table = parsed
                    .get("table")
                    .and_then(diaframe_core::trace_json::JsonValue::as_str)
                    .unwrap_or_else(|| {
                        eprintln!("diaframe client: response carries no table\n{response}");
                        std::process::exit(1);
                    });
                std::fs::write(path, table).unwrap_or_else(|e| panic!("writing {path}: {e}"));
                println!("[verdict table written to {path}]");
            } else {
                println!("{response}");
            }
            if !ok {
                std::process::exit(1);
            }
        }
        _ => usage(),
    }
}
