//! Rational numbers, used for fractional permissions.
//!
//! The paper's fractional permissions live in `Q₊ = {q ∈ ℚ | q > 0}`; hint
//! side conditions additionally compute differences like `q₂ − q₁`, so the
//! representation here is full rationals [`Rat`], with [`Qp`] the checked
//! positive wrapper used by points-to assertions.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// An arbitrary rational number with an always-normalised representation
/// (`den > 0`, `gcd(num, den) == 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

impl Rat {
    /// The rational `0`.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// The rational `1`.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    #[must_use]
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Rat {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    #[must_use]
    /// The rational `n/1`.
    pub fn from_int(n: i128) -> Rat {
        Rat { num: n, den: 1 }
    }

    #[must_use]
    /// The numerator of the reduced form.
    pub fn numerator(self) -> i128 {
        self.num
    }

    #[must_use]
    /// The (positive) denominator of the reduced form.
    pub fn denominator(self) -> i128 {
        self.den
    }

    #[must_use]
    /// Whether the rational is `0`.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    #[must_use]
    /// Whether the rational is `> 0`.
    pub fn is_positive(self) -> bool {
        self.num > 0
    }

    #[must_use]
    /// Whether the rational is `< 0`.
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    #[must_use]
    /// The absolute value.
    pub fn abs(self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Reciprocal.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    #[must_use]
    pub fn recip(self) -> Rat {
        assert!(self.num != 0, "reciprocal of zero");
        Rat::new(self.den, self.num)
    }

    /// `self` as an integer if it is integral.
    #[must_use]
    pub fn to_integer(self) -> Option<i128> {
        (self.den == 1).then_some(self.num)
    }

    /// Largest integer `≤ self`.
    #[must_use]
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Smallest integer `≥ self`.
    #[must_use]
    pub fn ceil(self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::ZERO
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        Rat::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        Rat::new(self.num * rhs.den - rhs.num * self.den, self.den * rhs.den)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        Rat::new(self.num * rhs.num, self.den * rhs.den)
    }
}

#[allow(clippy::suspicious_arithmetic_impl)] // division *is* multiplication by the reciprocal
impl Div for Rat {
    type Output = Rat;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: Rat) -> Rat {
        self * rhs.recip()
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i128> for Rat {
    fn from(n: i128) -> Rat {
        Rat::from_int(n)
    }
}

/// A *positive* rational — the fractional permissions `Q₊` of the paper.
///
/// `Qp` values arise as literal fractions in points-to assertions
/// (`ℓ ↦{q} v`). Arithmetic producing possibly non-positive results is done
/// on [`Rat`] with positivity side conditions discharged by the pure solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Qp(Rat);

impl Qp {
    /// The full permission `1`.
    pub const ONE: Qp = Qp(Rat::ONE);

    /// Creates a positive fraction.
    ///
    /// Returns `None` when `num/den ≤ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    #[must_use]
    pub fn new(num: i128, den: i128) -> Option<Qp> {
        let r = Rat::new(num, den);
        r.is_positive().then_some(Qp(r))
    }

    /// The half permission `1/2`.
    #[must_use]
    pub fn half() -> Qp {
        Qp(Rat::new(1, 2))
    }

    #[must_use]
    /// The underlying rational.
    pub fn as_rat(self) -> Rat {
        self.0
    }

    /// Checked conversion from a rational.
    #[must_use]
    pub fn from_rat(r: Rat) -> Option<Qp> {
        r.is_positive().then_some(Qp(r))
    }

    /// Fraction addition (total: positives are closed under `+`).
    #[must_use]
    pub fn checked_add(self, rhs: Qp) -> Qp {
        Qp(self.0 + rhs.0)
    }

    /// Fraction subtraction; `None` when the result would not be positive.
    #[must_use]
    pub fn checked_sub(self, rhs: Qp) -> Option<Qp> {
        Qp::from_rat(self.0 - rhs.0)
    }
}

impl fmt::Display for Qp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl Default for Qp {
    fn default() -> Self {
        Qp::ONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, 5), Rat::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 2);
        let b = Rat::new(1, 3);
        assert_eq!(a + b, Rat::new(5, 6));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 6));
        assert_eq!(a / b, Rat::new(3, 2));
        assert_eq!(-a, Rat::new(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::ZERO);
        assert_eq!(Rat::new(3, 3).cmp(&Rat::ONE), Ordering::Equal);
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::from_int(5).floor(), 5);
        assert_eq!(Rat::from_int(5).ceil(), 5);
    }

    #[test]
    fn qp_is_positive_only() {
        assert!(Qp::new(1, 2).is_some());
        assert!(Qp::new(0, 2).is_none());
        assert!(Qp::new(-1, 2).is_none());
    }

    #[test]
    fn qp_halves_sum_to_one() {
        let h = Qp::half();
        assert_eq!(h.checked_add(h), Qp::ONE);
        assert_eq!(Qp::ONE.checked_sub(h), Some(h));
        assert_eq!(h.checked_sub(h), None);
    }

    #[test]
    fn display() {
        assert_eq!(Rat::new(3, 4).to_string(), "3/4");
        assert_eq!(Rat::from_int(-2).to_string(), "-2");
        assert_eq!(Qp::ONE.to_string(), "1");
    }
}
