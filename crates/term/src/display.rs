//! Pretty-printing of terms and pure propositions.
//!
//! Display needs the [`VarCtx`] for variable name hints, so the primary
//! entry points are [`TermDisplay`] and [`PurePropDisplay`], created via
//! [`pp_term`] / [`pp_prop`].

use crate::evar::VarCtx;
use crate::pure::PureProp;
use crate::term::{Sym, Term};
use std::fmt;

/// Displays a term with variable names resolved against a context.
pub struct TermDisplay<'a> {
    ctx: &'a VarCtx,
    term: &'a Term,
}

/// Creates a [`TermDisplay`] for use in format strings.
#[must_use]
pub fn pp_term<'a>(ctx: &'a VarCtx, term: &'a Term) -> TermDisplay<'a> {
    TermDisplay { ctx, term }
}

impl fmt::Display for TermDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_term(self.ctx, &self.term.zonk(self.ctx), f)
    }
}

fn fmt_term(ctx: &VarCtx, t: &Term, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match t {
        Term::Var(v) => {
            let name = ctx.var_name(*v);
            if name.is_empty() {
                write!(f, "{v}")
            } else {
                write!(f, "{name}{}", v.index())
            }
        }
        Term::EVar(e) => write!(f, "{e}"),
        Term::Int(n) => write!(f, "{n}"),
        Term::Bool(b) => write!(f, "{b}"),
        Term::QpLit(q) => write!(f, "{q}"),
        Term::Loc(l) => write!(f, "ℓ{l}"),
        Term::Gname(g) => write!(f, "γ{g}"),
        Term::App(sym, args) => match sym {
            Sym::Add => binop(ctx, "+", &args[0], &args[1], f),
            Sym::Sub => binop(ctx, "-", &args[0], &args[1], f),
            Sym::Mul => binop(ctx, "*", &args[0], &args[1], f),
            Sym::Min => fun(ctx, "min", args, f),
            Sym::Max => fun(ctx, "max", args, f),
            Sym::Neg => {
                write!(f, "-")?;
                fmt_atomic(ctx, &args[0], f)
            }
            Sym::VInt | Sym::VBool | Sym::VLoc => {
                write!(f, "#")?;
                fmt_atomic(ctx, &args[0], f)
            }
            Sym::VUnit => write!(f, "#()"),
            Sym::VPair => {
                write!(f, "(")?;
                fmt_term(ctx, &args[0], f)?;
                write!(f, ", ")?;
                fmt_term(ctx, &args[1], f)?;
                write!(f, ")")
            }
            Sym::VInjL => fun(ctx, "inl", args, f),
            Sym::VInjR => fun(ctx, "inr", args, f),
            Sym::Fst => fun(ctx, "fst", args, f),
            Sym::Snd => fun(ctx, "snd", args, f),
        },
    }
}

fn fmt_atomic(ctx: &VarCtx, t: &Term, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let needs_parens = matches!(t, Term::App(s, _) if s.is_arith()) || matches!(t, Term::Int(n) if *n < 0);
    if needs_parens {
        write!(f, "(")?;
        fmt_term(ctx, t, f)?;
        write!(f, ")")
    } else {
        fmt_term(ctx, t, f)
    }
}

fn binop(ctx: &VarCtx, op: &str, a: &Term, b: &Term, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    fmt_atomic(ctx, a, f)?;
    write!(f, " {op} ")?;
    fmt_atomic(ctx, b, f)
}

fn fun(ctx: &VarCtx, name: &str, args: &[Term], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "{name}(")?;
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        fmt_term(ctx, a, f)?;
    }
    write!(f, ")")
}

/// Displays a pure proposition with variable names resolved.
pub struct PurePropDisplay<'a> {
    ctx: &'a VarCtx,
    prop: &'a PureProp,
}

/// Creates a [`PurePropDisplay`] for use in format strings.
#[must_use]
pub fn pp_prop<'a>(ctx: &'a VarCtx, prop: &'a PureProp) -> PurePropDisplay<'a> {
    PurePropDisplay { ctx, prop }
}

impl fmt::Display for PurePropDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_prop(self.ctx, self.prop, f)
    }
}

fn fmt_prop(ctx: &VarCtx, p: &PureProp, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match p {
        PureProp::True => write!(f, "True"),
        PureProp::False => write!(f, "False"),
        PureProp::Eq(a, b) => rel(ctx, "=", a, b, f),
        PureProp::Ne(a, b) => rel(ctx, "≠", a, b, f),
        PureProp::Le(a, b) => rel(ctx, "≤", a, b, f),
        PureProp::Lt(a, b) => rel(ctx, "<", a, b, f),
        PureProp::And(a, b) => {
            fmt_prop(ctx, a, f)?;
            write!(f, " ∧ ")?;
            fmt_prop(ctx, b, f)
        }
        PureProp::Or(a, b) => {
            write!(f, "(")?;
            fmt_prop(ctx, a, f)?;
            write!(f, " ∨ ")?;
            fmt_prop(ctx, b, f)?;
            write!(f, ")")
        }
        PureProp::Not(a) => {
            write!(f, "¬(")?;
            fmt_prop(ctx, a, f)?;
            write!(f, ")")
        }
        PureProp::Implies(a, b) => {
            write!(f, "(")?;
            fmt_prop(ctx, a, f)?;
            write!(f, " → ")?;
            fmt_prop(ctx, b, f)?;
            write!(f, ")")
        }
    }
}

fn rel(
    ctx: &VarCtx,
    op: &str,
    a: &Term,
    b: &Term,
    f: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    fmt_term(ctx, &a.zonk(ctx), f)?;
    write!(f, " {op} ")?;
    fmt_term(ctx, &b.zonk(ctx), f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::Sort;

    #[test]
    fn term_rendering() {
        let mut ctx = VarCtx::new();
        let z = ctx.fresh_var(Sort::Int, "z");
        let t = Term::add(Term::var(z), Term::int(-1));
        assert_eq!(pp_term(&ctx, &t).to_string(), "z0 + (-1)");
        assert_eq!(pp_term(&ctx, &Term::v_int_lit(3)).to_string(), "#3");
        assert_eq!(pp_term(&ctx, &Term::v_unit()).to_string(), "#()");
    }

    #[test]
    fn prop_rendering() {
        let mut ctx = VarCtx::new();
        let z = ctx.fresh_var(Sort::Int, "z");
        let p = PureProp::lt(Term::int(0), Term::var(z));
        assert_eq!(pp_prop(&ctx, &p).to_string(), "0 < z0");
    }

    #[test]
    fn zonked_rendering() {
        let mut ctx = VarCtx::new();
        let e = ctx.fresh_evar(Sort::Int);
        ctx.solve_evar(e, Term::int(9));
        assert_eq!(pp_term(&ctx, &Term::evar(e)).to_string(), "9");
    }
}
