#![warn(missing_docs)]
//! Terms, sorts, evars and the pure solver for `diaframe-rs`.
//!
//! This crate is the logical substrate of the Diaframe reproduction. It
//! provides:
//!
//! * a first-order, multi-sorted **term language** ([`Term`]) into which
//!   HeapLang values, integers, fractions and ghost names embed;
//! * **existential variables** (evars) with *scope levels*, implementing the
//!   delayed-instantiation discipline of §3.2 of the paper: an evar created
//!   before an invariant was opened must never capture variables introduced
//!   by opening it;
//! * **syntactic unification** modulo arithmetic normalisation
//!   ([`unify::unify`]);
//! * **pure propositions** ([`PureProp`]) — the `⌜φ⌝` fragment — together
//!   with a small **pure solver** ([`solver::PureSolver`]) combining
//!   congruence closure with Fourier–Motzkin elimination (with integer
//!   tightening), playing the role of Coq's `lia` in the original artifact.
//!
//! # Example
//!
//! ```
//! use diaframe_term::{Term, Sort, VarCtx, PureProp, solver::PureSolver};
//!
//! let mut ctx = VarCtx::new();
//! let z = ctx.fresh_var(Sort::Int, "z");
//! let zt = Term::var(z);
//! // From 0 < z and z ≠ 1 conclude 1 < z  (an integer-tightening fact).
//! let facts = vec![
//!     PureProp::lt(Term::int(0), zt.clone()),
//!     PureProp::ne(zt.clone(), Term::int(1)),
//! ];
//! let mut solver = PureSolver::new(&facts);
//! assert!(solver.prove(&mut ctx, &PureProp::lt(Term::int(1), zt)));
//! ```

pub mod display;
pub mod evar;
pub mod intern;
pub mod normalize;
pub mod pure;
pub mod qp;
pub mod solver;
pub mod sort;
pub mod subst;
pub mod term;
pub mod unify;

pub use evar::{EVarId, EVarInfo, Level, VarCtx, VarId, VarInfo};
pub use intern::{InternScope, InternStats, TermId};
pub use pure::PureProp;
pub use qp::{Qp, Rat};
pub use sort::Sort;
pub use subst::Subst;
pub use term::{Sym, Term};
pub use unify::{unify, UnifyError};
