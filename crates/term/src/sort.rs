//! Sorts of the term language.

use std::fmt;

/// The sort (simple type) of a [`crate::Term`].
///
/// The term language is multi-sorted: unification refuses to equate terms of
/// different sorts, and the pure solver dispatches on the sort (integers get
/// integer tightening, fractions are solved over the rationals, values and
/// locations go through congruence closure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sort {
    /// Unbounded integers `ℤ` (HeapLang's integer literals).
    Int,
    /// Booleans.
    Bool,
    /// HeapLang values (the sort of `wp` return values).
    Val,
    /// Heap locations.
    Loc,
    /// Positive rationals `Q₊`, the sort of fractional permissions.
    Qp,
    /// Ghost names `γ`.
    GhostName,
    /// The unit sort (used for tokens whose payload carries no information).
    Unit,
}

impl Sort {
    /// Whether the linear-arithmetic solver handles this sort.
    #[must_use]
    pub fn is_numeric(self) -> bool {
        matches!(self, Sort::Int | Sort::Qp)
    }

    /// Whether integer-specific reasoning (tightening) applies.
    #[must_use]
    pub fn is_integral(self) -> bool {
        matches!(self, Sort::Int)
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Sort::Int => "Z",
            Sort::Bool => "bool",
            Sort::Val => "val",
            Sort::Loc => "loc",
            Sort::Qp => "Qp",
            Sort::GhostName => "gname",
            Sort::Unit => "unit",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_sorts() {
        assert!(Sort::Int.is_numeric());
        assert!(Sort::Qp.is_numeric());
        assert!(!Sort::Val.is_numeric());
        assert!(!Sort::Bool.is_numeric());
    }

    #[test]
    fn integral_sorts() {
        assert!(Sort::Int.is_integral());
        assert!(!Sort::Qp.is_integral());
    }

    #[test]
    fn display() {
        assert_eq!(Sort::Qp.to_string(), "Qp");
        assert_eq!(Sort::GhostName.to_string(), "gname");
    }
}
