//! Syntactic unification with scope-checked evar instantiation.
//!
//! Unification is syntactic-first (as in the paper, §8: "we use syntactic
//! unification to drive automation"), with a linear-arithmetic fallback for
//! the numeric sorts so that, e.g., `z + (-1)` unifies with `-1 + z`, and
//! `?p + 1` against `z` solves `?p := z − 1`.
//!
//! Evar instantiation enforces the §3.2 scope discipline (see
//! [`crate::evar`]): solving an evar with a term that mentions variables
//! introduced later fails with [`UnifyError::Scope`] instead of producing an
//! unsound proof.

use crate::evar::VarCtx;
use crate::normalize::normalize;
use crate::sort::Sort;
use crate::term::Term;
use std::fmt;

/// Why unification failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnifyError {
    /// Head symbols or literals differ.
    Mismatch,
    /// The occurs check failed (`?e` inside its own candidate solution).
    Occurs,
    /// The candidate solution mentions a variable newer than the evar
    /// (the delayed-instantiation discipline of §3.2).
    Scope,
    /// The sorts of the two sides differ.
    SortMismatch,
    /// An integer evar would need a non-integral solution.
    NonIntegral,
}

impl fmt::Display for UnifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnifyError::Mismatch => "terms do not match",
            UnifyError::Occurs => "occurs check failed",
            UnifyError::Scope => "evar scope violation (variable introduced after the evar)",
            UnifyError::SortMismatch => "sort mismatch",
            UnifyError::NonIntegral => "integer evar requires non-integral solution",
        };
        f.write_str(s)
    }
}

impl std::error::Error for UnifyError {}

/// Unifies two terms, solving evars in the process.
///
/// On failure the context may contain partial solutions; callers that probe
/// speculatively must bracket the call with [`VarCtx::checkpoint`] /
/// [`VarCtx::rollback`].
///
/// # Errors
///
/// See [`UnifyError`].
pub fn unify(ctx: &mut VarCtx, a: &Term, b: &Term) -> Result<(), UnifyError> {
    let a = a.zonk(ctx);
    let b = b.zonk(ctx);
    unify_resolved(ctx, &a, &b)
}

fn unify_resolved(ctx: &mut VarCtx, a: &Term, b: &Term) -> Result<(), UnifyError> {
    if a == b {
        return Ok(());
    }
    match (a, b) {
        (Term::EVar(e), t) | (t, Term::EVar(e)) => assign(ctx, *e, t),
        // Arithmetic applications are compared via normal forms (below), not
        // structurally, so that `x + 1` unifies with `1 + x`.
        (Term::App(f, xs), Term::App(g, ys)) if f == g && !f.is_arith() => {
            for (x, y) in xs.iter().zip(ys.iter()) {
                unify(ctx, x, y)?;
            }
            Ok(())
        }
        _ => {
            // Arithmetic fallback for numeric sorts.
            let sa = a.sort(ctx);
            let sb = b.sort(ctx);
            if sa != sb {
                return Err(UnifyError::SortMismatch);
            }
            if sa.is_numeric() {
                return unify_numeric(ctx, a, b, sa);
            }
            Err(UnifyError::Mismatch)
        }
    }
}

fn assign(ctx: &mut VarCtx, e: crate::evar::EVarId, t: &Term) -> Result<(), UnifyError> {
    let t = t.zonk(ctx);
    if let Term::EVar(f) = t {
        if f == e {
            return Ok(());
        }
    }
    if t.mentions_evar(e) {
        return Err(UnifyError::Occurs);
    }
    if t.sort(ctx) != ctx.evar_sort(e) {
        return Err(UnifyError::SortMismatch);
    }
    let level = ctx.evar_level(e);
    if !ctx.scope_check(level, &t) {
        return Err(UnifyError::Scope);
    }
    // Level pruning: evars inside the solution are lowered to our level so
    // that the scope discipline remains transitive.
    let mut inner = Vec::new();
    t.collect_evars(&mut inner);
    for f in inner {
        ctx.lower_evar_level(f, level);
    }
    ctx.solve_evar(e, t);
    Ok(())
}

/// Numeric fallback: compare linear normal forms; if the difference is
/// `c + q·?e` for a single unsolved evar, solve for it.
fn unify_numeric(ctx: &mut VarCtx, a: &Term, b: &Term, sort: Sort) -> Result<(), UnifyError> {
    let na = normalize(ctx, a);
    let nb = normalize(ctx, b);
    let diff = na.minus(&nb);
    if diff.is_constant() {
        return if diff.constant.is_zero() {
            Ok(())
        } else {
            Err(UnifyError::Mismatch)
        };
    }
    // Find an unsolved-evar atom to solve for; try each candidate in turn
    // (a later candidate may succeed where an earlier one fails the scope
    // or integrality check).
    let candidates: Vec<(crate::evar::EVarId, crate::qp::Rat)> = diff
        .coeffs
        .iter()
        .filter_map(|(t, q)| match t {
            Term::EVar(e) if ctx.evar_unsolved(*e) => Some((*e, *q)),
            _ => None,
        })
        .collect();
    let mut last_err = UnifyError::Mismatch;
    for (e, q) in candidates {
        // diff = rest + q·?e = 0  ⇒  ?e = -rest / q.
        let mut rest = diff.clone();
        rest.coeffs.retain(|t, _| !matches!(t, Term::EVar(f) if *f == e));
        let sol = rest.scale(-q.recip());
        if sort.is_integral() {
            // All coefficients must be integral for an integer solution term.
            let integral = sol.constant.to_integer().is_some()
                && sol.coeffs.values().all(|c| c.to_integer().is_some());
            if !integral {
                last_err = UnifyError::NonIntegral;
                continue;
            }
        }
        let sol_term = sol.to_term(sort.is_integral());
        match assign(ctx, e, &sol_term) {
            Ok(()) => return Ok(()),
            Err(err) => last_err = err,
        }
    }
    Err(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qp::Qp;

    #[test]
    fn unifies_identical_and_literals() {
        let mut ctx = VarCtx::new();
        assert!(unify(&mut ctx, &Term::int(3), &Term::int(3)).is_ok());
        assert_eq!(
            unify(&mut ctx, &Term::int(3), &Term::int(4)),
            Err(UnifyError::Mismatch)
        );
        assert!(unify(&mut ctx, &Term::v_unit(), &Term::v_unit()).is_ok());
    }

    #[test]
    fn solves_evars() {
        let mut ctx = VarCtx::new();
        let e = ctx.fresh_evar(Sort::Val);
        let t = Term::v_int_lit(5);
        unify(&mut ctx, &Term::evar(e), &t).unwrap();
        assert_eq!(Term::evar(e).zonk(&ctx), t);
    }

    #[test]
    fn decomposes_constructors() {
        let mut ctx = VarCtx::new();
        let e = ctx.fresh_evar(Sort::Int);
        unify(&mut ctx, &Term::v_int(Term::evar(e)), &Term::v_int_lit(9)).unwrap();
        assert_eq!(Term::evar(e).zonk(&ctx), Term::int(9));
        assert_eq!(
            unify(&mut ctx, &Term::v_int_lit(1), &Term::v_bool_lit(true)),
            Err(UnifyError::Mismatch)
        );
    }

    #[test]
    fn occurs_check() {
        let mut ctx = VarCtx::new();
        let e = ctx.fresh_evar(Sort::Val);
        let t = Term::v_pair(Term::evar(e), Term::v_unit());
        assert_eq!(unify(&mut ctx, &Term::evar(e), &t), Err(UnifyError::Occurs));
    }

    #[test]
    fn scope_discipline_from_the_paper() {
        // The failing FAA derivation of §3.2: an evar created before the
        // invariant was opened cannot capture the body's existential.
        let mut ctx = VarCtx::new();
        let e = ctx.fresh_evar(Sort::Int);
        ctx.push_level();
        let z = ctx.fresh_var(Sort::Int, "z");
        assert_eq!(
            unify(&mut ctx, &Term::evar(e), &Term::var(z)),
            Err(UnifyError::Scope)
        );
        // The correct order: evar created after the variable is fine.
        let e2 = ctx.fresh_evar(Sort::Int);
        assert!(unify(&mut ctx, &Term::evar(e2), &Term::var(z)).is_ok());
    }

    #[test]
    fn level_pruning_is_transitive() {
        let mut ctx = VarCtx::new();
        let e_old = ctx.fresh_evar(Sort::Int);
        ctx.push_level();
        let z = ctx.fresh_var(Sort::Int, "z");
        let e_new = ctx.fresh_evar(Sort::Int);
        // Solving the old evar with the new one lowers the new evar's level…
        unify(&mut ctx, &Term::evar(e_old), &Term::evar(e_new)).unwrap();
        // …so the new evar can no longer capture z either.
        assert_eq!(
            unify(&mut ctx, &Term::evar(e_new), &Term::var(z)),
            Err(UnifyError::Scope)
        );
    }

    #[test]
    fn arithmetic_matching() {
        let mut ctx = VarCtx::new();
        let z = ctx.fresh_var(Sort::Int, "z");
        let zt = Term::var(z);
        let a = Term::add(zt.clone(), Term::int(-1));
        let b = Term::sub(zt.clone(), Term::int(1));
        assert!(unify(&mut ctx, &a, &b).is_ok());
        // ?p + 1 ≐ z  solves  ?p := z - 1.
        let p = ctx.fresh_evar(Sort::Int);
        unify(&mut ctx, &Term::add(Term::evar(p), Term::int(1)), &zt).unwrap();
        assert!(crate::normalize::arith_eq(
            &ctx,
            &Term::evar(p),
            &Term::sub(zt, Term::int(1))
        ));
    }

    #[test]
    fn fraction_matching() {
        let mut ctx = VarCtx::new();
        let q = ctx.fresh_evar(Sort::Qp);
        // ?q + 1/2 ≐ 1  solves  ?q := 1/2.
        unify(
            &mut ctx,
            &Term::add(Term::evar(q), Term::qp(Qp::half())),
            &Term::qp_one(),
        )
        .unwrap();
        assert_eq!(Term::evar(q).zonk(&ctx), Term::qp(Qp::half()));
    }

    #[test]
    fn integer_evars_need_integral_solutions() {
        let mut ctx = VarCtx::new();
        let e = ctx.fresh_evar(Sort::Int);
        // 2·?e ≐ 3 has no integer solution.
        assert_eq!(
            unify(&mut ctx, &Term::mul(Term::int(2), Term::evar(e)), &Term::int(3)),
            Err(UnifyError::NonIntegral)
        );
        // 2·?e ≐ 6 does.
        assert!(unify(&mut ctx, &Term::mul(Term::int(2), Term::evar(e)), &Term::int(6)).is_ok());
        assert_eq!(Term::evar(e).zonk(&ctx), Term::int(3));
    }

    #[test]
    fn sort_mismatch_rejected() {
        let mut ctx = VarCtx::new();
        let e = ctx.fresh_evar(Sort::Int);
        assert_eq!(
            unify(&mut ctx, &Term::evar(e), &Term::bool(true)),
            Err(UnifyError::SortMismatch)
        );
    }
}
