//! Linear arithmetic by Fourier–Motzkin elimination with integer tightening.
//!
//! This is the `lia`-replacement: a refutation procedure for conjunctions of
//! linear constraints over ℤ (with tightening, so e.g. `0 < z ∧ z < 2` gives
//! `z = 1`) and ℚ (plain Fourier–Motzkin, which is complete for rationals).
//! Disequalities are handled by bounded case splitting.

use crate::evar::VarCtx;
use crate::normalize::{normalize, LinComb};
use crate::pure::PureProp;
use crate::qp::Rat;
use crate::term::Term;

/// A constraint `lc ≤ 0` (or `lc < 0` when `strict`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// The linear combination `lc` constrained to be ≥ 0 (or > 0).
    pub lc: LinComb,
    /// Whether the constraint is strict (`> 0` instead of `≥ 0`).
    pub strict: bool,
}

/// Upper bound on constraints produced during elimination; beyond this the
/// procedure gives up (answers "not refuted") rather than blowing up.
const MAX_CONSTRAINTS: usize = 4096;

/// Upper bound on disequality case splits (2^n branches).
const MAX_NE_SPLITS: usize = 6;

/// Result of the refutation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinResult {
    /// The constraint set is unsatisfiable.
    Unsat,
    /// Satisfiable, or the procedure gave up.
    Unknown,
}

/// The linear solver state: a set of constraints to be refuted.
///
/// The fact-level state (`constraints`, `diseqs`, `trivially_false`) is
/// push-only between [`Linear::mark`] points, so rollback is a pair of
/// truncations plus a flag restore — O(changes).
#[derive(Debug, Clone, Default)]
pub struct Linear {
    constraints: Vec<Constraint>,
    diseqs: Vec<LinComb>, // lc ≠ 0
    trivially_false: bool,
}

/// A point in a [`Linear`]'s history; see [`Linear::mark`].
#[derive(Debug, Clone)]
pub struct LinearMark {
    constraints: usize,
    diseqs: usize,
    trivially_false: bool,
}

impl Linear {
    #[must_use]
    /// An empty linear-arithmetic state.
    pub fn new() -> Linear {
        Linear::default()
    }

    /// Captures the current state for a later [`Linear::rollback`].
    #[must_use]
    pub fn mark(&self) -> LinearMark {
        LinearMark {
            constraints: self.constraints.len(),
            diseqs: self.diseqs.len(),
            trivially_false: self.trivially_false,
        }
    }

    /// Restores the state captured by `mark`. Returns the number of undo
    /// operations performed (for telemetry).
    pub fn rollback(&mut self, mark: &LinearMark) -> u64 {
        let undone = (self.constraints.len().saturating_sub(mark.constraints)
            + self.diseqs.len().saturating_sub(mark.diseqs)) as u64;
        self.constraints.truncate(mark.constraints);
        self.diseqs.truncate(mark.diseqs);
        self.trivially_false = mark.trivially_false;
        undone
    }

    /// Adds a numeric literal fact. Non-numeric or unsupported facts are
    /// ignored (which is sound for refutation).
    pub fn add_fact(&mut self, ctx: &VarCtx, p: &PureProp) {
        match p {
            PureProp::Le(a, b) => self.add_le(ctx, a, b, false),
            PureProp::Lt(a, b) => self.add_le(ctx, a, b, true),
            PureProp::Eq(a, b) => {
                self.add_le(ctx, a, b, false);
                self.add_le(ctx, b, a, false);
            }
            PureProp::Ne(a, b) => {
                let lc = normalize(ctx, a).minus(&normalize(ctx, b));
                if lc.is_constant() {
                    if lc.constant.is_zero() {
                        self.trivially_false = true;
                    }
                } else {
                    self.diseqs.push(lc);
                }
            }
            PureProp::False => self.trivially_false = true,
            _ => {}
        }
    }

    fn add_le(&mut self, ctx: &VarCtx, a: &Term, b: &Term, strict: bool) {
        // a ≤ b  ⇝  a - b ≤ 0.
        let lc = normalize(ctx, a).minus(&normalize(ctx, b));
        self.push(ctx, Constraint { lc, strict });
    }

    fn push(&mut self, ctx: &VarCtx, c: Constraint) {
        let c = tighten(ctx, c);
        if c.lc.is_constant() {
            let holds = if c.strict {
                c.lc.constant.is_negative()
            } else {
                !c.lc.constant.is_positive()
            };
            if !holds {
                self.trivially_false = true;
            }
            return;
        }
        self.constraints.push(c);
    }

    /// Attempts to refute the accumulated constraints.
    ///
    /// Elimination runs on a rank-indexed copy of the state (see
    /// [`Ranked`]): atoms are ranked by their `Term` order once per call,
    /// so every round of Fourier–Motzkin works on dense
    /// `Vec<(rank, coeff)>` rows instead of re-comparing structural
    /// `Term` keys in `BTreeMap`s. The enumeration order this induces is
    /// exactly the `BTreeMap` order the direct formulation would use, so
    /// pivot tie-breaking, the constraint budget, and integer tightening
    /// all behave identically — the verdict is the same, only cheaper.
    #[must_use]
    pub fn refute(&self, ctx: &VarCtx) -> LinResult {
        if self.trivially_false {
            return LinResult::Unsat;
        }
        let ranked = Ranked::new(ctx, &self.constraints, &self.diseqs);
        let constraints: Vec<Row> = self.constraints.iter().map(|c| ranked.row(c)).collect();
        let diseqs: Vec<(Vec<(u32, Rat)>, Rat)> = self
            .diseqs
            .iter()
            .map(|lc| (ranked.coeffs(lc), lc.constant))
            .collect();
        ranked.refute_with_splits(constraints, &diseqs)
    }
}

/// A constraint in rank-indexed form: `constant + Σ coeffs ≤ 0` (or `< 0`
/// when `strict`), with coefficient rows sorted by atom rank.
#[derive(Debug, Clone)]
struct Row {
    coeffs: Vec<(u32, Rat)>,
    constant: Rat,
    strict: bool,
}

impl Row {
    fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Whether a constant constraint holds (`constant ≤ 0`, strictly if
    /// `strict`). Mirrors the checks in [`Linear::push`] and
    /// [`Ranked::fourier_motzkin`]'s constant filter.
    fn constant_holds(&self) -> bool {
        if self.strict {
            self.constant.is_negative()
        } else {
            !self.constant.is_positive()
        }
    }

    fn coeff(&self, rank: u32) -> Option<Rat> {
        self.coeffs
            .binary_search_by_key(&rank, |&(r, _)| r)
            .ok()
            .map(|i| self.coeffs[i].1)
    }
}

/// The per-`refute` elimination context: every atom appearing in the
/// constraints or disequalities, ranked by `Term` order, plus each atom's
/// precomputed integral-sortedness (tightening queries it per round; the
/// answer cannot change within one call).
struct Ranked {
    atoms: Vec<Term>,
    integral: Vec<bool>,
}

impl Ranked {
    fn new(ctx: &VarCtx, constraints: &[Constraint], diseqs: &[LinComb]) -> Ranked {
        let mut atoms: Vec<Term> = Vec::new();
        for c in constraints {
            atoms.extend(c.lc.coeffs.keys().cloned());
        }
        for lc in diseqs {
            atoms.extend(lc.coeffs.keys().cloned());
        }
        atoms.sort_unstable();
        atoms.dedup();
        let integral = atoms.iter().map(|t| t.sort(ctx).is_integral()).collect();
        Ranked { atoms, integral }
    }

    /// Indexes a `LinComb`'s coefficients by atom rank. `BTreeMap`
    /// iteration is `Term`-ordered and ranks are assigned in `Term`
    /// order, so the row comes out rank-sorted.
    fn coeffs(&self, lc: &LinComb) -> Vec<(u32, Rat)> {
        lc.coeffs
            .iter()
            .map(|(t, q)| {
                let rank = self
                    .atoms
                    .binary_search(t)
                    .expect("refute atom table covers all constraint atoms");
                (rank as u32, *q)
            })
            .collect()
    }

    fn row(&self, c: &Constraint) -> Row {
        Row {
            coeffs: self.coeffs(&c.lc),
            constant: c.lc.constant,
            strict: c.strict,
        }
    }

    fn refute_with_splits(
        &self,
        constraints: Vec<Row>,
        diseqs: &[(Vec<(u32, Rat)>, Rat)],
    ) -> LinResult {
        match diseqs.split_first() {
            None => self.fourier_motzkin(constraints),
            Some((first, rest)) => {
                if diseqs.len() > MAX_NE_SPLITS {
                    // Too many splits: drop the extras (sound: fewer facts).
                    return self.refute_with_splits(constraints, &diseqs[..MAX_NE_SPLITS]);
                }
                // lc ≠ 0  ⇝  lc < 0 ∨ lc > 0; both branches must be UNSAT.
                for sign in [Rat::ONE, -Rat::ONE] {
                    let mut branch = constraints.clone();
                    let split = self.tighten(Row {
                        coeffs: scale_row(&first.0, sign),
                        constant: first.1 * sign,
                        strict: true,
                    });
                    if split.is_constant() {
                        if !split.constant_holds() {
                            // Branch is trivially false: counts as refuted.
                            continue;
                        }
                        // A trivially-true split adds nothing.
                    } else {
                        branch.push(split);
                    }
                    if self.refute_with_splits(branch, rest) == LinResult::Unknown {
                        return LinResult::Unknown;
                    }
                }
                LinResult::Unsat
            }
        }
    }

    /// Integer tightening on a rank-indexed row; the exact analogue of
    /// [`tighten`] (same scaling, same fold order over the rank-sorted
    /// coefficients).
    fn tighten(&self, c: Row) -> Row {
        let all_int = c.coeffs.iter().all(|&(r, _)| self.integral[r as usize]);
        if !all_int || c.coeffs.is_empty() {
            return c;
        }
        // Scale to integer coefficients.
        let mut lcm: i128 = c.constant.denominator();
        for (_, q) in &c.coeffs {
            let d = q.denominator();
            lcm = lcm / gcd_i(lcm, d) * d;
        }
        let scale = Rat::from_int(lcm);
        let coeffs: Vec<(u32, Rat)> = c.coeffs.iter().map(|&(r, q)| (r, q * scale)).collect();
        let mut constant = c.constant * scale;
        let mut strict = c.strict;
        if strict {
            // lc < 0 over ℤ  ⟺  lc + 1 ≤ 0.
            constant = constant + Rat::ONE;
            strict = false;
        }
        // gcd tightening of the constant term.
        let g = coeffs
            .iter()
            .fold(0i128, |acc, (_, q)| gcd_i(acc, q.numerator()));
        if g > 1 {
            let gq = Rat::from_int(g);
            let tightened = Rat::from_int((constant / gq).ceil());
            let recip = gq.recip();
            return Row {
                coeffs: coeffs.iter().map(|&(r, q)| (r, q * recip)).collect(),
                constant: tightened,
                strict,
            };
        }
        Row {
            coeffs,
            constant,
            strict,
        }
    }

    fn fourier_motzkin(&self, mut cs: Vec<Row>) -> LinResult {
        loop {
            // Constant constraints are either trivially violated (UNSAT)
            // or dropped.
            let mut next = Vec::new();
            for c in cs {
                if c.is_constant() {
                    if !c.constant_holds() {
                        return LinResult::Unsat;
                    }
                } else {
                    next.push(c);
                }
            }
            cs = next;
            if cs.is_empty() {
                return LinResult::Unknown;
            }
            // Pick the atom with the fewest upper×lower combinations.
            // First occurrence wins ties, scanning constraints in order
            // and each row's atoms in rank (= `Term`) order — the same
            // enumeration the `BTreeMap` formulation produces.
            let mut seen = vec![false; self.atoms.len()];
            let mut order: Vec<u32> = Vec::new();
            let mut upper = vec![0usize; self.atoms.len()];
            let mut lower = vec![0usize; self.atoms.len()];
            for c in &cs {
                for &(r, q) in &c.coeffs {
                    if !seen[r as usize] {
                        seen[r as usize] = true;
                        order.push(r);
                    }
                    if q.is_positive() {
                        upper[r as usize] += 1;
                    } else {
                        lower[r as usize] += 1;
                    }
                }
            }
            let atom = *order
                .iter()
                .min_by_key(|&&r| upper[r as usize] * lower[r as usize])
                .expect("non-empty constraint set has atoms");
            let (mut uppers, mut lowers, mut rest) = (Vec::new(), Vec::new(), Vec::new());
            for c in cs {
                match c.coeff(atom) {
                    Some(q) if q.is_positive() => uppers.push(c),
                    Some(_) => lowers.push(c),
                    None => rest.push(c),
                }
            }
            // Combine: from  a·x + r ≤ 0 (a>0)  and  -b·x + s ≤ 0 (b>0),
            // eliminate x:  b·r + a·s ≤ 0.
            for u in &uppers {
                let a = u.coeff(atom).expect("upper has atom");
                for l in &lowers {
                    let b = -l.coeff(atom).expect("lower has atom");
                    let combined = merge_scaled(&u.coeffs, b, &l.coeffs, a);
                    debug_assert!(combined.iter().all(|&(r, _)| r != atom));
                    let c = self.tighten(Row {
                        coeffs: combined,
                        constant: u.constant * b + l.constant * a,
                        strict: u.strict || l.strict,
                    });
                    rest.push(c);
                    if rest.len() > MAX_CONSTRAINTS {
                        return LinResult::Unknown;
                    }
                }
            }
            cs = rest;
        }
    }
}

fn scale_row(row: &[(u32, Rat)], q: Rat) -> Vec<(u32, Rat)> {
    row.iter().map(|&(r, c)| (r, c * q)).collect()
}

/// `a·qa + b·qb` over rank-sorted rows, dropping cancelled entries — the
/// indexed analogue of `a.scale(qa).plus(&b.scale(qb))`.
fn merge_scaled(a: &[(u32, Rat)], qa: Rat, b: &[(u32, Rat)], qb: Rat) -> Vec<(u32, Rat)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (ra, ca) = a[i];
        let (rb, cb) = b[j];
        match ra.cmp(&rb) {
            std::cmp::Ordering::Less => {
                out.push((ra, ca * qa));
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push((rb, cb * qb));
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let sum = ca * qa + cb * qb;
                if !sum.is_zero() {
                    out.push((ra, sum));
                }
                i += 1;
                j += 1;
            }
        }
    }
    out.extend(a[i..].iter().map(|&(r, c)| (r, c * qa)));
    out.extend(b[j..].iter().map(|&(r, c)| (r, c * qb)));
    out
}

/// Integer tightening: when every atom of the constraint is integer-sorted
/// and the coefficients can be scaled to integers, `lc < 0` becomes
/// `lc + 1 ≤ 0`, and the constant is tightened by the gcd of the variable
/// coefficients.
fn tighten(ctx: &VarCtx, c: Constraint) -> Constraint {
    let all_int = c
        .lc
        .coeffs
        .keys()
        .all(|t| t.sort(ctx).is_integral());
    if !all_int || c.lc.coeffs.is_empty() {
        return c;
    }
    // Scale to integer coefficients.
    let mut lcm: i128 = c.lc.constant.denominator();
    for q in c.lc.coeffs.values() {
        let d = q.denominator();
        lcm = lcm / gcd_i(lcm, d) * d;
    }
    let scaled = c.lc.scale(Rat::from_int(lcm));
    let mut constant = scaled.constant;
    let mut strict = c.strict;
    if strict {
        // lc < 0 over ℤ  ⟺  lc + 1 ≤ 0.
        constant = constant + Rat::ONE;
        strict = false;
    }
    // gcd tightening of the constant term.
    let g = scaled
        .coeffs
        .values()
        .fold(0i128, |acc, q| gcd_i(acc, q.numerator()));
    if g > 1 {
        let gq = Rat::from_int(g);
        let tightened = Rat::from_int((constant / gq).ceil());
        let mut lc = scaled.scale(gq.recip());
        lc.constant = tightened;
        return Constraint { lc, strict };
    }
    let mut lc = scaled;
    lc.constant = constant;
    Constraint { lc, strict }
}

fn gcd_i(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qp::Qp;
    use crate::sort::Sort;

    fn int_var(ctx: &mut VarCtx, n: &str) -> Term {
        Term::var(ctx.fresh_var(Sort::Int, n))
    }

    fn refutes(ctx: &VarCtx, facts: &[PureProp]) -> bool {
        let mut lin = Linear::new();
        for f in facts {
            lin.add_fact(ctx, f);
        }
        lin.refute(ctx) == LinResult::Unsat
    }

    #[test]
    fn simple_bounds() {
        let mut ctx = VarCtx::new();
        let z = int_var(&mut ctx, "z");
        assert!(refutes(
            &ctx,
            &[
                PureProp::lt(Term::int(0), z.clone()),
                PureProp::le(z.clone(), Term::int(0)),
            ]
        ));
        assert!(!refutes(&ctx, &[PureProp::lt(Term::int(0), z)]));
    }

    #[test]
    fn integer_tightening() {
        let mut ctx = VarCtx::new();
        let z = int_var(&mut ctx, "z");
        // 0 < z ∧ z < 2 ∧ z ≠ 1 is UNSAT over ℤ (but not over ℚ).
        assert!(refutes(
            &ctx,
            &[
                PureProp::lt(Term::int(0), z.clone()),
                PureProp::lt(z.clone(), Term::int(2)),
                PureProp::ne(z, Term::int(1)),
            ]
        ));
    }

    #[test]
    fn gcd_tightening() {
        let mut ctx = VarCtx::new();
        let z = int_var(&mut ctx, "z");
        // 2z ≤ 3 ∧ 2 ≤ 2z  ⇒ z = 1; conflicts with z ≠ 1.
        assert!(refutes(
            &ctx,
            &[
                PureProp::le(Term::mul(Term::int(2), z.clone()), Term::int(3)),
                PureProp::le(Term::int(2), Term::mul(Term::int(2), z.clone())),
                PureProp::ne(z, Term::int(1)),
            ]
        ));
    }

    #[test]
    fn elimination_chains() {
        let mut ctx = VarCtx::new();
        let x = int_var(&mut ctx, "x");
        let y = int_var(&mut ctx, "y");
        let z = int_var(&mut ctx, "z");
        // x ≤ y ∧ y ≤ z ∧ z < x is UNSAT.
        assert!(refutes(
            &ctx,
            &[
                PureProp::le(x.clone(), y.clone()),
                PureProp::le(y, z.clone()),
                PureProp::lt(z, x),
            ]
        ));
    }

    #[test]
    fn rational_constraints() {
        let mut ctx = VarCtx::new();
        let q = Term::var(ctx.fresh_var(Sort::Qp, "q"));
        // q ≤ 1/2 ∧ 1 ≤ q is UNSAT over ℚ.
        assert!(refutes(
            &ctx,
            &[
                PureProp::le(q.clone(), Term::qp(Qp::half())),
                PureProp::le(Term::qp_one(), q),
            ]
        ));
        // Over ℚ, 0 < q ∧ q < 1 is satisfiable (no tightening).
        let r = Term::var(ctx.fresh_var(Sort::Qp, "r"));
        assert!(!refutes(
            &ctx,
            &[
                PureProp::lt(Term::qp(Qp::new(1, 1000).unwrap()), r.clone()),
                PureProp::lt(r, Term::qp_one()),
            ]
        ));
    }

    #[test]
    fn equalities() {
        let mut ctx = VarCtx::new();
        let z = int_var(&mut ctx, "z");
        assert!(refutes(
            &ctx,
            &[
                PureProp::eq(z.clone(), Term::int(5)),
                PureProp::lt(z, Term::int(5)),
            ]
        ));
    }

    #[test]
    fn constant_diseq() {
        let ctx = VarCtx::new();
        assert!(refutes(&ctx, &[PureProp::ne(Term::int(3), Term::int(3))]));
        assert!(!refutes(&ctx, &[PureProp::ne(Term::int(3), Term::int(4))]));
    }

    #[test]
    fn arc_drop_case_split() {
        // The two branches of the ARC drop proof (§2.2):
        // with 0 < z and z = 1:  ¬(0 < z - 1) holds.
        // with 0 < z and z > 1:  0 < z - 1 holds, i.e. ¬ is refuted.
        let mut ctx = VarCtx::new();
        let z = int_var(&mut ctx, "z");
        let zm1 = Term::sub(z.clone(), Term::int(1));
        assert!(refutes(
            &ctx,
            &[
                PureProp::lt(Term::int(0), z.clone()),
                PureProp::eq(z.clone(), Term::int(1)),
                PureProp::lt(Term::int(0), zm1.clone()),
            ]
        ));
        assert!(refutes(
            &ctx,
            &[
                PureProp::lt(Term::int(1), z),
                PureProp::le(zm1, Term::int(0)),
            ]
        ));
    }
}
