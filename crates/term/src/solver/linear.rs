//! Linear arithmetic by Fourier–Motzkin elimination with integer tightening.
//!
//! This is the `lia`-replacement: a refutation procedure for conjunctions of
//! linear constraints over ℤ (with tightening, so e.g. `0 < z ∧ z < 2` gives
//! `z = 1`) and ℚ (plain Fourier–Motzkin, which is complete for rationals).
//! Disequalities are handled by bounded case splitting.

use crate::evar::VarCtx;
use crate::normalize::{normalize, LinComb};
use crate::pure::PureProp;
use crate::qp::Rat;
use crate::term::Term;

/// A constraint `lc ≤ 0` (or `lc < 0` when `strict`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// The linear combination `lc` constrained to be ≥ 0 (or > 0).
    pub lc: LinComb,
    /// Whether the constraint is strict (`> 0` instead of `≥ 0`).
    pub strict: bool,
}

/// Upper bound on constraints produced during elimination; beyond this the
/// procedure gives up (answers "not refuted") rather than blowing up.
const MAX_CONSTRAINTS: usize = 4096;

/// Upper bound on disequality case splits (2^n branches).
const MAX_NE_SPLITS: usize = 6;

/// Result of the refutation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinResult {
    /// The constraint set is unsatisfiable.
    Unsat,
    /// Satisfiable, or the procedure gave up.
    Unknown,
}

/// The linear solver state: a set of constraints to be refuted.
#[derive(Debug, Clone, Default)]
pub struct Linear {
    constraints: Vec<Constraint>,
    diseqs: Vec<LinComb>, // lc ≠ 0
    trivially_false: bool,
}

impl Linear {
    #[must_use]
    /// An empty linear-arithmetic state.
    pub fn new() -> Linear {
        Linear::default()
    }

    /// Adds a numeric literal fact. Non-numeric or unsupported facts are
    /// ignored (which is sound for refutation).
    pub fn add_fact(&mut self, ctx: &VarCtx, p: &PureProp) {
        match p {
            PureProp::Le(a, b) => self.add_le(ctx, a, b, false),
            PureProp::Lt(a, b) => self.add_le(ctx, a, b, true),
            PureProp::Eq(a, b) => {
                self.add_le(ctx, a, b, false);
                self.add_le(ctx, b, a, false);
            }
            PureProp::Ne(a, b) => {
                let lc = normalize(ctx, a).minus(&normalize(ctx, b));
                if lc.is_constant() {
                    if lc.constant.is_zero() {
                        self.trivially_false = true;
                    }
                } else {
                    self.diseqs.push(lc);
                }
            }
            PureProp::False => self.trivially_false = true,
            _ => {}
        }
    }

    fn add_le(&mut self, ctx: &VarCtx, a: &Term, b: &Term, strict: bool) {
        // a ≤ b  ⇝  a - b ≤ 0.
        let lc = normalize(ctx, a).minus(&normalize(ctx, b));
        self.push(ctx, Constraint { lc, strict });
    }

    fn push(&mut self, ctx: &VarCtx, c: Constraint) {
        let c = tighten(ctx, c);
        if c.lc.is_constant() {
            let holds = if c.strict {
                c.lc.constant.is_negative()
            } else {
                !c.lc.constant.is_positive()
            };
            if !holds {
                self.trivially_false = true;
            }
            return;
        }
        self.constraints.push(c);
    }

    /// Attempts to refute the accumulated constraints.
    #[must_use]
    pub fn refute(&self, ctx: &VarCtx) -> LinResult {
        if self.trivially_false {
            return LinResult::Unsat;
        }
        self.refute_with_splits(ctx, &self.diseqs)
    }

    fn refute_with_splits(&self, ctx: &VarCtx, diseqs: &[LinComb]) -> LinResult {
        match diseqs.split_first() {
            None => {
                fourier_motzkin(ctx, self.constraints.clone())
            }
            Some((first, rest)) => {
                if diseqs.len() > MAX_NE_SPLITS {
                    // Too many splits: drop the extras (sound: fewer facts).
                    return self.refute_with_splits(ctx, &diseqs[..MAX_NE_SPLITS]);
                }
                // lc ≠ 0  ⇝  lc < 0 ∨ lc > 0; both branches must be UNSAT.
                for sign in [Rat::ONE, -Rat::ONE] {
                    let mut branch = self.clone();
                    branch.diseqs = Vec::new();
                    branch.push(
                        ctx,
                        Constraint {
                            lc: first.scale(sign),
                            strict: true,
                        },
                    );
                    if branch.trivially_false {
                        continue;
                    }
                    if branch.refute_with_splits(ctx, rest) == LinResult::Unknown {
                        return LinResult::Unknown;
                    }
                }
                LinResult::Unsat
            }
        }
    }
}

/// Integer tightening: when every atom of the constraint is integer-sorted
/// and the coefficients can be scaled to integers, `lc < 0` becomes
/// `lc + 1 ≤ 0`, and the constant is tightened by the gcd of the variable
/// coefficients.
fn tighten(ctx: &VarCtx, c: Constraint) -> Constraint {
    let all_int = c
        .lc
        .coeffs
        .keys()
        .all(|t| t.sort(ctx).is_integral());
    if !all_int || c.lc.coeffs.is_empty() {
        return c;
    }
    // Scale to integer coefficients.
    let mut lcm: i128 = c.lc.constant.denominator();
    for q in c.lc.coeffs.values() {
        let d = q.denominator();
        lcm = lcm / gcd_i(lcm, d) * d;
    }
    let scaled = c.lc.scale(Rat::from_int(lcm));
    let mut constant = scaled.constant;
    let mut strict = c.strict;
    if strict {
        // lc < 0 over ℤ  ⟺  lc + 1 ≤ 0.
        constant = constant + Rat::ONE;
        strict = false;
    }
    // gcd tightening of the constant term.
    let g = scaled
        .coeffs
        .values()
        .fold(0i128, |acc, q| gcd_i(acc, q.numerator()));
    if g > 1 {
        let gq = Rat::from_int(g);
        let tightened = Rat::from_int((constant / gq).ceil());
        let mut lc = scaled.scale(gq.recip());
        lc.constant = tightened;
        return Constraint { lc, strict };
    }
    let mut lc = scaled;
    lc.constant = constant;
    Constraint { lc, strict }
}

fn gcd_i(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

fn fourier_motzkin(ctx: &VarCtx, mut cs: Vec<Constraint>) -> LinResult {
    loop {
        // Constant constraints are either trivially violated (UNSAT) or
        // dropped.
        let mut next = Vec::new();
        for c in cs {
            if c.lc.is_constant() {
                let holds = if c.strict {
                    c.lc.constant.is_negative()
                } else {
                    !c.lc.constant.is_positive()
                };
                if !holds {
                    return LinResult::Unsat;
                }
            } else {
                next.push(c);
            }
        }
        cs = next;
        if cs.is_empty() {
            return LinResult::Unknown;
        }
        // Pick the atom with the fewest upper×lower combinations.
        let mut atoms: Vec<Term> = Vec::new();
        for c in &cs {
            for t in c.lc.coeffs.keys() {
                if !atoms.contains(t) {
                    atoms.push(t.clone());
                }
            }
        }
        let atom = atoms
            .iter()
            .min_by_key(|t| {
                let upper = cs
                    .iter()
                    .filter(|c| c.lc.coeffs.get(t).is_some_and(|q| q.is_positive()))
                    .count();
                let lower = cs
                    .iter()
                    .filter(|c| c.lc.coeffs.get(t).is_some_and(|q| q.is_negative()))
                    .count();
                upper * lower
            })
            .cloned()
            .expect("non-empty constraint set has atoms");
        let (mut uppers, mut lowers, mut rest) = (Vec::new(), Vec::new(), Vec::new());
        for c in cs {
            match c.lc.coeffs.get(&atom) {
                Some(q) if q.is_positive() => uppers.push(c),
                Some(_) => lowers.push(c),
                None => rest.push(c),
            }
        }
        // Combine: from  a·x + r ≤ 0 (a>0)  and  -b·x + s ≤ 0 (b>0),
        // eliminate x:  b·r + a·s ≤ 0.
        for u in &uppers {
            let a = *u.lc.coeffs.get(&atom).expect("upper has atom");
            for l in &lowers {
                let b = -*l.lc.coeffs.get(&atom).expect("lower has atom");
                let combined = u.lc.scale(b).plus(&l.lc.scale(a));
                debug_assert!(!combined.coeffs.contains_key(&atom));
                let c = tighten(
                    ctx,
                    Constraint {
                        lc: combined,
                        strict: u.strict || l.strict,
                    },
                );
                rest.push(c);
                if rest.len() > MAX_CONSTRAINTS {
                    return LinResult::Unknown;
                }
            }
        }
        cs = rest;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qp::Qp;
    use crate::sort::Sort;

    fn int_var(ctx: &mut VarCtx, n: &str) -> Term {
        Term::var(ctx.fresh_var(Sort::Int, n))
    }

    fn refutes(ctx: &VarCtx, facts: &[PureProp]) -> bool {
        let mut lin = Linear::new();
        for f in facts {
            lin.add_fact(ctx, f);
        }
        lin.refute(ctx) == LinResult::Unsat
    }

    #[test]
    fn simple_bounds() {
        let mut ctx = VarCtx::new();
        let z = int_var(&mut ctx, "z");
        assert!(refutes(
            &ctx,
            &[
                PureProp::lt(Term::int(0), z.clone()),
                PureProp::le(z.clone(), Term::int(0)),
            ]
        ));
        assert!(!refutes(&ctx, &[PureProp::lt(Term::int(0), z)]));
    }

    #[test]
    fn integer_tightening() {
        let mut ctx = VarCtx::new();
        let z = int_var(&mut ctx, "z");
        // 0 < z ∧ z < 2 ∧ z ≠ 1 is UNSAT over ℤ (but not over ℚ).
        assert!(refutes(
            &ctx,
            &[
                PureProp::lt(Term::int(0), z.clone()),
                PureProp::lt(z.clone(), Term::int(2)),
                PureProp::ne(z, Term::int(1)),
            ]
        ));
    }

    #[test]
    fn gcd_tightening() {
        let mut ctx = VarCtx::new();
        let z = int_var(&mut ctx, "z");
        // 2z ≤ 3 ∧ 2 ≤ 2z  ⇒ z = 1; conflicts with z ≠ 1.
        assert!(refutes(
            &ctx,
            &[
                PureProp::le(Term::mul(Term::int(2), z.clone()), Term::int(3)),
                PureProp::le(Term::int(2), Term::mul(Term::int(2), z.clone())),
                PureProp::ne(z, Term::int(1)),
            ]
        ));
    }

    #[test]
    fn elimination_chains() {
        let mut ctx = VarCtx::new();
        let x = int_var(&mut ctx, "x");
        let y = int_var(&mut ctx, "y");
        let z = int_var(&mut ctx, "z");
        // x ≤ y ∧ y ≤ z ∧ z < x is UNSAT.
        assert!(refutes(
            &ctx,
            &[
                PureProp::le(x.clone(), y.clone()),
                PureProp::le(y, z.clone()),
                PureProp::lt(z, x),
            ]
        ));
    }

    #[test]
    fn rational_constraints() {
        let mut ctx = VarCtx::new();
        let q = Term::var(ctx.fresh_var(Sort::Qp, "q"));
        // q ≤ 1/2 ∧ 1 ≤ q is UNSAT over ℚ.
        assert!(refutes(
            &ctx,
            &[
                PureProp::le(q.clone(), Term::qp(Qp::half())),
                PureProp::le(Term::qp_one(), q),
            ]
        ));
        // Over ℚ, 0 < q ∧ q < 1 is satisfiable (no tightening).
        let r = Term::var(ctx.fresh_var(Sort::Qp, "r"));
        assert!(!refutes(
            &ctx,
            &[
                PureProp::lt(Term::qp(Qp::new(1, 1000).unwrap()), r.clone()),
                PureProp::lt(r, Term::qp_one()),
            ]
        ));
    }

    #[test]
    fn equalities() {
        let mut ctx = VarCtx::new();
        let z = int_var(&mut ctx, "z");
        assert!(refutes(
            &ctx,
            &[
                PureProp::eq(z.clone(), Term::int(5)),
                PureProp::lt(z, Term::int(5)),
            ]
        ));
    }

    #[test]
    fn constant_diseq() {
        let ctx = VarCtx::new();
        assert!(refutes(&ctx, &[PureProp::ne(Term::int(3), Term::int(3))]));
        assert!(!refutes(&ctx, &[PureProp::ne(Term::int(3), Term::int(4))]));
    }

    #[test]
    fn arc_drop_case_split() {
        // The two branches of the ARC drop proof (§2.2):
        // with 0 < z and z = 1:  ¬(0 < z - 1) holds.
        // with 0 < z and z > 1:  0 < z - 1 holds, i.e. ¬ is refuted.
        let mut ctx = VarCtx::new();
        let z = int_var(&mut ctx, "z");
        let zm1 = Term::sub(z.clone(), Term::int(1));
        assert!(refutes(
            &ctx,
            &[
                PureProp::lt(Term::int(0), z.clone()),
                PureProp::eq(z.clone(), Term::int(1)),
                PureProp::lt(Term::int(0), zm1.clone()),
            ]
        ));
        assert!(refutes(
            &ctx,
            &[
                PureProp::lt(Term::int(1), z),
                PureProp::le(zm1, Term::int(0)),
            ]
        ));
    }
}
