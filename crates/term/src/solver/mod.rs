//! The pure solver: the `lia`/`eauto` analogue of the Coq artifact.
//!
//! [`PureSolver`] decides entailments `φ₁, …, φₙ ⊢ ψ` for the pure fragment
//! by refutation: the goal is negated and the conjunction is checked for
//! unsatisfiability with a combination of congruence closure
//! ([`congruence`]) and Fourier–Motzkin with integer tightening
//! ([`linear`]). Equality goals containing unsolved evars are first
//! attempted by unification, which is how pure hint side conditions
//! instantiate existentials (`⌜q = p + 1⌝` solves `?q`).

pub mod congruence;
pub mod egraph;
pub mod linear;

use crate::evar::VarCtx;
use crate::pure::PureProp;
use crate::unify::unify;
use congruence::{ClosureResult, Congruence};
use linear::{LinResult, Linear};

/// Maximum depth of disjunctive fact splitting.
pub(crate) const MAX_OR_DEPTH: usize = 4;

/// A solver over a fixed set of hypotheses.
#[derive(Debug, Clone, Default)]
pub struct PureSolver {
    facts: Vec<PureProp>,
    /// Order-sensitive fingerprint of `facts`, maintained incrementally by
    /// [`PureSolver::add_fact`]. Together with the goal's hash and the
    /// [`VarCtx::generation`] stamp it keys the memoized entailment
    /// verdicts in [`crate::intern`]: refutation never instantiates evars,
    /// so its verdict is a pure function of those three inputs.
    fp: u64,
    /// Whether any recorded fact mentions an evar. When neither the facts
    /// nor the goal do, zonking is the identity whatever the solution
    /// state, so memo keys can drop the generation component entirely —
    /// ground queries (the majority) then hit across solve/rollback churn.
    has_evars: bool,
}

pub(crate) fn prop_hash(p: &PureProp) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    p.hash(&mut h);
    h.finish()
}

impl PureSolver {
    /// Creates a solver from hypotheses. Conjunctions are flattened,
    /// negations and implications are normalised.
    #[must_use]
    pub fn new(facts: &[PureProp]) -> PureSolver {
        let mut s = PureSolver::default();
        for f in facts {
            s.add_fact(f.clone());
        }
        s
    }

    /// Adds a hypothesis.
    pub fn add_fact(&mut self, p: PureProp) {
        let PureSolver {
            facts,
            fp,
            has_evars,
        } = self;
        normalize_fact(p, &mut |other| {
            *fp = fp.rotate_left(7) ^ prop_hash(&other);
            *has_evars |= other.has_evars();
            facts.push(other);
        });
    }

    /// The recorded literal/disjunctive facts.
    #[must_use]
    pub fn facts(&self) -> &[PureProp] {
        &self.facts
    }

    /// Proves `goal` from the hypotheses, *possibly instantiating evars*
    /// (equality goals are first attempted by unification).
    pub fn prove(&self, ctx: &mut VarCtx, goal: &PureProp) -> bool {
        self.prove_inner(ctx, goal, true)
    }

    /// Proves `goal` without ever instantiating an evar. Used for
    /// disjunction *guard* checks (§5.3), which must not commit the proof
    /// state.
    pub fn prove_frozen(&self, ctx: &mut VarCtx, goal: &PureProp) -> bool {
        self.prove_inner(ctx, goal, false)
    }

    fn prove_inner(&self, ctx: &mut VarCtx, goal: &PureProp, may_unify: bool) -> bool {
        let goal = goal.zonk(ctx);
        match &goal {
            PureProp::True => return true,
            PureProp::And(a, b) => {
                return self.prove_inner(ctx, a, may_unify) && self.prove_inner(ctx, b, may_unify)
            }
            PureProp::Implies(a, b) => {
                let mut s = self.clone();
                s.add_fact((**a).clone());
                return s.prove_inner(ctx, b, may_unify);
            }
            PureProp::Or(a, b) => {
                // Try either side without committing evars; then with.
                if self.prove_inner(ctx, a, false) || self.prove_inner(ctx, b, false) {
                    return true;
                }
                if may_unify {
                    let mark = ctx.checkpoint();
                    if self.prove_inner(ctx, a, true) {
                        return true;
                    }
                    ctx.rollback(&mark);
                    let mark = ctx.checkpoint();
                    if self.prove_inner(ctx, b, true) {
                        return true;
                    }
                    ctx.rollback(&mark);
                }
                return self.entails(ctx, &goal);
            }
            PureProp::Not(a) => return self.prove_inner(ctx, &a.negated(), may_unify),
            _ => {}
        }
        // Equality goals with evars: unification first.
        if may_unify && goal.has_evars() {
            if let PureProp::Eq(a, b) = &goal {
                let mark = ctx.checkpoint();
                if unify(ctx, a, b).is_ok() {
                    return true;
                }
                ctx.rollback(&mark);
            }
        }
        self.entails(ctx, &goal)
    }

    /// Refutation-based entailment check (never instantiates evars:
    /// remaining evars are treated as opaque constants, which is sound).
    ///
    /// The verdict depends only on the recorded facts, the goal, and the
    /// current evar solutions, so when an interner scope is active it is
    /// memoized under `(facts fingerprint, goal hash, solution
    /// fingerprint)`, and the facts' share of the refutation state is
    /// reused across goals (see [`PureBase`]).
    /// The solution component of this solver's memo keys: 0 when the
    /// query mentions no evar at all (solutions cannot matter), and the
    /// content fingerprint of the solution map ([`VarCtx::solution_fp`])
    /// otherwise — two probes that instantiate the same evars the same
    /// way share the entry even across intervening rollbacks.
    fn key_gen(&self, ctx: &VarCtx, goal: &PureProp) -> u64 {
        if self.has_evars || goal.has_evars() {
            ctx.solution_fp()
        } else {
            0
        }
    }

    fn entails(&self, ctx: &mut VarCtx, goal: &PureProp) -> bool {
        let key = (self.fp, prop_hash(goal), self.key_gen(ctx, goal));
        if let Some(verdict) = crate::intern::pure_cache_get(&key) {
            return verdict;
        }
        let verdict = match self.entails_via_base(ctx, goal) {
            Some(v) => v,
            None => {
                let mut facts = self.facts.clone();
                facts.push(goal.negated());
                unsat(ctx, &facts, MAX_OR_DEPTH)
            }
        };
        crate::intern::pure_cache_put(key, verdict);
        verdict
    }

    /// The fast path of [`PureSolver::entails`]: reuses the cached
    /// [`PureBase`] built over the facts alone and adds only the negated
    /// goal's literals. `None` when the path does not apply (no interner
    /// scope, or a disjunction is involved — those go through the
    /// splitting search of [`unsat`]). The operation sequence replayed
    /// here is exactly the one the scratch build performs (facts in
    /// order, then the goal), so the verdict is identical.
    fn entails_via_base(&self, ctx: &mut VarCtx, goal: &PureProp) -> Option<bool> {
        if !crate::intern::is_active() {
            return None;
        }
        let mut goal_flat = Vec::new();
        flatten_literal(&goal.negated(), &mut goal_flat);
        if goal_flat.iter().any(|f| matches!(f, PureProp::Or(..))) {
            return None;
        }
        let bkey = (
            self.fp,
            if self.has_evars { ctx.solution_fp() } else { 0 },
        );
        let base = match crate::intern::pure_base_get(&bkey) {
            Some(cached) => cached?,
            None => {
                let built = PureBase::build(ctx, &self.facts);
                crate::intern::pure_base_put(bkey, built.clone());
                built?
            }
        };
        let PureBase {
            mut cc,
            mut lin,
            has_false,
        } = base;
        if has_false || goal_flat.iter().any(|f| matches!(f, PureProp::False)) {
            return Some(true);
        }
        for f in &goal_flat {
            add_literal(&mut cc, &mut lin, ctx, f);
        }
        if cc.saturate(ctx) == ClosureResult::Contradiction {
            return Some(true);
        }
        for d in cc.derived_numeric().to_vec() {
            lin.add_fact(ctx, &d);
        }
        Some(lin.refute(ctx) == LinResult::Unsat)
    }

    /// Whether the hypotheses are contradictory. Equivalent to entailing
    /// `False` (the negated goal `True` flattens away), which shares the
    /// memoized verdicts of [`PureSolver::prove`].
    pub fn inconsistent(&self, ctx: &mut VarCtx) -> bool {
        self.entails(ctx, &PureProp::False)
    }
}

/// Hypothesis normalisation, shared between [`PureSolver::add_fact`] and
/// the incremental [`egraph::EGraph`] (which must store the *identical*
/// literal sequence to guarantee identical verdicts): `True` is dropped,
/// conjunctions are split, negations are pushed inward, and implications
/// become stored disjunctions. Each surviving fact is handed to `out` in
/// order.
pub(crate) fn normalize_fact(p: PureProp, out: &mut impl FnMut(PureProp)) {
    match p {
        PureProp::True => {}
        PureProp::And(a, b) => {
            normalize_fact(*a, out);
            normalize_fact(*b, out);
        }
        PureProp::Not(a) => normalize_fact(a.negated(), out),
        PureProp::Implies(a, b) => normalize_fact(PureProp::or(a.negated(), *b), out),
        other => out(other),
    }
}

/// Checks unsatisfiability of a conjunction of (possibly disjunctive) facts.
pub(crate) fn unsat(ctx: &mut VarCtx, facts: &[PureProp], or_budget: usize) -> bool {
    // Split on the first disjunctive fact, if any.
    for (i, f) in facts.iter().enumerate() {
        if let PureProp::Or(a, b) = f {
            if or_budget == 0 {
                // Sound fallback: drop the disjunction.
                let rest: Vec<PureProp> = facts
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, p)| p.clone())
                    .collect();
                return unsat(ctx, &rest, 0);
            }
            let mut left: Vec<PureProp> = facts.to_vec();
            left[i] = (**a).clone();
            let mut right: Vec<PureProp> = facts.to_vec();
            right[i] = (**b).clone();
            return unsat(ctx, &left, or_budget - 1) && unsat(ctx, &right, or_budget - 1);
        }
    }
    // Literal-only path: congruence closure + linear arithmetic.
    let mut flat = Vec::new();
    for f in facts {
        flatten_literal(f, &mut flat);
    }
    if flat.iter().any(|f| matches!(f, PureProp::False)) {
        return true;
    }
    let mut cc = Congruence::new();
    let mut lin = Linear::new();
    for f in &flat {
        add_literal(&mut cc, &mut lin, ctx, f);
    }
    if cc.saturate(ctx) == ClosureResult::Contradiction {
        return true;
    }
    for d in cc.derived_numeric().to_vec() {
        lin.add_fact(ctx, &d);
    }
    lin.refute(ctx) == LinResult::Unsat
}

/// Routes one literal fact to the congruence or linear engine — the single
/// dispatch both the scratch build ([`unsat`]) and the cached-base build
/// ([`PureBase`]) go through, so the two construct bitwise-identical
/// states.
pub(crate) fn add_literal(cc: &mut Congruence, lin: &mut Linear, ctx: &VarCtx, f: &PureProp) {
    match f {
        PureProp::Eq(a, b) => {
            if a.zonk(ctx).sort(ctx).is_numeric() {
                lin.add_fact(ctx, f);
            } else {
                cc.assert_eq(ctx, a, b);
            }
        }
        PureProp::Ne(a, b) => {
            if a.zonk(ctx).sort(ctx).is_numeric() {
                lin.add_fact(ctx, f);
            } else {
                cc.assert_ne(ctx, a, b);
            }
        }
        PureProp::Le(..) | PureProp::Lt(..) => lin.add_fact(ctx, f),
        _ => {}
    }
}

/// The facts' share of a refutation: congruence and linear states with
/// every literal fact asserted (unsaturated — saturation runs per query,
/// after the goal's literals are added, exactly as the scratch build
/// does). Cached per `(facts fingerprint, generation)` in the interner
/// scope; `build` returns `None` when a fact flattens to a disjunction,
/// which needs [`unsat`]'s case-splitting search instead.
#[derive(Clone)]
pub(crate) struct PureBase {
    cc: Congruence,
    lin: Linear,
    has_false: bool,
}

impl PureBase {
    fn build(ctx: &VarCtx, facts: &[PureProp]) -> Option<PureBase> {
        let mut flat = Vec::new();
        for f in facts {
            flatten_literal(f, &mut flat);
        }
        if flat.iter().any(|f| matches!(f, PureProp::Or(..))) {
            return None;
        }
        let has_false = flat.iter().any(|f| matches!(f, PureProp::False));
        let mut cc = Congruence::new();
        let mut lin = Linear::new();
        if !has_false {
            for f in &flat {
                add_literal(&mut cc, &mut lin, ctx, f);
            }
        }
        Some(PureBase { cc, lin, has_false })
    }
}

pub(crate) fn flatten_literal(p: &PureProp, out: &mut Vec<PureProp>) {
    match p {
        PureProp::True => {}
        PureProp::And(a, b) => {
            flatten_literal(a, out);
            flatten_literal(b, out);
        }
        PureProp::Not(a) => flatten_literal(&a.negated(), out),
        PureProp::Implies(a, b) => out.push(PureProp::or(a.negated(), (**b).clone())),
        other => out.push(other.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::Sort;
    use crate::term::Term;

    fn int_var(ctx: &mut VarCtx, n: &str) -> Term {
        Term::var(ctx.fresh_var(Sort::Int, n))
    }

    #[test]
    fn proves_from_bounds() {
        let mut ctx = VarCtx::new();
        let z = int_var(&mut ctx, "z");
        let s = PureSolver::new(&[PureProp::lt(Term::int(0), z.clone())]);
        assert!(s.prove(&mut ctx, &PureProp::le(Term::int(1), z.clone())));
        assert!(!s.prove(&mut ctx, &PureProp::le(Term::int(2), z)));
    }

    #[test]
    fn mixed_congruence_and_linear() {
        let mut ctx = VarCtx::new();
        let a = int_var(&mut ctx, "a");
        let v = Term::var(ctx.fresh_var(Sort::Val, "v"));
        // v = #a ∧ v = #7 ⊢ 5 < a.
        let s = PureSolver::new(&[
            PureProp::eq(v.clone(), Term::v_int(a.clone())),
            PureProp::eq(v, Term::v_int_lit(7)),
        ]);
        assert!(s.prove(&mut ctx, &PureProp::lt(Term::int(5), a.clone())));
        assert!(s.prove(&mut ctx, &PureProp::eq(a, Term::int(7))));
    }

    #[test]
    fn equality_goal_instantiates_evar() {
        let mut ctx = VarCtx::new();
        let z = int_var(&mut ctx, "z");
        let e = ctx.fresh_evar(Sort::Int);
        let s = PureSolver::new(&[]);
        // ⊢ ?e = z + 1 solves ?e.
        assert!(s.prove(
            &mut ctx,
            &PureProp::eq(Term::evar(e), Term::add(z.clone(), Term::int(1)))
        ));
        assert_eq!(Term::evar(e).zonk(&ctx), Term::add(z, Term::int(1)));
    }

    #[test]
    fn frozen_mode_never_instantiates() {
        let mut ctx = VarCtx::new();
        let e = ctx.fresh_evar(Sort::Int);
        let s = PureSolver::new(&[]);
        assert!(!s.prove_frozen(&mut ctx, &PureProp::eq(Term::evar(e), Term::int(3))));
        assert!(ctx.evar_unsolved(e));
    }

    #[test]
    fn disjunctive_facts_split() {
        let mut ctx = VarCtx::new();
        let z = int_var(&mut ctx, "z");
        let s = PureSolver::new(&[PureProp::or(
            PureProp::eq(z.clone(), Term::int(1)),
            PureProp::eq(z.clone(), Term::int(2)),
        )]);
        assert!(s.prove(&mut ctx, &PureProp::lt(Term::int(0), z.clone())));
        assert!(!s.prove(&mut ctx, &PureProp::eq(z, Term::int(1))));
    }

    #[test]
    fn implication_goals() {
        let mut ctx = VarCtx::new();
        let z = int_var(&mut ctx, "z");
        let s = PureSolver::new(&[]);
        assert!(s.prove(
            &mut ctx,
            &PureProp::implies(
                PureProp::lt(Term::int(0), z.clone()),
                PureProp::le(Term::int(0), z)
            )
        ));
    }

    #[test]
    fn inconsistency_detection() {
        let mut ctx = VarCtx::new();
        let z = int_var(&mut ctx, "z");
        let s = PureSolver::new(&[
            PureProp::eq(z.clone(), Term::int(0)),
            PureProp::lt(Term::int(0), z),
        ]);
        assert!(s.inconsistent(&mut ctx));
        // Anything follows from an inconsistent context.
        assert!(s.prove(&mut ctx, &PureProp::False));
    }

    #[test]
    fn boolean_reasoning() {
        let mut ctx = VarCtx::new();
        let b = Term::var(ctx.fresh_var(Sort::Bool, "b"));
        let s = PureSolver::new(&[PureProp::ne(b.clone(), Term::bool(true))]);
        assert!(s.prove(&mut ctx, &PureProp::eq(b, Term::bool(false))));
    }

    #[test]
    fn value_constructor_reasoning() {
        let mut ctx = VarCtx::new();
        let v = Term::var(ctx.fresh_var(Sort::Val, "v"));
        let s = PureSolver::new(&[PureProp::eq(v.clone(), Term::v_bool_lit(true))]);
        assert!(s.prove(&mut ctx, &PureProp::ne(v, Term::v_bool_lit(false))));
    }

    #[test]
    fn arc_drop_branches() {
        // §2.2: after the manual case distinction the two disjunct guards
        // become decidable.
        let mut ctx = VarCtx::new();
        let z = int_var(&mut ctx, "z");
        let zm1 = Term::add(z.clone(), Term::int(-1));
        // Branch z = 1: guard 0 < z - 1 is refuted.
        let s1 = PureSolver::new(&[
            PureProp::lt(Term::int(0), z.clone()),
            PureProp::eq(z.clone(), Term::int(1)),
        ]);
        assert!(s1.prove(&mut ctx, &PureProp::lt(Term::int(0), zm1.clone()).negated()));
        assert!(s1.prove(&mut ctx, &PureProp::eq(zm1.clone(), Term::int(0))));
        // Branch z ≠ 1: guard z - 1 = 0 is refuted.
        let s2 = PureSolver::new(&[
            PureProp::lt(Term::int(0), z.clone()),
            PureProp::ne(z, Term::int(1)),
        ]);
        assert!(s2.prove(&mut ctx, &PureProp::eq(zm1.clone(), Term::int(0)).negated()));
        assert!(s2.prove(&mut ctx, &PureProp::lt(Term::int(0), zm1)));
    }
}
