//! The incremental, backtrackable pure solver.
//!
//! [`EGraph`] keeps the congruence-closure and linear-arithmetic state of
//! a [`crate::solver::PureSolver`] *alive across queries and fact
//! changes*: `push_fact` is O(new literals), `truncate_facts` rolls the
//! union-find and constraint state back through the undo trail in
//! O(changes), and each entailment query asserts only the negated goal's
//! literals on top of the persistent base instead of re-asserting every
//! hypothesis. This matches the [`crate::evar::VarCtx`]
//! checkpoint/generation discipline: the search context pushes and
//! truncates facts in lockstep with its variable checkpoints, so the
//! solver backtracks with the search instead of being rebuilt per
//! obligation.
//!
//! **Verdict identity.** Every query answers exactly what the legacy
//! rebuild solver would: hypotheses are normalised by the shared
//! [`crate::solver::normalize_fact`], literals are asserted in the same
//! order through the shared [`crate::solver::add_literal`] dispatch,
//! disjunctive or `False`-containing states take the very same
//! case-splitting [`crate::solver::unsat`] search on byte-equal inputs,
//! and rollback restores the union-find parent array bit-for-bit
//! (including path-compression writes — constraint *order* feeds the
//! Fourier–Motzkin budget cutoff, so layout matters). The
//! `DIAFRAME_EGRAPH=off` escape hatch drops back to the rebuild-per-query
//! path wholesale.
//!
//! **Memoization.** Entailment verdicts are memoized in the interner
//! scope under `(version, goal hash, generation)`, where the version is a
//! hash-consed stamp allocated per `(parent version, literal hash)` pair:
//! two e-graphs that assert the same literal sequence (a branch clone and
//! its original, or an `Implies` goal re-deriving the same hypothesis)
//! reach the same version and share verdicts, replacing the facts
//! fingerprint keying of the legacy solver.

use super::congruence::{ClosureResult, Congruence, CongruenceMark};
use super::linear::{LinResult, Linear, LinearMark};
use super::{add_literal, flatten_literal, normalize_fact, prop_hash, unsat, MAX_OR_DEPTH};
use crate::evar::VarCtx;
use crate::pure::PureProp;
use crate::unify::unify;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

/// Work counters for the incremental solver, aggregated per interner
/// scope and reported to telemetry by the verification entry points.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EGraphStats {
    /// Literals asserted into the persistent congruence/linear base.
    pub facts_asserted: u64,
    /// Union-find merges performed (unions survive in the base or were
    /// rolled back; both count — this measures work done).
    pub merges: u64,
    /// Undo operations replayed by rollbacks (trail pops, node removals,
    /// constraint truncations).
    pub undo_ops: u64,
    /// Uncached entailment queries answered on the persistent base.
    pub queries_incremental: u64,
    /// Uncached entailment queries that fell back to a from-scratch
    /// build (disjunctive state, or a base reset after evar churn).
    pub queries_rebuild: u64,
    /// Entailment queries answered from the scope's verdict memo.
    pub verdict_hits: u64,
    /// Entailment queries that missed the verdict memo.
    pub verdict_misses: u64,
}

/// Process-wide test/bench override; see [`force_disable`].
static FORCE_OFF: AtomicBool = AtomicBool::new(false);

fn env_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        std::env::var("DIAFRAME_EGRAPH").map_or(true, |v| v != "off" && v != "0")
    })
}

/// Disables (or re-enables) the incremental solver process-wide,
/// overriding the `DIAFRAME_EGRAPH` environment gate. Test and benchmark
/// support: lets one process compare incremental and rebuild-per-query
/// runs.
pub fn force_disable(off: bool) {
    FORCE_OFF.store(off, Ordering::SeqCst);
}

/// Whether the incremental solver should be used for pure obligations.
/// Requires an active interner scope: the e-graph's node keys and version
/// stamps live there.
#[must_use]
pub fn enabled() -> bool {
    configured() && crate::intern::is_active()
}

/// Whether the incremental solver is *configured* on (the
/// `DIAFRAME_EGRAPH` environment gate plus the [`force_disable`]
/// override), ignoring whether the calling thread currently has an
/// interner scope. This is the semantics-affecting knob state a cache
/// fingerprint should key on: scope activity is per-thread plumbing,
/// not configuration.
#[must_use]
pub fn configured() -> bool {
    env_enabled() && !FORCE_OFF.load(Ordering::Relaxed)
}

/// Version stamps for literals pushed outside any interner scope: unique
/// (so they never alias a hash-consed stamp) and drawn from the top half
/// of the space (so they never collide with the interner's allocator).
fn fallback_version() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1 << 63);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

fn stat(f: impl FnOnce(&mut EGraphStats)) {
    crate::intern::egraph_stats_mut(f);
}

/// One recorded hypothesis literal (the output of
/// [`crate::solver::normalize_fact`]: `Eq`/`Ne`/`Le`/`Lt`/`Or`/`False`),
/// with the flags the query dispatch needs precomputed.
#[derive(Debug, Clone)]
struct Lit {
    prop: PureProp,
    has_evars: bool,
    disjunctive: bool,
    is_false: bool,
}

/// The persistent, backtrackable pure solver state.
///
/// Cloning is supported and cheap relative to a rebuild (the vectors and
/// maps are copied; nothing is re-asserted): the search context clones at
/// genuine branch points only, and each clone continues incrementally
/// from the shared prefix.
#[derive(Clone)]
pub struct EGraph {
    /// The interner-scope token this e-graph was built under; see
    /// [`EGraph::valid`].
    token: u64,
    /// Normalised hypothesis literals, in assertion order — byte-equal to
    /// the legacy solver's fact list over the same inputs.
    lits: Vec<Lit>,
    /// Hash-consed version stamp after each literal; `versions[i]` keys
    /// verdicts over `lits[..=i]`.
    versions: Vec<u64>,
    /// `fact_marks[k]` is the literal count before user-level fact `k`
    /// was pushed (one fact may normalise to several literals).
    fact_marks: Vec<usize>,
    /// Counts over `lits` of disjunctive, `False`, and evar-mentioning
    /// literals, maintained incrementally for O(1) query dispatch.
    or_lits: usize,
    false_lits: usize,
    evar_lits: usize,
    /// The persistent refutation base: `lits[..base_upto]` asserted, in
    /// order, with a pre-assert mark per literal for exact rollback.
    cc: Congruence,
    lin: Linear,
    base_upto: usize,
    base_marks: Vec<(CongruenceMark, LinearMark)>,
    /// Solution fingerprint ([`VarCtx::solution_fp`]) the base was last
    /// caught up under; when an asserted literal mentions an evar and the
    /// solution map has actually changed, the evar-mentioning suffix of
    /// the base is re-asserted (its zonked forms are stale). Ground
    /// prefixes survive every reset: zonk is the identity on them.
    base_gen: u64,
    /// Evar-mentioning literals among `lits[..base_upto]`.
    evar_asserted: usize,
    /// Union count already reported to [`EGraphStats::merges`].
    synced_unions: u64,
}

impl std::fmt::Debug for EGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EGraph")
            .field("facts", &self.fact_marks.len())
            .field("lits", &self.lits.len())
            .field("base_upto", &self.base_upto)
            .field("version", &self.version())
            .finish_non_exhaustive()
    }
}

impl Default for EGraph {
    fn default() -> EGraph {
        EGraph::new()
    }
}

impl EGraph {
    /// An empty solver bound to the current interner scope (if any).
    #[must_use]
    pub fn new() -> EGraph {
        EGraph {
            token: crate::intern::scope_token().unwrap_or(u64::MAX),
            lits: Vec::new(),
            versions: Vec::new(),
            fact_marks: Vec::new(),
            or_lits: 0,
            false_lits: 0,
            evar_lits: 0,
            cc: Congruence::new(),
            lin: Linear::new(),
            base_upto: 0,
            base_marks: Vec::new(),
            base_gen: 0,
            evar_asserted: 0,
            synced_unions: 0,
        }
    }

    /// A solver over an existing fact list (the rebuild entry point used
    /// when no incremental state survived to the query site).
    #[must_use]
    pub fn from_facts(facts: &[PureProp]) -> EGraph {
        let mut eg = EGraph::new();
        for f in facts {
            eg.push_fact(f.clone());
        }
        eg
    }

    /// Whether this e-graph may serve queries under the current interner
    /// scope: its node keys and version stamps are only meaningful in the
    /// scope it was built in.
    #[must_use]
    pub fn valid(&self) -> bool {
        crate::intern::scope_token().unwrap_or(u64::MAX) == self.token
    }

    /// The number of user-level facts recorded (the unit
    /// [`EGraph::truncate_facts`] counts in).
    #[must_use]
    pub fn num_facts(&self) -> usize {
        self.fact_marks.len()
    }

    /// The hash-consed version identifying the current literal sequence.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.versions.last().copied().unwrap_or(0)
    }

    /// Records one hypothesis (normalising exactly as
    /// [`crate::solver::PureSolver::add_fact`] does). O(new literals).
    pub fn push_fact(&mut self, p: PureProp) {
        self.fact_marks.push(self.lits.len());
        self.push_lits(p);
    }

    /// Rolls back to the first `n` user-level facts, undoing every later
    /// assertion through the trail. O(changes).
    pub fn truncate_facts(&mut self, n: usize) {
        if n >= self.fact_marks.len() {
            return;
        }
        let target = self.fact_marks[n];
        self.fact_marks.truncate(n);
        self.rollback_lits(target);
    }

    fn push_lits(&mut self, p: PureProp) {
        let mut out = Vec::new();
        normalize_fact(p, &mut |lit| out.push(lit));
        for prop in out {
            self.push_lit(prop);
        }
    }

    fn push_lit(&mut self, prop: PureProp) {
        let parent = self.version();
        let version = crate::intern::egraph_version(parent, prop_hash(&prop))
            .unwrap_or_else(fallback_version);
        let lit = Lit {
            has_evars: prop.has_evars(),
            disjunctive: matches!(prop, PureProp::Or(..)),
            is_false: matches!(prop, PureProp::False),
            prop,
        };
        self.or_lits += usize::from(lit.disjunctive);
        self.false_lits += usize::from(lit.is_false);
        self.evar_lits += usize::from(lit.has_evars);
        self.lits.push(lit);
        self.versions.push(version);
    }

    /// Rolls the literal list (and the asserted base, where it reaches)
    /// back to length `n`.
    fn rollback_lits(&mut self, n: usize) {
        let mut undone = 0u64;
        while self.base_upto > n {
            self.base_upto -= 1;
            let (cm, lm) = self
                .base_marks
                .pop()
                .expect("one base mark per asserted literal");
            undone += self.cc.rollback(&cm);
            undone += self.lin.rollback(&lm);
            self.evar_asserted -= usize::from(self.lits[self.base_upto].has_evars);
        }
        for lit in &self.lits[n..] {
            self.or_lits -= usize::from(lit.disjunctive);
            self.false_lits -= usize::from(lit.is_false);
            self.evar_lits -= usize::from(lit.has_evars);
        }
        self.lits.truncate(n);
        self.versions.truncate(n);
        if undone > 0 {
            stat(|s| s.undo_ops += undone);
        }
    }

    /// Brings the persistent base up to date with the literal list.
    /// Returns whether this required a from-scratch re-assertion (base
    /// reset after evar-solution churn, or a previously empty base).
    ///
    /// Only called on the incremental query path, i.e. with no `Or` or
    /// `False` literal present — the base therefore only ever holds
    /// `Eq`/`Ne`/`Le`/`Lt` literals, asserted in list order, exactly as
    /// the legacy cached-base build does.
    fn catch_up(&mut self, ctx: &VarCtx) -> bool {
        let gen = ctx.solution_fp();
        let mut rebuilt = false;
        if self.evar_asserted > 0 && self.base_gen != gen {
            // An asserted literal mentions an evar and the solution map
            // differs from the one it was asserted under: its zonked form
            // is stale. Roll the base back to the first evar-mentioning
            // literal and re-assert from there — the ground prefix's
            // assertions are zonk-invariant, and re-asserting the suffix
            // in list order reproduces exactly the state a from-scratch
            // build would reach.
            let first_evar = self.lits[..self.base_upto]
                .iter()
                .position(|l| l.has_evars)
                .unwrap_or(self.base_upto);
            let mut undone = 0u64;
            while self.base_upto > first_evar {
                self.base_upto -= 1;
                let (cm, lm) = self
                    .base_marks
                    .pop()
                    .expect("one base mark per asserted literal");
                undone += self.cc.rollback(&cm);
                undone += self.lin.rollback(&lm);
                self.evar_asserted -= usize::from(self.lits[self.base_upto].has_evars);
            }
            if undone > 0 {
                stat(|s| s.undo_ops += undone);
            }
            rebuilt = true;
        }
        rebuilt |= self.base_upto == 0 && !self.lits.is_empty();
        let mut asserted = 0u64;
        while self.base_upto < self.lits.len() {
            self.base_marks.push((self.cc.mark(), self.lin.mark()));
            add_literal(
                &mut self.cc,
                &mut self.lin,
                ctx,
                &self.lits[self.base_upto].prop,
            );
            self.evar_asserted += usize::from(self.lits[self.base_upto].has_evars);
            self.base_upto += 1;
            asserted += 1;
        }
        self.base_gen = gen;
        if asserted > 0 {
            stat(|s| s.facts_asserted += asserted);
        }
        self.sync_merges();
        rebuilt
    }

    fn sync_merges(&mut self) {
        let total = self.cc.union_count();
        let delta = total.saturating_sub(self.synced_unions);
        if delta > 0 {
            stat(|s| s.merges += delta);
            self.synced_unions = total;
        }
    }

    /// Proves `goal` from the hypotheses, *possibly instantiating evars*.
    /// Mirrors [`crate::solver::PureSolver::prove`] decision-for-decision.
    pub fn prove(&mut self, ctx: &mut VarCtx, goal: &PureProp) -> bool {
        self.prove_inner(ctx, goal, true)
    }

    /// Proves `goal` without ever instantiating an evar (disjunction
    /// guard checks). Mirrors
    /// [`crate::solver::PureSolver::prove_frozen`].
    pub fn prove_frozen(&mut self, ctx: &mut VarCtx, goal: &PureProp) -> bool {
        self.prove_inner(ctx, goal, false)
    }

    /// Whether the hypotheses are contradictory.
    pub fn inconsistent(&mut self, ctx: &mut VarCtx) -> bool {
        self.entails(ctx, &PureProp::False)
    }

    fn prove_inner(&mut self, ctx: &mut VarCtx, goal: &PureProp, may_unify: bool) -> bool {
        let goal = goal.zonk(ctx);
        match &goal {
            PureProp::True => return true,
            PureProp::And(a, b) => {
                return self.prove_inner(ctx, a, may_unify) && self.prove_inner(ctx, b, may_unify)
            }
            PureProp::Implies(a, b) => {
                // The legacy solver clones itself and adds the hypothesis;
                // here the hypothesis is pushed onto the live state and
                // rolled back — same fact list, no rebuild.
                let lit_mark = self.lits.len();
                self.push_lits((**a).clone());
                let r = self.prove_inner(ctx, b, may_unify);
                self.rollback_lits(lit_mark);
                return r;
            }
            PureProp::Or(a, b) => {
                // Try either side without committing evars; then with.
                if self.prove_inner(ctx, a, false) || self.prove_inner(ctx, b, false) {
                    return true;
                }
                if may_unify {
                    let mark = ctx.checkpoint();
                    if self.prove_inner(ctx, a, true) {
                        return true;
                    }
                    ctx.rollback(&mark);
                    let mark = ctx.checkpoint();
                    if self.prove_inner(ctx, b, true) {
                        return true;
                    }
                    ctx.rollback(&mark);
                }
                return self.entails(ctx, &goal);
            }
            PureProp::Not(a) => return self.prove_inner(ctx, &a.negated(), may_unify),
            _ => {}
        }
        // Equality goals with evars: unification first.
        if may_unify && goal.has_evars() {
            if let PureProp::Eq(a, b) = &goal {
                let mark = ctx.checkpoint();
                if unify(ctx, a, b).is_ok() {
                    return true;
                }
                ctx.rollback(&mark);
            }
        }
        self.entails(ctx, &goal)
    }

    /// Refutation-based entailment, memoized under `(version, goal hash,
    /// solution fingerprint)` — the solution component dropping to 0 for
    /// fully ground queries exactly as the legacy key does.
    fn entails(&mut self, ctx: &mut VarCtx, goal: &PureProp) -> bool {
        let key_gen = if self.evar_lits > 0 || goal.has_evars() {
            ctx.solution_fp()
        } else {
            0
        };
        let key = (self.version(), prop_hash(goal), key_gen);
        if let Some(verdict) = crate::intern::egraph_cache_get(&key) {
            stat(|s| s.verdict_hits += 1);
            return verdict;
        }
        stat(|s| s.verdict_misses += 1);
        let verdict = self.entails_uncached(ctx, goal);
        crate::intern::egraph_cache_put(key, verdict);
        verdict
    }

    fn entails_uncached(&mut self, ctx: &mut VarCtx, goal: &PureProp) -> bool {
        let mut goal_flat = Vec::new();
        flatten_literal(&goal.negated(), &mut goal_flat);
        if self.or_lits > 0 || goal_flat.iter().any(|f| matches!(f, PureProp::Or(..))) {
            // Disjunctions need the case-splitting search; hand it the
            // byte-identical input the legacy solver would build.
            stat(|s| s.queries_rebuild += 1);
            let mut facts: Vec<PureProp> = self.lits.iter().map(|l| l.prop.clone()).collect();
            facts.push(goal.negated());
            return unsat(ctx, &facts, MAX_OR_DEPTH);
        }
        if self.false_lits > 0 || goal_flat.iter().any(|f| matches!(f, PureProp::False)) {
            stat(|s| s.queries_incremental += 1);
            return true;
        }
        let rebuilt = self.catch_up(ctx);
        stat(|s| {
            if rebuilt {
                s.queries_rebuild += 1;
            } else {
                s.queries_incremental += 1;
            }
        });
        // Assert the negated goal on top of the base, decide, roll back.
        let cm = self.cc.mark();
        let lm = self.lin.mark();
        for f in &goal_flat {
            add_literal(&mut self.cc, &mut self.lin, ctx, f);
        }
        let verdict = if self.cc.saturate(ctx) == ClosureResult::Contradiction {
            true
        } else {
            for d in self.cc.derived_numeric().to_vec() {
                self.lin.add_fact(ctx, &d);
            }
            self.lin.refute(ctx) == LinResult::Unsat
        };
        let undone = self.cc.rollback(&cm) + self.lin.rollback(&lm);
        if undone > 0 {
            stat(|s| s.undo_ops += undone);
        }
        self.sync_merges();
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::PureSolver;
    use crate::sort::Sort;
    use crate::term::Term;

    fn int_var(ctx: &mut VarCtx, n: &str) -> Term {
        Term::var(ctx.fresh_var(Sort::Int, n))
    }

    /// Both solvers over the same facts must agree on the goal.
    fn agree(ctx: &mut VarCtx, facts: &[PureProp], goal: &PureProp) -> bool {
        let legacy = PureSolver::new(facts).prove_frozen(&mut ctx.clone(), goal);
        let mut eg = EGraph::from_facts(facts);
        let incr = eg.prove_frozen(&mut ctx.clone(), goal);
        assert_eq!(legacy, incr, "solvers disagree on {goal:?} from {facts:?}");
        incr
    }

    #[test]
    fn matches_legacy_on_bounds() {
        let mut ctx = VarCtx::new();
        let z = int_var(&mut ctx, "z");
        let facts = [PureProp::lt(Term::int(0), z.clone())];
        assert!(agree(&mut ctx, &facts, &PureProp::le(Term::int(1), z.clone())));
        assert!(!agree(&mut ctx, &facts, &PureProp::le(Term::int(2), z)));
    }

    #[test]
    fn incremental_push_and_truncate() {
        let mut ctx = VarCtx::new();
        let z = int_var(&mut ctx, "z");
        let mut eg = EGraph::new();
        eg.push_fact(PureProp::lt(Term::int(0), z.clone()));
        assert!(eg.prove(&mut ctx, &PureProp::le(Term::int(1), z.clone())));
        assert!(!eg.prove(&mut ctx, &PureProp::le(Term::int(5), z.clone())));
        let n = eg.num_facts();
        eg.push_fact(PureProp::le(Term::int(5), z.clone()));
        assert!(eg.prove(&mut ctx, &PureProp::le(Term::int(5), z.clone())));
        eg.truncate_facts(n);
        assert!(!eg.prove(&mut ctx, &PureProp::le(Term::int(5), z.clone())));
        assert!(eg.prove(&mut ctx, &PureProp::le(Term::int(1), z)));
    }

    #[test]
    fn truncate_restores_congruence_state() {
        let mut ctx = VarCtx::new();
        let v = Term::var(ctx.fresh_var(Sort::Val, "v"));
        let w = Term::var(ctx.fresh_var(Sort::Val, "w"));
        let mut eg = EGraph::new();
        eg.push_fact(PureProp::eq(v.clone(), w.clone()));
        assert!(eg.prove(&mut ctx, &PureProp::eq(w.clone(), v.clone())));
        let n = eg.num_facts();
        eg.push_fact(PureProp::eq(v.clone(), Term::v_bool_lit(true)));
        assert!(eg.prove(&mut ctx, &PureProp::eq(w.clone(), Term::v_bool_lit(true))));
        eg.truncate_facts(n);
        assert!(!eg.prove(&mut ctx, &PureProp::eq(w.clone(), Term::v_bool_lit(true))));
        assert!(eg.prove(&mut ctx, &PureProp::eq(v, w)));
    }

    #[test]
    fn disjunctive_facts_match_legacy() {
        let mut ctx = VarCtx::new();
        let z = int_var(&mut ctx, "z");
        let facts = [PureProp::or(
            PureProp::eq(z.clone(), Term::int(1)),
            PureProp::eq(z.clone(), Term::int(2)),
        )];
        assert!(agree(&mut ctx, &facts, &PureProp::lt(Term::int(0), z.clone())));
        assert!(!agree(&mut ctx, &facts, &PureProp::eq(z, Term::int(1))));
    }

    #[test]
    fn implication_goal_rolls_back_hypothesis() {
        let mut ctx = VarCtx::new();
        let z = int_var(&mut ctx, "z");
        let mut eg = EGraph::new();
        assert!(eg.prove(
            &mut ctx,
            &PureProp::implies(
                PureProp::lt(Term::int(0), z.clone()),
                PureProp::le(Term::int(0), z.clone())
            )
        ));
        // The hypothesis must not leak.
        assert!(!eg.prove(&mut ctx, &PureProp::le(Term::int(0), z)));
        assert_eq!(eg.num_facts(), 0);
    }

    #[test]
    fn evar_generation_reset() {
        let mut ctx = VarCtx::new();
        let z = int_var(&mut ctx, "z");
        let e = ctx.fresh_evar(Sort::Int);
        let mut eg = EGraph::new();
        eg.push_fact(PureProp::le(Term::evar(e), z.clone()));
        // Unsolved: ?e ≤ z proves nothing about z vs 3.
        assert!(!eg.prove_frozen(&mut ctx, &PureProp::le(Term::int(3), z.clone())));
        ctx.solve_evar(e, Term::int(3));
        // Solved: 3 ≤ z now follows; the base must re-assert under the
        // new generation rather than serve the stale zonked form.
        assert!(eg.prove_frozen(&mut ctx, &PureProp::le(Term::int(3), z)));
    }

    #[test]
    fn unification_instantiates_under_prove() {
        let mut ctx = VarCtx::new();
        let z = int_var(&mut ctx, "z");
        let e = ctx.fresh_evar(Sort::Int);
        let mut eg = EGraph::new();
        assert!(eg.prove(
            &mut ctx,
            &PureProp::eq(Term::evar(e), Term::add(z.clone(), Term::int(1)))
        ));
        assert_eq!(Term::evar(e).zonk(&ctx), Term::add(z, Term::int(1)));
    }

    #[test]
    fn versions_hash_cons_across_clones() {
        let _scope = crate::intern::scope();
        let mut ctx = VarCtx::new();
        let z = int_var(&mut ctx, "z");
        let mut a = EGraph::new();
        a.push_fact(PureProp::lt(Term::int(0), z.clone()));
        let mut b = EGraph::new();
        b.push_fact(PureProp::lt(Term::int(0), z.clone()));
        assert_eq!(a.version(), b.version());
        a.push_fact(PureProp::lt(z.clone(), Term::int(9)));
        assert_ne!(a.version(), b.version());
        b.push_fact(PureProp::lt(z, Term::int(9)));
        assert_eq!(a.version(), b.version());
        // And truncation returns to the shared stamp.
        a.truncate_facts(1);
        b.truncate_facts(1);
        assert_eq!(a.version(), b.version());
    }

    #[test]
    fn scope_token_invalidates_across_scopes() {
        let eg = {
            let _scope = crate::intern::scope();
            EGraph::new()
        };
        assert!(!eg.valid() || crate::intern::scope_token().is_none());
        let _scope = crate::intern::scope();
        assert!(!eg.valid());
        assert!(EGraph::new().valid());
    }

    /// A speculative branch worker starts on a detached proof context
    /// with no solver state (`ProofCtx::fork_detached` drops the
    /// incremental e-graph), so its first pure query rebuilds via
    /// [`EGraph::from_facts`] on its own thread and interner scope. The
    /// rebuild must reach the same verdicts there as anywhere else —
    /// worker placement must never change what is provable.
    #[test]
    fn rebuild_verdicts_are_thread_independent() {
        let mut ctx = VarCtx::new();
        let z = int_var(&mut ctx, "z");
        let w = int_var(&mut ctx, "w");
        let facts = vec![
            PureProp::lt(Term::int(0), z.clone()),
            PureProp::le(z.clone(), w.clone()),
            PureProp::ne(w.clone(), Term::int(1)),
        ];
        let goals = vec![
            (PureProp::le(Term::int(1), z.clone()), true),
            (PureProp::le(Term::int(2), w.clone()), true),
            (PureProp::le(Term::int(2), z.clone()), false),
            (PureProp::eq(w, Term::int(1)), false),
        ];
        let here: Vec<bool> = {
            let mut eg = EGraph::from_facts(&facts);
            goals.iter().map(|(g, _)| eg.prove(&mut ctx, g)).collect()
        };
        for ((_, expect), got) in goals.iter().zip(&here) {
            assert_eq!(expect, got);
        }
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (facts, goals, here) = (&facts, &goals, &here);
                let mut ctx = ctx.clone();
                s.spawn(move || {
                    let _scope = crate::intern::scope();
                    let mut eg = EGraph::from_facts(facts);
                    let there: Vec<bool> =
                        goals.iter().map(|(g, _)| eg.prove(&mut ctx, g)).collect();
                    assert_eq!(&there, here, "rebuild verdicts differ on a worker thread");
                });
            }
        });
    }

    #[test]
    fn inconsistency_detection() {
        let mut ctx = VarCtx::new();
        let z = int_var(&mut ctx, "z");
        let mut eg = EGraph::new();
        eg.push_fact(PureProp::eq(z.clone(), Term::int(0)));
        assert!(!eg.inconsistent(&mut ctx));
        eg.push_fact(PureProp::lt(Term::int(0), z));
        assert!(eg.inconsistent(&mut ctx));
        eg.truncate_facts(1);
        assert!(!eg.inconsistent(&mut ctx));
    }
}
