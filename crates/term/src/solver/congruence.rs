//! Congruence closure over non-numeric terms.
//!
//! A small union-find based congruence closure used for the equality /
//! disequality part of the pure solver: value-constructor injectivity and
//! disjointness, literal conflicts, and the two-valuedness of booleans.
//!
//! The state is **backtrackable**: every `parent` write (unions and the
//! path compression inside `find`) is recorded on an undo trail, so
//! [`Congruence::rollback`] restores an earlier [`Congruence::mark`]
//! exactly — node vector, id map, disequalities, derived facts, parent
//! layout, and the contradiction flag all return to their marked state.
//! That is what lets the incremental solver ([`crate::solver::egraph`])
//! assert a query's goal literals directly into the long-lived base state
//! and pop them afterwards instead of cloning the whole closure per query.

use crate::evar::VarCtx;
use crate::intern::TermId;
use crate::pure::PureProp;
use crate::sort::Sort;
use crate::term::Term;
use std::collections::HashMap;

/// Outcome of saturating the closure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClosureResult {
    /// The equalities are consistent (as far as this procedure can tell).
    Consistent,
    /// A contradiction was derived.
    Contradiction,
}

/// Key of the node-lookup map. When an interner scope is active, terms are
/// keyed by their interned [`TermId`] (a 4-byte hash and comparison
/// instead of a structural walk); otherwise by the term itself. A single
/// [`Congruence`] instance never mixes the two regimes: it lives either
/// entirely inside one scope (the incremental solver and the cached
/// [`crate::solver::PureBase`] both do) or entirely outside one.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum NodeKey {
    Interned(TermId),
    Structural(Term),
}

impl NodeKey {
    fn of(t: &Term) -> NodeKey {
        match crate::intern::term_id(t) {
            Some(id) => NodeKey::Interned(id),
            None => NodeKey::Structural(t.clone()),
        }
    }
}

/// The congruence-closure engine.
///
/// Numeric-sorted equalities derived through injectivity (e.g. from
/// `#a = #b` conclude `a = b` over ℤ) are *exported* via
/// [`Congruence::derived_numeric`] so the linear solver can consume them.
#[derive(Debug, Clone, Default)]
pub struct Congruence {
    nodes: Vec<Term>,
    ids: HashMap<NodeKey, usize>,
    parent: Vec<usize>,
    /// Disequality edges (by node id).
    diseqs: Vec<(usize, usize)>,
    /// Numeric equalities derived by injectivity, as pure propositions.
    derived: Vec<PureProp>,
    contradiction: bool,
    /// Undo trail of `(index, previous parent)` pairs, one per `parent`
    /// write. Entries above a mark are popped (newest first) on rollback.
    trail: Vec<(usize, usize)>,
    /// Total unions performed (monotonic; rollback does not decrement —
    /// this counts work done, not classes merged in the surviving state).
    unions: u64,
}

/// A point in a [`Congruence`]'s history; see [`Congruence::mark`].
#[derive(Debug, Clone)]
pub struct CongruenceMark {
    nodes: usize,
    diseqs: usize,
    derived: usize,
    trail: usize,
    contradiction: bool,
}

impl Congruence {
    #[must_use]
    /// An empty congruence-closure state.
    pub fn new() -> Congruence {
        Congruence::default()
    }

    fn node(&mut self, t: &Term) -> usize {
        let key = NodeKey::of(t);
        if let Some(&id) = self.ids.get(&key) {
            return id;
        }
        let id = self.nodes.len();
        self.nodes.push(t.clone());
        self.ids.insert(key, id);
        self.parent.push(id);
        // Register subterms too, so congruence can fire on them.
        if let Term::App(_, args) = t {
            for a in args.iter() {
                self.node(a);
            }
        }
        id
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            let p = self.parent[x];
            let gp = self.parent[p];
            if gp != p {
                // Path halving is semantically redundant but its writes
                // still go on the trail: rollback restores the parent
                // layout bit-for-bit, so a rolled-back state is
                // indistinguishable from one that never ran the query.
                self.trail.push((x, p));
                self.parent[x] = gp;
            }
            x = gp;
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.trail.push((ra, ra));
            self.parent[ra] = rb;
            self.unions += 1;
        }
    }

    /// Captures the current state for a later [`Congruence::rollback`].
    #[must_use]
    pub fn mark(&self) -> CongruenceMark {
        CongruenceMark {
            nodes: self.nodes.len(),
            diseqs: self.diseqs.len(),
            derived: self.derived.len(),
            trail: self.trail.len(),
            contradiction: self.contradiction,
        }
    }

    /// Restores the state captured by `mark`, undoing every later parent
    /// write and removing every later node, disequality, and derived
    /// fact. O(changes since the mark). Returns the number of undo
    /// operations performed (for telemetry).
    pub fn rollback(&mut self, mark: &CongruenceMark) -> u64 {
        let mut undone = 0u64;
        while self.trail.len() > mark.trail {
            let (idx, old) = self.trail.pop().expect("trail length checked");
            // Writes to nodes that are themselves being removed need no
            // restore; the truncation below drops them.
            if idx < mark.nodes {
                self.parent[idx] = old;
            }
            undone += 1;
        }
        for i in (mark.nodes..self.nodes.len()).rev() {
            self.ids.remove(&NodeKey::of(&self.nodes[i]));
            undone += 1;
        }
        self.nodes.truncate(mark.nodes);
        self.parent.truncate(mark.nodes);
        undone += (self.diseqs.len().saturating_sub(mark.diseqs)
            + self.derived.len().saturating_sub(mark.derived)) as u64;
        self.diseqs.truncate(mark.diseqs);
        self.derived.truncate(mark.derived);
        self.contradiction = mark.contradiction;
        undone
    }

    /// Total unions performed over this instance's lifetime (monotonic).
    #[must_use]
    pub fn union_count(&self) -> u64 {
        self.unions
    }

    /// Asserts an equality between two terms.
    pub fn assert_eq(&mut self, ctx: &VarCtx, a: &Term, b: &Term) {
        let a = a.zonk(ctx);
        let b = b.zonk(ctx);
        // Structural decomposition of injective constructors, exporting
        // numeric components.
        if let (Term::App(f, xs), Term::App(g, ys)) = (&a, &b) {
            if f.is_value_ctor() && g.is_value_ctor() {
                if f != g {
                    self.contradiction = true;
                    return;
                }
                for (x, y) in xs.iter().zip(ys.iter()) {
                    self.assert_eq(ctx, x, y);
                }
                return;
            }
        }
        if a.sort(ctx).is_numeric() {
            self.derived.push(PureProp::Eq(a, b));
            return;
        }
        let na = self.node(&a);
        let nb = self.node(&b);
        self.union(na, nb);
    }

    /// Asserts a disequality between two terms.
    pub fn assert_ne(&mut self, ctx: &VarCtx, a: &Term, b: &Term) {
        let a = a.zonk(ctx);
        let b = b.zonk(ctx);
        // Injective *unary* constructors transfer disequality to the
        // argument: #a ≠ #b ⟺ a ≠ b.
        if let (Term::App(f, xs), Term::App(g, ys)) = (&a, &b) {
            if f == g && f.is_value_ctor() && xs.len() == 1 {
                self.assert_ne(ctx, &xs[0], &ys[0]);
                return;
            }
            if f != g && f.is_value_ctor() && g.is_value_ctor() {
                return; // trivially true
            }
        }
        if a.sort(ctx).is_numeric() {
            self.derived.push(PureProp::Ne(a, b));
            return;
        }
        let na = self.node(&a);
        let nb = self.node(&b);
        self.diseqs.push((na, nb));
    }

    /// Numeric facts exported for the linear solver.
    #[must_use]
    pub fn derived_numeric(&self) -> &[PureProp] {
        &self.derived
    }

    /// Saturates the closure and reports consistency.
    pub fn saturate(&mut self, ctx: &VarCtx) -> ClosureResult {
        if self.contradiction {
            return ClosureResult::Contradiction;
        }
        // Fixpoint: congruence (same head, equal args ⇒ equal) and
        // injectivity (equal apps of injective ctor ⇒ equal args).
        loop {
            let mut changed = false;
            let n = self.nodes.len();
            for i in 0..n {
                for j in (i + 1)..n {
                    let (ti, tj) = (self.nodes[i].clone(), self.nodes[j].clone());
                    let (ri, rj) = (self.find(i), self.find(j));
                    if let (Term::App(f, xs), Term::App(g, ys)) = (&ti, &tj) {
                        if f == g && xs.len() == ys.len() {
                            let args_equal = xs.iter().zip(ys.iter()).all(|(x, y)| {
                                let (nx, ny) = (self.node(x), self.node(y));
                                self.find(nx) == self.find(ny)
                            });
                            if args_equal && ri != rj {
                                self.union(i, j);
                                changed = true;
                            }
                            // Injectivity: apps equal ⇒ args equal.
                            let (ri2, rj2) = (self.find(i), self.find(j));
                            if ri2 == rj2 && f.is_value_ctor() {
                                for (x, y) in xs.iter().zip(ys.iter()) {
                                    if x.sort(ctx).is_numeric() {
                                        self.derived.push(PureProp::Eq(x.clone(), y.clone()));
                                    } else {
                                        let (nx, ny) = (self.node(x), self.node(y));
                                        if self.find(nx) != self.find(ny) {
                                            self.union(nx, ny);
                                            changed = true;
                                        }
                                    }
                                }
                            }
                        }
                        // Disjointness of value constructor heads.
                        if f != g
                            && f.is_value_ctor()
                            && g.is_value_ctor()
                            && self.find(i) == self.find(j)
                        {
                            return ClosureResult::Contradiction;
                        }
                    }
                    // Literal conflicts.
                    if self.find(i) == self.find(j) && literal_conflict(&ti, &tj) {
                        return ClosureResult::Contradiction;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Disequality violations.
        for &(a, b) in &self.diseqs.clone() {
            if self.find(a) == self.find(b) {
                return ClosureResult::Contradiction;
            }
        }
        // Boolean two-valuedness: a bool-sorted class distinct from both
        // `true` and `false` is impossible.
        let n = self.nodes.len();
        for i in 0..n {
            if self.nodes[i].sort(ctx) != Sort::Bool {
                continue;
            }
            let mut ne_true = false;
            let mut ne_false = false;
            let ri = self.find(i);
            for &(a, b) in &self.diseqs.clone() {
                let (ra, rb) = (self.find(a), self.find(b));
                let other = if ra == ri {
                    Some(rb)
                } else if rb == ri {
                    Some(ra)
                } else {
                    None
                };
                if let Some(o) = other {
                    let tt = self.node(&Term::Bool(true));
                    let tf = self.node(&Term::Bool(false));
                    if self.find(tt) == o {
                        ne_true = true;
                    }
                    if self.find(tf) == o {
                        ne_false = true;
                    }
                }
            }
            if ne_true && ne_false {
                return ClosureResult::Contradiction;
            }
        }
        ClosureResult::Consistent
    }

    /// After saturation: are the two terms in the same class?
    pub fn equal(&mut self, ctx: &VarCtx, a: &Term, b: &Term) -> bool {
        let a = a.zonk(ctx);
        let b = b.zonk(ctx);
        if a == b {
            return true;
        }
        let na = self.node(&a);
        let nb = self.node(&b);
        self.find(na) == self.find(nb)
    }
}

fn literal_conflict(a: &Term, b: &Term) -> bool {
    match (a, b) {
        (Term::Bool(x), Term::Bool(y)) => x != y,
        (Term::Loc(x), Term::Loc(y)) => x != y,
        (Term::Gname(x), Term::Gname(y)) => x != y,
        (Term::Int(x), Term::Int(y)) => x != y,
        (Term::QpLit(x), Term::QpLit(y)) => x != y,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitivity() {
        let mut ctx = VarCtx::new();
        let x = ctx.fresh_var(Sort::Val, "x");
        let y = ctx.fresh_var(Sort::Val, "y");
        let z = ctx.fresh_var(Sort::Val, "z");
        let mut cc = Congruence::new();
        cc.assert_eq(&ctx, &Term::var(x), &Term::var(y));
        cc.assert_eq(&ctx, &Term::var(y), &Term::var(z));
        assert_eq!(cc.saturate(&ctx), ClosureResult::Consistent);
        assert!(cc.equal(&ctx, &Term::var(x), &Term::var(z)));
    }

    #[test]
    fn constructor_disjointness() {
        let mut ctx = VarCtx::new();
        let x = ctx.fresh_var(Sort::Val, "x");
        let mut cc = Congruence::new();
        cc.assert_eq(&ctx, &Term::var(x), &Term::v_bool_lit(true));
        cc.assert_eq(&ctx, &Term::var(x), &Term::v_unit());
        assert_eq!(cc.saturate(&ctx), ClosureResult::Contradiction);
    }

    #[test]
    fn injectivity_exports_numeric() {
        let mut ctx = VarCtx::new();
        let a = ctx.fresh_var(Sort::Int, "a");
        let mut cc = Congruence::new();
        cc.assert_eq(&ctx, &Term::v_int(Term::var(a)), &Term::v_int_lit(7));
        assert_eq!(cc.saturate(&ctx), ClosureResult::Consistent);
        assert_eq!(
            cc.derived_numeric(),
            &[PureProp::Eq(Term::var(a), Term::int(7))]
        );
    }

    #[test]
    fn diseq_violation() {
        let mut ctx = VarCtx::new();
        let x = ctx.fresh_var(Sort::Val, "x");
        let y = ctx.fresh_var(Sort::Val, "y");
        let mut cc = Congruence::new();
        cc.assert_ne(&ctx, &Term::var(x), &Term::var(y));
        cc.assert_eq(&ctx, &Term::var(x), &Term::var(y));
        assert_eq!(cc.saturate(&ctx), ClosureResult::Contradiction);
    }

    #[test]
    fn bool_two_valuedness() {
        let mut ctx = VarCtx::new();
        let b = ctx.fresh_var(Sort::Bool, "b");
        let mut cc = Congruence::new();
        cc.assert_ne(&ctx, &Term::var(b), &Term::bool(true));
        cc.assert_ne(&ctx, &Term::var(b), &Term::bool(false));
        assert_eq!(cc.saturate(&ctx), ClosureResult::Contradiction);
    }

    #[test]
    fn bool_literal_conflict() {
        let mut ctx = VarCtx::new();
        let b = ctx.fresh_var(Sort::Bool, "b");
        let mut cc = Congruence::new();
        cc.assert_eq(&ctx, &Term::var(b), &Term::bool(true));
        cc.assert_eq(&ctx, &Term::var(b), &Term::bool(false));
        assert_eq!(cc.saturate(&ctx), ClosureResult::Contradiction);
    }

    #[test]
    fn congruence_rule_fires() {
        let mut ctx = VarCtx::new();
        let x = ctx.fresh_var(Sort::Val, "x");
        let y = ctx.fresh_var(Sort::Val, "y");
        let mut cc = Congruence::new();
        cc.assert_eq(&ctx, &Term::var(x), &Term::var(y));
        // InjL x and InjL y become equal by congruence.
        let a = Term::v_inj_l(Term::var(x));
        let b = Term::v_inj_l(Term::var(y));
        cc.node(&a);
        cc.node(&b);
        assert_eq!(cc.saturate(&ctx), ClosureResult::Consistent);
        assert!(cc.equal(&ctx, &a, &b));
    }

    #[test]
    fn unary_ctor_ne_decomposes() {
        let mut ctx = VarCtx::new();
        let a = ctx.fresh_var(Sort::Int, "a");
        let mut cc = Congruence::new();
        cc.assert_ne(&ctx, &Term::v_int(Term::var(a)), &Term::v_int_lit(3));
        assert_eq!(
            cc.derived_numeric(),
            &[PureProp::Ne(Term::var(a), Term::int(3))]
        );
    }
}
