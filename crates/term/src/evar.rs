//! Variable and evar contexts with scope levels.
//!
//! The *scope level* machinery implements the delayed-instantiation
//! discipline of §3.2 of the Diaframe paper. Every universal variable and
//! every evar records the level at which it was created; the level increases
//! whenever the proof strategy introduces a universal variable (e.g. when an
//! invariant is opened and its body's existentials enter the context). An
//! evar of level `k` may only be solved by a term whose free variables all
//! have level `≤ k`: a variable introduced *after* the evar could not have
//! been chosen when the evar was created, so capturing it would be unsound
//! (see the failing `FAA` derivation in the paper).

use crate::sort::Sort;
use crate::term::Term;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide source of solution-generation stamps. Stamps are globally
/// unique, so `(TermId, generation)` memo keys (see [`crate::intern`])
/// cannot collide across contexts or across clones of one context.
static NEXT_GEN: AtomicU64 = AtomicU64::new(1);

fn fresh_gen() -> u64 {
    NEXT_GEN.fetch_add(1, Ordering::Relaxed)
}

/// A scope level. Level 0 is the outermost scope.
pub type Level = u32;

/// Identifier of a universal variable, unique within one [`VarCtx`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// The raw index of the variable.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds an id from a raw index (trace deserialization support).
    ///
    /// The id is only meaningful against the [`VarCtx`] it was recorded
    /// with; the proof checker re-validates every use, so a stale index
    /// can at worst make replay fail.
    #[must_use]
    pub fn from_index(index: usize) -> VarId {
        VarId(u32::try_from(index).expect("variable index out of range"))
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of an existential variable, unique within one [`VarCtx`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EVarId(pub(crate) u32);

impl EVarId {
    /// The raw index of the evar.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds an id from a raw index (trace deserialization support).
    ///
    /// See [`VarId::from_index`] for the safety story.
    #[must_use]
    pub fn from_index(index: usize) -> EVarId {
        EVarId(u32::try_from(index).expect("evar index out of range"))
    }
}

impl fmt::Display for EVarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?e{}", self.0)
    }
}

/// Metadata for a universal variable.
#[derive(Debug, Clone)]
pub struct VarInfo {
    /// The sort of the variable.
    pub sort: Sort,
    /// Scope level at which the variable was introduced.
    pub level: Level,
    /// A human-readable name hint for display.
    pub name: String,
}

/// Metadata for an existential variable.
#[derive(Debug, Clone)]
pub struct EVarInfo {
    /// The sort of the evar.
    pub sort: Sort,
    /// Scope level: the maximum level of variables the solution may mention.
    /// May be *lowered* by level pruning when the evar appears in the
    /// solution of a lower-level evar.
    pub level: Level,
    /// The solution, once unification determines one.
    pub solution: Option<Term>,
}

/// The arena of variables and evars for one verification, together with the
/// current scope level.
#[derive(Clone, Default)]
pub struct VarCtx {
    vars: Vec<VarInfo>,
    evars: Vec<EVarInfo>,
    level: Level,
    solves: u64,
    generation: u64,
    /// Count of in-place solution rewrites ([`VarCtx::map_solutions`]) —
    /// the one mutation [`VarCtx::rollback`] cannot undo. Used to decide
    /// whether a rollback restores the checkpoint's generation stamp.
    maps: u64,
    /// Content fingerprint of the recorded solution map: the XOR of one
    /// hash per `(evar, solution)` entry, maintained incrementally (XOR is
    /// self-inverse, so erasing a solution re-XORs the same value). See
    /// [`VarCtx::solution_fp`].
    sol_fp: u64,
}

/// The fingerprint contribution of one solution entry.
fn sol_entry_fp(e: EVarId, t: &Term) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    e.0.hash(&mut h);
    t.hash(&mut h);
    h.finish()
}

// `solves` and `generation` are deliberately excluded. `solves` counts
// speculative solve *events* (see [`VarCtx::solve_events`]), which vary
// with search effort (e.g. the hint index on/off) even when the resulting
// proof state is identical; `generation` is a cache-invalidation stamp
// ([`VarCtx::generation`]) whose raw value depends on global allocation
// order. Trace snapshots embed a `VarCtx` and are compared via `Debug`,
// so neither may leak into the rendering.
impl fmt::Debug for VarCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VarCtx")
            .field("vars", &self.vars)
            .field("evars", &self.evars)
            .field("level", &self.level)
            .finish()
    }
}

impl VarCtx {
    #[must_use]
    /// An empty context at level 0.
    pub fn new() -> VarCtx {
        VarCtx::default()
    }

    /// The current scope level.
    #[must_use]
    pub fn level(&self) -> Level {
        self.level
    }

    /// Enters a deeper scope (called when universal variables are about to be
    /// introduced, e.g. on invariant opening). Returns the new level.
    pub fn push_level(&mut self) -> Level {
        self.level += 1;
        self.level
    }

    /// Creates a fresh universal variable at the *current* level.
    pub fn fresh_var(&mut self, sort: Sort, name: &str) -> VarId {
        let id = VarId(u32::try_from(self.vars.len()).expect("too many variables"));
        self.vars.push(VarInfo {
            sort,
            level: self.level,
            name: name.to_owned(),
        });
        id
    }

    /// Creates a fresh universal variable at the *base* level (level 0).
    ///
    /// Used for allocation witnesses (fresh ghost names): a freshly
    /// allocated name depends on nothing in the context, so evars of any
    /// scope may be instantiated with it.
    pub fn fresh_var_base(&mut self, sort: Sort, name: &str) -> VarId {
        let id = VarId(u32::try_from(self.vars.len()).expect("too many variables"));
        self.vars.push(VarInfo {
            sort,
            level: 0,
            name: name.to_owned(),
        });
        id
    }

    /// Creates a fresh evar at the *current* level.
    pub fn fresh_evar(&mut self, sort: Sort) -> EVarId {
        let id = EVarId(u32::try_from(self.evars.len()).expect("too many evars"));
        self.evars.push(EVarInfo {
            sort,
            level: self.level,
            solution: None,
        });
        id
    }

    /// Appends a variable with explicit metadata, bypassing the
    /// current-level discipline (trace deserialization support: recorded
    /// contexts interleave levels in ways [`fresh_var`]/[`fresh_var_base`]
    /// cannot replay). The checker re-validates deserialized traces, so
    /// malformed input can at worst make replay fail.
    ///
    /// [`fresh_var`]: VarCtx::fresh_var
    /// [`fresh_var_base`]: VarCtx::fresh_var_base
    pub fn push_raw_var(&mut self, sort: Sort, level: Level, name: &str) -> VarId {
        let id = VarId(u32::try_from(self.vars.len()).expect("too many variables"));
        self.vars.push(VarInfo {
            sort,
            level,
            name: name.to_owned(),
        });
        id
    }

    /// Appends an evar with explicit metadata (trace deserialization
    /// support, see [`VarCtx::push_raw_var`]).
    pub fn push_raw_evar(&mut self, sort: Sort, level: Level, solution: Option<Term>) -> EVarId {
        let id = EVarId(u32::try_from(self.evars.len()).expect("too many evars"));
        if let Some(t) = &solution {
            self.sol_fp ^= sol_entry_fp(id, t);
        }
        self.evars.push(EVarInfo {
            sort,
            level,
            solution,
        });
        self.generation = fresh_gen();
        id
    }

    /// Sets the current scope level directly (trace deserialization
    /// support; the search itself only ever calls [`VarCtx::push_level`]).
    pub fn set_level(&mut self, level: Level) {
        self.level = level;
    }

    #[must_use]
    /// The sort of a variable.
    pub fn var_sort(&self, v: VarId) -> Sort {
        self.vars[v.index()].sort
    }

    #[must_use]
    /// The scope level a variable was created at.
    pub fn var_level(&self, v: VarId) -> Level {
        self.vars[v.index()].level
    }

    #[must_use]
    /// The display name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.index()].name
    }

    #[must_use]
    /// The sort of an evar.
    pub fn evar_sort(&self, e: EVarId) -> Sort {
        self.evars[e.index()].sort
    }

    #[must_use]
    /// The scope level an evar was created at.
    pub fn evar_level(&self, e: EVarId) -> Level {
        self.evars[e.index()].level
    }

    /// The recorded solution of an evar, if any (not recursively resolved;
    /// use [`Term::zonk`]).
    #[must_use]
    pub fn evar_solution(&self, e: EVarId) -> Option<&Term> {
        self.evars[e.index()].solution.as_ref()
    }

    /// Whether the evar is still unsolved.
    #[must_use]
    pub fn evar_unsolved(&self, e: EVarId) -> bool {
        self.evars[e.index()].solution.is_none()
    }

    /// Number of variables allocated so far.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of evars allocated so far.
    #[must_use]
    pub fn num_evars(&self) -> usize {
        self.evars.len()
    }

    /// Records a solution for an evar **without** scope or occurs checking.
    ///
    /// This is the raw operation; [`crate::unify::unify`] performs the
    /// checked assignment. It is exposed for the proof checker, which
    /// re-validates assignments independently.
    ///
    /// # Panics
    ///
    /// Panics if the evar is already solved.
    pub fn solve_evar(&mut self, e: EVarId, t: Term) {
        let info = &mut self.evars[e.index()];
        assert!(info.solution.is_none(), "evar {e} solved twice");
        self.sol_fp ^= sol_entry_fp(e, &t);
        info.solution = Some(t);
        self.solves += 1;
        self.generation = fresh_gen();
    }

    /// The current solution generation: a stamp identifying the recorded
    /// evar-solution state. It changes whenever that state may have changed
    /// (solving, [`VarCtx::map_solutions`], raw evar pushes) and is
    /// *restored* by a rollback that provably re-creates the checkpointed
    /// state. Two reads returning the same stamp guarantee zonk/normalize
    /// results are interchangeable, so [`crate::intern`] keys its memo
    /// tables on it.
    ///
    /// Stamps are globally unique across all contexts (clones share a stamp
    /// only until either side mutates), unlike [`VarCtx::solve_events`],
    /// which is a per-context effort counter that does **not** change on
    /// rollback and therefore cannot key a cache soundly.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// A content fingerprint of the recorded solution map: two contexts
    /// with equal fingerprints hold the same `(evar, solution)` entries
    /// (up to 64-bit hash collision, the same risk class as every other
    /// memo key in [`crate::intern`]). Unlike [`VarCtx::generation`] —
    /// which stamps mutation *events*, so two probes that reach the same
    /// solution state through different solve/rollback histories get
    /// different stamps — the fingerprint depends only on the state
    /// itself: a speculative solve that is later re-done identically, or
    /// two branch clones converging on the same instantiation, produce
    /// the same fingerprint and therefore share every cache keyed on it
    /// (zonk memo, entailment verdicts, the e-graph's asserted base).
    #[must_use]
    pub fn solution_fp(&self) -> u64 {
        self.sol_fp
    }

    /// Monotonic count of evar solve *events* in this context's history,
    /// **including** speculative solutions later erased by [`rollback`]
    /// (the counter is never decremented, and clones inherit it). This is
    /// an instrumentation channel — telemetry reads deltas of it to
    /// attribute unification effort — and has no semantic content.
    ///
    /// [`rollback`]: VarCtx::rollback
    #[must_use]
    pub fn solve_events(&self) -> u64 {
        self.solves
    }

    /// Applies a function to every recorded evar solution (used when the
    /// proof engine substitutes a universal variable away: solutions may
    /// mention it too).
    pub fn map_solutions(&mut self, f: impl Fn(&Term) -> Term) {
        self.sol_fp = 0;
        for (i, info) in self.evars.iter_mut().enumerate() {
            if let Some(sol) = &info.solution {
                let sol = f(sol);
                self.sol_fp ^= sol_entry_fp(EVarId(i as u32), &sol);
                info.solution = Some(sol);
            }
        }
        self.maps += 1;
        self.generation = fresh_gen();
    }

    /// Lowers the level of an evar (level pruning). The level can only
    /// decrease; attempts to raise it are ignored.
    pub fn lower_evar_level(&mut self, e: EVarId, level: Level) {
        let info = &mut self.evars[e.index()];
        if level < info.level {
            info.level = level;
        }
    }

    /// Checks the §3.2 scope discipline: may an evar at `level` be solved by
    /// `t`? All free variables of `t` must have been introduced at or below
    /// that level. Evars inside `t` are acceptable at any level — they get
    /// *pruned* (lowered) to `level` by the caller.
    #[must_use]
    pub fn scope_check(&self, level: Level, t: &Term) -> bool {
        t.free_vars().iter().all(|v| self.var_level(*v) <= level)
    }

    /// A checkpoint for undoing speculative work (hint matching performs
    /// local backtracking).
    #[must_use]
    pub fn checkpoint(&self) -> VarCtxMark {
        VarCtxMark {
            num_vars: self.vars.len(),
            num_evars: self.evars.len(),
            level: self.level,
            solved: self
                .evars
                .iter()
                .enumerate()
                .filter(|(_, i)| i.solution.is_some())
                .map(|(i, _)| EVarId(i as u32))
                .collect(),
            levels: self.evars.iter().map(|i| i.level).collect(),
            generation: self.generation,
            maps: self.maps,
        }
    }

    /// Rolls back to a checkpoint: newly created vars/evars are dropped and
    /// solutions recorded since the mark are erased.
    ///
    /// When every mutation since the mark is one rollback can undo (solves,
    /// fresh entities, level changes — everything except
    /// [`VarCtx::map_solutions`], which rewrites solutions in place), the
    /// restored state is bitwise the checkpointed one, so the checkpoint's
    /// generation stamp is restored too. That is what lets the
    /// [`crate::intern`] memo tables stay warm across the speculative
    /// probe loops of hint matching, which checkpoint/rollback constantly.
    ///
    /// # Panics
    ///
    /// Panics if entities created before the mark were removed (cannot
    /// happen through the public API).
    pub fn rollback(&mut self, mark: &VarCtxMark) {
        assert!(self.vars.len() >= mark.num_vars);
        assert!(self.evars.len() >= mark.num_evars);
        self.vars.truncate(mark.num_vars);
        for (i, info) in self.evars.iter().enumerate().skip(mark.num_evars) {
            if let Some(sol) = &info.solution {
                self.sol_fp ^= sol_entry_fp(EVarId(i as u32), sol);
            }
        }
        self.evars.truncate(mark.num_evars);
        self.level = mark.level;
        let mut erased_fp = 0u64;
        for (i, info) in self.evars.iter_mut().enumerate() {
            let id = EVarId(i as u32);
            if info.solution.is_some() && !mark.solved.contains(&id) {
                erased_fp ^= sol_entry_fp(id, info.solution.as_ref().expect("checked"));
                info.solution = None;
            }
            info.level = mark.levels[i];
        }
        self.sol_fp ^= erased_fp;
        self.generation = if self.maps == mark.maps {
            mark.generation
        } else {
            fresh_gen()
        };
    }
}

/// An undo point produced by [`VarCtx::checkpoint`].
#[derive(Debug, Clone)]
pub struct VarCtxMark {
    num_vars: usize,
    num_evars: usize,
    level: Level,
    solved: Vec<EVarId>,
    levels: Vec<Level>,
    generation: u64,
    maps: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_vars_record_level() {
        let mut ctx = VarCtx::new();
        let a = ctx.fresh_var(Sort::Int, "a");
        ctx.push_level();
        let b = ctx.fresh_var(Sort::Int, "b");
        assert_eq!(ctx.var_level(a), 0);
        assert_eq!(ctx.var_level(b), 1);
        assert_eq!(ctx.var_name(b), "b");
    }

    #[test]
    fn scope_check_rejects_later_vars() {
        let mut ctx = VarCtx::new();
        let e = ctx.fresh_evar(Sort::Int);
        let lvl = ctx.evar_level(e);
        ctx.push_level();
        let z = ctx.fresh_var(Sort::Int, "z");
        // The paper's unsound FAA derivation: ?z1 must not unify with z.
        assert!(!ctx.scope_check(lvl, &Term::var(z)));
        assert!(ctx.scope_check(lvl, &Term::int(3)));
    }

    #[test]
    fn level_pruning_only_lowers() {
        let mut ctx = VarCtx::new();
        ctx.push_level();
        ctx.push_level();
        let e = ctx.fresh_evar(Sort::Int);
        assert_eq!(ctx.evar_level(e), 2);
        ctx.lower_evar_level(e, 1);
        assert_eq!(ctx.evar_level(e), 1);
        ctx.lower_evar_level(e, 3);
        assert_eq!(ctx.evar_level(e), 1);
    }

    #[test]
    fn rollback_undoes_solutions_and_freshness() {
        let mut ctx = VarCtx::new();
        let e = ctx.fresh_evar(Sort::Int);
        let mark = ctx.checkpoint();
        let f = ctx.fresh_evar(Sort::Int);
        ctx.solve_evar(e, Term::int(1));
        ctx.solve_evar(f, Term::int(2));
        ctx.push_level();
        ctx.rollback(&mark);
        assert_eq!(ctx.num_evars(), 1);
        assert!(ctx.evar_unsolved(e));
        assert_eq!(ctx.level(), 0);
    }

    #[test]
    fn solve_events_survive_rollback() {
        let mut ctx = VarCtx::new();
        let e = ctx.fresh_evar(Sort::Int);
        let mark = ctx.checkpoint();
        ctx.solve_evar(e, Term::int(1));
        assert_eq!(ctx.solve_events(), 1);
        ctx.rollback(&mark);
        // The solution is erased but the effort counter is monotonic.
        assert!(ctx.evar_unsolved(e));
        assert_eq!(ctx.solve_events(), 1);
        // ... and it stays out of the Debug rendering, which trace
        // equivalence tests compare byte-for-byte.
        assert!(!format!("{ctx:?}").contains("solves"));
    }

    /// Stamps must stay globally unique when contexts evolve on several
    /// threads at once: a speculative branch worker mutates a *clone* of
    /// the parent's `VarCtx` concurrently with the parent, and the
    /// `(TermId, generation)` memo keys in `crate::intern` are only
    /// sound if no two mutation events — on any thread — ever share a
    /// stamp.
    #[test]
    fn generation_stamps_unique_across_threads() {
        use std::collections::HashSet;
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut ctx = VarCtx::new();
                    let mut seen = Vec::with_capacity(64);
                    for i in 0..64 {
                        let e = ctx.fresh_evar(Sort::Int);
                        ctx.solve_evar(e, Term::int(i128::from(t) * 100 + i));
                        seen.push(ctx.generation());
                    }
                    seen
                })
            })
            .collect();
        let mut all = HashSet::new();
        for h in handles {
            for g in h.join().expect("stamping thread panicked") {
                assert!(all.insert(g), "generation stamp {g} issued twice");
            }
        }
        assert_eq!(all.len(), 8 * 64);
    }

    #[test]
    fn raw_reconstruction_round_trips() {
        let mut ctx = VarCtx::new();
        ctx.push_level();
        let a = ctx.fresh_var(Sort::Int, "a");
        let _ = ctx.fresh_var_base(Sort::Loc, "l");
        let e = ctx.fresh_evar(Sort::Int);
        ctx.solve_evar(e, Term::var(a));

        let mut rebuilt = VarCtx::new();
        for i in 0..ctx.num_vars() {
            let v = VarId::from_index(i);
            rebuilt.push_raw_var(ctx.var_sort(v), ctx.var_level(v), ctx.var_name(v));
        }
        for i in 0..ctx.num_evars() {
            let ev = EVarId::from_index(i);
            rebuilt.push_raw_evar(
                ctx.evar_sort(ev),
                ctx.evar_level(ev),
                ctx.evar_solution(ev).cloned(),
            );
        }
        rebuilt.set_level(ctx.level());
        assert_eq!(format!("{ctx:?}"), format!("{rebuilt:?}"));
    }

    #[test]
    #[should_panic(expected = "solved twice")]
    fn double_solve_panics() {
        let mut ctx = VarCtx::new();
        let e = ctx.fresh_evar(Sort::Int);
        ctx.solve_evar(e, Term::int(1));
        ctx.solve_evar(e, Term::int(2));
    }
}
