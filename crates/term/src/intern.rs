//! Hash-consed term arena with solution-fingerprint-keyed zonk/normalize
//! memo tables.
//!
//! The proof search spends its time matching hypotheses against hint
//! patterns, unifying, and discharging pure obligations, and every one of
//! those operations zonks and normalises the same terms over and over.
//! This module gives each structurally distinct [`Term`] a small integer
//! identity ([`TermId`]) inside a thread-local arena, so that
//!
//! * re-interning a term whose argument list is already canonical is a
//!   single pointer-keyed hash lookup (the arena holds a strong `Arc` to
//!   every canonical argument list, so data pointers are never reused);
//! * zonk results are memoized per `(TermId, solution fingerprint)`,
//!   where the fingerprint is [`VarCtx::solution_fp`] — a content hash of
//!   the recorded evar-solution map, so two states that hold the same
//!   solutions share entries even when they were reached through
//!   different solve/rollback histories (the `solve_events` effort
//!   counter never decreases and cannot key a cache soundly; the
//!   event-stamping [`VarCtx::generation`] is sound but splits
//!   identical states reached twice);
//! * linear-arithmetic normal forms are memoized per zonked `TermId`
//!   (normalising a fully-zonked term is purely structural, so no
//!   generation key is needed);
//! * every arena entry records the set of evars it mentions and whether a
//!   projection redex occurs, so zonking a term none of whose evars are
//!   solved — the steady-state majority inside probe loops — is decided
//!   without walking or allocating anything (see `needs_zonk`, which
//!   applies the same test to un-interned terms);
//! * pure-entailment verdicts are memoized per (solver fingerprint, goal,
//!   solution fingerprint), which is what turns the repeated
//!   side-condition checks of the hint-matching probe loops into hash
//!   lookups.
//!
//! The arena is scoped: [`scope`] installs a fresh interner for the
//! current thread and restores the previous one on drop. The verification
//! entry points install a scope per specification (on the big-stack
//! session thread, so the whole search and the replay checker run inside
//! one), which keeps hit/miss counters deterministic per example
//! regardless of how worker threads are shared, and bounds memory by the
//! size of one search. Without an active scope every operation falls back
//! to the structural implementations, byte-for-byte identical — that is
//! also the escape hatch: `DIAFRAME_INTERN=off` (or `0`) disables scope
//! installation process-wide.

use crate::evar::VarCtx;
use crate::normalize::LinComb;
use crate::term::{Sym, Term};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// Identity of an interned term within the current thread's arena.
///
/// Equality of ids coincides with structural equality of the terms they
/// denote (within one scope), and the id is `Copy`, so passing one around
/// is free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(u32);

impl TermId {
    /// The raw arena index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Shallow description of an arena entry: how the canonical term was
/// built, in terms of other ids.
enum Node {
    /// A non-application term; the canonical [`Term`] is its own
    /// description.
    Leaf,
    /// An application of `sym` to the canonical terms named by `kids`.
    App { sym: Sym, kids: Box<[TermId]> },
}

struct Entry {
    /// The canonical term. For applications the argument `Arc` is owned
    /// here, which is what keeps the pointer-keyed lookup sound.
    term: Term,
    node: Node,
    /// Every evar occurring in the term (transitively, deduplicated).
    /// Zonk can only change the term by resolving one of these, so when
    /// all of them are unsolved — the common case inside probe loops —
    /// zonk is the identity without walking anything.
    evars: Box<[crate::evar::EVarId]>,
    /// Whether a `Fst`/`Snd`-on-`VPair` redex occurs anywhere; zonk
    /// reduces those even with no evars in sight.
    needs_reduce: bool,
}

/// Hit/miss counters for the arena and both memo tables, reported to
/// telemetry by the verification entry points at scope end.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct InternStats {
    /// Intern requests answered from the arena (pointer or map hit).
    pub interner_hits: u64,
    /// Intern requests that allocated a new arena entry.
    pub interner_misses: u64,
    /// Zonk requests answered from the `(TermId, solution fingerprint)`
    /// memo table (including constant-time inert answers).
    pub zonk_cache_hits: u64,
    /// Normalisation requests answered from the `TermId → LinComb` table.
    pub normalize_cache_hits: u64,
}

#[derive(Default)]
struct Interner {
    /// Globally-unique stamp for this scope, so state keyed on this
    /// scope's [`TermId`]s (the incremental e-graph) can detect that it
    /// outlived the scope it was built in and must not trust its ids.
    token: u64,
    entries: Vec<Entry>,
    /// Structural map for non-application terms (all small).
    leaves: HashMap<Term, TermId>,
    /// Shallow structural map for applications: canonical children make
    /// interning O(arity) per node instead of O(tree).
    apps: HashMap<(Sym, Box<[TermId]>), TermId>,
    /// Canonical argument-list data pointer → id of an application with
    /// that exact argument list. Only canonical lists are indexed, and
    /// each is owned by its [`Entry`] for the life of the scope, so a hit
    /// proves the argument list is bitwise the one interned earlier (the
    /// head symbol is re-checked on lookup: a caller may legitimately
    /// reuse one argument `Arc` under another symbol).
    by_ptr: HashMap<usize, TermId>,
    zonk_cache: HashMap<(TermId, u64), TermId>,
    norm_cache: HashMap<TermId, LinComb>,
    /// Memoized pure-entailment verdicts, keyed by (solver facts
    /// fingerprint, goal hash, solution fingerprint) — see
    /// [`crate::solver::PureSolver`].
    pure_cache: HashMap<(u64, u64, u64), bool>,
    /// Pre-built refutation states over a solver's facts, keyed by
    /// (solver facts fingerprint, solution fingerprint). `None` marks a
    /// fact set the fast path cannot handle (disjunctive facts), so the
    /// build is not retried.
    pure_base: HashMap<(u64, u64), Option<crate::solver::PureBase>>,
    /// Memoized e-graph entailment verdicts, keyed by (e-graph version,
    /// goal hash, solution fingerprint) — the incremental analogue of
    /// `pure_cache`; see [`crate::solver::egraph::EGraph`].
    egraph_cache: HashMap<(u64, u64, u64), bool>,
    /// Hash-consed e-graph version stamps: `(parent version, literal
    /// hash) → version`. Two e-graphs that assert the same literal
    /// sequence — a branch clone and its original, or an `Implies` goal
    /// re-deriving the same hypothesis — reach the same version and share
    /// memo entries, exactly as the fingerprint chaining of
    /// [`crate::solver::PureSolver`] does.
    egraph_versions: HashMap<(u64, u64), u64>,
    /// Next unallocated e-graph version (0 is the empty e-graph).
    next_version: u64,
    /// Aggregated e-graph work counters for this scope; reported to
    /// telemetry alongside [`InternStats`].
    egraph_stats: crate::solver::egraph::EGraphStats,
    stats: InternStats,
}

impl Interner {
    fn fresh() -> Interner {
        use std::sync::atomic::AtomicU64;
        static NEXT_SCOPE_TOKEN: AtomicU64 = AtomicU64::new(1);
        Interner {
            token: NEXT_SCOPE_TOKEN.fetch_add(1, Ordering::Relaxed),
            next_version: 1,
            ..Interner::default()
        }
    }

    fn intern(&mut self, t: &Term) -> TermId {
        match t {
            Term::App(sym, args) => {
                if !args.is_empty() {
                    if let Some(&id) = self.by_ptr.get(&(args.as_ptr() as usize)) {
                        if let Node::App { sym: s, kids } = &self.entries[id.index()].node {
                            if s == sym {
                                self.stats.interner_hits += 1;
                                return id;
                            }
                            // Same canonical argument list under a
                            // different head: the children ids are known,
                            // skip straight to the shallow map.
                            let kids = kids.clone();
                            return self.intern_app(*sym, kids);
                        }
                    }
                }
                let kids: Box<[TermId]> = args.iter().map(|a| self.intern(a)).collect();
                self.intern_app(*sym, kids)
            }
            _ => {
                if let Some(&id) = self.leaves.get(t) {
                    self.stats.interner_hits += 1;
                    return id;
                }
                self.stats.interner_misses += 1;
                let evars: Box<[crate::evar::EVarId]> = match t {
                    Term::EVar(e) => Box::new([*e]),
                    _ => Box::new([]),
                };
                let id = self.push(Entry {
                    term: t.clone(),
                    node: Node::Leaf,
                    evars,
                    needs_reduce: false,
                });
                self.leaves.insert(t.clone(), id);
                id
            }
        }
    }

    fn intern_app(&mut self, sym: Sym, kids: Box<[TermId]>) -> TermId {
        let key = (sym, kids);
        if let Some(&id) = self.apps.get(&key) {
            self.stats.interner_hits += 1;
            return id;
        }
        self.stats.interner_misses += 1;
        let (sym, kids) = key;
        let args: Arc<[Term]> = kids
            .iter()
            .map(|k| self.entries[k.index()].term.clone())
            .collect();
        let reducible_projection = matches!(sym, Sym::Fst | Sym::Snd)
            && kids.first().is_some_and(|k| {
                matches!(&self.entries[k.index()].term, Term::App(Sym::VPair, _))
            });
        let needs_reduce = reducible_projection
            || kids.iter().any(|k| self.entries[k.index()].needs_reduce);
        let mut evars: Vec<crate::evar::EVarId> = Vec::new();
        for k in &kids {
            for e in self.entries[k.index()].evars.iter() {
                if !evars.contains(e) {
                    evars.push(*e);
                }
            }
        }
        let ptr = (!args.is_empty()).then_some(args.as_ptr() as usize);
        let id = self.push(Entry {
            term: Term::App(sym, args),
            node: Node::App {
                sym,
                kids: kids.clone(),
            },
            evars: evars.into(),
            needs_reduce,
        });
        self.apps.insert((sym, kids), id);
        if let Some(ptr) = ptr {
            self.by_ptr.insert(ptr, id);
        }
        id
    }

    fn push(&mut self, entry: Entry) -> TermId {
        let id = TermId(u32::try_from(self.entries.len()).expect("term arena overflow"));
        self.entries.push(entry);
        id
    }

    /// Memoized zonk on ids, keyed under the caller's solution
    /// fingerprint. Mirrors [`Term::zonk_structural`] exactly: solved
    /// evars are chased recursively and `Fst`/`Snd` applied to a `VPair`
    /// reduce to the corresponding (already zonked) component.
    fn zonk_id(&mut self, ctx: &VarCtx, fp: u64, id: TermId) -> TermId {
        {
            let entry = &self.entries[id.index()];
            // Identity fast paths: no redex and either no evars at all,
            // or none of the mentioned evars solved yet (the common case
            // inside probe loops, where speculation keeps rolling back).
            if !entry.needs_reduce
                && entry
                    .evars
                    .iter()
                    .all(|e| e.index() >= ctx.num_evars() || ctx.evar_unsolved(*e))
            {
                self.stats.zonk_cache_hits += 1;
                return id;
            }
        }
        if let Some(&z) = self.zonk_cache.get(&(id, fp)) {
            self.stats.zonk_cache_hits += 1;
            return z;
        }
        let out = match &self.entries[id.index()].node {
            Node::Leaf => {
                // The only non-inert leaf is an evar.
                let Term::EVar(e) = &self.entries[id.index()].term else {
                    unreachable!("non-inert leaf is not an evar")
                };
                match ctx.evar_solution(*e) {
                    Some(sol) => {
                        let sol = sol.clone();
                        let sid = self.intern(&sol);
                        self.zonk_id(ctx, fp, sid)
                    }
                    None => id,
                }
            }
            Node::App { sym, kids } => {
                let (sym, kids) = (*sym, kids.clone());
                let zkids: Box<[TermId]> =
                    kids.iter().map(|k| self.zonk_id(ctx, fp, *k)).collect();
                let reduced = match (sym, zkids.first()) {
                    (Sym::Fst | Sym::Snd, Some(p)) => match &self.entries[p.index()].node {
                        Node::App {
                            sym: Sym::VPair,
                            kids: ps,
                        } => Some(ps[usize::from(matches!(sym, Sym::Snd))]),
                        _ => None,
                    },
                    _ => None,
                };
                match reduced {
                    Some(r) => r,
                    None => self.intern_app(sym, zkids),
                }
            }
        };
        self.zonk_cache.insert((id, fp), out);
        out
    }
}

thread_local! {
    static INTERNER: RefCell<Option<Interner>> = const { RefCell::new(None) };
}

/// Process-wide test/bench override; see [`force_disable`].
static FORCE_OFF: AtomicBool = AtomicBool::new(false);

fn env_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        std::env::var("DIAFRAME_INTERN").map_or(true, |v| v != "off" && v != "0")
    })
}

/// Disables (or re-enables) scope installation process-wide, overriding
/// the `DIAFRAME_INTERN` environment gate. Test and benchmark support:
/// lets one process compare interned and structural runs. Scopes already
/// installed are unaffected.
pub fn force_disable(off: bool) {
    FORCE_OFF.store(off, Ordering::SeqCst);
}

/// Whether interner scopes install at all under the current process
/// configuration (the `DIAFRAME_INTERN` environment gate combined with
/// any [`force_disable`] override). This is a *configuration* probe —
/// use [`is_active`] to ask whether the current thread has a live scope.
/// The engine fingerprint folds this in, so proof-store entries recorded
/// under one interner setting never replay under the other.
#[must_use]
pub fn enabled() -> bool {
    env_enabled() && !FORCE_OFF.load(Ordering::Relaxed)
}

/// Whether an interner scope is active on this thread.
#[must_use]
pub fn is_active() -> bool {
    INTERNER.with(|slot| slot.borrow().is_some())
}

fn with_active<R>(f: impl FnOnce(&mut Interner) -> R) -> Option<R> {
    INTERNER.with(|slot| slot.borrow_mut().as_mut().map(f))
}

/// An installed interner scope; restores the previous thread state (an
/// outer scope, or none) on drop.
pub struct InternScope {
    /// `Some(prev)` when a fresh interner was installed over `prev`;
    /// `None` when interning is disabled and this scope is a no-op.
    saved: Option<Option<Interner>>,
}

impl Drop for InternScope {
    fn drop(&mut self) {
        if let Some(prev) = self.saved.take() {
            INTERNER.with(|slot| *slot.borrow_mut() = prev);
        }
    }
}

/// Installs a fresh interner for the current thread (unless disabled via
/// `DIAFRAME_INTERN=off` or [`force_disable`]). The verification entry
/// points call this once per specification.
#[must_use]
pub fn scope() -> InternScope {
    if !env_enabled() || FORCE_OFF.load(Ordering::Relaxed) {
        return InternScope { saved: None };
    }
    let prev = INTERNER.with(|slot| slot.borrow_mut().replace(Interner::fresh()));
    InternScope { saved: Some(prev) }
}

/// Snapshot of the current scope's counters (zeroes when no scope is
/// active).
#[must_use]
pub fn stats() -> InternStats {
    with_active(|int| int.stats).unwrap_or_default()
}

/// Interns `t`, returning its id, when a scope is active.
#[must_use]
pub fn term_id(t: &Term) -> Option<TermId> {
    with_active(|int| int.intern(t))
}

/// The canonical term for an id interned earlier in this scope.
#[must_use]
pub fn resolve(id: TermId) -> Option<Term> {
    with_active(|int| int.entries.get(id.index()).map(|e| e.term.clone())).flatten()
}

/// The canonical (maximally shared) copy of `t`: structurally identical,
/// but with every argument list owned by the arena, so later interning,
/// equality, and zonking of it short-circuit on pointer identity. Without
/// an active scope this is a plain clone.
#[must_use]
pub fn canonical(t: &Term) -> Term {
    with_active(|int| {
        let id = int.intern(t);
        int.entries[id.index()].term.clone()
    })
    .unwrap_or_else(|| t.clone())
}

/// Whether zonk would change `t` at all: some mentioned evar is solved,
/// or a `Fst`/`Snd`-on-`VPair` redex occurs. A read-only scan — far
/// cheaper than the rebuilding walk it guards, and most zonk calls in
/// the search happen while every relevant evar is still unsolved.
pub(crate) fn needs_zonk(ctx: &VarCtx, t: &Term) -> bool {
    match t {
        Term::EVar(e) => !ctx.evar_unsolved(*e),
        Term::App(sym, args) => {
            if matches!(sym, Sym::Fst | Sym::Snd)
                && matches!(&args[..], [Term::App(Sym::VPair, _)])
            {
                return true;
            }
            args.iter().any(|a| needs_zonk(ctx, a))
        }
        _ => false,
    }
}

/// Memoized zonk: the front for [`Term::zonk`]. Identical results to
/// [`Term::zonk_structural`], with a constant-time path for non-evar
/// leaves, an allocation-free identity scan for terms zonk would not
/// change (the steady state inside probe loops), and the arena's memo
/// tables for terms with real rewriting to do.
#[must_use]
pub fn zonk(ctx: &VarCtx, t: &Term) -> Term {
    match t {
        Term::Var(_)
        | Term::Int(_)
        | Term::Bool(_)
        | Term::QpLit(_)
        | Term::Loc(_)
        | Term::Gname(_) => return t.clone(),
        Term::EVar(e) if ctx.evar_unsolved(*e) => return t.clone(),
        _ => {}
    }
    if !needs_zonk(ctx, t) {
        return t.clone();
    }
    with_active(|int| {
        let id = int.intern(t);
        let z = int.zonk_id(ctx, ctx.solution_fp(), id);
        int.entries[z.index()].term.clone()
    })
    .unwrap_or_else(|| t.zonk_structural(ctx))
}

/// Looks up a memoized pure-entailment verdict (see
/// [`crate::solver::PureSolver`]); `None` when no scope is active or the
/// query has not been decided under this key yet.
#[must_use]
pub(crate) fn pure_cache_get(key: &(u64, u64, u64)) -> Option<bool> {
    with_active(|int| int.pure_cache.get(key).copied()).flatten()
}

/// Records a pure-entailment verdict (no-op without an active scope).
pub(crate) fn pure_cache_put(key: (u64, u64, u64), verdict: bool) {
    let _ = with_active(|int| int.pure_cache.insert(key, verdict));
}

/// Looks up the cached facts-side refutation state for a solver
/// fingerprint + generation. Outer `None`: not cached (or no scope);
/// inner `None`: cached as "not eligible" (disjunctive facts). The state
/// is cloned out so the caller can extend it without holding the scope
/// borrow (extending re-enters the interner through zonk/normalize).
#[must_use]
pub(crate) fn pure_base_get(key: &(u64, u64)) -> Option<Option<crate::solver::PureBase>> {
    with_active(|int| int.pure_base.get(key).cloned()).flatten()
}

/// Records the facts-side refutation state (no-op without an active
/// scope).
pub(crate) fn pure_base_put(key: (u64, u64), base: Option<crate::solver::PureBase>) {
    let _ = with_active(|int| int.pure_base.insert(key, base));
}

/// The globally-unique token of the current scope's interner, or `None`
/// when no scope is active. E-graphs record it at construction and refuse
/// to serve queries under a different scope (their interned ids and
/// version stamps would be meaningless there).
#[must_use]
pub fn scope_token() -> Option<u64> {
    with_active(|int| int.token)
}

/// Looks up a memoized e-graph entailment verdict; `None` when no scope
/// is active or the query has not been decided under this key yet.
#[must_use]
pub(crate) fn egraph_cache_get(key: &(u64, u64, u64)) -> Option<bool> {
    with_active(|int| int.egraph_cache.get(key).copied()).flatten()
}

/// Records an e-graph entailment verdict (no-op without an active scope).
pub(crate) fn egraph_cache_put(key: (u64, u64, u64), verdict: bool) {
    let _ = with_active(|int| int.egraph_cache.insert(key, verdict));
}

/// The hash-consed e-graph version reached by asserting the literal with
/// hash `lit_hash` on top of version `parent`; allocated on first use.
/// `None` when no scope is active.
#[must_use]
pub(crate) fn egraph_version(parent: u64, lit_hash: u64) -> Option<u64> {
    with_active(|int| {
        let key = (parent, lit_hash);
        if let Some(&v) = int.egraph_versions.get(&key) {
            return v;
        }
        let v = int.next_version;
        int.next_version += 1;
        int.egraph_versions.insert(key, v);
        v
    })
}

/// Snapshot of the current scope's e-graph counters (zeroes when no scope
/// is active).
#[must_use]
pub fn egraph_stats() -> crate::solver::egraph::EGraphStats {
    with_active(|int| int.egraph_stats).unwrap_or_default()
}

/// Applies `f` to the current scope's e-graph counters (no-op without an
/// active scope).
pub(crate) fn egraph_stats_mut(f: impl FnOnce(&mut crate::solver::egraph::EGraphStats)) {
    let _ = with_active(|int| f(&mut int.egraph_stats));
}

/// Memoized linear-arithmetic normalisation, keyed by the id of the
/// zonked term (normalising a fully-zonked term is purely structural).
/// `None` when no scope is active — the caller falls back to the
/// structural path.
#[must_use]
pub fn normalize_memo(ctx: &VarCtx, t: &Term) -> Option<LinComb> {
    with_active(|int| {
        let id = int.intern(t);
        let z = int.zonk_id(ctx, ctx.solution_fp(), id);
        if let Some(lc) = int.norm_cache.get(&z) {
            int.stats.normalize_cache_hits += 1;
            return lc.clone();
        }
        let zonked = int.entries[z.index()].term.clone();
        let lc = crate::normalize::normalize_resolved(ctx, &zonked);
        int.norm_cache.insert(z, lc.clone());
        lc
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::Sort;

    #[test]
    fn ids_coincide_with_structural_equality() {
        let _scope = scope();
        let a = Term::add(Term::int(1), Term::int(2));
        let b = Term::add(Term::int(1), Term::int(2));
        let c = Term::add(Term::int(2), Term::int(1));
        assert_eq!(term_id(&a), term_id(&b));
        assert_ne!(term_id(&a), term_id(&c));
        let id = term_id(&a).unwrap();
        assert_eq!(resolve(id).unwrap(), a);
    }

    #[test]
    fn canonical_shares_storage() {
        let _scope = scope();
        let a = canonical(&Term::add(Term::int(1), Term::int(2)));
        let b = canonical(&Term::add(Term::int(1), Term::int(2)));
        let (Term::App(_, xs), Term::App(_, ys)) = (&a, &b) else {
            panic!("not apps")
        };
        assert!(Arc::ptr_eq(xs, ys));
    }

    #[test]
    fn memoized_zonk_matches_structural() {
        let _scope = scope();
        let mut ctx = VarCtx::new();
        let e = ctx.fresh_evar(Sort::Int);
        let t = Term::add(Term::evar(e), Term::int(1));
        assert_eq!(t.zonk(&ctx), t.zonk_structural(&ctx));
        ctx.solve_evar(e, Term::int(4));
        assert_eq!(t.zonk(&ctx), t.zonk_structural(&ctx));
        // Cached: same generation, same answer.
        assert_eq!(t.zonk(&ctx), Term::add(Term::int(4), Term::int(1)));
        assert!(stats().zonk_cache_hits > 0);
    }

    #[test]
    fn zonk_cache_invalidated_by_rollback() {
        let _scope = scope();
        let mut ctx = VarCtx::new();
        let e = ctx.fresh_evar(Sort::Int);
        let mark = ctx.checkpoint();
        let t = Term::add(Term::evar(e), Term::int(1));
        ctx.solve_evar(e, Term::int(4));
        assert_eq!(t.zonk(&ctx), Term::add(Term::int(4), Term::int(1)));
        ctx.rollback(&mark);
        // `solve_events` is unchanged by rollback, but the solution
        // fingerprint is restored — the stale entry must not be served.
        assert_eq!(t.zonk(&ctx), t);
        ctx.solve_evar(e, Term::int(9));
        assert_eq!(t.zonk(&ctx), Term::add(Term::int(9), Term::int(1)));
    }

    #[test]
    fn projection_reduction_matches_structural() {
        let _scope = scope();
        let mut ctx = VarCtx::new();
        let e = ctx.fresh_evar(Sort::Val);
        ctx.solve_evar(e, Term::v_pair(Term::v_int_lit(1), Term::v_bool_lit(true)));
        let fst = Term::app(Sym::Fst, vec![Term::evar(e)]);
        let snd = Term::app(Sym::Snd, vec![Term::evar(e)]);
        assert_eq!(fst.zonk(&ctx), fst.zonk_structural(&ctx));
        assert_eq!(snd.zonk(&ctx), snd.zonk_structural(&ctx));
        assert_eq!(fst.zonk(&ctx), Term::v_int_lit(1));
    }

    #[test]
    fn scopes_nest_and_restore() {
        assert!(!is_active());
        let outer = scope();
        assert!(is_active());
        let _ = term_id(&Term::int(1));
        let before = stats().interner_misses;
        {
            let _inner = scope();
            assert_eq!(stats().interner_misses, 0);
            let _ = term_id(&Term::int(1));
        }
        assert_eq!(stats().interner_misses, before);
        drop(outer);
        assert!(!is_active());
    }

    /// Scopes are strictly per-thread state: a speculative branch
    /// worker installing its own scope must never perturb the scope its
    /// parent search is running under — ids minted in one thread's
    /// scope are meaningless (and invisible) in another's.
    #[test]
    fn scopes_are_isolated_per_thread() {
        let _scope = scope();
        let t = Term::add(Term::int(1), Term::int(2));
        let parent_id = term_id(&t).unwrap();
        let parent_misses = stats().interner_misses;
        std::thread::scope(|s| {
            s.spawn(|| {
                // The parent's scope does not leak into this thread.
                assert!(!is_active());
                assert_eq!(term_id(&t), None);
                let _worker = scope();
                let _ = term_id(&t).unwrap();
            })
            .join()
            .expect("worker panicked");
        });
        // The worker's scope left the parent's untouched: still active,
        // same stats, and the old id still resolves.
        assert!(is_active());
        assert_eq!(stats().interner_misses, parent_misses);
        assert_eq!(resolve(parent_id).unwrap(), t);
    }

    #[test]
    fn arc_reuse_under_different_symbol() {
        let _scope = scope();
        let args: Arc<[Term]> = vec![Term::int(1), Term::int(2)].into();
        let add = canonical(&Term::App(Sym::Add, args));
        let Term::App(_, canon_args) = &add else {
            panic!("not an app")
        };
        // Reusing the canonical Add argument list under Sub must intern
        // as Sub, not hit the pointer map blindly.
        let sub = Term::App(Sym::Sub, canon_args.clone());
        assert_eq!(
            resolve(term_id(&sub).unwrap()).unwrap(),
            Term::sub(Term::int(1), Term::int(2))
        );
    }
}
