//! Substitution of universal variables.
//!
//! Substitutions instantiate the quantified variables of specification
//! schemas and hint schemas when they are applied: the schema's binders are
//! mapped either to fresh variables, to evars, or to concrete terms.

use crate::evar::VarId;
use crate::term::Term;
use std::collections::BTreeMap;

/// A finite map from universal variables to terms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Subst {
    map: BTreeMap<VarId, Term>,
}

impl Subst {
    #[must_use]
    /// The empty substitution.
    pub fn new() -> Subst {
        Subst::default()
    }

    /// A singleton substitution `[v := t]`.
    #[must_use]
    pub fn single(v: VarId, t: Term) -> Subst {
        let mut s = Subst::new();
        s.insert(v, t);
        s
    }

    /// Adds a binding, replacing any previous binding of `v`.
    pub fn insert(&mut self, v: VarId, t: Term) {
        self.map.insert(v, t);
    }

    #[must_use]
    /// The term substituted for `v`, if any.
    pub fn get(&self, v: VarId) -> Option<&Term> {
        self.map.get(&v)
    }

    #[must_use]
    /// Whether the substitution is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    #[must_use]
    /// Number of mapped variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Iterates over the bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &Term)> {
        self.map.iter().map(|(v, t)| (*v, t))
    }

    /// Applies the substitution to a term. Unbound variables are left alone.
    #[must_use]
    pub fn apply(&self, t: &Term) -> Term {
        if self.map.is_empty() {
            return t.clone();
        }
        match t {
            Term::Var(v) => match self.map.get(v) {
                Some(u) => u.clone(),
                None => t.clone(),
            },
            Term::App(sym, args) => {
                Term::App(*sym, args.iter().map(|a| self.apply(a)).collect())
            }
            _ => t.clone(),
        }
    }
}

impl FromIterator<(VarId, Term)> for Subst {
    fn from_iter<I: IntoIterator<Item = (VarId, Term)>>(iter: I) -> Subst {
        Subst {
            map: iter.into_iter().collect(),
        }
    }
}

impl Extend<(VarId, Term)> for Subst {
    fn extend<I: IntoIterator<Item = (VarId, Term)>>(&mut self, iter: I) {
        self.map.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evar::VarCtx;
    use crate::sort::Sort;

    #[test]
    fn apply_substitutes_vars() {
        let mut ctx = VarCtx::new();
        let x = ctx.fresh_var(Sort::Int, "x");
        let y = ctx.fresh_var(Sort::Int, "y");
        let s = Subst::single(x, Term::int(5));
        let t = Term::add(Term::var(x), Term::var(y));
        assert_eq!(s.apply(&t), Term::add(Term::int(5), Term::var(y)));
    }

    #[test]
    fn apply_is_simultaneous() {
        let mut ctx = VarCtx::new();
        let x = ctx.fresh_var(Sort::Int, "x");
        let y = ctx.fresh_var(Sort::Int, "y");
        // [x := y, y := 1] applied to x + y gives y + 1, not 1 + 1.
        let s: Subst = [(x, Term::var(y)), (y, Term::int(1))].into_iter().collect();
        let t = Term::add(Term::var(x), Term::var(y));
        assert_eq!(s.apply(&t), Term::add(Term::var(y), Term::int(1)));
    }

    #[test]
    fn collects_and_iterates() {
        let mut ctx = VarCtx::new();
        let x = ctx.fresh_var(Sort::Int, "x");
        let mut s = Subst::new();
        assert!(s.is_empty());
        s.insert(x, Term::int(2));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(x), Some(&Term::int(2)));
        assert_eq!(s.iter().count(), 1);
    }
}
