//! The first-order term language.

use crate::evar::{EVarId, VarCtx, VarId};
use crate::qp::Qp;
use crate::sort::Sort;
use std::sync::Arc;

/// Function symbols.
///
/// The `V*` symbols embed HeapLang values into the sort [`Sort::Val`]; the
/// arithmetic symbols are polymorphic over the numeric sorts
/// ([`Sort::Int`] and [`Sort::Qp`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sym {
    /// Numeric addition.
    Add,
    /// Numeric subtraction.
    Sub,
    /// Numeric negation.
    Neg,
    /// Numeric multiplication (the solver only handles linear occurrences).
    Mul,
    /// Integer minimum.
    Min,
    /// Integer maximum.
    Max,
    /// `ℤ → val` embedding.
    VInt,
    /// `bool → val` embedding.
    VBool,
    /// `() → val` embedding (nullary).
    VUnit,
    /// `loc → val` embedding.
    VLoc,
    /// Value pairing `val → val → val`.
    VPair,
    /// Left injection `val → val`.
    VInjL,
    /// Right injection `val → val`.
    VInjR,
    /// Pair projections `val → val` (reduced eagerly when applied to `VPair`).
    Fst,
    /// See [`Sym::Fst`].
    Snd,
}

impl Sym {
    /// Number of arguments the symbol takes.
    #[must_use]
    pub fn arity(self) -> usize {
        match self {
            Sym::VUnit => 0,
            Sym::Neg | Sym::VInt | Sym::VBool | Sym::VLoc | Sym::VInjL | Sym::VInjR
            | Sym::Fst | Sym::Snd => 1,
            Sym::Add | Sym::Sub | Sym::Mul | Sym::Min | Sym::Max | Sym::VPair => 2,
        }
    }

    /// Whether the symbol is an injective value constructor, so that
    /// congruence closure may decompose equalities on it and derive
    /// disequalities between distinct heads.
    #[must_use]
    pub fn is_value_ctor(self) -> bool {
        matches!(
            self,
            Sym::VInt | Sym::VBool | Sym::VUnit | Sym::VLoc | Sym::VPair | Sym::VInjL | Sym::VInjR
        )
    }

    /// Whether this is one of the arithmetic symbols normalised by
    /// [`crate::normalize`].
    #[must_use]
    pub fn is_arith(self) -> bool {
        matches!(self, Sym::Add | Sym::Sub | Sym::Neg | Sym::Mul)
    }
}

/// A term of the multi-sorted first-order language.
///
/// Terms are immutable trees. Evars are *not* chased implicitly: use
/// [`Term::zonk`] to resolve solved evars against a [`VarCtx`].
///
/// Application arguments live behind an `Arc`, so cloning a term is a
/// refcount bump regardless of depth, and equality between terms that
/// share the same argument allocation (e.g. two clones, or two terms
/// canonicalised by [`crate::intern`]) short-circuits on pointer
/// identity. `Arc<[Term]>` renders exactly like `Vec<Term>` under
/// `Debug`, so trace snapshots are unaffected.
// The manual `PartialEq` below is structural equality plus an
// `Arc::ptr_eq` fast path, so the derived structural `Hash` still
// satisfies `a == b ⇒ hash(a) == hash(b)`.
#[allow(clippy::derived_hash_with_manual_eq)]
#[derive(Debug, Clone, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A universally quantified (or program-introduced) variable.
    Var(VarId),
    /// An existential variable, to be determined by unification.
    EVar(EVarId),
    /// Integer literal.
    Int(i128),
    /// Boolean literal.
    Bool(bool),
    /// Positive-fraction literal.
    QpLit(Qp),
    /// A concrete heap location (used by tests and the interpreter bridge;
    /// verification normally works with symbolic locations).
    Loc(u64),
    /// A concrete ghost name.
    Gname(u64),
    /// Function application. The argument count always matches
    /// [`Sym::arity`].
    App(Sym, Arc<[Term]>),
}

/// Structural equality, with an `Arc::ptr_eq` fast path on shared
/// argument lists (sound because interned/cloned terms share storage).
impl PartialEq for Term {
    fn eq(&self, other: &Term) -> bool {
        match (self, other) {
            (Term::Var(a), Term::Var(b)) => a == b,
            (Term::EVar(a), Term::EVar(b)) => a == b,
            (Term::Int(a), Term::Int(b)) => a == b,
            (Term::Bool(a), Term::Bool(b)) => a == b,
            (Term::QpLit(a), Term::QpLit(b)) => a == b,
            (Term::Loc(a), Term::Loc(b)) => a == b,
            (Term::Gname(a), Term::Gname(b)) => a == b,
            (Term::App(f, xs), Term::App(g, ys)) => {
                f == g && (Arc::ptr_eq(xs, ys) || xs[..] == ys[..])
            }
            _ => false,
        }
    }
}

impl Eq for Term {}

#[allow(clippy::should_implement_trait)] // `add`/`sub`/... are static constructors, not operator methods
impl Term {
    #[must_use]
    /// A universal variable.
    pub fn var(v: VarId) -> Term {
        Term::Var(v)
    }

    #[must_use]
    /// An existential variable.
    pub fn evar(e: EVarId) -> Term {
        Term::EVar(e)
    }

    #[must_use]
    /// An integer literal.
    pub fn int(n: i128) -> Term {
        Term::Int(n)
    }

    #[must_use]
    /// A boolean literal.
    pub fn bool(b: bool) -> Term {
        Term::Bool(b)
    }

    #[must_use]
    /// A fraction literal.
    pub fn qp(q: Qp) -> Term {
        Term::QpLit(q)
    }

    /// The full fraction `1`.
    #[must_use]
    pub fn qp_one() -> Term {
        Term::QpLit(Qp::ONE)
    }

    #[must_use]
    /// Function application (checked arity in debug builds).
    pub fn app(sym: Sym, args: Vec<Term>) -> Term {
        debug_assert_eq!(sym.arity(), args.len(), "arity mismatch for {sym:?}");
        Term::App(sym, args.into())
    }

    #[must_use]
    /// `a + b`.
    pub fn add(a: Term, b: Term) -> Term {
        Term::app(Sym::Add, vec![a, b])
    }

    #[must_use]
    /// `a - b`.
    pub fn sub(a: Term, b: Term) -> Term {
        Term::app(Sym::Sub, vec![a, b])
    }

    #[must_use]
    /// `-a`.
    pub fn neg(a: Term) -> Term {
        Term::app(Sym::Neg, vec![a])
    }

    #[must_use]
    /// `a · b` (linear occurrences only are solvable).
    pub fn mul(a: Term, b: Term) -> Term {
        Term::app(Sym::Mul, vec![a, b])
    }

    /// The value embedding `#n` of an integer term.
    #[must_use]
    pub fn v_int(n: Term) -> Term {
        Term::app(Sym::VInt, vec![n])
    }

    /// The value embedding `#b` of a boolean term.
    #[must_use]
    pub fn v_bool(b: Term) -> Term {
        Term::app(Sym::VBool, vec![b])
    }

    /// The unit value `#()`.
    #[must_use]
    pub fn v_unit() -> Term {
        Term::app(Sym::VUnit, vec![])
    }

    /// The value embedding `#ℓ` of a location term.
    #[must_use]
    pub fn v_loc(l: Term) -> Term {
        Term::app(Sym::VLoc, vec![l])
    }

    #[must_use]
    /// The pair value `(a, b)`.
    pub fn v_pair(a: Term, b: Term) -> Term {
        Term::app(Sym::VPair, vec![a, b])
    }

    #[must_use]
    /// The left injection value `inl a`.
    pub fn v_inj_l(a: Term) -> Term {
        Term::app(Sym::VInjL, vec![a])
    }

    #[must_use]
    /// The right injection value `inr a`.
    pub fn v_inj_r(a: Term) -> Term {
        Term::app(Sym::VInjR, vec![a])
    }

    /// Literal value embeddings of common constants.
    #[must_use]
    pub fn v_int_lit(n: i128) -> Term {
        Term::v_int(Term::int(n))
    }

    /// See [`Term::v_int_lit`].
    #[must_use]
    pub fn v_bool_lit(b: bool) -> Term {
        Term::v_bool(Term::bool(b))
    }

    /// Whether the term contains no variables or evars at all.
    #[must_use]
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) | Term::EVar(_) => false,
            Term::Int(_) | Term::Bool(_) | Term::QpLit(_) | Term::Loc(_) | Term::Gname(_) => true,
            Term::App(_, args) => args.iter().all(Term::is_ground),
        }
    }

    /// Collects the free variables into `out` (in first-occurrence order,
    /// without duplicates).
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Term::Var(v)
                if !out.contains(v) => {
                    out.push(*v);
                }
            Term::App(_, args) => {
                for a in args.iter() {
                    a.collect_vars(out);
                }
            }
            _ => {}
        }
    }

    /// Free variables of the term.
    #[must_use]
    pub fn free_vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    /// Collects the evars into `out` (without duplicates).
    pub fn collect_evars(&self, out: &mut Vec<EVarId>) {
        match self {
            Term::EVar(e)
                if !out.contains(e) => {
                    out.push(*e);
                }
            Term::App(_, args) => {
                for a in args.iter() {
                    a.collect_evars(out);
                }
            }
            _ => {}
        }
    }

    /// Whether the term mentions any evar (solved or not).
    #[must_use]
    pub fn has_evars(&self) -> bool {
        match self {
            Term::EVar(_) => true,
            Term::App(_, args) => args.iter().any(Term::has_evars),
            _ => false,
        }
    }

    /// Whether `v` occurs in the term.
    #[must_use]
    pub fn mentions_var(&self, v: VarId) -> bool {
        match self {
            Term::Var(w) => *w == v,
            Term::App(_, args) => args.iter().any(|a| a.mentions_var(v)),
            _ => false,
        }
    }

    /// Whether evar `e` occurs in the term (without chasing solutions).
    #[must_use]
    pub fn mentions_evar(&self, e: EVarId) -> bool {
        match self {
            Term::EVar(f) => *f == e,
            Term::App(_, args) => args.iter().any(|a| a.mentions_evar(e)),
            _ => false,
        }
    }

    /// Replaces solved evars by their solutions, recursively, and reduces
    /// projections applied to pairs.
    ///
    /// When a [`crate::intern`] scope is active this goes through the
    /// generation-keyed zonk cache; the result is always identical to
    /// [`Term::zonk_structural`].
    #[must_use]
    pub fn zonk(&self, ctx: &VarCtx) -> Term {
        crate::intern::zonk(ctx, self)
    }

    /// Whether [`Term::zonk`] would change this term at all: some
    /// mentioned evar is solved, or a `Fst`/`Snd`-on-`VPair` redex
    /// occurs. A read-only, allocation-free scan — lets containers
    /// (assertions, atoms, pure propositions) skip their rebuilding
    /// walks entirely in the common all-unsolved state.
    #[must_use]
    pub fn needs_zonk(&self, ctx: &VarCtx) -> bool {
        crate::intern::needs_zonk(ctx, self)
    }

    /// The direct, uncached zonk implementation. [`Term::zonk`] is the
    /// memoized front; property tests compare the two.
    #[must_use]
    pub fn zonk_structural(&self, ctx: &VarCtx) -> Term {
        match self {
            Term::EVar(e) => match ctx.evar_solution(*e) {
                Some(sol) => sol.zonk_structural(ctx),
                None => self.clone(),
            },
            Term::App(sym, args) => {
                let args: Vec<Term> = args.iter().map(|a| a.zonk_structural(ctx)).collect();
                match (sym, args.as_slice()) {
                    (Sym::Fst, [Term::App(Sym::VPair, ps)]) => ps[0].clone(),
                    (Sym::Snd, [Term::App(Sym::VPair, ps)]) => ps[1].clone(),
                    _ => Term::app(*sym, args),
                }
            }
            _ => self.clone(),
        }
    }

    /// The sort of the term.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) on ill-sorted applications; release builds
    /// return the result sort of the head symbol regardless.
    #[must_use]
    pub fn sort(&self, ctx: &VarCtx) -> Sort {
        match self {
            Term::Var(v) => ctx.var_sort(*v),
            Term::EVar(e) => ctx.evar_sort(*e),
            Term::Int(_) => Sort::Int,
            Term::Bool(_) => Sort::Bool,
            Term::QpLit(_) => Sort::Qp,
            Term::Loc(_) => Sort::Loc,
            Term::Gname(_) => Sort::GhostName,
            Term::App(sym, args) => match sym {
                Sym::Add | Sym::Sub | Sym::Mul | Sym::Min | Sym::Max => args[0].sort(ctx),
                Sym::Neg => args[0].sort(ctx),
                Sym::VInt | Sym::VBool | Sym::VUnit | Sym::VLoc | Sym::VPair | Sym::VInjL
                | Sym::VInjR | Sym::Fst | Sym::Snd => Sort::Val,
            },
        }
    }
}

impl From<i128> for Term {
    fn from(n: i128) -> Term {
        Term::Int(n)
    }
}

impl From<bool> for Term {
    fn from(b: bool) -> Term {
        Term::Bool(b)
    }
}

impl From<Qp> for Term {
    fn from(q: Qp) -> Term {
        Term::QpLit(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evar::VarCtx;

    #[test]
    fn constructors_and_sorts() {
        let mut ctx = VarCtx::new();
        let l = ctx.fresh_var(Sort::Loc, "l");
        let t = Term::v_loc(Term::var(l));
        assert_eq!(t.sort(&ctx), Sort::Val);
        assert_eq!(Term::int(3).sort(&ctx), Sort::Int);
        assert_eq!(Term::add(Term::int(1), Term::int(2)).sort(&ctx), Sort::Int);
        assert_eq!(Term::qp_one().sort(&ctx), Sort::Qp);
    }

    #[test]
    fn free_vars_dedup() {
        let mut ctx = VarCtx::new();
        let x = ctx.fresh_var(Sort::Int, "x");
        let t = Term::add(Term::var(x), Term::var(x));
        assert_eq!(t.free_vars(), vec![x]);
        assert!(t.mentions_var(x));
        assert!(!t.is_ground());
        assert!(Term::int(1).is_ground());
    }

    #[test]
    fn zonk_resolves_chains() {
        let mut ctx = VarCtx::new();
        let e1 = ctx.fresh_evar(Sort::Int);
        let e2 = ctx.fresh_evar(Sort::Int);
        ctx.solve_evar(e1, Term::evar(e2));
        ctx.solve_evar(e2, Term::int(7));
        assert_eq!(Term::evar(e1).zonk(&ctx), Term::int(7));
    }

    #[test]
    fn zonk_reduces_projections() {
        let ctx = VarCtx::new();
        let p = Term::v_pair(Term::v_int_lit(1), Term::v_bool_lit(true));
        assert_eq!(
            Term::app(Sym::Fst, vec![p.clone()]).zonk(&ctx),
            Term::v_int_lit(1)
        );
        assert_eq!(
            Term::app(Sym::Snd, vec![p]).zonk(&ctx),
            Term::v_bool_lit(true)
        );
    }

    #[test]
    fn evar_collection() {
        let mut ctx = VarCtx::new();
        let e = ctx.fresh_evar(Sort::Val);
        let t = Term::v_pair(Term::evar(e), Term::v_unit());
        assert!(t.has_evars());
        assert!(t.mentions_evar(e));
        let mut out = Vec::new();
        t.collect_evars(&mut out);
        assert_eq!(out, vec![e]);
    }
}
