//! Linear normal forms for numeric terms.
//!
//! Terms of the numeric sorts are normalised into a linear combination
//! `c + Σᵢ qᵢ·tᵢ` where the `tᵢ` are non-arithmetic *atoms* (variables,
//! evars, or opaque applications such as `min`/`max`). The normal form backs
//! both unification-modulo-arithmetic (`z + (-1)` matches `-1 + z`) and the
//! Fourier–Motzkin pure solver.

use crate::evar::{EVarId, VarCtx};
use crate::qp::Rat;
use crate::term::{Sym, Term};
use std::collections::BTreeMap;

/// A linear combination over term atoms with rational coefficients.
///
/// Invariant: no stored coefficient is zero, and no stored atom is itself an
/// arithmetic application.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinComb {
    /// The constant summand.
    pub constant: Rat,
    /// Coefficients of the non-constant atoms.
    pub coeffs: BTreeMap<Term, Rat>,
}

impl LinComb {
    /// The zero combination.
    #[must_use]
    pub fn zero() -> LinComb {
        LinComb::default()
    }

    /// A constant combination.
    #[must_use]
    pub fn constant(c: Rat) -> LinComb {
        LinComb {
            constant: c,
            coeffs: BTreeMap::new(),
        }
    }

    /// A single atom with coefficient 1.
    #[must_use]
    pub fn atom(t: Term) -> LinComb {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(t, Rat::ONE);
        LinComb {
            constant: Rat::ZERO,
            coeffs,
        }
    }

    /// Adds `q · t` to the combination.
    pub fn add_term(&mut self, t: Term, q: Rat) {
        if q.is_zero() {
            return;
        }
        let entry = self.coeffs.entry(t).or_insert(Rat::ZERO);
        *entry = *entry + q;
        if entry.is_zero() {
            // Re-borrowing to remove; find the key we just zeroed.
            self.coeffs.retain(|_, v| !v.is_zero());
        }
    }

    /// Pointwise addition.
    #[must_use]
    pub fn plus(&self, other: &LinComb) -> LinComb {
        let mut out = self.clone();
        out.constant = out.constant + other.constant;
        for (t, q) in &other.coeffs {
            out.add_term(t.clone(), *q);
        }
        out
    }

    /// Pointwise subtraction.
    #[must_use]
    pub fn minus(&self, other: &LinComb) -> LinComb {
        self.plus(&other.scale(-Rat::ONE))
    }

    /// Scales every coefficient (and the constant).
    #[must_use]
    pub fn scale(&self, q: Rat) -> LinComb {
        if q.is_zero() {
            return LinComb::zero();
        }
        LinComb {
            constant: self.constant * q,
            coeffs: self.coeffs.iter().map(|(t, c)| (t.clone(), *c * q)).collect(),
        }
    }

    /// Whether the combination is a constant.
    #[must_use]
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// If the combination is `c + q·?e` for a single unsolved evar `?e`,
    /// returns `(e, q, c)`.
    #[must_use]
    pub fn as_single_evar(&self, ctx: &VarCtx) -> Option<(EVarId, Rat, Rat)> {
        if self.coeffs.len() != 1 {
            return None;
        }
        let (t, q) = self.coeffs.iter().next()?;
        match t {
            Term::EVar(e) if ctx.evar_unsolved(*e) => Some((*e, *q, self.constant)),
            _ => None,
        }
    }

    /// Whether the combination mentions any (unsolved) evar atom.
    #[must_use]
    pub fn has_evar_atoms(&self) -> bool {
        self.coeffs.keys().any(Term::has_evars)
    }

    /// Renders the combination back into a canonical term of the given
    /// integral-ness (`true` → integer literals where possible).
    #[must_use]
    pub fn to_term(&self, integral: bool) -> Term {
        let lit = |r: Rat| -> Term {
            if integral {
                Term::Int(r.to_integer().expect("non-integral constant in integer term"))
            } else {
                match crate::qp::Qp::from_rat(r) {
                    Some(q) => Term::QpLit(q),
                    // Negative/zero rationals cannot be Qp literals; fall back
                    // to a subtraction from zero-ish encoding via Neg.
                    None => Term::neg(Term::QpLit(
                        crate::qp::Qp::from_rat(-r).expect("nonzero rational"),
                    )),
                }
            }
        };
        let mut acc: Option<Term> = if self.constant.is_zero() && !self.coeffs.is_empty() {
            None
        } else {
            Some(lit(self.constant))
        };
        for (t, q) in &self.coeffs {
            let part = if *q == Rat::ONE {
                t.clone()
            } else {
                Term::mul(lit(*q), t.clone())
            };
            acc = Some(match acc {
                None => part,
                Some(a) => Term::add(a, part),
            });
        }
        acc.unwrap_or_else(|| lit(Rat::ZERO))
    }
}

/// Normalises a numeric term into a [`LinComb`]. The term is zonked first,
/// so solved evars are transparent.
///
/// When a [`crate::intern`] scope is active the result is memoized by the
/// interned id of the *zonked* term (normalisation of a fully-zonked term
/// is purely structural); the result is always identical to
/// [`normalize_structural`].
#[must_use]
pub fn normalize(ctx: &VarCtx, t: &Term) -> LinComb {
    match crate::intern::normalize_memo(ctx, t) {
        Some(lc) => lc,
        None => normalize_structural(ctx, t),
    }
}

/// The direct, uncached normalisation. [`normalize`] is the memoized
/// front; property tests compare the two.
#[must_use]
pub fn normalize_structural(ctx: &VarCtx, t: &Term) -> LinComb {
    normalize_resolved(ctx, &t.zonk_structural(ctx))
}

#[allow(clippy::only_used_in_recursion)]
pub(crate) fn normalize_resolved(ctx: &VarCtx, t: &Term) -> LinComb {
    match t {
        Term::Int(n) => LinComb::constant(Rat::from_int(*n)),
        Term::QpLit(q) => LinComb::constant(q.as_rat()),
        Term::App(Sym::Add, args) => {
            normalize_resolved(ctx, &args[0]).plus(&normalize_resolved(ctx, &args[1]))
        }
        Term::App(Sym::Sub, args) => {
            normalize_resolved(ctx, &args[0]).minus(&normalize_resolved(ctx, &args[1]))
        }
        Term::App(Sym::Neg, args) => normalize_resolved(ctx, &args[0]).scale(-Rat::ONE),
        Term::App(Sym::Mul, args) => {
            let a = normalize_resolved(ctx, &args[0]);
            let b = normalize_resolved(ctx, &args[1]);
            if a.is_constant() {
                b.scale(a.constant)
            } else if b.is_constant() {
                a.scale(b.constant)
            } else {
                // Nonlinear: keep the whole product as an opaque atom.
                LinComb::atom(t.clone())
            }
        }
        _ => LinComb::atom(t.clone()),
    }
}

/// Whether two numeric terms are equal modulo linear-arithmetic
/// normalisation.
#[must_use]
pub fn arith_eq(ctx: &VarCtx, a: &Term, b: &Term) -> bool {
    normalize(ctx, a) == normalize(ctx, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::Sort;

    #[test]
    fn commutativity_and_constants() {
        let mut ctx = VarCtx::new();
        let z = ctx.fresh_var(Sort::Int, "z");
        let zt = Term::var(z);
        let a = Term::add(zt.clone(), Term::int(-1));
        let b = Term::add(Term::int(-1), zt.clone());
        assert!(arith_eq(&ctx, &a, &b));
        let c = Term::sub(zt, Term::int(1));
        assert!(arith_eq(&ctx, &a, &c));
    }

    #[test]
    fn cancellation() {
        let mut ctx = VarCtx::new();
        let z = ctx.fresh_var(Sort::Int, "z");
        let zt = Term::var(z);
        let t = Term::sub(Term::add(zt.clone(), Term::int(3)), zt);
        assert_eq!(normalize(&ctx, &t), LinComb::constant(Rat::from_int(3)));
    }

    #[test]
    fn scaling_through_mul() {
        let mut ctx = VarCtx::new();
        let z = ctx.fresh_var(Sort::Int, "z");
        let t = Term::mul(Term::int(2), Term::add(Term::var(z), Term::int(1)));
        let n = normalize(&ctx, &t);
        assert_eq!(n.constant, Rat::from_int(2));
        assert_eq!(n.coeffs.get(&Term::var(z)), Some(&Rat::from_int(2)));
    }

    #[test]
    fn nonlinear_is_opaque() {
        let mut ctx = VarCtx::new();
        let x = ctx.fresh_var(Sort::Int, "x");
        let y = ctx.fresh_var(Sort::Int, "y");
        let t = Term::mul(Term::var(x), Term::var(y));
        let n = normalize(&ctx, &t);
        assert_eq!(n.coeffs.len(), 1);
        assert!(n.coeffs.contains_key(&t));
    }

    #[test]
    fn zonks_before_normalising() {
        let mut ctx = VarCtx::new();
        let e = ctx.fresh_evar(Sort::Int);
        ctx.solve_evar(e, Term::int(4));
        let t = Term::add(Term::evar(e), Term::int(1));
        assert_eq!(normalize(&ctx, &t), LinComb::constant(Rat::from_int(5)));
    }

    #[test]
    fn single_evar_detection() {
        let mut ctx = VarCtx::new();
        let e = ctx.fresh_evar(Sort::Int);
        let t = Term::add(Term::evar(e), Term::int(2));
        let n = normalize(&ctx, &t);
        let (found, q, c) = n.as_single_evar(&ctx).unwrap();
        assert_eq!(found, e);
        assert_eq!(q, Rat::ONE);
        assert_eq!(c, Rat::from_int(2));
    }

    #[test]
    fn to_term_round_trips() {
        let mut ctx = VarCtx::new();
        let z = ctx.fresh_var(Sort::Int, "z");
        let t = Term::add(Term::int(2), Term::mul(Term::int(3), Term::var(z)));
        let n = normalize(&ctx, &t);
        let back = n.to_term(true);
        assert!(arith_eq(&ctx, &t, &back));
    }
}
