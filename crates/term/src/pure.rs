//! Pure propositions — the `⌜φ⌝` fragment of the logic.

use crate::evar::{VarCtx, VarId};
use crate::normalize::normalize;
use crate::subst::Subst;
use crate::term::Term;

/// A pure (heap-independent) proposition.
///
/// These are the propositions that appear embedded in separation-logic
/// assertions as `⌜φ⌝`, and the side conditions of bi-abduction hints. The
/// pure solver ([`crate::solver::PureSolver`]) decides a useful fragment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PureProp {
    /// The trivially true proposition.
    True,
    /// The absurd proposition.
    False,
    /// Term equality (at any sort).
    Eq(Term, Term),
    /// Term disequality.
    Ne(Term, Term),
    /// `≤` on a numeric sort.
    Le(Term, Term),
    /// `<` on a numeric sort.
    Lt(Term, Term),
    /// Conjunction.
    And(Box<PureProp>, Box<PureProp>),
    /// Disjunction.
    Or(Box<PureProp>, Box<PureProp>),
    /// Negation.
    Not(Box<PureProp>),
    /// Implication.
    Implies(Box<PureProp>, Box<PureProp>),
}

impl PureProp {
    #[must_use]
    /// `a = b`.
    pub fn eq(a: Term, b: Term) -> PureProp {
        PureProp::Eq(a, b)
    }

    #[must_use]
    /// `a ≠ b`.
    pub fn ne(a: Term, b: Term) -> PureProp {
        PureProp::Ne(a, b)
    }

    #[must_use]
    /// `a ≤ b`.
    pub fn le(a: Term, b: Term) -> PureProp {
        PureProp::Le(a, b)
    }

    #[must_use]
    /// `a < b`.
    pub fn lt(a: Term, b: Term) -> PureProp {
        PureProp::Lt(a, b)
    }

    /// `a ≥ b`, normalised to `b ≤ a`.
    #[must_use]
    pub fn ge(a: Term, b: Term) -> PureProp {
        PureProp::Le(b, a)
    }

    /// `a > b`, normalised to `b < a`.
    #[must_use]
    pub fn gt(a: Term, b: Term) -> PureProp {
        PureProp::Lt(b, a)
    }

    #[must_use]
    /// Conjunction (simplifying `True` operands away).
    pub fn and(a: PureProp, b: PureProp) -> PureProp {
        match (a, b) {
            (PureProp::True, b) => b,
            (a, PureProp::True) => a,
            (a, b) => PureProp::And(Box::new(a), Box::new(b)),
        }
    }

    #[must_use]
    /// Disjunction.
    pub fn or(a: PureProp, b: PureProp) -> PureProp {
        PureProp::Or(Box::new(a), Box::new(b))
    }

    #[must_use]
    /// Negation.
    pub fn negate(a: PureProp) -> PureProp {
        PureProp::Not(Box::new(a))
    }

    #[must_use]
    /// Implication.
    pub fn implies(a: PureProp, b: PureProp) -> PureProp {
        PureProp::Implies(Box::new(a), Box::new(b))
    }

    /// Conjunction of a list of propositions.
    #[must_use]
    pub fn conj<I: IntoIterator<Item = PureProp>>(props: I) -> PureProp {
        props
            .into_iter()
            .fold(PureProp::True, PureProp::and)
    }

    /// Pushes a negation one constructor inwards, producing the classical
    /// dual. Used by the solver's refutation step and by the disjunction
    /// guard check (§5.3).
    #[must_use]
    pub fn negated(&self) -> PureProp {
        match self {
            PureProp::True => PureProp::False,
            PureProp::False => PureProp::True,
            PureProp::Eq(a, b) => PureProp::Ne(a.clone(), b.clone()),
            PureProp::Ne(a, b) => PureProp::Eq(a.clone(), b.clone()),
            PureProp::Le(a, b) => PureProp::Lt(b.clone(), a.clone()),
            PureProp::Lt(a, b) => PureProp::Le(b.clone(), a.clone()),
            PureProp::And(a, b) => PureProp::or(a.negated(), b.negated()),
            PureProp::Or(a, b) => PureProp::and(a.negated(), b.negated()),
            PureProp::Not(a) => (**a).clone(),
            PureProp::Implies(a, b) => PureProp::and((**a).clone(), b.negated()),
        }
    }

    /// Applies a substitution to all embedded terms.
    #[must_use]
    pub fn subst(&self, s: &Subst) -> PureProp {
        self.map_terms(&|t| s.apply(t))
    }

    /// Resolves solved evars in all embedded terms.
    #[must_use]
    pub fn zonk(&self, ctx: &VarCtx) -> PureProp {
        if !self.needs_zonk(ctx) {
            return self.clone();
        }
        self.map_terms(&|t| t.zonk(ctx))
    }

    /// Whether [`PureProp::zonk`] would change anything (see
    /// [`Term::needs_zonk`]). Early-exits on the first affected term.
    #[must_use]
    pub fn needs_zonk(&self, ctx: &VarCtx) -> bool {
        match self {
            PureProp::True | PureProp::False => false,
            PureProp::Eq(a, b)
            | PureProp::Ne(a, b)
            | PureProp::Le(a, b)
            | PureProp::Lt(a, b) => a.needs_zonk(ctx) || b.needs_zonk(ctx),
            PureProp::And(a, b) | PureProp::Or(a, b) | PureProp::Implies(a, b) => {
                a.needs_zonk(ctx) || b.needs_zonk(ctx)
            }
            PureProp::Not(a) => a.needs_zonk(ctx),
        }
    }

    /// Applies `f` to every term leaf.
    #[must_use]
    pub fn map_terms(&self, f: &impl Fn(&Term) -> Term) -> PureProp {
        match self {
            PureProp::True => PureProp::True,
            PureProp::False => PureProp::False,
            PureProp::Eq(a, b) => PureProp::Eq(f(a), f(b)),
            PureProp::Ne(a, b) => PureProp::Ne(f(a), f(b)),
            PureProp::Le(a, b) => PureProp::Le(f(a), f(b)),
            PureProp::Lt(a, b) => PureProp::Lt(f(a), f(b)),
            PureProp::And(a, b) => {
                PureProp::And(Box::new(a.map_terms(f)), Box::new(b.map_terms(f)))
            }
            PureProp::Or(a, b) => {
                PureProp::Or(Box::new(a.map_terms(f)), Box::new(b.map_terms(f)))
            }
            PureProp::Not(a) => PureProp::Not(Box::new(a.map_terms(f))),
            PureProp::Implies(a, b) => {
                PureProp::Implies(Box::new(a.map_terms(f)), Box::new(b.map_terms(f)))
            }
        }
    }

    /// Visits every term leaf.
    pub fn visit_terms(&self, f: &mut impl FnMut(&Term)) {
        match self {
            PureProp::True | PureProp::False => {}
            PureProp::Eq(a, b) | PureProp::Ne(a, b) | PureProp::Le(a, b) | PureProp::Lt(a, b) => {
                f(a);
                f(b);
            }
            PureProp::And(a, b) | PureProp::Or(a, b) | PureProp::Implies(a, b) => {
                a.visit_terms(f);
                b.visit_terms(f);
            }
            PureProp::Not(a) => a.visit_terms(f),
        }
    }

    /// Free variables of the proposition.
    #[must_use]
    pub fn free_vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.visit_terms(&mut |t| t.collect_vars(&mut out));
        out
    }

    /// Whether any embedded term mentions an evar.
    #[must_use]
    pub fn has_evars(&self) -> bool {
        let mut found = false;
        self.visit_terms(&mut |t| found |= t.has_evars());
        found
    }

    /// Ground evaluation, used by property tests to validate the solver:
    /// returns `None` when a term is not ground or not decidable by
    /// constant folding.
    #[must_use]
    pub fn eval_ground(&self, ctx: &VarCtx) -> Option<bool> {
        match self {
            PureProp::True => Some(true),
            PureProp::False => Some(false),
            PureProp::Eq(a, b) => ground_cmp(ctx, a, b).map(|o| o == std::cmp::Ordering::Equal),
            PureProp::Ne(a, b) => ground_cmp(ctx, a, b).map(|o| o != std::cmp::Ordering::Equal),
            PureProp::Le(a, b) => ground_cmp(ctx, a, b).map(|o| o != std::cmp::Ordering::Greater),
            PureProp::Lt(a, b) => ground_cmp(ctx, a, b).map(|o| o == std::cmp::Ordering::Less),
            PureProp::And(a, b) => Some(a.eval_ground(ctx)? && b.eval_ground(ctx)?),
            PureProp::Or(a, b) => Some(a.eval_ground(ctx)? || b.eval_ground(ctx)?),
            PureProp::Not(a) => a.eval_ground(ctx).map(|b| !b),
            PureProp::Implies(a, b) => Some(!a.eval_ground(ctx)? || b.eval_ground(ctx)?),
        }
    }
}

fn ground_cmp(ctx: &VarCtx, a: &Term, b: &Term) -> Option<std::cmp::Ordering> {
    let a = a.zonk(ctx);
    let b = b.zonk(ctx);
    if !(a.is_ground() && b.is_ground()) {
        return None;
    }
    if a.sort(ctx).is_numeric() {
        let na = normalize(ctx, &a);
        let nb = normalize(ctx, &b);
        if na.is_constant() && nb.is_constant() {
            return Some(na.constant.cmp(&nb.constant));
        }
        return None;
    }
    // Structural comparison for value-like sorts; only equality and
    // disequality are meaningful, but Ord gives us a consistent answer.
    Some(a.cmp(&b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::Sort;

    #[test]
    fn negation_duals() {
        let a = Term::int(1);
        let b = Term::int(2);
        assert_eq!(
            PureProp::le(a.clone(), b.clone()).negated(),
            PureProp::lt(b.clone(), a.clone())
        );
        assert_eq!(
            PureProp::eq(a.clone(), b.clone()).negated(),
            PureProp::ne(a, b)
        );
    }

    #[test]
    fn conj_flattens_true() {
        let p = PureProp::conj(vec![PureProp::True, PureProp::eq(Term::int(1), Term::int(1))]);
        assert_eq!(p, PureProp::eq(Term::int(1), Term::int(1)));
        assert_eq!(PureProp::conj(Vec::new()), PureProp::True);
    }

    #[test]
    fn ground_evaluation() {
        let ctx = VarCtx::new();
        assert_eq!(
            PureProp::lt(Term::int(1), Term::int(2)).eval_ground(&ctx),
            Some(true)
        );
        assert_eq!(
            PureProp::eq(Term::v_bool_lit(true), Term::v_bool_lit(false)).eval_ground(&ctx),
            Some(false)
        );
        assert_eq!(
            PureProp::eq(
                Term::add(Term::int(1), Term::int(1)),
                Term::int(2)
            )
            .eval_ground(&ctx),
            Some(true)
        );
    }

    #[test]
    fn non_ground_is_none() {
        let mut ctx = VarCtx::new();
        let x = ctx.fresh_var(Sort::Int, "x");
        assert_eq!(
            PureProp::lt(Term::var(x), Term::int(2)).eval_ground(&ctx),
            None
        );
    }

    #[test]
    fn free_vars_and_evars() {
        let mut ctx = VarCtx::new();
        let x = ctx.fresh_var(Sort::Int, "x");
        let e = ctx.fresh_evar(Sort::Int);
        let p = PureProp::eq(Term::var(x), Term::evar(e));
        assert_eq!(p.free_vars(), vec![x]);
        assert!(p.has_evars());
    }

    #[test]
    fn subst_and_zonk() {
        let mut ctx = VarCtx::new();
        let x = ctx.fresh_var(Sort::Int, "x");
        let e = ctx.fresh_evar(Sort::Int);
        ctx.solve_evar(e, Term::int(3));
        let p = PureProp::eq(Term::var(x), Term::evar(e));
        let s = Subst::single(x, Term::int(3));
        assert_eq!(
            p.subst(&s).zonk(&ctx),
            PureProp::eq(Term::int(3), Term::int(3))
        );
    }
}
