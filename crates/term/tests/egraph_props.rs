//! Differential property tests for the incremental e-graph solver:
//! random fact/goal/checkpoint scripts are run in lockstep against the
//! rebuild-per-query [`PureSolver`], and additionally against a fresh
//! [`EGraph`] rebuilt from the same facts at every query — any rollback
//! or memoization bug shows up as a three-way verdict disagreement.
//!
//! The scripts deliberately exercise the paths the Figure 6 suite leans
//! on: evar solutions made and undone across [`VarCtx`] checkpoints (the
//! solution-fingerprint keying and the partial base resets), fact
//! truncation in lockstep with those checkpoints (the undo trail), and
//! disjunctive facts (the case-splitting fallback).

use diaframe_term::intern;
use diaframe_term::solver::egraph::EGraph;
use diaframe_term::solver::PureSolver;
use diaframe_term::{EVarId, PureProp, Sort, Term, VarCtx, VarId};
use proptest::prelude::*;

const NUM_VARS: usize = 3;
const NUM_EVARS: usize = 2;

/// A linear integer expression over the shared variable/evar pools.
#[derive(Debug, Clone)]
#[allow(clippy::enum_variant_names)] // Var/EVar mirror the Term constructors
enum E {
    Lit(i64),
    Var(usize),
    EVar(usize),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Scale(i64, Box<E>),
}

impl E {
    fn to_term(&self, vars: &[VarId], evars: &[EVarId]) -> Term {
        match self {
            E::Lit(n) => Term::int(i128::from(*n)),
            E::Var(i) => Term::var(vars[*i]),
            E::EVar(i) => Term::evar(evars[*i]),
            E::Add(a, b) => Term::add(a.to_term(vars, evars), b.to_term(vars, evars)),
            E::Sub(a, b) => Term::sub(a.to_term(vars, evars), b.to_term(vars, evars)),
            E::Scale(k, a) => Term::mul(Term::int(i128::from(*k)), a.to_term(vars, evars)),
        }
    }
}

fn expr(evars: bool) -> impl Strategy<Value = E> {
    let leaf = if evars {
        prop_oneof![
            (-10i64..=10).prop_map(E::Lit),
            (0..NUM_VARS).prop_map(E::Var),
            (0..NUM_EVARS).prop_map(E::EVar),
        ]
        .boxed()
    } else {
        prop_oneof![
            (-10i64..=10).prop_map(E::Lit),
            (0..NUM_VARS).prop_map(E::Var),
        ]
        .boxed()
    };
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (-4i64..=4, inner).prop_map(|(k, a)| E::Scale(k, Box::new(a))),
        ]
    })
}

/// A random pure proposition: comparisons over the linear fragment, plus
/// shallow `And`/`Or`/`Implies`/`Not` combinations so queries reach the
/// structural cases of `prove_inner` and facts reach the disjunctive
/// (case-splitting) dispatch.
#[derive(Debug, Clone)]
enum P {
    Eq(E, E),
    Ne(E, E),
    Le(E, E),
    Lt(E, E),
    And(Box<P>, Box<P>),
    Or(Box<P>, Box<P>),
    Implies(Box<P>, Box<P>),
    Not(Box<P>),
}

impl P {
    fn to_prop(&self, vars: &[VarId], evars: &[EVarId]) -> PureProp {
        let t = |e: &E| e.to_term(vars, evars);
        match self {
            P::Eq(a, b) => PureProp::eq(t(a), t(b)),
            P::Ne(a, b) => PureProp::ne(t(a), t(b)),
            P::Le(a, b) => PureProp::le(t(a), t(b)),
            P::Lt(a, b) => PureProp::lt(t(a), t(b)),
            P::And(a, b) => PureProp::and(a.to_prop(vars, evars), b.to_prop(vars, evars)),
            P::Or(a, b) => PureProp::or(a.to_prop(vars, evars), b.to_prop(vars, evars)),
            P::Implies(a, b) => {
                PureProp::implies(a.to_prop(vars, evars), b.to_prop(vars, evars))
            }
            P::Not(a) => PureProp::negate(a.to_prop(vars, evars)),
        }
    }
}

fn prop(evars: bool) -> impl Strategy<Value = P> {
    let atom = (expr(evars), expr(evars), 0..4u8).prop_map(|(a, b, k)| match k {
        0 => P::Eq(a, b),
        1 => P::Ne(a, b),
        2 => P::Le(a, b),
        _ => P::Lt(a, b),
    });
    atom.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| P::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| P::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| P::Implies(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| P::Not(Box::new(a))),
        ]
    })
}

/// One step of a solver script.
#[derive(Debug, Clone)]
enum Op {
    /// Push a hypothesis (into the fact list and the e-graph alike).
    Push(P),
    /// Query a goal and demand three-way verdict agreement.
    Query(P),
    /// Solve evar `k` with a ground expression (if still unsolved):
    /// changes the solution fingerprint mid-script.
    Solve(usize, E),
    /// Push a checkpoint (variable state + fact count), mirroring the
    /// search engine's branch entry.
    Mark,
    /// Pop to the last checkpoint: roll the variable state back and
    /// truncate the facts and the e-graph in lockstep, mirroring branch
    /// exit.
    Back,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        prop(true).prop_map(Op::Push),
        prop(true).prop_map(Op::Query),
        prop(true).prop_map(Op::Query),
        (0..NUM_EVARS, expr(false)).prop_map(|(k, e)| Op::Solve(k, e)),
        Just(Op::Mark),
        Just(Op::Back),
    ]
}

fn run_script(ops: &[Op]) -> Result<(), TestCaseError> {
    // An interner scope keeps the verdict memo and version stamps live —
    // the memoized path must answer exactly what the uncached one would.
    let _scope = intern::scope();
    let mut ctx = VarCtx::new();
    let vars: Vec<VarId> = (0..NUM_VARS)
        .map(|i| ctx.fresh_var(Sort::Int, &format!("x{i}")))
        .collect();
    let evars: Vec<EVarId> = (0..NUM_EVARS).map(|_| ctx.fresh_evar(Sort::Int)).collect();

    let mut eg = EGraph::new();
    let mut facts: Vec<PureProp> = Vec::new();
    let mut marks = Vec::new();

    for o in ops {
        match o {
            Op::Push(p) => {
                let p = p.to_prop(&vars, &evars);
                facts.push(p.clone());
                eg.push_fact(p);
            }
            Op::Query(g) => {
                let g = g.to_prop(&vars, &evars);
                let legacy = PureSolver::new(&facts).prove_frozen(&mut ctx.clone(), &g);
                let incremental = eg.prove_frozen(&mut ctx.clone(), &g);
                prop_assert_eq!(
                    legacy,
                    incremental,
                    "incremental disagrees with legacy on {:?} from {:?}",
                    g,
                    facts
                );
                let fresh = EGraph::from_facts(&facts).prove_frozen(&mut ctx.clone(), &g);
                prop_assert_eq!(
                    incremental,
                    fresh,
                    "incremental e-graph disagrees with a fresh rebuild on {:?} from {:?}",
                    g,
                    facts
                );
                // The evar-instantiating mode must agree too (each side
                // works on its own context clone, so instantiation
                // attempts cannot leak between them).
                let legacy_u = PureSolver::new(&facts).prove(&mut ctx.clone(), &g);
                let incr_u = eg.prove(&mut ctx.clone(), &g);
                prop_assert_eq!(
                    legacy_u,
                    incr_u,
                    "prove (may-unify) disagrees on {:?} from {:?}",
                    g,
                    facts
                );
            }
            Op::Solve(k, e) => {
                if ctx.evar_unsolved(evars[*k]) {
                    let t = e.to_term(&vars, &[]);
                    ctx.solve_evar(evars[*k], t);
                }
            }
            Op::Mark => marks.push((ctx.checkpoint(), facts.len())),
            Op::Back => {
                if let Some((mark, n)) = marks.pop() {
                    ctx.rollback(&mark);
                    facts.truncate(n);
                    eg.truncate_facts(n);
                }
            }
        }
    }
    Ok(())
}

proptest! {
    /// Random scripts of pushes, queries, evar solutions, and
    /// checkpointed rollbacks: the incremental e-graph, a fresh e-graph
    /// rebuilt per query, and the legacy rebuild solver must agree on
    /// every verdict.
    #[test]
    fn egraph_matches_legacy_on_random_scripts(ops in prop::collection::vec(op(), 1..24)) {
        run_script(&ops)?;
    }
}

/// The solution fingerprint is content-based: solving, rolling back, and
/// re-solving an evar with the same term restores the same fingerprint,
/// and the solver keeps answering correctly across the churn.
#[test]
fn solution_fp_restored_across_rollback() {
    let _scope = intern::scope();
    let mut ctx = VarCtx::new();
    let z = ctx.fresh_var(Sort::Int, "z");
    let e = ctx.fresh_evar(Sort::Int);
    let mut eg = EGraph::new();
    eg.push_fact(PureProp::le(Term::evar(e), Term::var(z)));

    let fp0 = ctx.solution_fp();
    let mark = ctx.checkpoint();
    ctx.solve_evar(e, Term::int(3));
    let fp_solved = ctx.solution_fp();
    assert_ne!(fp0, fp_solved, "solving must move the fingerprint");
    assert!(eg.prove_frozen(&mut ctx, &PureProp::le(Term::int(3), Term::var(z))));

    ctx.rollback(&mark);
    assert_eq!(ctx.solution_fp(), fp0, "rollback must restore the fingerprint");
    assert!(!eg.prove_frozen(&mut ctx, &PureProp::le(Term::int(3), Term::var(z))));

    ctx.solve_evar(e, Term::int(3));
    assert_eq!(
        ctx.solution_fp(),
        fp_solved,
        "re-solving with the same term must reproduce the fingerprint"
    );
    assert!(eg.prove_frozen(&mut ctx, &PureProp::le(Term::int(3), Term::var(z))));
}
