//! Property-based tests for the hash-consing interner: under an active
//! scope, the memoized zonk/normalize/unify/subst paths must agree with
//! the legacy structural implementations on random terms and random
//! solve/checkpoint/rollback sequences, and `TermId` equality must
//! coincide with structural term equality.
//!
//! Scopes are thread-local, so installing one per property does not
//! interfere with proptest's parallel workers.

use diaframe_term::normalize::{normalize, normalize_structural};
use diaframe_term::{intern, unify, Sort, Subst, Term, VarCtx, VarId};
use proptest::prelude::*;

const NUM_VARS: usize = 3;
const NUM_EVARS: usize = 3;

/// A context with `NUM_VARS` universal variables and `NUM_EVARS`
/// unsolved evars (the evars are created last, so solutions mentioning
/// the variables are always in scope).
fn mixed_ctx() -> (VarCtx, Vec<VarId>, Vec<diaframe_term::EVarId>) {
    let mut ctx = VarCtx::new();
    let vars = (0..NUM_VARS)
        .map(|i| ctx.fresh_var(Sort::Int, &format!("x{i}")))
        .collect();
    let evars = (0..NUM_EVARS).map(|_| ctx.fresh_evar(Sort::Int)).collect();
    (ctx, vars, evars)
}

/// A linear integer expression over variables and evars.
#[derive(Debug, Clone)]
enum IExpr {
    Lit(i64),
    Var(usize),
    EVar(usize),
    Add(Box<IExpr>, Box<IExpr>),
    Sub(Box<IExpr>, Box<IExpr>),
    Neg(Box<IExpr>),
}

impl IExpr {
    fn to_term(&self, vars: &[VarId], evars: &[diaframe_term::EVarId]) -> Term {
        match self {
            IExpr::Lit(n) => Term::int(i128::from(*n)),
            IExpr::Var(i) => Term::var(vars[*i]),
            IExpr::EVar(i) => Term::evar(evars[*i]),
            IExpr::Add(a, b) => Term::add(a.to_term(vars, evars), b.to_term(vars, evars)),
            IExpr::Sub(a, b) => Term::sub(a.to_term(vars, evars), b.to_term(vars, evars)),
            IExpr::Neg(a) => Term::neg(a.to_term(vars, evars)),
        }
    }
}

fn iexpr(with_evars: bool) -> impl Strategy<Value = IExpr> {
    let mut leaves = vec![
        (-20i64..=20).prop_map(IExpr::Lit).boxed(),
        (0..NUM_VARS).prop_map(IExpr::Var).boxed(),
    ];
    if with_evars {
        leaves.push((0..NUM_EVARS).prop_map(IExpr::EVar).boxed());
    }
    proptest::strategy::Union::new(leaves).prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| IExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| IExpr::Sub(Box::new(a), Box::new(b))),
            inner.prop_map(|a| IExpr::Neg(Box::new(a))),
        ]
    })
}

/// One step of a random search-shaped mutation of the variable context.
#[derive(Debug, Clone)]
enum Op {
    /// Solve evar `i` (if still unsolved) with an evar-free term.
    Solve(usize, IExpr),
    /// Push a checkpoint.
    Checkpoint,
    /// Roll back to the most recent checkpoint, if any.
    Rollback,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0..NUM_EVARS), iexpr(false)).prop_map(|(i, e)| Op::Solve(i, e)),
        Just(Op::Checkpoint),
        Just(Op::Rollback),
    ]
}

/// Replays `script` against `ctx`, calling `probe` after every step.
fn run_script(
    ctx: &mut VarCtx,
    vars: &[VarId],
    evars: &[diaframe_term::EVarId],
    script: &[Op],
    mut probe: impl FnMut(&VarCtx),
) {
    let mut marks = Vec::new();
    for o in script {
        match o {
            Op::Solve(i, e) => {
                if ctx.evar_unsolved(evars[*i]) {
                    ctx.solve_evar(evars[*i], e.to_term(vars, &[]));
                }
            }
            Op::Checkpoint => marks.push(ctx.checkpoint()),
            Op::Rollback => {
                if let Some(mark) = marks.pop() {
                    ctx.rollback(&mark);
                }
            }
        }
        probe(ctx);
    }
}

proptest! {
    /// Memoized zonk agrees with the structural walk after every step of
    /// a random solve/checkpoint/rollback sequence — the exact pattern
    /// the search's probe loop produces, and the one the
    /// generation-keyed cache must survive.
    #[test]
    fn zonk_matches_structural_across_rollbacks(
        t in iexpr(true),
        script in prop::collection::vec(op(), 0..12),
    ) {
        let _scope = intern::scope();
        let (mut ctx, vars, evars) = mixed_ctx();
        let term = t.to_term(&vars, &evars);
        prop_assert_eq!(term.zonk(&ctx), term.zonk_structural(&ctx));
        let mut failures = Vec::new();
        run_script(&mut ctx, &vars, &evars, &script, |ctx| {
            let memo = term.zonk(ctx);
            let structural = term.zonk_structural(ctx);
            if memo != structural {
                failures.push((memo, structural));
            }
        });
        prop_assert!(failures.is_empty(), "memo/structural zonk diverged: {failures:?}");
    }

    /// Memoized normalisation agrees with the structural normaliser on
    /// random partially-solved terms.
    #[test]
    fn normalize_matches_structural(
        t in iexpr(true),
        script in prop::collection::vec(op(), 0..8),
    ) {
        let _scope = intern::scope();
        let (mut ctx, vars, evars) = mixed_ctx();
        let term = t.to_term(&vars, &evars);
        let mut failures = Vec::new();
        run_script(&mut ctx, &vars, &evars, &script, |ctx| {
            let memo = normalize(ctx, &term);
            let structural = normalize_structural(ctx, &term);
            if memo != structural {
                failures.push((memo, structural));
            }
        });
        prop_assert!(failures.is_empty(), "memo/structural normalize diverged: {failures:?}");
    }

    /// Unification behaves identically with and without an active
    /// interner scope: same verdict, same evar solutions.
    #[test]
    fn unify_agrees_with_structural(a in iexpr(true), b in iexpr(true)) {
        let (ctx, vars, evars) = mixed_ctx();
        let (ta, tb) = (a.to_term(&vars, &evars), b.to_term(&vars, &evars));

        let mut interned_ctx = ctx.clone();
        let interned = {
            let _scope = intern::scope();
            unify(&mut interned_ctx, &ta, &tb).is_ok()
        };

        let mut structural_ctx = ctx;
        prop_assert!(!intern::is_active());
        let structural = unify(&mut structural_ctx, &ta, &tb).is_ok();

        prop_assert_eq!(interned, structural);
        if interned {
            for e in &evars {
                prop_assert_eq!(
                    Term::evar(*e).zonk_structural(&interned_ctx),
                    Term::evar(*e).zonk_structural(&structural_ctx),
                    "evar solutions diverged between interned and structural unify"
                );
            }
        }
    }

    /// Substitution is oblivious to the interner: applying the same
    /// substitution inside and outside a scope yields equal terms.
    #[test]
    fn subst_agrees_with_structural(t in iexpr(true), env in prop::collection::vec(-50i64..=50, NUM_VARS)) {
        let (ctx, vars, evars) = mixed_ctx();
        let term = t.to_term(&vars, &evars);
        let mut s = Subst::new();
        for (v, n) in vars.iter().zip(&env) {
            s.insert(*v, Term::int(i128::from(*n)));
        }
        let outside = s.apply(&term);
        let inside = {
            let _scope = intern::scope();
            s.apply(&intern::canonical(&term))
        };
        prop_assert_eq!(outside, inside);
        let _ = ctx;
    }

    /// `TermId` equality coincides with structural term equality: the
    /// arena never conflates distinct terms and never duplicates equal
    /// ones.
    #[test]
    fn term_id_equality_iff_structural_equality(a in iexpr(true), b in iexpr(true)) {
        let _scope = intern::scope();
        let (_, vars, evars) = mixed_ctx();
        let (ta, tb) = (a.to_term(&vars, &evars), b.to_term(&vars, &evars));
        let (ia, ib) = (intern::term_id(&ta).unwrap(), intern::term_id(&tb).unwrap());
        prop_assert_eq!(ia == ib, ta == tb);
        // Resolution is the identity on interned terms.
        prop_assert_eq!(intern::resolve(ia).unwrap(), ta);
        prop_assert_eq!(intern::resolve(ib).unwrap(), tb);
    }
}
