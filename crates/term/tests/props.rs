//! Property-based tests for the term substrate: normalisation against an
//! independent evaluator, unification soundness and scope discipline,
//! pure-solver soundness against random models, and the rational/fraction
//! arithmetic laws.

use diaframe_term::normalize::{arith_eq, normalize};
use diaframe_term::qp::Rat;
use diaframe_term::solver::PureSolver;
use diaframe_term::{unify, PureProp, Qp, Sort, Subst, Term, VarCtx, VarId};
use proptest::prelude::*;

const NUM_VARS: usize = 3;

/// A fresh context with `NUM_VARS` integer variables.
fn int_ctx() -> (VarCtx, Vec<VarId>) {
    let mut ctx = VarCtx::new();
    let vars = (0..NUM_VARS)
        .map(|i| ctx.fresh_var(Sort::Int, &format!("x{i}")))
        .collect();
    (ctx, vars)
}

/// A symbolic linear integer expression paired with an independent
/// evaluator, so normalisation can be checked against direct arithmetic.
#[derive(Debug, Clone)]
enum IExpr {
    Lit(i64),
    Var(usize),
    Add(Box<IExpr>, Box<IExpr>),
    Sub(Box<IExpr>, Box<IExpr>),
    Neg(Box<IExpr>),
    /// Multiplication by a constant keeps the expression linear, which is
    /// the fragment the solver handles.
    Scale(i64, Box<IExpr>),
}

impl IExpr {
    fn to_term(&self, vars: &[VarId]) -> Term {
        match self {
            IExpr::Lit(n) => Term::int(i128::from(*n)),
            IExpr::Var(i) => Term::var(vars[*i]),
            IExpr::Add(a, b) => Term::add(a.to_term(vars), b.to_term(vars)),
            IExpr::Sub(a, b) => Term::sub(a.to_term(vars), b.to_term(vars)),
            IExpr::Neg(a) => Term::neg(a.to_term(vars)),
            IExpr::Scale(k, a) => Term::mul(Term::int(i128::from(*k)), a.to_term(vars)),
        }
    }

    fn eval(&self, env: &[i64]) -> i128 {
        match self {
            IExpr::Lit(n) => i128::from(*n),
            IExpr::Var(i) => i128::from(env[*i]),
            IExpr::Add(a, b) => a.eval(env) + b.eval(env),
            IExpr::Sub(a, b) => a.eval(env) - b.eval(env),
            IExpr::Neg(a) => -a.eval(env),
            IExpr::Scale(k, a) => i128::from(*k) * a.eval(env),
        }
    }
}

fn iexpr() -> impl Strategy<Value = IExpr> {
    let leaf = prop_oneof![
        (-20i64..=20).prop_map(IExpr::Lit),
        (0..NUM_VARS).prop_map(IExpr::Var),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| IExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| IExpr::Sub(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| IExpr::Neg(Box::new(a))),
            (-5i64..=5, inner).prop_map(|(k, a)| IExpr::Scale(k, Box::new(a))),
        ]
    })
}

fn env() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-50i64..=50, NUM_VARS)
}

/// A random linear comparison, with its truth value decidable under a model.
#[derive(Debug, Clone)]
enum IProp {
    Eq(IExpr, IExpr),
    Ne(IExpr, IExpr),
    Le(IExpr, IExpr),
    Lt(IExpr, IExpr),
}

impl IProp {
    fn to_prop(&self, vars: &[VarId]) -> PureProp {
        match self {
            IProp::Eq(a, b) => PureProp::eq(a.to_term(vars), b.to_term(vars)),
            IProp::Ne(a, b) => PureProp::ne(a.to_term(vars), b.to_term(vars)),
            IProp::Le(a, b) => PureProp::le(a.to_term(vars), b.to_term(vars)),
            IProp::Lt(a, b) => PureProp::lt(a.to_term(vars), b.to_term(vars)),
        }
    }

    fn eval(&self, env: &[i64]) -> bool {
        match self {
            IProp::Eq(a, b) => a.eval(env) == b.eval(env),
            IProp::Ne(a, b) => a.eval(env) != b.eval(env),
            IProp::Le(a, b) => a.eval(env) <= b.eval(env),
            IProp::Lt(a, b) => a.eval(env) < b.eval(env),
        }
    }
}

fn iprop() -> impl Strategy<Value = IProp> {
    (iexpr(), iexpr(), 0..4u8).prop_map(|(a, b, k)| match k {
        0 => IProp::Eq(a, b),
        1 => IProp::Ne(a, b),
        2 => IProp::Le(a, b),
        _ => IProp::Lt(a, b),
    })
}

fn ground_subst(vars: &[VarId], env: &[i64]) -> Subst {
    let mut s = Subst::new();
    for (v, n) in vars.iter().zip(env) {
        s.insert(*v, Term::int(i128::from(*n)));
    }
    s
}

proptest! {
    /// Normalisation agrees with direct evaluation: substituting a ground
    /// model into a linear term and normalising yields the same constant
    /// as evaluating the expression independently.
    #[test]
    fn normalize_matches_evaluator(e in iexpr(), env in env()) {
        let (ctx, vars) = int_ctx();
        let ground = ground_subst(&vars, &env).apply(&e.to_term(&vars));
        let nf = normalize(&ctx, &ground);
        prop_assert!(nf.is_constant());
        prop_assert_eq!(nf.constant, Rat::from_int(e.eval(&env)));
    }

    /// `arith_eq` is a congruence for the commutative-group laws the
    /// normaliser is supposed to quotient by.
    #[test]
    fn arith_eq_group_laws(a in iexpr(), b in iexpr(), c in iexpr()) {
        let (ctx, vars) = int_ctx();
        let (ta, tb, tc) = (a.to_term(&vars), b.to_term(&vars), c.to_term(&vars));
        // a + b = b + a
        prop_assert!(arith_eq(
            &ctx,
            &Term::add(ta.clone(), tb.clone()),
            &Term::add(tb.clone(), ta.clone())
        ));
        // (a + b) + c = a + (b + c)
        prop_assert!(arith_eq(
            &ctx,
            &Term::add(Term::add(ta.clone(), tb.clone()), tc.clone()),
            &Term::add(ta.clone(), Term::add(tb.clone(), tc.clone()))
        ));
        // a - b = a + (-b)
        prop_assert!(arith_eq(
            &ctx,
            &Term::sub(ta.clone(), tb.clone()),
            &Term::add(ta.clone(), Term::neg(tb.clone()))
        ));
        // a - a = 0
        prop_assert!(arith_eq(&ctx, &Term::sub(ta.clone(), ta), &Term::int(0)));
    }

    /// Unifying a fresh evar against any linear term succeeds and the
    /// solution is arithmetically equal to the term (soundness of the
    /// numeric-difference solving path).
    #[test]
    fn unify_solves_fresh_evar(e in iexpr()) {
        let (mut ctx, vars) = int_ctx();
        let t = e.to_term(&vars);
        let ev = ctx.fresh_evar(Sort::Int);
        unify(&mut ctx, &Term::evar(ev), &t).expect("fresh evar unifies with anything in scope");
        let solved = Term::evar(ev).zonk(&ctx);
        prop_assert!(arith_eq(&ctx, &solved, &t));
        // And the solved equation holds under every model.
        prop_assert!(arith_eq(&ctx, &Term::evar(ev).zonk(&ctx), &t.zonk(&ctx)));
    }

    /// Unification soundness: whenever `unify` succeeds on two linear
    /// terms (each seeded with an evar offset), the zonked sides are
    /// arithmetically equal.
    #[test]
    fn unify_success_implies_equal(a in iexpr(), b in iexpr()) {
        let (mut ctx, vars) = int_ctx();
        let ev = ctx.fresh_evar(Sort::Int);
        let ta = Term::add(a.to_term(&vars), Term::evar(ev));
        let tb = b.to_term(&vars);
        if unify(&mut ctx, &ta, &tb).is_ok() {
            prop_assert!(arith_eq(&ctx, &ta.zonk(&ctx), &tb.zonk(&ctx)));
        }
    }

    /// Scope discipline (§3.2 of the paper): an evar created at an outer
    /// level can never be solved with a term mentioning a deeper variable.
    #[test]
    fn unify_respects_scope_levels(offset in -10i64..=10) {
        let mut ctx = VarCtx::new();
        let ev = ctx.fresh_evar(Sort::Int);
        ctx.push_level();
        let deep = ctx.fresh_var(Sort::Int, "deep");
        let rhs = Term::add(Term::var(deep), Term::int(i128::from(offset)));
        prop_assert!(unify(&mut ctx, &Term::evar(ev), &rhs).is_err());
        prop_assert!(ctx.evar_unsolved(ev));
    }

    /// Checkpoint/rollback restores evar solutions exactly.
    #[test]
    fn rollback_restores_solutions(e in iexpr()) {
        let (mut ctx, vars) = int_ctx();
        let ev = ctx.fresh_evar(Sort::Int);
        let mark = ctx.checkpoint();
        unify(&mut ctx, &Term::evar(ev), &e.to_term(&vars)).unwrap();
        prop_assert!(!ctx.evar_unsolved(ev));
        ctx.rollback(&mark);
        prop_assert!(ctx.evar_unsolved(ev));
        prop_assert_eq!(ctx.num_evars(), 1);
    }

    /// Solver soundness against random models: pick a model first, keep
    /// only generated facts that are *true* in the model; then anything
    /// the solver proves from those facts must also be true in the model.
    #[test]
    fn solver_sound_in_random_model(
        candidates in prop::collection::vec(iprop(), 0..6),
        goal in iprop(),
        env in env(),
    ) {
        let (mut ctx, vars) = int_ctx();
        let facts: Vec<PureProp> = candidates
            .iter()
            .filter(|p| p.eval(&env))
            .map(|p| p.to_prop(&vars))
            .collect();
        let solver = PureSolver::new(&facts);
        // The model satisfies all facts, so the fact set is consistent.
        prop_assert!(!solver.inconsistent(&mut ctx));
        if solver.prove(&mut ctx, &goal.to_prop(&vars)) {
            prop_assert!(
                goal.eval(&env),
                "solver proved a goal refuted by the model {env:?}: {goal:?}"
            );
        }
    }

    /// Solver refutation soundness: if the solver derives `False` from a
    /// fact set, no model can satisfy all the facts. We check the
    /// contrapositive on the generating model.
    #[test]
    fn solver_never_refutes_satisfiable(
        candidates in prop::collection::vec(iprop(), 0..8),
        env in env(),
    ) {
        let (mut ctx, vars) = int_ctx();
        let facts: Vec<PureProp> = candidates
            .iter()
            .filter(|p| p.eval(&env))
            .map(|p| p.to_prop(&vars))
            .collect();
        prop_assert!(!PureSolver::new(&facts).inconsistent(&mut ctx));
    }

    /// The solver decides ground comparisons exactly (completeness on the
    /// variable-free fragment).
    #[test]
    fn solver_decides_ground_props(goal in iprop(), env in env()) {
        let (mut ctx, vars) = int_ctx();
        let s = ground_subst(&vars, &env);
        let ground_goal = goal.to_prop(&vars).subst(&s);
        let solver = PureSolver::new(&[]);
        prop_assert_eq!(solver.prove(&mut ctx, &ground_goal), goal.eval(&env));
        // `eval_ground` agrees too.
        prop_assert_eq!(ground_goal.eval_ground(&ctx), Some(goal.eval(&env)));
    }

    /// `negated` is a semantic complement.
    #[test]
    fn negated_is_complement(goal in iprop(), env in env()) {
        let (ctx, vars) = int_ctx();
        let s = ground_subst(&vars, &env);
        let p = goal.to_prop(&vars).subst(&s);
        let n = p.negated();
        prop_assert_eq!(n.eval_ground(&ctx), Some(!goal.eval(&env)));
    }

    /// Substitution by ground terms is idempotent.
    #[test]
    fn ground_substitution_idempotent(e in iexpr(), env in env()) {
        let (_, vars) = int_ctx();
        let s = ground_subst(&vars, &env);
        let once = s.apply(&e.to_term(&vars));
        prop_assert_eq!(s.apply(&once), once.clone());
        prop_assert!(once.is_ground());
    }
}

fn rat() -> impl Strategy<Value = Rat> {
    (-40i128..=40, 1i128..=12).prop_map(|(n, d)| Rat::new(n, d))
}

proptest! {
    /// Field laws of the rational arithmetic backing fractions and the
    /// Fourier–Motzkin solver.
    #[test]
    fn rat_field_laws(a in rat(), b in rat(), c in rat()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a * b) * c, a * (b * c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a - b, a + (-b));
        prop_assert_eq!(a + Rat::ZERO, a);
        prop_assert_eq!(a * Rat::ONE, a);
        if !a.is_zero() {
            prop_assert_eq!(a * a.recip(), Rat::ONE);
        }
    }

    /// Floor/ceil bracket the rational, and are exact on integers.
    #[test]
    fn rat_floor_ceil(a in rat()) {
        let f = Rat::from_int(a.floor());
        let c = Rat::from_int(a.ceil());
        prop_assert!(f <= a && a <= c);
        prop_assert!(a - f < Rat::ONE);
        prop_assert!(c - a < Rat::ONE);
        if let Some(n) = a.to_integer() {
            prop_assert_eq!(a.floor(), n);
            prop_assert_eq!(a.ceil(), n);
        }
    }

    /// Ordering is total and compatible with addition.
    #[test]
    fn rat_order_compatible(a in rat(), b in rat(), c in rat()) {
        if a <= b {
            prop_assert!(a + c <= b + c);
        }
        prop_assert!(a <= b || b <= a);
    }
}

fn qp() -> impl Strategy<Value = Qp> {
    (1i128..=30, 1i128..=12).prop_map(|(n, d)| Qp::new(n, d).expect("positive"))
}

proptest! {
    /// `Qp` (positive fractions): addition laws and subtraction as partial
    /// inverse — the algebra fractional permissions rely on.
    #[test]
    fn qp_laws(a in qp(), b in qp()) {
        prop_assert_eq!(a.checked_add(b), b.checked_add(a));
        let sum = a.checked_add(b);
        // (a + b) - b = a: subtraction inverts addition where defined.
        prop_assert_eq!(sum.checked_sub(b), Some(a));
        // a - a is not a positive fraction.
        prop_assert_eq!(a.checked_sub(a), None);
        // Positivity is preserved by addition.
        prop_assert!(sum.as_rat().is_positive());
    }

    /// Splitting a fraction in half twice reassembles to the original.
    #[test]
    fn qp_half_split(a in qp()) {
        let half = Qp::from_rat(a.as_rat() * Rat::new(1, 2)).expect("halving stays positive");
        prop_assert_eq!(half.checked_add(half), a);
    }
}
