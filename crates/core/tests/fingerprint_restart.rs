//! The engine fingerprint keys every persistent proof-store entry, so it
//! must be a pure function of the build and the semantics-affecting
//! environment — NOT of process identity, ASLR, wall time, or anything
//! else that changes across a daemon restart. These tests re-exec the
//! test binary to observe the fingerprint in genuinely fresh processes.

use std::process::Command;

const PRINT_ENV: &str = "DIAFRAME_FP_PRINT";

/// Helper, not a real test: when re-exec'd with `DIAFRAME_FP_PRINT` set,
/// prints the fingerprint for the parent test to capture. A no-op under
/// a normal `cargo test` run.
#[test]
fn helper_print_fingerprint() {
    if std::env::var(PRINT_ENV).is_ok() {
        println!("FINGERPRINT={}", diaframe_core::engine_fingerprint());
    }
}

/// Re-runs this test binary filtered to the helper above and extracts
/// the fingerprint it printed.
fn fingerprint_of_fresh_process(envs: &[(&str, &str)]) -> String {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = Command::new(exe);
    cmd.args(["helper_print_fingerprint", "--exact", "--nocapture"])
        .env(PRINT_ENV, "1");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("re-exec test binary");
    assert!(out.status.success(), "helper run failed: {out:?}");
    let stdout = String::from_utf8(out.stdout).expect("helper stdout is UTF-8");
    // The harness may interleave its own "test … ok" text around the
    // marker, so scan for the marker rather than whole lines.
    let at = stdout
        .find("FINGERPRINT=")
        .unwrap_or_else(|| panic!("helper did not print a fingerprint:\n{stdout}"));
    let hex = &stdout[at + "FINGERPRINT=".len()..];
    let end = hex
        .find(|c: char| !c.is_ascii_hexdigit())
        .unwrap_or(hex.len());
    hex[..end].to_owned()
}

#[test]
fn engine_fingerprint_is_stable_across_process_restart() {
    let first = fingerprint_of_fresh_process(&[]);
    let second = fingerprint_of_fresh_process(&[]);
    assert_eq!(
        first, second,
        "two fresh processes of the same build must agree on the fingerprint"
    );
    // The children inherit this process's environment, so the in-process
    // value must agree too (a store opened here hits entries a restarted
    // daemon wrote).
    assert_eq!(first, diaframe_core::engine_fingerprint());
    assert_eq!(first.len(), 64, "fingerprint is a SHA-256 hex digest");
}

#[test]
fn engine_fingerprint_tracks_semantics_env_across_processes() {
    // Flipping a semantics knob must move the fingerprint (stale store
    // entries recorded under other knob settings must miss) …
    let egraph_on = fingerprint_of_fresh_process(&[("DIAFRAME_EGRAPH", "1")]);
    let egraph_off = fingerprint_of_fresh_process(&[("DIAFRAME_EGRAPH", "0")]);
    assert_ne!(egraph_on, egraph_off, "DIAFRAME_EGRAPH must key the fingerprint");

    let spec_on = fingerprint_of_fresh_process(&[("DIAFRAME_SPECULATE", "1")]);
    let spec_off = fingerprint_of_fresh_process(&[("DIAFRAME_SPECULATE", "0")]);
    assert_ne!(spec_on, spec_off, "DIAFRAME_SPECULATE must key the fingerprint");

    // … and each setting must itself be restart-stable.
    assert_eq!(egraph_off, fingerprint_of_fresh_process(&[("DIAFRAME_EGRAPH", "0")]));
}
