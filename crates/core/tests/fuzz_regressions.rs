//! Minimized regressions from the soundness-fuzzing campaign.
//!
//! Each fixture is the shrunken form of an adversarial trace mutant (or
//! a hand-derived minimal cousin) that probes a checker rule the
//! original example-suite traces never exercised adversarially. They
//! are committed so the rules can never regress silently: every
//! rejection here is a soundness obligation, not a style preference.
//!
//! Provenance note: the `fuzz_driver` campaign at the CI seed currently
//! kills every certified mutant, so these fixtures were minimized with
//! `diaframe_core::fuzz::shrink_steps` from *would-be* survivors of
//! deliberately weakened checker builds (each family below was found to
//! depend on exactly one guard while developing the mutator).

use diaframe_core::checker::{self, CheckError};
use diaframe_core::fuzz::trace_of_steps;
use diaframe_core::TraceStep;
use diaframe_logic::Namespace;
use diaframe_term::{PureProp, Sort, Term, VarCtx};

fn ns(s: &str) -> Namespace {
    Namespace::new(s)
}

/// The truncate-after-open family, minimized: a lone `InvOpened` with
/// no matching close must be rejected at end of trace.
#[test]
fn open_invariant_at_end_of_trace_is_rejected() {
    let steps = vec![TraceStep::InvOpened { ns: ns("N") }];
    let err = checker::check(&trace_of_steps(&steps)).unwrap_err();
    assert!(
        err.message.contains("open"),
        "unexpected rejection reason: {}",
        err.message
    );
}

/// The same family inside a branch: the leak must be caught at the
/// `BranchEnd` boundary, not deferred to the end of the trace.
#[test]
fn open_invariant_at_branch_end_is_rejected() {
    let steps = vec![
        TraceStep::CaseSplit {
            on: "b".into(),
            branches: 1,
        },
        TraceStep::BranchStart { index: 0 },
        TraceStep::InvOpened { ns: ns("N") },
        TraceStep::BranchEnd { index: 0 },
    ];
    let err = checker::check(&trace_of_steps(&steps)).unwrap_err();
    // The violation is the branch's final step.
    assert_eq!(err.step, 3);
}

/// …but a *vacuous* branch (one that derived `False`) may abandon its
/// obligations: `ex falso` discharges the close. This is the exemption
/// the `drop-step` mutant family kept colliding with until the checker
/// tracked vacuity per frame.
#[test]
fn vacuous_branch_may_abandon_an_open_invariant() {
    let steps = vec![
        TraceStep::CaseSplit {
            on: "b".into(),
            branches: 1,
        },
        TraceStep::BranchStart { index: 0 },
        TraceStep::InvOpened { ns: ns("N") },
        TraceStep::Contradiction {
            rule: "locked-unique".into(),
        },
        TraceStep::BranchEnd { index: 0 },
    ];
    assert!(checker::check(&trace_of_steps(&steps)).is_ok());
}

/// The widen-mask family, minimized: closing a namespace that is not
/// the one that was opened must be rejected — accepting it would let a
/// proof re-enter the still-open invariant (the reentrancy §3.3 guards
/// against).
#[test]
fn closing_a_different_namespace_is_rejected() {
    let steps = vec![
        TraceStep::InvOpened { ns: ns("M") },
        TraceStep::InvClosed { ns: ns("N") },
    ];
    let err = checker::check(&trace_of_steps(&steps)).unwrap_err();
    assert_eq!(err.step, 1);
}

/// The reorder family, minimized: a close *before* its open is not a
/// balanced window, even though the multiset of steps matches a valid
/// trace exactly.
#[test]
fn close_before_open_is_rejected() {
    let steps = vec![
        TraceStep::InvClosed { ns: ns("N") },
        TraceStep::InvOpened { ns: ns("N") },
    ];
    let err = checker::check(&trace_of_steps(&steps)).unwrap_err();
    assert_eq!(err.step, 0);
}

/// The duplicate-step family on invariant opens: opening the same
/// namespace twice in one window is the reentrancy hole itself.
#[test]
fn reopening_an_open_namespace_is_rejected() {
    let steps = vec![
        TraceStep::InvOpened { ns: ns("N") },
        TraceStep::InvOpened { ns: ns("N") },
        TraceStep::InvClosed { ns: ns("N") },
        TraceStep::InvClosed { ns: ns("N") },
    ];
    let err = checker::check(&trace_of_steps(&steps)).unwrap_err();
    assert_eq!(err.step, 1);
}

/// The corrupt-evar family, minimized: a recorded pure obligation whose
/// variable snapshot carries a *wrong* evar solution must fail
/// re-validation. (The fuzz generator emits the healthy twin of this
/// fixture; the mutant bumps the solution by one.)
#[test]
fn corrupted_evar_solution_fails_reproof() {
    let mut vars = VarCtx::new();
    let e = vars.push_raw_evar(Sort::Int, 0, Some(Term::int(4)));
    let healthy = TraceStep::PureObligation {
        facts: Vec::new(),
        goal: PureProp::eq(Term::evar(e), Term::int(3)),
        vars: vars.clone(),
    };
    // goal says ?e = 3 but the snapshot solves ?e := 4.
    let err = checker::check(&trace_of_steps(&[healthy])).unwrap_err();
    assert_eq!(err.step, 0);

    let mut vars = VarCtx::new();
    let e = vars.push_raw_evar(Sort::Int, 0, Some(Term::int(3)));
    let healthy = TraceStep::PureObligation {
        facts: Vec::new(),
        goal: PureProp::eq(Term::evar(e), Term::int(3)),
        vars,
    };
    assert!(checker::check(&trace_of_steps(&[healthy])).is_ok());
}

/// The retarget-hyp family, minimized: an obligation whose fact list
/// was swapped out from under it must fail — the checker re-proves from
/// the *recorded* facts, not from trust.
#[test]
fn obligation_with_retargeted_facts_fails_reproof() {
    let mut vars = VarCtx::new();
    let x = vars.fresh_var(Sort::Int, "x");
    let steps = vec![TraceStep::PureObligation {
        facts: vec![PureProp::lt(Term::int(5), Term::var(x))],
        goal: PureProp::lt(Term::var(x), Term::int(5)),
        vars,
    }];
    let err = checker::check(&trace_of_steps(&steps)).unwrap_err();
    assert_eq!(err.step, 0);
}

/// The unbalance-branch family, minimized: a `BranchStart` with no
/// enclosing `CaseSplit` never completes, so the checker reports the
/// dangling branch at the end-of-trace boundary (one past the last
/// step).
#[test]
fn orphan_branch_start_is_rejected() {
    let steps = vec![TraceStep::BranchStart { index: 0 }];
    let err = checker::check(&trace_of_steps(&steps)).unwrap_err();
    assert_eq!(err.step, steps.len());
}

/// Malformed certificate text is a *decode* failure, reported on the
/// `DECODE_STEP` sentinel — never conflated with a replay step index.
#[test]
fn malformed_json_uses_the_decode_sentinel() {
    let err = checker::check_json("{ not json").unwrap_err();
    assert_eq!(err.step, CheckError::DECODE_STEP);
    assert!(err.is_decode());
}
