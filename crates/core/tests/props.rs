//! Property-based tests for the proof-search core: the fuzz generator's
//! traces against the JSON codec and both checkers, `VarCtx` solve-event
//! monotonicity under arbitrary op sequences, and `HeadSet` lookup
//! consistency against an independent reachability model.

use diaframe_core::checker;
use diaframe_core::fuzz::{gen_trace, spec_check, trace_of_steps};
use diaframe_core::trace_json::{trace_from_json, trace_to_json};
use diaframe_core::HeadSet;
use diaframe_logic::{Assertion, Atom, Binder, GhostAtom, GhostKind, MaskT, Namespace, PredId};
use diaframe_term::evar::VarCtxMark;
use diaframe_term::{Sort, Term, VarCtx};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Generated traces: valid by construction, byte-stable through the
// codec, and verdict-identical through every checking path.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn generated_traces_check_and_round_trip(seed in 0u64..=u64::MAX, index in 0usize..48) {
        let trace = gen_trace(seed, index);
        // Valid by construction, under both the checker and the spec.
        prop_assert!(checker::check(&trace).is_ok());
        prop_assert!(spec_check(trace.steps()).is_ok());
        // Byte-stable codec round-trip.
        let json = trace_to_json(&trace);
        let decoded = trace_from_json(&json).expect("generated trace decodes");
        prop_assert_eq!(trace_to_json(&decoded), json.clone());
        // The codec path reaches the same verdict as the in-memory path.
        prop_assert_eq!(checker::check_json(&json), checker::check(&trace));
        // Decoding preserves the steps the checker actually replays.
        prop_assert!(checker::check(&trace_of_steps(decoded.steps())).is_ok());
    }
}

// ---------------------------------------------------------------------
// VarCtx: `solve_events` is a monotone counter — unaffected by
// rollback, incremented exactly once per solve.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum CtxOp {
    FreshVar,
    FreshEvar,
    PushLevel,
    /// Solve the `n % unsolved.len()`-th unsolved evar (no-op if none).
    Solve(usize),
    Checkpoint,
    /// Roll back to the most recent checkpoint (no-op if none).
    Rollback,
}

fn ctx_op() -> impl Strategy<Value = CtxOp> {
    prop_oneof![
        Just(CtxOp::FreshVar),
        Just(CtxOp::FreshEvar),
        Just(CtxOp::PushLevel),
        (0usize..8).prop_map(CtxOp::Solve),
        Just(CtxOp::Checkpoint),
        Just(CtxOp::Rollback),
    ]
}

proptest! {
    #[test]
    fn solve_events_are_monotone_and_survive_rollback(
        ops in prop::collection::vec(ctx_op(), 1..40)
    ) {
        let mut ctx = VarCtx::new();
        // (mark, #evars at mark, solved flags at mark)
        let mut marks: Vec<(VarCtxMark, usize, Vec<bool>)> = Vec::new();
        let mut evars = Vec::new();
        let mut solved: Vec<bool> = Vec::new();
        let mut performed = 0u64;
        let mut last = ctx.solve_events();
        prop_assert_eq!(last, 0);
        for op in ops {
            match op {
                CtxOp::FreshVar => {
                    ctx.fresh_var(Sort::Int, "x");
                }
                CtxOp::FreshEvar => {
                    evars.push(ctx.fresh_evar(Sort::Int));
                    solved.push(false);
                }
                CtxOp::PushLevel => {
                    ctx.push_level();
                }
                CtxOp::Solve(n) => {
                    let unsolved: Vec<usize> =
                        (0..evars.len()).filter(|&i| !solved[i]).collect();
                    if !unsolved.is_empty() {
                        let i = unsolved[n % unsolved.len()];
                        ctx.solve_evar(evars[i], Term::int(7));
                        solved[i] = true;
                        performed += 1;
                    }
                }
                CtxOp::Checkpoint => {
                    marks.push((ctx.checkpoint(), evars.len(), solved.clone()));
                }
                CtxOp::Rollback => {
                    if let Some((mark, n_evars, old_solved)) = marks.pop() {
                        ctx.rollback(&mark);
                        evars.truncate(n_evars);
                        solved = old_solved;
                    }
                }
            }
            let now = ctx.solve_events();
            prop_assert!(now >= last, "solve_events went backwards: {last} -> {now}");
            last = now;
        }
        // The counter records search effort, not surviving solutions:
        // exactly one event per solve, rollbacks notwithstanding.
        prop_assert_eq!(last, performed);
    }
}

// ---------------------------------------------------------------------
// HeadSet: `of` + `may_key` agree with an independent reachability
// model of the recursive hint closure.
// ---------------------------------------------------------------------

/// The leaf shapes the model can reach, mirroring `goal_head`'s taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LeafKind {
    PointsTo,
    Ghost,
    Pred(usize),
    Inv(usize),
    CloseInv(usize),
    Pure,
}

/// A model assertion: leaves plus the combinators `HeadSet` walks.
#[derive(Debug, Clone)]
enum HAssn {
    Leaf(LeafKind),
    /// An invariant leaf with a structured interior.
    Inv(usize, Box<HAssn>),
    Later(Box<HAssn>),
    /// Wand: the premise must contribute nothing on the hypothesis side.
    Wand(Box<HAssn>, Box<HAssn>),
    FUpd(Box<HAssn>),
    Forall(Box<HAssn>),
    Sep(Box<HAssn>, Box<HAssn>),
    Exists(Box<HAssn>),
    Or(Box<HAssn>, Box<HAssn>),
}

fn leaf_kind() -> impl Strategy<Value = LeafKind> {
    prop_oneof![
        Just(LeafKind::PointsTo),
        Just(LeafKind::Ghost),
        (0usize..3).prop_map(LeafKind::Pred),
        (0usize..2).prop_map(LeafKind::Inv),
        (0usize..2).prop_map(LeafKind::CloseInv),
        Just(LeafKind::Pure),
    ]
}

fn hassn() -> impl Strategy<Value = HAssn> {
    let leaf = leaf_kind().prop_map(HAssn::Leaf);
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (0usize..2, inner.clone()).prop_map(|(ns, b)| HAssn::Inv(ns, Box::new(b))),
            inner.clone().prop_map(|a| HAssn::Later(Box::new(a))),
            (inner.clone(), inner.clone())
                .prop_map(|(p, c)| HAssn::Wand(Box::new(p), Box::new(c))),
            inner.clone().prop_map(|a| HAssn::FUpd(Box::new(a))),
            inner.clone().prop_map(|a| HAssn::Forall(Box::new(a))),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| HAssn::Sep(Box::new(l), Box::new(r))),
            inner.clone().prop_map(|a| HAssn::Exists(Box::new(a))),
            (inner.clone(), inner).prop_map(|(l, r)| HAssn::Or(Box::new(l), Box::new(r))),
        ]
    })
}

struct Fixtures {
    preds: Vec<PredId>,
    pred_table: diaframe_logic::PredTable,
    namespaces: Vec<Namespace>,
}

fn fixtures() -> Fixtures {
    let mut pred_table = diaframe_logic::PredTable::new();
    let preds = (0..3)
        .map(|i| pred_table.fresh_plain(&format!("P{i}")))
        .collect();
    Fixtures {
        preds,
        pred_table,
        namespaces: vec![Namespace::new("HsA"), Namespace::new("HsB")],
    }
}

fn leaf_atom(k: LeafKind, fx: &Fixtures) -> Option<Atom> {
    match k {
        LeafKind::PointsTo => Some(Atom::points_to(Term::Loc(0), Term::v_unit())),
        LeafKind::Ghost => Some(Atom::Ghost(GhostAtom {
            kind: GhostKind { id: 9, name: "tok" },
            gname: Term::Loc(1),
            pred: None,
            args: Vec::new(),
        })),
        LeafKind::Pred(i) => Some(Atom::PredApp {
            pred: fx.preds[i],
            args: Vec::new(),
        }),
        LeafKind::Inv(i) => Some(Atom::invariant(
            fx.namespaces[i].clone(),
            Assertion::pure(diaframe_term::PureProp::True),
        )),
        LeafKind::CloseInv(i) => Some(Atom::CloseInv {
            ns: fx.namespaces[i].clone(),
        }),
        LeafKind::Pure => None,
    }
}

fn to_assertion(a: &HAssn, fx: &Fixtures, vars: &mut VarCtx) -> Assertion {
    match a {
        HAssn::Leaf(LeafKind::Pure) => Assertion::pure(diaframe_term::PureProp::True),
        HAssn::Leaf(k) => Assertion::atom(leaf_atom(*k, fx).expect("non-pure leaf")),
        HAssn::Inv(i, body) => Assertion::atom(Atom::invariant(
            fx.namespaces[*i].clone(),
            to_assertion(body, fx, vars),
        )),
        HAssn::Later(x) => Assertion::later(to_assertion(x, fx, vars)),
        HAssn::Wand(p, c) => {
            Assertion::wand(to_assertion(p, fx, vars), to_assertion(c, fx, vars))
        }
        HAssn::FUpd(x) => {
            Assertion::fupd(MaskT::top(), MaskT::top(), to_assertion(x, fx, vars))
        }
        HAssn::Forall(x) => {
            let v = vars.fresh_var(Sort::Int, "hq");
            Assertion::forall(Binder::new(v), to_assertion(x, fx, vars))
        }
        HAssn::Sep(l, r) => {
            Assertion::sep(to_assertion(l, fx, vars), to_assertion(r, fx, vars))
        }
        HAssn::Exists(x) => {
            let v = vars.fresh_var(Sort::Int, "he");
            Assertion::exists(Binder::new(v), to_assertion(x, fx, vars))
        }
        HAssn::Or(l, r) => {
            Assertion::or(to_assertion(l, fx, vars), to_assertion(r, fx, vars))
        }
    }
}

/// Independent model of the hypothesis-side closure: which leaves can
/// the recursive hint search reach? `left_goal` flips to the
/// opened-invariant descent, which walks a *different* set of
/// combinators (`∃`/`∗`/`▷` instead of `−∗`/`|⇛`/`∀`).
fn reachable(a: &HAssn, left_goal: bool, out: &mut Vec<LeafKind>) {
    match a {
        HAssn::Leaf(k) if *k != LeafKind::Pure => out.push(*k),
        HAssn::Inv(i, body) => {
            out.push(LeafKind::Inv(*i));
            // Opening descends into the body with left-goal rules.
            reachable(body, true, out);
        }
        HAssn::Later(x) => reachable(x, left_goal, out),
        HAssn::Wand(_, c) if !left_goal => reachable(c, false, out),
        HAssn::FUpd(x) if !left_goal => reachable(x, false, out),
        HAssn::Forall(x) if !left_goal => reachable(x, false, out),
        HAssn::Sep(l, r) if left_goal => {
            reachable(l, true, out);
            reachable(r, true, out);
        }
        HAssn::Exists(x) if left_goal => reachable(x, true, out),
        _ => {}
    }
}

/// What the model says `may_key` must answer for `goal`.
fn model_may_key(reach: &[LeafKind], goal: &LeafKind, custom: bool) -> bool {
    if reach.contains(&LeafKind::Ghost) || (custom && !reach.is_empty()) {
        return true;
    }
    match goal {
        LeafKind::PointsTo => reach.contains(&LeafKind::PointsTo),
        LeafKind::Ghost => false,
        k @ (LeafKind::Pred(_) | LeafKind::Inv(_) | LeafKind::CloseInv(_)) => {
            reach.contains(k)
        }
        LeafKind::Pure => false,
    }
}

proptest! {
    #[test]
    fn headset_matches_reachability_model(a in hassn()) {
        let fx = fixtures();
        let mut vars = VarCtx::new();
        let hs = HeadSet::of(&to_assertion(&a, &fx, &mut vars));
        let mut reach = Vec::new();
        reachable(&a, false, &mut reach);

        let probes = [
            LeafKind::PointsTo,
            LeafKind::Ghost,
            LeafKind::Pred(0),
            LeafKind::Pred(1),
            LeafKind::Pred(2),
            LeafKind::Inv(0),
            LeafKind::Inv(1),
            LeafKind::CloseInv(0),
            LeafKind::CloseInv(1),
        ];
        for goal in probes {
            let atom = leaf_atom(goal, &fx).expect("probe goals are atoms");
            for custom in [false, true] {
                prop_assert_eq!(
                    hs.may_key(&atom, custom),
                    model_may_key(&reach, &goal, custom),
                    "goal {:?} custom={} reach={:?} (preds use {:?})",
                    goal, custom, reach, fx.pred_table.info(fx.preds[0]).name
                );
            }
        }
    }
}
