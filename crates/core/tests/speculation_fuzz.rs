//! Speculative branch search against the fuzz generator: random
//! entailments (a fifth of which carry a hypothesis disjunction, i.e. a
//! real 2-way case split) must produce the same verdict and
//! byte-identical trace JSON whether the second branch runs on a
//! speculative worker or inline — and a tactic that *panics* inside a
//! branch must surface the same panic payload in both modes (a worker
//! panic is never swallowed: the spawner discards the speculation and
//! re-runs the branch serially, reproducing the panic deterministically).
//!
//! `speculate::force_disable` and the budget are process-global, so all
//! tests in this binary serialize on a file-local lock.

use diaframe_core::fuzz::{gen_entailment, search_once, GenConfig};
use diaframe_core::trace_json::trace_to_json;
use diaframe_core::{speculate, TelemetrySession};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard};

static CONFIG_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    CONFIG_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One case, both modes: speculation allowed under a 4-unit budget,
/// then forced serial. Returns `(speculative, serial)` results.
fn both_modes(
    seed: u64,
    index: usize,
    cfg: &GenConfig,
) -> (
    diaframe_core::fuzz::SearchResult,
    diaframe_core::fuzz::SearchResult,
) {
    let budget = diaframe_core::budget_scope(4);
    let speculative = search_once(seed, index, cfg);
    drop(budget);
    speculate::force_disable(true);
    let serial = search_once(seed, index, cfg);
    speculate::force_disable(false);
    (speculative, serial)
}

fn assert_identical(seed: u64, index: usize) {
    let (spec, serial) = both_modes(seed, index, &GenConfig::default());
    assert_eq!(
        spec.proved, serial.proved,
        "case ({seed:#x},{index}): verdict differs between speculative and serial search"
    );
    match (&spec.trace, &serial.trace) {
        (Some(a), Some(b)) => assert_eq!(
            trace_to_json(a),
            trace_to_json(b),
            "case ({seed:#x},{index}): trace JSON differs between speculative and serial search"
        ),
        (None, None) => {}
        _ => unreachable!("verdicts agree but trace presence differs"),
    }
}

proptest! {
    /// Random cases: the speculative engine is trace-identical to the
    /// serial one on arbitrary generated entailments.
    #[test]
    fn speculative_search_is_trace_identical(seed in 0u64..=u64::MAX, index in 0usize..48) {
        let _lock = lock();
        assert_identical(seed, index);
    }
}

/// A fixed corpus at the campaign seed, run under a telemetry session:
/// beyond per-case identity, the aggregate counters must show that
/// speculation actually fired (otherwise this file tests nothing) and
/// that every spawn was resolved (`spec_spawned == spec_won +
/// spec_cancelled`).
#[test]
fn campaign_corpus_is_trace_identical_and_speculation_fires() {
    let _lock = lock();
    let session = TelemetrySession::new("speculation-fuzz");
    let guard = session.install();
    for index in 0..96 {
        assert_identical(0xD1AF, index);
    }
    drop(guard);
    session.flush();
    let snap = session.snapshot();
    assert!(
        snap.spec_spawned > 0,
        "no case in the corpus triggered speculation — widen the corpus"
    );
    snap.check_invariants()
        .unwrap_or_else(|e| panic!("speculation counters violate invariants: {e}"));
}

/// A tactic that panics while a case split is being searched: the panic
/// payload observed by the caller must be identical whether the
/// panicking branch ran inline or on a speculative worker.
#[test]
fn branch_panic_payload_is_mode_independent() {
    use diaframe_core::spec::SpecTable;
    use diaframe_core::strategy::Engine;
    use diaframe_ghost::Registry;

    let _lock = lock();
    // The default hook would print a backtrace for every injected panic
    // (including the speculative worker's); silence it for this test
    // and restore it after.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let run = |speculative: bool| -> Result<String, String> {
        speculate::force_disable(!speculative);
        let budget = diaframe_core::budget_scope(4);
        // A case-split probe that detonates as soon as any branch gets
        // stuck enough to consult the tactic list.
        let opts = diaframe_core::fuzz::fuzz_options().with_case_split("detonator", |_| {
            panic!("injected tactic panic")
        });
        let registry = Registry::standard();
        let specs = SpecTable::new();
        // Scan generated cases for one whose search consults the
        // tactic: unprovable cases with a hypothesis disjunction reach
        // a stuck branch inside a case split.
        let cfg = GenConfig { provable_pct: 0 };
        let mut observed = Err("no case panicked".to_owned());
        for index in 0..64 {
            let case = gen_entailment(0xD1AF, index, &cfg);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut engine = Engine::new(&registry, &specs, &opts);
                engine.solve(case.ctx, case.goal).is_ok()
            }));
            if let Err(payload) = outcome {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_owned());
                observed = Ok(format!("case {index}: {msg}"));
                break;
            }
        }
        drop(budget);
        speculate::force_disable(false);
        observed
    };

    let speculative = run(true);
    let serial = run(false);
    std::panic::set_hook(prev_hook);

    let speculative = speculative.expect("no generated case consulted the panicking tactic");
    let serial = serial.expect("no generated case consulted the panicking tactic (serial)");
    assert_eq!(
        speculative, serial,
        "panic payload (and the case producing it) must not depend on speculation"
    );
    assert!(
        speculative.contains("injected tactic panic"),
        "payload must be the injected one, verbatim: {speculative}"
    );
}
