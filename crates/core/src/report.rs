//! Stuck-state reports — the interactive fallback of §2.2.
//!
//! When the strategy cannot make progress it stops (it never backtracks
//! globally) and produces a [`Stuck`] report rendering the proof state in
//! the style of the Iris Proof Mode display shown in §2.2 of the paper:
//! the pure context, the persistent hypotheses, the spatial hypotheses,
//! and the remaining goal.

use crate::ctx::ProofCtx;
use crate::telemetry::DiagSnapshot;
use diaframe_logic::display::pp_assertion;
use diaframe_term::display::pp_prop;
use std::fmt;

/// A stuck proof state.
#[derive(Debug, Clone)]
pub struct Stuck {
    /// Why the engine stopped.
    pub reason: String,
    /// The proof context at the stuck point (cloned).
    pub ctx: ProofCtx,
    /// A rendering of the remaining goal.
    pub goal: String,
    /// The head of the goal atom no hypothesis could key, when the
    /// engine stopped inside hint search (`goal_head` taxonomy).
    pub unmatched_head: Option<String>,
    /// Search-effort diagnostics, captured from the ambient
    /// [`TelemetrySession`](crate::telemetry::TelemetrySession) at the
    /// stuck point; `None` when no session was installed.
    pub diag: Option<DiagSnapshot>,
}

impl Stuck {
    /// Renders the proof state like the Iris Proof Mode.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let bar = "─".repeat(72);
        for f in &self.ctx.facts {
            let f = f.zonk(&self.ctx.vars);
            out.push_str(&format!("{}\n", pp_prop(&self.ctx.vars, &f)));
        }
        out.push_str(&bar);
        out.push('\n');
        let mut wrote_persistent = false;
        for h in &self.ctx.delta {
            if h.persistent {
                let a = h.assertion.zonk(&self.ctx.vars);
                out.push_str(&format!(
                    "\"{}\" : {}\n",
                    h.name,
                    pp_assertion(&self.ctx.vars, &self.ctx.preds, &a)
                ));
                wrote_persistent = true;
            }
        }
        if wrote_persistent {
            out.push_str(&"╌".repeat(72));
            out.push_str("□\n");
        }
        for h in &self.ctx.delta {
            if !h.persistent {
                let a = h.assertion.zonk(&self.ctx.vars);
                out.push_str(&format!(
                    "\"{}\" : {}\n",
                    h.name,
                    pp_assertion(&self.ctx.vars, &self.ctx.preds, &a)
                ));
            }
        }
        out.push_str(&"╌".repeat(72));
        out.push_str("∗\n");
        out.push_str(&self.goal);
        out.push('\n');
        out.push_str(&format!("(stuck: {})\n", self.reason));
        out
    }

    /// Renders the proof state plus the structured search diagnostics:
    /// the unmatched goal head, the top hypotheses by failed-probe
    /// count, the goal heads the search missed entirely, and the
    /// search-effort counters. The plain [`render`](Self::render)
    /// output is a byte-identical prefix of this one.
    #[must_use]
    pub fn render_explain(&self) -> String {
        const TOP_K: usize = 5;
        let mut out = self.render();
        out.push_str(&"═".repeat(72));
        out.push('\n');
        out.push_str("search diagnostics\n");
        match &self.unmatched_head {
            Some(head) => out.push_str(&format!("unmatched goal head: {head}\n")),
            None => out.push_str("unmatched goal head: (engine did not stop in hint search)\n"),
        }
        let Some(diag) = &self.diag else {
            out.push_str(
                "(no telemetry session was active; set DIAFRAME_TELEMETRY or use \
                 `figure6 --explain` to capture counters)\n",
            );
            return out;
        };
        let c = &diag.counters;
        if diag.failed_probes.is_empty() {
            out.push_str("no hypothesis was probed and rejected\n");
        } else {
            out.push_str(&format!(
                "hypotheses by failed probes (top {}):\n",
                TOP_K.min(diag.failed_probes.len())
            ));
            for (name, n) in diag.failed_probes.iter().take(TOP_K) {
                out.push_str(&format!("  \"{name}\" : {n} failed probe(s)\n"));
            }
        }
        if !diag.missed_heads.is_empty() {
            out.push_str("goal heads with no keying hypothesis:\n");
            for (head, n) in diag.missed_heads.iter().take(TOP_K) {
                out.push_str(&format!("  {head} : {n} miss(es)\n"));
            }
        }
        out.push_str(&format!(
            "probes: {} attempted, {} skipped by index, {} run, {} matched\n",
            c.probes_attempted, c.probes_skipped, c.probes_indexed_hit, c.probes_matched
        ));
        out.push_str(&format!(
            "rule applications: {} ({} hints, {} invariant openings)\n",
            c.rule_applications(),
            c.hints_applied(),
            c.inv_openings()
        ));
        out.push_str(&format!(
            "backtracks: {} (deepest abandoned branch: {} step(s)), evar solves: {}\n",
            c.backtracks, c.deepest_abandoned, c.evar_solve_events
        ));
        out
    }
}

impl fmt::Display for Stuck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl std::error::Error for Stuck {}

#[cfg(test)]
mod tests {
    use super::*;
    use diaframe_logic::{Assertion, Atom, PredTable};
    use diaframe_term::{PureProp, Sort, Term};

    #[test]
    fn render_contains_all_sections() {
        let mut ctx = ProofCtx::new(PredTable::new());
        let z = Term::var(ctx.vars.fresh_var(Sort::Int, "z"));
        ctx.add_fact(PureProp::lt(Term::int(0), z.clone()));
        ctx.add_hyp(
            Assertion::atom(Atom::invariant(
                "N".into(),
                Assertion::pure(PureProp::True),
            )),
            true,
        );
        ctx.add_hyp(
            Assertion::atom(Atom::points_to(Term::Loc(0), Term::v_int(z))),
            false,
        );
        let stuck = Stuck {
            reason: "no hint found".into(),
            ctx,
            goal: "WP … {{ … }}".into(),
            unmatched_head: None,
            diag: None,
        };
        let r = stuck.render();
        assert!(r.contains("0 < z0"));
        assert!(r.contains("inv N"));
        assert!(r.contains("↦"));
        assert!(r.contains("no hint found"));
        assert!(r.contains('□'));
    }

    #[test]
    fn render_explain_extends_render_with_diagnostics() {
        let mut diag = crate::telemetry::DiagSnapshot {
            failed_probes: vec![("Hlock".into(), 7), ("Hcnt".into(), 2)],
            missed_heads: vec![("pred is_lock".into(), 3)],
            ..Default::default()
        };
        diag.counters.probes_attempted = 12;
        diag.counters.probes_skipped = 3;
        diag.counters.probes_indexed_hit = 9;
        let stuck = Stuck {
            reason: "no bi-abduction hint applies".into(),
            ctx: ProofCtx::new(PredTable::new()),
            goal: "pred is_lock".into(),
            unmatched_head: Some("pred is_lock".into()),
            diag: Some(diag),
        };
        let r = stuck.render_explain();
        // The plain rendering is a byte-identical prefix.
        assert!(r.starts_with(&stuck.render()));
        assert!(r.contains("unmatched goal head: pred is_lock"));
        assert!(r.contains("\"Hlock\" : 7 failed probe(s)"));
        assert!(r.contains("pred is_lock : 3 miss(es)"));
        assert!(r.contains("probes: 12 attempted, 3 skipped by index, 9 run"));

        // Without a session the diagnostics degrade gracefully.
        let bare = Stuck {
            reason: "out of fuel".into(),
            ctx: ProofCtx::new(PredTable::new()),
            goal: "…".into(),
            unmatched_head: None,
            diag: None,
        };
        let r = bare.render_explain();
        assert!(r.contains("unmatched goal head: (engine did not stop in hint search)"));
        assert!(r.contains("no telemetry session was active"));
    }
}
