//! Stuck-state reports — the interactive fallback of §2.2.
//!
//! When the strategy cannot make progress it stops (it never backtracks
//! globally) and produces a [`Stuck`] report rendering the proof state in
//! the style of the Iris Proof Mode display shown in §2.2 of the paper:
//! the pure context, the persistent hypotheses, the spatial hypotheses,
//! and the remaining goal.

use crate::ctx::ProofCtx;
use diaframe_logic::display::pp_assertion;
use diaframe_term::display::pp_prop;
use std::fmt;

/// A stuck proof state.
#[derive(Debug, Clone)]
pub struct Stuck {
    /// Why the engine stopped.
    pub reason: String,
    /// The proof context at the stuck point (cloned).
    pub ctx: ProofCtx,
    /// A rendering of the remaining goal.
    pub goal: String,
}

impl Stuck {
    /// Renders the proof state like the Iris Proof Mode.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let bar = "─".repeat(72);
        for f in &self.ctx.facts {
            let f = f.zonk(&self.ctx.vars);
            out.push_str(&format!("{}\n", pp_prop(&self.ctx.vars, &f)));
        }
        out.push_str(&bar);
        out.push('\n');
        let mut wrote_persistent = false;
        for h in &self.ctx.delta {
            if h.persistent {
                let a = h.assertion.zonk(&self.ctx.vars);
                out.push_str(&format!(
                    "\"{}\" : {}\n",
                    h.name,
                    pp_assertion(&self.ctx.vars, &self.ctx.preds, &a)
                ));
                wrote_persistent = true;
            }
        }
        if wrote_persistent {
            out.push_str(&"╌".repeat(72));
            out.push_str("□\n");
        }
        for h in &self.ctx.delta {
            if !h.persistent {
                let a = h.assertion.zonk(&self.ctx.vars);
                out.push_str(&format!(
                    "\"{}\" : {}\n",
                    h.name,
                    pp_assertion(&self.ctx.vars, &self.ctx.preds, &a)
                ));
            }
        }
        out.push_str(&"╌".repeat(72));
        out.push_str("∗\n");
        out.push_str(&self.goal);
        out.push('\n');
        out.push_str(&format!("(stuck: {})\n", self.reason));
        out
    }
}

impl fmt::Display for Stuck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl std::error::Error for Stuck {}

#[cfg(test)]
mod tests {
    use super::*;
    use diaframe_logic::{Assertion, Atom, PredTable};
    use diaframe_term::{PureProp, Sort, Term};

    #[test]
    fn render_contains_all_sections() {
        let mut ctx = ProofCtx::new(PredTable::new());
        let z = Term::var(ctx.vars.fresh_var(Sort::Int, "z"));
        ctx.add_fact(PureProp::lt(Term::int(0), z.clone()));
        ctx.add_hyp(
            Assertion::atom(Atom::invariant(
                "N".into(),
                Assertion::pure(PureProp::True),
            )),
            true,
        );
        ctx.add_hyp(
            Assertion::atom(Atom::points_to(Term::Loc(0), Term::v_int(z))),
            false,
        );
        let stuck = Stuck {
            reason: "no hint found".into(),
            ctx,
            goal: "WP … {{ … }}".into(),
        };
        let r = stuck.render();
        assert!(r.contains("0 < z0"));
        assert!(r.contains("inv N"));
        assert!(r.contains("↦"));
        assert!(r.contains("no hint found"));
        assert!(r.contains('□'));
    }
}
