//! A lossless JSON serialization for proof traces.
//!
//! `serde` is unavailable in this build environment (the container has no
//! registry access), so this module hand-rolls the one serialization the
//! repo needs: [`TraceStep`] and [`ProofTrace`] to and from JSON, shared
//! by the telemetry sinks ([`crate::telemetry`]) and the replay checker
//! ([`crate::checker::check_json`]). Keeping encoder and decoder next to
//! each other — and round-tripping every example's real trace in the
//! bench tests — is the stand-in for a derived implementation.
//!
//! Integers wider than 53 bits (`i128` literals, `u64` locations and
//! ghost names) are encoded as JSON *strings* so no consumer can lose
//! precision going through a float; everything else is plain JSON.
//!
//! Two `TraceStep` fields are `&'static str` (`PureStep::rule`,
//! `DisjunctChosen::{side, reason}`); the decoder maps them back onto the
//! engine's known literals and rejects unknown values. The bench
//! round-trip test over all examples keeps those tables in sync with the
//! strategy.

use crate::trace::{ProofTrace, TraceKind, TraceStep};
use diaframe_logic::Namespace;
use diaframe_term::{EVarId, PureProp, Qp, Rat, Sort, Sym, Term, VarCtx, VarId};
use std::fmt::Write as _;

/// The revision of the serialized trace format *and* of the checker
/// contract it feeds. Bump this whenever the JSON shape, the
/// [`TraceStep`] grammar, or the replay rules change incompatibly: the
/// engine fingerprint ([`crate::fingerprint::engine_fingerprint`])
/// folds it in, which invalidates every persistent proof-store entry
/// recorded under the old revision — stale traces then miss instead of
/// replaying against rules they were never checked by.
pub const FORMAT_REV: u32 = 1;

// ---------------------------------------------------------------------------
// Errors

/// A decoding failure (malformed JSON or a value outside the trace
/// grammar).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace JSON: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

// ---------------------------------------------------------------------------
// Escaping and a minimal JSON value

/// Escapes `s` for inclusion in a JSON string literal (non-ASCII is
/// passed through raw; JSON is UTF-8).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value. Numbers keep their raw text so integer consumers
/// never round-trip through `f64`.
///
/// Public because the trace codec is not this parser's only client: the
/// profiler's Chrome-trace validator ([`crate::profile`]) and the bench
/// crate's snapshot-diff reporter (`figure6 --diff`) parse generic JSON
/// documents with it.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source text (integers stay exact;
    /// use [`JsonValue::as_u64`] / [`JsonValue::as_f64`] to interpret).
    Num(String),
    /// A string (escapes already decoded).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source field order (duplicate keys kept as-is;
    /// lookups return the first).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup; `None` for non-objects and missing keys.
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool payload, if this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This number as a `u64`, if it is an unsigned integer literal.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// This number as an `f64` (integers and decimal fractions alike).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The field slice in source order, if this is an object.
    #[must_use]
    pub fn entries(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    fn field<'a>(&'a self, key: &str) -> Result<&'a JsonValue, JsonError> {
        match self.get(key) {
            Some(v) => Ok(v),
            None => err(format!("missing field `{key}`")),
        }
    }

    fn str_field(&self, key: &str) -> Result<&str, JsonError> {
        match self.field(key)? {
            JsonValue::Str(s) => Ok(s),
            v => err(format!("field `{key}`: expected string, got {v:?}")),
        }
    }

    fn bool_field(&self, key: &str) -> Result<bool, JsonError> {
        match self.field(key)? {
            JsonValue::Bool(b) => Ok(*b),
            v => err(format!("field `{key}`: expected bool, got {v:?}")),
        }
    }

    fn usize_field(&self, key: &str) -> Result<usize, JsonError> {
        match self.field(key)? {
            JsonValue::Num(n) => n
                .parse::<usize>()
                .map_err(|_| JsonError(format!("field `{key}`: bad integer {n}"))),
            v => err(format!("field `{key}`: expected number, got {v:?}")),
        }
    }

    fn arr_field<'a>(&'a self, key: &str) -> Result<&'a [JsonValue], JsonError> {
        match self.field(key)? {
            JsonValue::Arr(items) => Ok(items),
            v => err(format!("field `{key}`: expected array, got {v:?}")),
        }
    }

    /// An integer encoded as a JSON string (the wide-integer convention).
    fn wide_int_field<T: std::str::FromStr>(&self, key: &str) -> Result<T, JsonError> {
        match self.field(key)? {
            JsonValue::Str(s) => s
                .parse::<T>()
                .map_err(|_| JsonError(format!("field `{key}`: bad wide integer {s:?}"))),
            v => err(format!("field `{key}`: expected string-encoded integer, got {v:?}")),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start || (self.pos == start + 1 && self.bytes[start] == b'-') {
            return err(format!("bad number at byte {start}"));
        }
        // The trace grammar is integer-only, but generic clients (the
        // snapshot-diff reporter reads `search_ms` timings) need decimal
        // fractions. Exponents never occur in anything this repo emits.
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return err(format!("bad number at byte {start}"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        Ok(JsonValue::Num(text.to_owned()))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError("invalid UTF-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| JsonError("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError("surrogate \\u escape".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => return err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                _ => return err("unterminated string"),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => return err(format!("expected `,` or `]`, found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                other => return err(format!("expected `,` or `}}`, found {other:?}")),
            }
        }
    }
}

fn parse_json(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

/// Parse an arbitrary JSON document into a [`JsonValue`] (the whole input
/// must be one value; trailing data is rejected). This is the parser the
/// profiler's trace validator and the bench snapshot-diff reporter use.
///
/// # Errors
/// Returns a [`JsonError`] describing the first malformed byte.
pub fn parse_json_value(text: &str) -> Result<JsonValue, JsonError> {
    parse_json(text)
}

// ---------------------------------------------------------------------------
// Static-literal tables

/// The `PureStep` rules the strategy emits; `PureStep::rule` is a
/// `&'static str`, so decoding must map back onto these literals.
const PURE_STEP_RULES: [&str; 7] = [
    "if-true",
    "if-false",
    "head-step",
    "arith-sym",
    "neg-sym",
    "cmp-true",
    "cmp-false",
];

const DISJUNCT_SIDES: [&str; 2] = ["left", "right"];

const DISJUNCT_REASONS: [&str; 3] = [
    "left guard refuted",
    "right guard refuted",
    "backtracking",
];

fn intern(value: &str, table: &[&'static str], what: &str) -> Result<&'static str, JsonError> {
    match table.iter().find(|t| **t == value) {
        Some(t) => Ok(t),
        None => err(format!("unknown {what} {value:?}")),
    }
}

// ---------------------------------------------------------------------------
// Encoding

fn sym_name(sym: Sym) -> &'static str {
    match sym {
        Sym::Add => "add",
        Sym::Sub => "sub",
        Sym::Neg => "neg",
        Sym::Mul => "mul",
        Sym::Min => "min",
        Sym::Max => "max",
        Sym::VInt => "v_int",
        Sym::VBool => "v_bool",
        Sym::VUnit => "v_unit",
        Sym::VLoc => "v_loc",
        Sym::VPair => "v_pair",
        Sym::VInjL => "v_injl",
        Sym::VInjR => "v_injr",
        Sym::Fst => "fst",
        Sym::Snd => "snd",
    }
}

fn sym_from_name(name: &str) -> Result<Sym, JsonError> {
    const ALL: [Sym; 15] = [
        Sym::Add,
        Sym::Sub,
        Sym::Neg,
        Sym::Mul,
        Sym::Min,
        Sym::Max,
        Sym::VInt,
        Sym::VBool,
        Sym::VUnit,
        Sym::VLoc,
        Sym::VPair,
        Sym::VInjL,
        Sym::VInjR,
        Sym::Fst,
        Sym::Snd,
    ];
    match ALL.into_iter().find(|s| sym_name(*s) == name) {
        Some(s) => Ok(s),
        None => err(format!("unknown symbol {name:?}")),
    }
}

fn sort_name(sort: Sort) -> &'static str {
    match sort {
        Sort::Int => "int",
        Sort::Bool => "bool",
        Sort::Val => "val",
        Sort::Loc => "loc",
        Sort::Qp => "qp",
        Sort::GhostName => "gname",
        Sort::Unit => "unit",
    }
}

fn sort_from_name(name: &str) -> Result<Sort, JsonError> {
    const ALL: [Sort; 7] = [
        Sort::Int,
        Sort::Bool,
        Sort::Val,
        Sort::Loc,
        Sort::Qp,
        Sort::GhostName,
        Sort::Unit,
    ];
    match ALL.into_iter().find(|s| sort_name(*s) == name) {
        Some(s) => Ok(s),
        None => err(format!("unknown sort {name:?}")),
    }
}

fn term_json(t: &Term, out: &mut String) {
    match t {
        Term::Var(v) => {
            let _ = write!(out, "{{\"v\":{}}}", v.index());
        }
        Term::EVar(e) => {
            let _ = write!(out, "{{\"e\":{}}}", e.index());
        }
        Term::Int(i) => {
            let _ = write!(out, "{{\"i\":\"{i}\"}}");
        }
        Term::Bool(b) => {
            let _ = write!(out, "{{\"b\":{b}}}");
        }
        Term::QpLit(q) => {
            let r = q.as_rat();
            let _ = write!(out, "{{\"q\":[\"{}\",\"{}\"]}}", r.numerator(), r.denominator());
        }
        Term::Loc(l) => {
            let _ = write!(out, "{{\"l\":\"{l}\"}}");
        }
        Term::Gname(g) => {
            let _ = write!(out, "{{\"g\":\"{g}\"}}");
        }
        Term::App(sym, args) => {
            let _ = write!(out, "{{\"a\":\"{}\",\"ts\":[", sym_name(*sym));
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                term_json(a, out);
            }
            out.push_str("]}");
        }
    }
}

fn term_from_json(v: &JsonValue) -> Result<Term, JsonError> {
    let obj = match v {
        JsonValue::Obj(_) => v,
        other => return err(format!("expected term object, got {other:?}")),
    };
    if let Some(JsonValue::Num(n)) = obj.get("v") {
        let idx: usize = n
            .parse()
            .map_err(|_| JsonError(format!("bad var index {n}")))?;
        return Ok(Term::Var(VarId::from_index(idx)));
    }
    if let Some(JsonValue::Num(n)) = obj.get("e") {
        let idx: usize = n
            .parse()
            .map_err(|_| JsonError(format!("bad evar index {n}")))?;
        return Ok(Term::EVar(EVarId::from_index(idx)));
    }
    if obj.get("i").is_some() {
        return Ok(Term::Int(obj.wide_int_field("i")?));
    }
    if obj.get("b").is_some() {
        return Ok(Term::Bool(obj.bool_field("b")?));
    }
    if let Some(JsonValue::Arr(parts)) = obj.get("q") {
        if let [JsonValue::Str(num), JsonValue::Str(den)] = parts.as_slice() {
            let num: i128 = num
                .parse()
                .map_err(|_| JsonError(format!("bad fraction numerator {num:?}")))?;
            let den: i128 = den
                .parse()
                .map_err(|_| JsonError(format!("bad fraction denominator {den:?}")))?;
            let q = Qp::from_rat(Rat::new(num, den))
                .ok_or_else(|| JsonError(format!("non-positive fraction {num}/{den}")))?;
            return Ok(Term::QpLit(q));
        }
        return err("fraction must be a pair of string-encoded integers");
    }
    if obj.get("l").is_some() {
        return Ok(Term::Loc(obj.wide_int_field("l")?));
    }
    if obj.get("g").is_some() {
        return Ok(Term::Gname(obj.wide_int_field("g")?));
    }
    if obj.get("a").is_some() {
        let sym = sym_from_name(obj.str_field("a")?)?;
        let args = obj
            .arr_field("ts")?
            .iter()
            .map(term_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if args.len() != sym.arity() {
            return err(format!(
                "symbol {} expects {} arguments, got {}",
                sym_name(sym),
                sym.arity(),
                args.len()
            ));
        }
        return Ok(Term::App(sym, args.into()));
    }
    err(format!("unrecognized term {obj:?}"))
}

fn prop_json(p: &PureProp, out: &mut String) {
    let binary = |tag: &str, l: &Term, r: &Term, out: &mut String| {
        let _ = write!(out, "{{\"p\":\"{tag}\",\"l\":");
        term_json(l, out);
        out.push_str(",\"r\":");
        term_json(r, out);
        out.push('}');
    };
    match p {
        PureProp::True => out.push_str("{\"p\":\"true\"}"),
        PureProp::False => out.push_str("{\"p\":\"false\"}"),
        PureProp::Eq(l, r) => binary("eq", l, r, out),
        PureProp::Ne(l, r) => binary("ne", l, r, out),
        PureProp::Le(l, r) => binary("le", l, r, out),
        PureProp::Lt(l, r) => binary("lt", l, r, out),
        PureProp::And(l, r) | PureProp::Or(l, r) | PureProp::Implies(l, r) => {
            let tag = match p {
                PureProp::And(..) => "and",
                PureProp::Or(..) => "or",
                _ => "implies",
            };
            let _ = write!(out, "{{\"p\":\"{tag}\",\"l\":");
            prop_json(l, out);
            out.push_str(",\"r\":");
            prop_json(r, out);
            out.push('}');
        }
        PureProp::Not(x) => {
            out.push_str("{\"p\":\"not\",\"x\":");
            prop_json(x, out);
            out.push('}');
        }
    }
}

fn prop_from_json(v: &JsonValue) -> Result<PureProp, JsonError> {
    let tag = v.str_field("p")?;
    match tag {
        "true" => Ok(PureProp::True),
        "false" => Ok(PureProp::False),
        "eq" | "ne" | "le" | "lt" => {
            let l = term_from_json(v.field("l")?)?;
            let r = term_from_json(v.field("r")?)?;
            Ok(match tag {
                "eq" => PureProp::Eq(l, r),
                "ne" => PureProp::Ne(l, r),
                "le" => PureProp::Le(l, r),
                _ => PureProp::Lt(l, r),
            })
        }
        "and" | "or" | "implies" => {
            let l = Box::new(prop_from_json(v.field("l")?)?);
            let r = Box::new(prop_from_json(v.field("r")?)?);
            Ok(match tag {
                "and" => PureProp::And(l, r),
                "or" => PureProp::Or(l, r),
                _ => PureProp::Implies(l, r),
            })
        }
        "not" => Ok(PureProp::Not(Box::new(prop_from_json(v.field("x")?)?))),
        other => err(format!("unknown proposition tag {other:?}")),
    }
}

/// One universal variable of a [`VarCtx`] as a canonical JSON object.
fn var_entry_json(vars: &VarCtx, i: usize) -> String {
    let v = VarId::from_index(i);
    format!(
        "{{\"sort\":\"{}\",\"level\":{},\"name\":\"{}\"}}",
        sort_name(vars.var_sort(v)),
        vars.var_level(v),
        json_escape(vars.var_name(v))
    )
}

/// One evar of a [`VarCtx`] as a canonical JSON object.
fn evar_entry_json(vars: &VarCtx, i: usize) -> String {
    let e = EVarId::from_index(i);
    let mut out = format!(
        "{{\"sort\":\"{}\",\"level\":{},\"sol\":",
        sort_name(vars.evar_sort(e)),
        vars.evar_level(e)
    );
    match vars.evar_solution(e) {
        Some(t) => term_json(t, &mut out),
        None => out.push_str("null"),
    }
    out.push('}');
    out
}

fn varctx_json(vars: &VarCtx, out: &mut String) {
    let _ = write!(out, "{{\"level\":{},\"vars\":[", vars.level());
    for i in 0..vars.num_vars() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&var_entry_json(vars, i));
    }
    out.push_str("],\"evars\":[");
    for i in 0..vars.num_evars() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&evar_entry_json(vars, i));
    }
    out.push_str("]}");
}

fn var_entry_from_json(entry: &JsonValue) -> Result<(Sort, u32, String), JsonError> {
    let sort = sort_from_name(entry.str_field("sort")?)?;
    let level = u32::try_from(entry.usize_field("level")?)
        .map_err(|_| JsonError("variable level out of range".into()))?;
    Ok((sort, level, entry.str_field("name")?.to_owned()))
}

fn evar_entry_from_json(entry: &JsonValue) -> Result<(Sort, u32, Option<Term>), JsonError> {
    let sort = sort_from_name(entry.str_field("sort")?)?;
    let level = u32::try_from(entry.usize_field("level")?)
        .map_err(|_| JsonError("evar level out of range".into()))?;
    let sol = match entry.field("sol")? {
        JsonValue::Null => None,
        t => Some(term_from_json(t)?),
    };
    Ok((sort, level, sol))
}

fn varctx_from_json(v: &JsonValue) -> Result<VarCtx, JsonError> {
    let mut ctx = VarCtx::new();
    for entry in v.arr_field("vars")? {
        let (sort, level, name) = var_entry_from_json(entry)?;
        ctx.push_raw_var(sort, level, &name);
    }
    for entry in v.arr_field("evars")? {
        let (sort, level, sol) = evar_entry_from_json(entry)?;
        ctx.push_raw_evar(sort, level, sol);
    }
    ctx.set_level(
        u32::try_from(v.usize_field("level")?)
            .map_err(|_| JsonError("context level out of range".into()))?,
    );
    Ok(ctx)
}

/// Encodes one step as a single-line JSON object tagged by
/// [`TraceKind::name`].
#[must_use]
pub fn step_to_json(step: &TraceStep) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"step\":\"{}\"", step.kind().name());
    match step {
        TraceStep::IntroVar { name } => {
            let _ = write!(out, ",\"name\":\"{}\"", json_escape(name));
        }
        TraceStep::IntroHyp { hyp } => {
            let _ = write!(out, ",\"hyp\":\"{}\"", json_escape(hyp));
        }
        TraceStep::Fact { prop } => {
            out.push_str(",\"prop\":");
            prop_json(prop, &mut out);
        }
        TraceStep::PureStep { rule } => {
            let _ = write!(out, ",\"rule\":\"{}\"", json_escape(rule));
        }
        TraceStep::SymEx { spec, atomic } => {
            let _ = write!(out, ",\"spec\":\"{}\",\"atomic\":{atomic}", json_escape(spec));
        }
        TraceStep::HintApplied { rules, hyp, custom } => {
            out.push_str(",\"rules\":[");
            for (i, r) in rules.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\"", json_escape(r));
            }
            out.push_str("],\"hyp\":");
            match hyp {
                Some(h) => {
                    let _ = write!(out, "\"{}\"", json_escape(h));
                }
                None => out.push_str("null"),
            }
            let _ = write!(out, ",\"custom\":{custom}");
        }
        TraceStep::InvOpened { ns } | TraceStep::InvClosed { ns } => {
            let _ = write!(out, ",\"ns\":\"{}\"", json_escape(ns.as_str()));
        }
        TraceStep::PureObligation { facts, goal, vars } => {
            out.push_str(",\"facts\":[");
            for (i, f) in facts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                prop_json(f, &mut out);
            }
            out.push_str("],\"goal\":");
            prop_json(goal, &mut out);
            out.push_str(",\"vars\":");
            varctx_json(vars, &mut out);
        }
        TraceStep::Contradiction { rule } => {
            let _ = write!(out, ",\"rule\":\"{}\"", json_escape(rule));
        }
        TraceStep::CaseSplit { on, branches } => {
            let _ = write!(out, ",\"on\":\"{}\",\"branches\":{branches}", json_escape(on));
        }
        TraceStep::BranchStart { index } | TraceStep::BranchEnd { index } => {
            let _ = write!(out, ",\"index\":{index}");
        }
        TraceStep::ValueReached => {}
        TraceStep::TacticUsed { name } => {
            let _ = write!(out, ",\"name\":\"{}\"", json_escape(name));
        }
        TraceStep::DisjunctChosen { side, reason } => {
            let _ = write!(out, ",\"side\":\"{side}\",\"reason\":\"{reason}\"");
        }
    }
    out.push('}');
    out
}

/// Decodes one step from the output of [`step_to_json`].
///
/// # Errors
///
/// Returns a [`JsonError`] on malformed JSON or values outside the trace
/// grammar (e.g. an unknown `pure_step` rule).
pub fn step_from_json(text: &str) -> Result<TraceStep, JsonError> {
    step_from_value(&parse_json(text)?)
}

fn step_from_value(v: &JsonValue) -> Result<TraceStep, JsonError> {
    let tag = v.str_field("step")?;
    let kind = TraceKind::from_name(tag)
        .ok_or_else(|| JsonError(format!("unknown step kind {tag:?}")))?;
    Ok(match kind {
        TraceKind::IntroVar => TraceStep::IntroVar {
            name: v.str_field("name")?.to_owned(),
        },
        TraceKind::IntroHyp => TraceStep::IntroHyp {
            hyp: v.str_field("hyp")?.to_owned(),
        },
        TraceKind::Fact => TraceStep::Fact {
            prop: prop_from_json(v.field("prop")?)?,
        },
        TraceKind::PureStep => TraceStep::PureStep {
            rule: intern(v.str_field("rule")?, &PURE_STEP_RULES, "pure-step rule")?,
        },
        TraceKind::SymEx => TraceStep::SymEx {
            spec: v.str_field("spec")?.to_owned(),
            atomic: v.bool_field("atomic")?,
        },
        TraceKind::HintApplied => TraceStep::HintApplied {
            rules: v
                .arr_field("rules")?
                .iter()
                .map(|r| match r {
                    JsonValue::Str(s) => Ok(s.clone()),
                    other => err(format!("hint rule must be a string, got {other:?}")),
                })
                .collect::<Result<Vec<_>, _>>()?,
            hyp: match v.field("hyp")? {
                JsonValue::Null => None,
                JsonValue::Str(s) => Some(s.clone()),
                other => return err(format!("hyp must be a string or null, got {other:?}")),
            },
            custom: v.bool_field("custom")?,
        },
        TraceKind::InvOpened => TraceStep::InvOpened {
            ns: Namespace::new(v.str_field("ns")?),
        },
        TraceKind::InvClosed => TraceStep::InvClosed {
            ns: Namespace::new(v.str_field("ns")?),
        },
        TraceKind::PureObligation => TraceStep::PureObligation {
            facts: v
                .arr_field("facts")?
                .iter()
                .map(prop_from_json)
                .collect::<Result<Vec<_>, _>>()?,
            goal: prop_from_json(v.field("goal")?)?,
            vars: varctx_from_json(v.field("vars")?)?,
        },
        TraceKind::Contradiction => TraceStep::Contradiction {
            rule: v.str_field("rule")?.to_owned(),
        },
        TraceKind::CaseSplit => TraceStep::CaseSplit {
            on: v.str_field("on")?.to_owned(),
            branches: v.usize_field("branches")?,
        },
        TraceKind::BranchStart => TraceStep::BranchStart {
            index: v.usize_field("index")?,
        },
        TraceKind::BranchEnd => TraceStep::BranchEnd {
            index: v.usize_field("index")?,
        },
        TraceKind::ValueReached => TraceStep::ValueReached,
        TraceKind::TacticUsed => TraceStep::TacticUsed {
            name: v.str_field("name")?.to_owned(),
        },
        TraceKind::DisjunctChosen => TraceStep::DisjunctChosen {
            side: intern(v.str_field("side")?, &DISJUNCT_SIDES, "disjunct side")?,
            reason: intern(v.str_field("reason")?, &DISJUNCT_REASONS, "disjunct reason")?,
        },
    })
}

/// Encodes a whole trace as a JSON array of step objects (one step per
/// line, for greppable sink files).
#[must_use]
pub fn trace_to_json(trace: &ProofTrace) -> String {
    let mut out = String::from("[\n");
    for (i, step) in trace.steps().iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&step_to_json(step));
    }
    out.push_str("\n]");
    out
}

/// Decodes the output of [`trace_to_json`].
///
/// # Errors
///
/// Returns a [`JsonError`] on malformed input (see [`step_from_json`]).
pub fn trace_from_json(text: &str) -> Result<ProofTrace, JsonError> {
    trace_from_value(&parse_json(text)?)
}

/// Decodes a trace from an already-parsed [`JsonValue`] (the array shape
/// of [`trace_to_json`]). Lets a containing document — e.g. a proof-store
/// entry holding one trace per spec — be parsed once and its traces
/// decoded in place, instead of re-parsing each trace from an embedded
/// string.
///
/// # Errors
///
/// Returns a [`JsonError`] on a malformed trace (see [`step_from_json`]).
pub fn trace_from_value(v: &JsonValue) -> Result<ProofTrace, JsonError> {
    let items = match v {
        JsonValue::Arr(items) => items,
        other => return err(format!("expected a trace array, got {other:?}")),
    };
    let mut trace = ProofTrace::new();
    for item in items {
        trace.push(step_from_value(item)?);
    }
    Ok(trace)
}

// ---------------------------------------------------------------------------
// Compact trace bundles (the proof store's entry payload)
//
// A raw trace serialization is dominated — often >90% by byte count — by
// `pure_obligation` steps: each one snapshots the *entire* variable
// context so the checker can re-prove the obligation from scratch, and a
// long proof re-serializes a few hundred variables per obligation. Those
// snapshots are incremental (each mostly extends an earlier one), so the
// bundle format below shares them: every distinct context is emitted once
// in a table, delta-encoded against the earlier table entry with the
// longest common (vars, evars) prefix, and obligations refer to table
// rows by index. Fact lists are deduplicated the same way (they repeat
// exactly, so a plain table suffices). Everything else reuses the
// canonical per-step encoding, and decoding rebuilds a [`ProofTrace`]
// that is structurally identical to what the canonical codec would have
// produced — the independent checker replays it unchanged.

/// Shared tables built up while encoding a bundle.
#[derive(Default)]
struct CompactTables {
    /// Per table row: the full per-var / per-evar canonical texts (used
    /// for prefix matching against later contexts).
    ctx_texts: Vec<(Vec<String>, Vec<String>)>,
    /// Per table row: its emitted (delta-encoded) JSON.
    ctx_rows: Vec<String>,
    ctx_index: std::collections::HashMap<String, usize>,
    fact_rows: Vec<String>,
    fact_index: std::collections::HashMap<String, usize>,
}

fn common_prefix(a: &[String], b: &[String]) -> usize {
    let mut n = 0;
    while n < a.len() && n < b.len() && a[n] == b[n] {
        n += 1;
    }
    n
}

impl CompactTables {
    fn intern_ctx(&mut self, vars: &VarCtx) -> usize {
        let var_texts: Vec<String> = (0..vars.num_vars()).map(|i| var_entry_json(vars, i)).collect();
        let evar_texts: Vec<String> =
            (0..vars.num_evars()).map(|i| evar_entry_json(vars, i)).collect();
        let key = format!("{}\u{0}{}\u{0}{}", vars.level(), var_texts.join(","), evar_texts.join(","));
        if let Some(&i) = self.ctx_index.get(&key) {
            return i;
        }
        // Delta base: the earlier row sharing the longest combined prefix.
        let mut base = None;
        let (mut take, mut etake) = (0usize, 0usize);
        for (b, (pv, pe)) in self.ctx_texts.iter().enumerate() {
            let t = common_prefix(pv, &var_texts);
            let e = common_prefix(pe, &evar_texts);
            if t + e > take + etake {
                (base, take, etake) = (Some(b), t, e);
            }
        }
        let mut row = match base {
            Some(b) => format!("{{\"base\":{b},\"take\":{take},\"etake\":{etake}"),
            None => String::from("{\"base\":null,\"take\":0,\"etake\":0"),
        };
        let _ = write!(row, ",\"level\":{},\"vars\":[", vars.level());
        for (i, t) in var_texts.iter().enumerate().skip(take) {
            if i > take {
                row.push(',');
            }
            row.push_str(t);
        }
        row.push_str("],\"evars\":[");
        for (i, t) in evar_texts.iter().enumerate().skip(etake) {
            if i > etake {
                row.push(',');
            }
            row.push_str(t);
        }
        row.push_str("]}");
        let idx = self.ctx_rows.len();
        self.ctx_rows.push(row);
        self.ctx_texts.push((var_texts, evar_texts));
        self.ctx_index.insert(key, idx);
        idx
    }

    fn intern_facts(&mut self, facts: &[PureProp]) -> usize {
        let mut row = String::from("[");
        for (i, f) in facts.iter().enumerate() {
            if i > 0 {
                row.push(',');
            }
            prop_json(f, &mut row);
        }
        row.push(']');
        if let Some(&i) = self.fact_index.get(&row) {
            return i;
        }
        let idx = self.fact_rows.len();
        self.fact_index.insert(row.clone(), idx);
        self.fact_rows.push(row);
        idx
    }
}

/// Encodes a set of named traces as one compact bundle (see the module
/// section comment): variable-context snapshots are delta-shared across
/// *all* the traces, which typically shrinks a long proof by an order of
/// magnitude relative to [`trace_to_json`]. Decode with
/// [`traces_from_compact_value`].
#[must_use]
pub fn traces_to_compact_json(specs: &[(&str, &ProofTrace)]) -> String {
    let mut tables = CompactTables::default();
    let mut specs_out = String::from("[");
    for (si, (name, trace)) in specs.iter().enumerate() {
        if si > 0 {
            specs_out.push(',');
        }
        let _ = write!(specs_out, "{{\"name\":\"{}\",\"trace\":[", json_escape(name));
        for (i, step) in trace.steps().iter().enumerate() {
            if i > 0 {
                specs_out.push(',');
            }
            match step {
                TraceStep::PureObligation { facts, goal, vars } => {
                    let fi = tables.intern_facts(facts);
                    let vi = tables.intern_ctx(vars);
                    let _ = write!(specs_out, "{{\"step\":\"pure_obligation\",\"facts\":{fi},\"goal\":");
                    prop_json(goal, &mut specs_out);
                    let _ = write!(specs_out, ",\"vars\":{vi}}}");
                }
                other => specs_out.push_str(&step_to_json(other)),
            }
        }
        specs_out.push_str("]}");
    }
    specs_out.push(']');
    let mut out = String::from("{\"varctxs\":[");
    out.push_str(&tables.ctx_rows.join(","));
    out.push_str("],\"factsets\":[");
    out.push_str(&tables.fact_rows.join(","));
    out.push_str("],\"specs\":");
    out.push_str(&specs_out);
    out.push('}');
    out
}

/// Decodes a parsed bundle produced by [`traces_to_compact_json`] back
/// into its named traces.
///
/// # Errors
///
/// Returns a [`JsonError`] on malformed input — including dangling or
/// forward table references and prefix lengths exceeding their base,
/// which a corrupted store entry could present.
pub fn traces_from_compact_value(v: &JsonValue) -> Result<Vec<(String, ProofTrace)>, JsonError> {
    struct CtxEntry {
        vars: Vec<(Sort, u32, String)>,
        evars: Vec<(Sort, u32, Option<Term>)>,
        ctx: VarCtx,
    }
    let mut table: Vec<CtxEntry> = Vec::new();
    for (i, entry) in v.arr_field("varctxs")?.iter().enumerate() {
        let take = entry.usize_field("take")?;
        let etake = entry.usize_field("etake")?;
        let (mut vars, mut evars) = match entry.field("base")? {
            JsonValue::Null if take == 0 && etake == 0 => (Vec::new(), Vec::new()),
            JsonValue::Null => return err(format!("varctx {i}: baseless row takes a prefix")),
            b => {
                let b = b
                    .as_u64()
                    .and_then(|b| usize::try_from(b).ok())
                    .ok_or_else(|| JsonError(format!("varctx {i}: bad base {b:?}")))?;
                // Rows may only reference earlier rows, so the table so
                // far bounds the reference.
                let base = table
                    .get(b)
                    .ok_or_else(|| JsonError(format!("varctx {i}: base {b} out of range")))?;
                if take > base.vars.len() || etake > base.evars.len() {
                    return err(format!("varctx {i}: prefix exceeds base {b}"));
                }
                (base.vars[..take].to_vec(), base.evars[..etake].to_vec())
            }
        };
        for e in entry.arr_field("vars")? {
            vars.push(var_entry_from_json(e)?);
        }
        for e in entry.arr_field("evars")? {
            evars.push(evar_entry_from_json(e)?);
        }
        let mut ctx = VarCtx::new();
        for (sort, level, name) in &vars {
            ctx.push_raw_var(*sort, *level, name);
        }
        for (sort, level, sol) in &evars {
            ctx.push_raw_evar(*sort, *level, sol.clone());
        }
        ctx.set_level(
            u32::try_from(entry.usize_field("level")?)
                .map_err(|_| JsonError("context level out of range".into()))?,
        );
        table.push(CtxEntry { vars, evars, ctx });
    }
    let mut factsets: Vec<Vec<PureProp>> = Vec::new();
    for row in v.arr_field("factsets")? {
        let items = row
            .as_array()
            .ok_or_else(|| JsonError("factset must be an array".into()))?;
        factsets.push(items.iter().map(prop_from_json).collect::<Result<Vec<_>, _>>()?);
    }
    let mut out = Vec::new();
    for spec in v.arr_field("specs")? {
        let name = spec.str_field("name")?;
        let mut trace = ProofTrace::new();
        for item in spec.arr_field("trace")? {
            if item.str_field("step")? == "pure_obligation" {
                let fi = item.usize_field("facts")?;
                let vi = item.usize_field("vars")?;
                let facts = factsets
                    .get(fi)
                    .ok_or_else(|| JsonError(format!("{name}: factset {fi} out of range")))?
                    .clone();
                let vars = table
                    .get(vi)
                    .ok_or_else(|| JsonError(format!("{name}: varctx {vi} out of range")))?
                    .ctx
                    .clone();
                trace.push(TraceStep::PureObligation {
                    facts,
                    goal: prop_from_json(item.field("goal")?)?,
                    vars,
                });
            } else {
                trace.push(step_from_value(item)?);
            }
        }
        out.push((name.to_owned(), trace));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use diaframe_term::Sort;

    fn roundtrip(step: TraceStep) {
        let json = step_to_json(&step);
        let back = step_from_json(&json).unwrap_or_else(|e| panic!("{e}\nin {json}"));
        assert_eq!(format!("{step:?}"), format!("{back:?}"), "via {json}");
    }

    #[test]
    fn every_step_kind_round_trips() {
        let mut vars = VarCtx::new();
        let z = vars.fresh_var(Sort::Int, "z\"esc\n");
        vars.push_level();
        let e = vars.fresh_evar(Sort::Val);
        let solved = vars.fresh_evar(Sort::Loc);
        vars.solve_evar(solved, Term::Loc(u64::MAX));
        vars.lower_evar_level(e, 0);

        roundtrip(TraceStep::IntroVar { name: "x₁".into() });
        roundtrip(TraceStep::IntroHyp { hyp: "↦ \"H\"".into() });
        roundtrip(TraceStep::Fact {
            prop: PureProp::And(
                Box::new(PureProp::Lt(Term::int(i128::MIN), Term::var(z))),
                Box::new(PureProp::Implies(
                    Box::new(PureProp::Not(Box::new(PureProp::False))),
                    Box::new(PureProp::Or(
                        Box::new(PureProp::True),
                        Box::new(PureProp::Ne(Term::Gname(7), Term::EVar(e))),
                    )),
                )),
            ),
        });
        for rule in PURE_STEP_RULES {
            roundtrip(TraceStep::PureStep { rule });
        }
        roundtrip(TraceStep::SymEx {
            spec: "CmpXchg".into(),
            atomic: true,
        });
        roundtrip(TraceStep::HintApplied {
            rules: vec!["inv-open".into(), "token-mutate".into()],
            hyp: Some("H3".into()),
            custom: true,
        });
        roundtrip(TraceStep::HintApplied {
            rules: vec![],
            hyp: None,
            custom: false,
        });
        roundtrip(TraceStep::InvOpened { ns: "lock.N".into() });
        roundtrip(TraceStep::InvClosed { ns: "lock.N".into() });
        roundtrip(TraceStep::PureObligation {
            facts: vec![
                PureProp::Le(
                    Term::app(Sym::Add, vec![Term::var(z), Term::int(1)]),
                    Term::app(
                        Sym::Min,
                        vec![Term::app(Sym::Neg, vec![Term::var(z)]), Term::int(3)],
                    ),
                ),
                PureProp::Eq(
                    Term::app(Sym::VPair, vec![Term::app(Sym::VUnit, vec![]), Term::Bool(true)]),
                    Term::QpLit(Qp::half()),
                ),
            ],
            goal: PureProp::Eq(Term::EVar(e), Term::var(z)),
            vars,
        });
        roundtrip(TraceStep::Contradiction {
            rule: "locked-unique".into(),
        });
        roundtrip(TraceStep::CaseSplit {
            on: "b".into(),
            branches: 2,
        });
        roundtrip(TraceStep::BranchStart { index: 0 });
        roundtrip(TraceStep::BranchEnd { index: 1 });
        roundtrip(TraceStep::ValueReached);
        roundtrip(TraceStep::TacticUsed {
            name: "case z = 1".into(),
        });
        for side in DISJUNCT_SIDES {
            for reason in DISJUNCT_REASONS {
                roundtrip(TraceStep::DisjunctChosen { side, reason });
            }
        }
    }

    #[test]
    fn whole_trace_round_trips() {
        let mut t = ProofTrace::new();
        t.push(TraceStep::ValueReached);
        t.push(TraceStep::SymEx {
            spec: "Store".into(),
            atomic: false,
        });
        let json = trace_to_json(&t);
        let back = trace_from_json(&json).unwrap();
        assert_eq!(format!("{:?}", t.steps()), format!("{:?}", back.steps()));
        assert!(trace_from_json("[]").unwrap().is_empty());
    }

    #[test]
    fn decoder_rejects_garbage() {
        assert!(step_from_json("{\"step\":\"no_such_kind\"}").is_err());
        assert!(step_from_json("{\"step\":\"pure_step\",\"rule\":\"made-up\"}").is_err());
        assert!(step_from_json(
            "{\"step\":\"disjunct_chosen\",\"side\":\"middle\",\"reason\":\"backtracking\"}"
        )
        .is_err());
        assert!(step_from_json("{\"step\":\"intro_var\"}").is_err());
        assert!(step_from_json("not json").is_err());
        assert!(trace_from_json("{\"step\":\"value_reached\"}").is_err());
        // Trailing data is rejected, not ignored.
        assert!(step_from_json("{\"step\":\"value_reached\"} x").is_err());
        // Wide integers must be strings.
        assert!(step_from_json(
            "{\"step\":\"fact\",\"prop\":{\"p\":\"eq\",\"l\":{\"i\":1},\"r\":{\"i\":\"1\"}}}"
        )
        .is_err());
    }

    #[test]
    fn compact_bundle_round_trips_and_shares_contexts() {
        // Three obligations: two on identical contexts (must dedup to one
        // table row) and one on an extended context (must delta-encode
        // against the first row).
        let mut small = VarCtx::new();
        let x = small.fresh_var(Sort::Int, "x");
        let mut big = small.clone();
        let y = big.fresh_var(Sort::Loc, "y\"esc");
        big.push_level();
        let e = big.fresh_evar(Sort::Val);
        big.solve_evar(e, Term::var(y));

        let ob = |vars: &VarCtx, goal: PureProp| TraceStep::PureObligation {
            facts: vec![PureProp::Le(Term::int(0), Term::var(x))],
            goal,
            vars: vars.clone(),
        };
        let mut t1 = ProofTrace::new();
        t1.push(TraceStep::IntroVar { name: "x".into() });
        t1.push(ob(&small, PureProp::True));
        t1.push(ob(&small, PureProp::Lt(Term::int(0), Term::int(1))));
        let mut t2 = ProofTrace::new();
        t2.push(ob(&big, PureProp::Eq(Term::var(y), Term::var(y))));
        t2.push(TraceStep::ValueReached);

        let bundle = traces_to_compact_json(&[("one", &t1), ("two", &t2)]);
        let v = parse_json_value(&bundle).unwrap();
        // Table sharing: 2 distinct contexts, 1 distinct fact list, and
        // the second row is a delta (it names row 0 as its base).
        assert_eq!(v.arr_field("varctxs").unwrap().len(), 2, "in {bundle}");
        assert_eq!(v.arr_field("factsets").unwrap().len(), 1, "in {bundle}");
        assert_eq!(
            v.arr_field("varctxs").unwrap()[1].get("base").unwrap().as_u64(),
            Some(0),
            "in {bundle}"
        );

        let back = traces_from_compact_value(&v).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].0, "one");
        assert_eq!(back[1].0, "two");
        assert_eq!(format!("{:?}", t1.steps()), format!("{:?}", back[0].1.steps()));
        assert_eq!(format!("{:?}", t2.steps()), format!("{:?}", back[1].1.steps()));
    }

    #[test]
    fn compact_bundle_rejects_bad_references() {
        let decode = |text: &str| traces_from_compact_value(&parse_json_value(text).unwrap());
        // Forward/self base reference.
        assert!(decode(
            "{\"varctxs\":[{\"base\":0,\"take\":0,\"etake\":0,\"level\":0,\"vars\":[],\"evars\":[]}],\"factsets\":[],\"specs\":[]}"
        )
        .is_err());
        // Prefix longer than its base.
        assert!(decode(
            "{\"varctxs\":[{\"base\":null,\"take\":0,\"etake\":0,\"level\":0,\"vars\":[],\"evars\":[]},{\"base\":0,\"take\":3,\"etake\":0,\"level\":0,\"vars\":[],\"evars\":[]}],\"factsets\":[],\"specs\":[]}"
        )
        .is_err());
        // Baseless row claiming a prefix.
        assert!(decode(
            "{\"varctxs\":[{\"base\":null,\"take\":1,\"etake\":0,\"level\":0,\"vars\":[],\"evars\":[]}],\"factsets\":[],\"specs\":[]}"
        )
        .is_err());
        // Obligation indexing past the tables.
        assert!(decode(
            "{\"varctxs\":[],\"factsets\":[],\"specs\":[{\"name\":\"s\",\"trace\":[{\"step\":\"pure_obligation\",\"facts\":0,\"goal\":{\"p\":\"true\"},\"vars\":0}]}]}"
        )
        .is_err());
    }

    #[test]
    fn escapes_survive() {
        let nasty = "a\"b\\c\nd\te\u{1}π";
        roundtrip(TraceStep::IntroVar { name: nasty.into() });
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
