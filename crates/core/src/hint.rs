//! Bi-abduction hint search (§4 of the paper).
//!
//! Given a goal atom `A` and the context `Δ`, find a hint
//! `H ∗ [y⃗; L] ⊫ [|⇛E₁ E₂] x⃗; A ∗ [U]`: scan hypotheses left-to-right
//! (`ε₁` last), for each hypothesis try *base hints* (generic atom
//! matching, fraction hints for `↦` and fractional predicates, the ghost
//! libraries' mutation rules, user hints) closed under the *recursive
//! hints* of §4.3 (wands, invariants, laters, existentials, separating
//! conjunctions). Backtracking is local: candidates are tried under a
//! rollback point, and the first one whose unifications and pure guards
//! succeed is committed.

use crate::ctx::ProofCtx;
use crate::tactic::VerifyOptions;
use diaframe_ghost::{HintCandidate, Registry};
use diaframe_logic::{Assertion, Atom, Mask, MaskT};
use diaframe_term::{unify, PureProp, Sort, Term};

/// A successfully found and committed hint.
#[derive(Debug)]
pub struct FoundHint {
    /// The chain of rule names (outermost recursive hint first).
    pub rules: Vec<String>,
    /// Index of the hypothesis it keyed on; `None` for `ε₁` hints.
    pub hyp_idx: Option<usize>,
    /// Whether the hypothesis must be consumed.
    pub consume: bool,
    /// The side condition `L` (proved before the residue is available).
    pub side: Assertion,
    /// The residue `U`.
    pub residue: Assertion,
    /// Pure facts learned.
    pub learned: Vec<PureProp>,
    /// The concrete mask after applying the hint (`None` = unchanged).
    pub mask_to: Option<Mask>,
    /// Whether a user-provided hint was involved.
    pub custom: bool,
    /// Namespace opened (for the trace), if the hint went through an
    /// invariant.
    pub opened: Option<diaframe_logic::Namespace>,
    /// Namespace closed (for the trace), if the hint applied a closing
    /// wand.
    pub closed: Option<diaframe_logic::Namespace>,
}

/// The result of matching inside one hypothesis.
struct Inner {
    rules: Vec<String>,
    side: Assertion,
    residue: Assertion,
    learned: Vec<PureProp>,
    mask_to: Option<Mask>,
    custom: bool,
    opened: Option<diaframe_logic::Namespace>,
    closed: Option<diaframe_logic::Namespace>,
}

/// Searches for a hint for `atom` at mask `from`. On success the
/// unifications and pure guards have been committed into `ctx`.
pub fn find_hint(
    ctx: &mut ProofCtx,
    registry: &Registry,
    opts: &VerifyOptions,
    atom: &Atom,
    from: &Mask,
) -> Option<FoundHint> {
    let _span = crate::telemetry::span("find_hint");
    // Profile: one probe-batch span per hint search; its payload counter
    // (bumped next to `probe_attempted` in the loop below) is what the
    // rollup identity reconciles against the flat probe counters, and
    // its label carries the matched rule for per-hint cost attribution.
    let mut prof_span = crate::profile::span(crate::profile::SpanKind::FindHint);
    let solves_before = ctx.vars.solve_events();
    let found = find_hint_inner(ctx, registry, opts, atom, from);
    // Virtually all unification happens inside hint search, so the delta
    // here is the per-search evar-instantiation effort (speculative
    // solves included: `solve_events` survives rollback by design).
    crate::telemetry::evar_solves(ctx.vars.solve_events() - solves_before);
    if found.is_none() {
        crate::telemetry::hint_missed(|| {
            crate::index::goal_head(&atom.zonk(&ctx.vars), &ctx.preds)
        });
    }
    if crate::profile::active() {
        match &found {
            Some(f) => prof_span.set_label(f.rules.first().map_or("(unnamed)", String::as_str)),
            None => prof_span.set_label("(miss)"),
        }
    }
    found
}

fn find_hint_inner(
    ctx: &mut ProofCtx,
    registry: &Registry,
    opts: &VerifyOptions,
    atom: &Atom,
    from: &Mask,
) -> Option<FoundHint> {
    let atom = atom.zonk(&ctx.vars);
    let ablation = opts.ablation;
    // A ghost goal whose name is still an undetermined evar is a *fresh*
    // ghost — prefer allocation over capturing an unrelated hypothesis's
    // name (e.g. a new lock's `locked ?γ` must not grab another lock's
    // token).
    if !ablation.no_alloc_preference {
        if let Atom::Ghost(g) = &atom {
            if matches!(&g.gname, Term::EVar(e) if ctx.vars.evar_unsolved(*e)) {
                if let Some(found) = last_resort(ctx, registry, opts, &atom) {
                    return Some(found);
                }
            }
        }
    }
    // Hypotheses newest-first (the most recently derived facts are the
    // most specific — e.g. the freshest monotone lower bound). Two passes:
    // direct hints first, invariant-opening hints second — the strategy
    // prefers resources already at hand over opening shared state. ε₁
    // hints come last. (`None` = the single-pass ablation: both kinds
    // compete in one scan.)
    let passes: &[Option<bool>] = if ablation.single_pass {
        &[None]
    } else {
        &[Some(false), Some(true)]
    };
    let order: Vec<usize> = if ablation.oldest_first {
        (0..ctx.delta.len()).collect()
    } else {
        (0..ctx.delta.len()).rev().collect()
    };
    let indexed = crate::index::hint_index_enabled();
    let custom_active = !opts.custom_hints.is_empty();
    for &allow_open in passes {
        for &idx in &order {
            let is_inv = matches!(
                &ctx.delta[idx].assertion,
                Assertion::Atom(Atom::Invariant { .. })
            );
            if allow_open == Some(false) && is_inv && !matches!(&atom, Atom::Invariant { .. }) {
                continue;
            }
            if allow_open == Some(true) && !is_inv {
                continue;
            }
            // Only (hyp, pass) pairs that pass the pass filter count as
            // probes: the filters above route each hypothesis to exactly
            // one pass, so counting earlier would double-count every
            // hypothesis under the two-pass scan.
            crate::telemetry::probe_attempted();
            crate::profile::bump(1);
            // Head-indexed skip: a probe that cannot structurally
            // succeed is not worth a checkpoint (see `index.rs`; failed
            // probes roll back completely, so skipping them leaves the
            // search — and the resulting trace — bit-identical).
            if indexed && !ctx.delta[idx].heads.may_key(&atom, custom_active) {
                crate::telemetry::probe_skipped();
                continue;
            }
            crate::telemetry::probe_run();
            let vmark = ctx.vars.checkpoint();
            let mmark = ctx.masks.checkpoint();
            let fmark = ctx.facts.len();
            // Borrow the hypothesis without cloning it: the probe never
            // reads `ctx.delta`, so an `emp` placeholder is invisible to
            // it. (Cloning here dominated `find_hint`'s profile — every
            // probe of every hypothesis deep-copied its assertion.)
            let persistent = ctx.delta[idx].persistent;
            let assertion =
                std::mem::replace(&mut ctx.delta[idx].assertion, Assertion::emp());
            let probed = hint_from_hyp(ctx, registry, opts, &assertion, &atom, from);
            ctx.delta[idx].assertion = assertion;
            if let Some(inner) = probed {
                crate::telemetry::probe_matched();
                return Some(FoundHint {
                    rules: inner.rules,
                    hyp_idx: Some(idx),
                    consume: !persistent,
                    side: inner.side,
                    residue: inner.residue,
                    learned: inner.learned,
                    mask_to: inner.mask_to,
                    custom: inner.custom,
                    opened: inner.opened,
                    closed: inner.closed,
                });
            }
            crate::telemetry::probe_failed(&ctx.delta[idx].name);
            ctx.vars.rollback(&vmark);
            ctx.masks.rollback(&mmark);
            ctx.truncate_facts(fmark);
        }
    }
    // ε₁ last-resort hints.
    last_resort(ctx, registry, opts, &atom)
}

/// Last-resort (`ε₁`) hints: ghost allocation, invariant allocation, and
/// user fold hints.
fn last_resort(
    ctx: &mut ProofCtx,
    registry: &Registry,
    opts: &VerifyOptions,
    atom: &Atom,
) -> Option<FoundHint> {
    // User fold hints first (they are the only source for recursive
    // predicates).
    for (_, f) in &opts.custom_alloc_hints {
        let cands = f(&mut ctx.vars, atom);
        for cand in cands {
            let name = cand.name;
            let vmark = ctx.vars.checkpoint();
            let mmark = ctx.masks.checkpoint();
            if let Some(learned) = eval_candidate(ctx, &cand) {
                return Some(FoundHint {
                    rules: vec![name.to_owned()],
                    hyp_idx: None,
                    consume: false,
                    side: cand.side,
                    residue: cand.residue,
                    learned,
                    mask_to: None,
                    custom: true,
                    opened: None,
                    closed: None,
                });
            }
            ctx.vars.rollback(&vmark);
            ctx.masks.rollback(&mmark);
        }
    }
    match atom {
        Atom::Ghost(g) => {
            for lib in registry.iter() {
                if !lib.kinds().contains(&g.kind) {
                    continue;
                }
                let cands = lib.allocations(&mut ctx.vars, g);
                for cand in cands {
                    let name = cand.name;
                    if let Some(learned) = eval_candidate(ctx, &cand) {
                        return Some(FoundHint {
                            rules: vec![name.to_owned()],
                            hyp_idx: None,
                            consume: false,
                            side: cand.side,
                            residue: cand.residue,
                            learned,
                            mask_to: None,
                            custom: false,
                            opened: None,
                            closed: None,
                        });
                    }
                }
            }
            None
        }
        Atom::Invariant { ns, body } => {
            // inv-alloc (§4.2 Example 2): ε₁ ∗ [; ▷L] ⊫ L^N ∗ [L^N].
            // The later is dropped when proving the side (later-intro).
            // The side gets *fresh* binder placeholders: proving it
            // instantiates them, and they must not alias the residue
            // invariant's binders.
            let side = refresh_binders(ctx, body);
            let residue = Assertion::atom(Atom::Invariant {
                ns: ns.clone(),
                body: body.clone(),
            });
            Some(FoundHint {
                rules: vec!["inv-alloc".to_owned()],
                hyp_idx: None,
                consume: false,
                side,
                residue,
                learned: Vec::new(),
                mask_to: None,
                custom: false,
                opened: None,
                closed: None,
            })
        }
        _ => None,
    }
}

/// Tries to produce a hint from one (clean) hypothesis — the recursive
/// hint closure of §4.3. On success, unifications are committed; the
/// caller owns the rollback point.
fn hint_from_hyp(
    ctx: &mut ProofCtx,
    registry: &Registry,
    opts: &VerifyOptions,
    hyp: &Assertion,
    atom: &Atom,
    from: &Mask,
) -> Option<Inner> {
    match hyp {
        Assertion::Atom(a) => {
            // Direct atom-to-atom base hints.
            if let Some(inner) = try_atom_candidates(ctx, registry, opts, a, atom) {
                return Some(inner);
            }
            // Recursive hint through an invariant (§4.3): open it.
            if let Atom::Invariant { ns, body } = a {
                if !from.contains(ns) {
                    return None; // reentrancy guard
                }
                // Pure conjuncts of the body (outside disjunctions) hold
                // whenever the invariant does — make them available to the
                // guards of the inner hint. NOTE: binder-bound pure facts
                // only become available after the matching freshens the
                // binder, so this prescan is best-effort for closed ones;
                // `hint_in_left_goal` adds the freshened ones.
                let inner = hint_in_left_goal(ctx, registry, opts, body, atom, true)?;
                let closing = Assertion::wand(
                    Assertion::later((**body).clone()),
                    Assertion::fupd(
                        MaskT::Concrete(from.without(ns)),
                        MaskT::Concrete(from.clone()),
                        Assertion::atom(Atom::CloseInv { ns: ns.clone() }),
                    ),
                );
                let mut rules = vec!["inv-open".to_owned()];
                rules.extend(inner.rules);
                return Some(Inner {
                    rules,
                    side: inner.side,
                    residue: Assertion::sep(inner.residue, closing),
                    learned: inner.learned,
                    mask_to: Some(from.without(ns)),
                    custom: inner.custom,
                    opened: Some(ns.clone()),
                    closed: None,
                });
            }
            None
        }
        // ▷H: usable when the payload is timeless.
        Assertion::Later(x) => {
            if x.is_timeless(&ctx.preds) {
                hint_from_hyp(ctx, registry, opts, x, atom, from)
            } else {
                None
            }
        }
        // (L −∗ U): recursive wand hint — premise joins the side condition.
        Assertion::Wand(p, c) => {
            let inner = hint_from_hyp(ctx, registry, opts, c, atom, from)?;
            let mut rules = vec!["wand-apply".to_owned()];
            rules.extend(inner.rules);
            Some(Inner {
                rules,
                side: Assertion::sep((**p).clone(), inner.side),
                ..inner
            })
        }
        // |⇛E₁ E₂ U: a mask-changing hypothesis (closing wands). Requires
        // the current mask to be E₁; afterwards the mask is E₂.
        Assertion::FUpd(m1, m2, c) => {
            let m1 = m1.resolve(&ctx.masks)?;
            let m2 = m2.resolve(&ctx.masks)?;
            if m1 != *from {
                return None;
            }
            let inner = hint_from_hyp(ctx, registry, opts, c, atom, from)?;
            if inner.mask_to.is_some() {
                return None; // no nested mask changes
            }
            let closed = match atom {
                Atom::CloseInv { ns } => Some(ns.clone()),
                _ => None,
            };
            Some(Inner {
                mask_to: Some(m2),
                closed,
                ..inner
            })
        }
        // ∀x. U: instantiate with a fresh evar.
        Assertion::Forall(b, body) => {
            let sort = ctx.vars.var_sort(b.var);
            let e = ctx.vars.fresh_evar(sort);
            let body = body.subst(&diaframe_term::Subst::single(b.var, Term::evar(e)));
            hint_from_hyp(ctx, registry, opts, &body, atom, from)
        }
        _ => None,
    }
}

/// Finds a hint from inside a left-goal (an invariant body): descend
/// through `∗`, `∃`, `▷`; never descend into `∨` or `⌜φ⌝` (those spill
/// into the residue).
fn hint_in_left_goal(
    ctx: &mut ProofCtx,
    registry: &Registry,
    opts: &VerifyOptions,
    lg: &Assertion,
    atom: &Atom,
    under_later: bool,
) -> Option<Inner> {
    match lg {
        Assertion::Atom(a) => {
            if under_later && !a.is_timeless() {
                return None;
            }
            try_atom_candidates(ctx, registry, opts, a, atom)
        }
        Assertion::Exists(b, body) => {
            let sort = ctx.vars.var_sort(b.var);
            let name = ctx.vars.var_name(b.var).to_owned();
            let fresh = ctx.vars.fresh_var(sort, &name);
            let body = body.subst(&diaframe_term::Subst::single(b.var, Term::var(fresh)));
            hint_in_left_goal(ctx, registry, opts, &body, atom, under_later)
        }
        Assertion::Sep(l, r) => {
            // Make sibling pure conjuncts available to guards: a hint deep
            // in one conjunct may need a pure fact stated next to it
            // (e.g. `mono-snapshot`'s bound needs the invariant's
            // `⌜0 ≤ n⌝`). The caller rolls `ctx.facts` back on failure.
            for c in lg.sep_conjuncts() {
                if let Assertion::Pure(p) = c {
                    ctx.add_fact(p.clone());
                }
            }
            let vmark = ctx.vars.checkpoint();
            let mmark = ctx.masks.checkpoint();
            if let Some(inner) = hint_in_left_goal(ctx, registry, opts, l, atom, under_later) {
                let rest = wrap_later(ctx, (**r).clone(), under_later);
                return Some(Inner {
                    residue: Assertion::sep(inner.residue, rest),
                    ..inner
                });
            }
            ctx.vars.rollback(&vmark);
            ctx.masks.rollback(&mmark);
            let inner = hint_in_left_goal(ctx, registry, opts, r, atom, under_later)?;
            let rest = wrap_later(ctx, (**l).clone(), under_later);
            Some(Inner {
                residue: Assertion::sep(rest, inner.residue),
                ..inner
            })
        }
        Assertion::Later(x) => hint_in_left_goal(ctx, registry, opts, x, atom, true),
        // Pure facts and disjunctions are residue, not match targets.
        _ => None,
    }
}

fn wrap_later(ctx: &ProofCtx, a: Assertion, under_later: bool) -> Assertion {
    if under_later {
        // The residue is conceptually under a ▷: push the later inwards,
        // dropping it on timeless parts.
        a.strip_later(&ctx.preds)
    } else {
        a
    }
}

/// Base hints between two atoms: generic matching, fraction hints,
/// ghost-library mutations, user hints. Candidates are evaluated in that
/// order under rollback points; the first success is committed.
fn try_atom_candidates(
    ctx: &mut ProofCtx,
    registry: &Registry,
    opts: &VerifyOptions,
    hyp: &Atom,
    goal: &Atom,
) -> Option<Inner> {
    // Invariant duplication: unify the bodies (the goal's may contain
    // evars, e.g. a yet-undetermined ghost name).
    if let (Atom::Invariant { ns: n1, body: b1 }, Atom::Invariant { ns: n2, body: b2 }) =
        (hyp, goal)
    {
        if n1 == n2 {
            let vmark = ctx.vars.checkpoint();
            let mmark = ctx.masks.checkpoint();
            if unify_assertions(ctx, b1, b2) {
                return Some(Inner {
                    rules: vec!["inv-dup".to_owned()],
                    side: Assertion::emp(),
                    residue: Assertion::emp(),
                    learned: Vec::new(),
                    mask_to: None,
                    custom: false,
                    opened: None,
                    closed: None,
                });
            }
            ctx.vars.rollback(&vmark);
            ctx.masks.rollback(&mmark);
        }
        return None;
    }
    let mut cands: Vec<(HintCandidate, bool)> = Vec::new();
    // User hints on recursive predicates are tried *first* (they may need
    // to pre-empt the generic frame rule, e.g. to extract the persistent
    // skeleton of a list while re-proving it).
    if matches!(goal, Atom::PredApp { .. }) {
        for (_, f) in &opts.custom_hints {
            for c in f(&mut ctx.vars, hyp, goal) {
                cands.push((c, true));
            }
        }
    }
    for c in generic_candidates(ctx, hyp, goal) {
        cands.push((c, false));
    }
    if !matches!(goal, Atom::PredApp { .. }) {
        for (_, f) in &opts.custom_hints {
            for c in f(&mut ctx.vars, hyp, goal) {
                cands.push((c, true));
            }
        }
    }
    if let Atom::Ghost(h) = hyp {
        if let Some(lib) = registry.library_for(h.kind) {
            for c in lib.hints(&mut ctx.vars, h, goal) {
                cands.push((c, false));
            }
        }
    }
    for c in fraction_candidates(ctx, hyp, goal) {
        cands.push((c, false));
    }
    for (cand, custom) in cands {
        let vmark = ctx.vars.checkpoint();
        let mmark = ctx.masks.checkpoint();
        if let Some(learned) = eval_candidate(ctx, &cand) {
            return Some(Inner {
                rules: vec![cand.name.to_owned()],
                side: cand.side,
                residue: cand.residue,
                learned,
                mask_to: None,
                custom,
                opened: None,
                closed: None,
            });
        }
        ctx.vars.rollback(&vmark);
        ctx.masks.rollback(&mmark);
    }
    None
}

/// Commits a candidate: unify all pairs, prove all guards. Returns the
/// learned facts on success; the caller owns rollback on failure.
fn eval_candidate(ctx: &mut ProofCtx, cand: &HintCandidate) -> Option<Vec<PureProp>> {
    for (a, b) in &cand.unifications {
        if unify(&mut ctx.vars, a, b).is_err() {
            return None;
        }
    }
    for g in &cand.guards {
        if !ctx.prove_pure(g) {
            return None;
        }
    }
    Some(cand.learned.clone())
}

/// Exact-match candidates (the hypothesis *is* the goal modulo
/// unification and provable equalities).
fn generic_candidates(_ctx: &ProofCtx, hyp: &Atom, goal: &Atom) -> Vec<HintCandidate> {
    match (hyp, goal) {
        (
            Atom::PointsTo {
                loc: l1,
                frac: q1,
                val: v1,
            },
            Atom::PointsTo {
                loc: l2,
                frac: q2,
                val: v2,
            },
        ) => {
            vec![HintCandidate::new("points-to")
                .unify(l2.clone(), l1.clone())
                .unify(q2.clone(), q1.clone())
                .guard(PureProp::eq(v2.clone(), v1.clone()))]
        }
        (Atom::Ghost(h), Atom::Ghost(g)) if h.kind == g.kind && h.pred == g.pred => {
            let mut c = HintCandidate::new("ghost-frame").unify(g.gname.clone(), h.gname.clone());
            for (x, y) in g.args.iter().zip(&h.args) {
                c = c.guard(PureProp::eq(x.clone(), y.clone()));
            }
            vec![c]
        }
        (Atom::PredApp { pred: p1, args: a1 }, Atom::PredApp { pred: p2, args: a2 })
            if p1 == p2 =>
        {
            let mut c = HintCandidate::new("pred-frame");
            for (x, y) in a2.iter().zip(a1) {
                c = c.guard(PureProp::eq(x.clone(), y.clone()));
            }
            vec![c]
        }
        (Atom::Invariant { .. }, Atom::Invariant { .. }) => {
            // Handled by `try_atom_candidates` through assertion
            // unification (the bodies may contain evars).
            Vec::new()
        }
        (Atom::CloseInv { ns: n1 }, Atom::CloseInv { ns: n2 }) if n1 == n2 => {
            vec![HintCandidate::new("close-marker")]
        }
        _ => Vec::new(),
    }
}

/// Fraction hints for `↦` (§4.2 Example 4) and fractional abstract
/// predicates.
fn fraction_candidates(ctx: &mut ProofCtx, hyp: &Atom, goal: &Atom) -> Vec<HintCandidate> {
    match (hyp, goal) {
        (
            Atom::PointsTo {
                loc: l1,
                frac: q1,
                val: v1,
            },
            Atom::PointsTo {
                loc: l2,
                frac: q2,
                val: v2,
            },
        ) => {
            let mut out = Vec::new();
            // Split: the hypothesis has more; keep the difference.
            out.push(
                HintCandidate::new("points-to-split")
                    .unify(l2.clone(), l1.clone())
                    .guard(PureProp::lt(q2.clone(), q1.clone()))
                    .guard(PureProp::eq(v2.clone(), v1.clone()))
                    .residue(Assertion::atom(Atom::PointsTo {
                        loc: l1.clone(),
                        frac: Term::sub(q1.clone(), q2.clone()),
                        val: v1.clone(),
                    })),
            );
            // Join: the goal wants more; demand the missing fraction for
            // an arbitrary value — a *binder* of the side condition (§4.2
            // Example 4's ∃v₃), so its instantiation is delayed until the
            // providing resource is found. Points-to agreement then
            // equates the values.
            let v3 = ctx.vars.fresh_var(Sort::Val, "v3");
            out.push(
                HintCandidate::new("points-to-join")
                    .unify(l2.clone(), l1.clone())
                    .guard(PureProp::lt(q1.clone(), q2.clone()))
                    .guard(PureProp::eq(v2.clone(), v1.clone()))
                    .side(Assertion::exists(
                        diaframe_logic::Binder::new(v3),
                        Assertion::atom(Atom::PointsTo {
                            loc: l1.clone(),
                            frac: Term::sub(q2.clone(), q1.clone()),
                            val: Term::var(v3),
                        }),
                    ))
                    // Residue ⌜v₁ = v₃⌝ (§4.2 Example 4): *received* by
                    // points-to agreement, not proven.
                    .residue(Assertion::pure(PureProp::eq(v1.clone(), Term::var(v3)))),
            );
            out
        }
        (Atom::PredApp { pred: p1, args: a1 }, Atom::PredApp { pred: p2, args: a2 })
            if p1 == p2 && ctx.preds.info(*p1).fractional && a1.len() == 1 =>
        {
            let (q1, q2) = (a1[0].clone(), a2[0].clone());
            vec![
                HintCandidate::new("fractional-split")
                    .guard(PureProp::lt(q2.clone(), q1.clone()))
                    .residue(Assertion::atom(Atom::PredApp {
                        pred: *p1,
                        args: vec![Term::sub(q1.clone(), q2.clone())],
                    })),
                HintCandidate::new("fractional-join")
                    .guard(PureProp::lt(q1.clone(), q2.clone()))
                    .side(Assertion::atom(Atom::PredApp {
                        pred: *p1,
                        args: vec![Term::sub(q2, q1)],
                    })),
            ]
        }
        _ => Vec::new(),
    }
}

/// Clones an assertion with fresh binder placeholders (same sorts and
/// names), so that instantiating the clone's binders cannot rewrite the
/// original.
fn refresh_binders(ctx: &mut ProofCtx, a: &Assertion) -> Assertion {
    match a {
        Assertion::Exists(b, body) | Assertion::Forall(b, body) => {
            let sort = ctx.vars.var_sort(b.var);
            let name = ctx.vars.var_name(b.var).to_owned();
            let fresh = ctx.vars.fresh_var(sort, &name);
            let body = body.subst(&diaframe_term::Subst::single(b.var, Term::var(fresh)));
            let body = refresh_binders(ctx, &body);
            let binder = diaframe_logic::Binder::new(fresh);
            if matches!(a, Assertion::Exists(..)) {
                Assertion::exists(binder, body)
            } else {
                Assertion::forall(binder, body)
            }
        }
        Assertion::Sep(l, r) => Assertion::sep(refresh_binders(ctx, l), refresh_binders(ctx, r)),
        Assertion::Or(l, r) => Assertion::or(refresh_binders(ctx, l), refresh_binders(ctx, r)),
        Assertion::Wand(l, r) => {
            Assertion::wand(refresh_binders(ctx, l), refresh_binders(ctx, r))
        }
        Assertion::Later(x) => Assertion::later(refresh_binders(ctx, x)),
        Assertion::BUpd(x) => Assertion::bupd(refresh_binders(ctx, x)),
        Assertion::FUpd(f, t, x) => {
            Assertion::fupd(f.clone(), t.clone(), refresh_binders(ctx, x))
        }
        other => other.clone(),
    }
}

/// Structural unification of two assertions (used for matching duplicable
/// invariants whose bodies may contain evars). Binders must be literally
/// the same placeholders — which they are whenever both assertions are
/// substitution instances of one specification template.
fn unify_assertions(ctx: &mut ProofCtx, a: &Assertion, b: &Assertion) -> bool {
    use diaframe_logic::GhostAtom;
    fn terms(ctx: &mut ProofCtx, xs: &[Term], ys: &[Term]) -> bool {
        xs.len() == ys.len()
            && xs
                .iter()
                .zip(ys)
                .all(|(x, y)| unify(&mut ctx.vars, x, y).is_ok())
    }
    fn atoms(ctx: &mut ProofCtx, a: &Atom, b: &Atom) -> bool {
        match (a, b) {
            (
                Atom::PointsTo {
                    loc: l1,
                    frac: q1,
                    val: v1,
                },
                Atom::PointsTo {
                    loc: l2,
                    frac: q2,
                    val: v2,
                },
            ) => terms(ctx, &[l1.clone(), q1.clone(), v1.clone()], &[
                l2.clone(),
                q2.clone(),
                v2.clone(),
            ]),
            (Atom::Ghost(GhostAtom { kind: k1, gname: g1, pred: p1, args: a1 }),
             Atom::Ghost(GhostAtom { kind: k2, gname: g2, pred: p2, args: a2 })) => {
                k1 == k2
                    && p1 == p2
                    && unify(&mut ctx.vars, g1, g2).is_ok()
                    && terms(ctx, a1, a2)
            }
            (Atom::Invariant { ns: n1, body: b1 }, Atom::Invariant { ns: n2, body: b2 }) => {
                n1 == n2 && unify_assertions(ctx, b1, b2)
            }
            (Atom::PredApp { pred: p1, args: a1 }, Atom::PredApp { pred: p2, args: a2 }) => {
                p1 == p2 && terms(ctx, a1, a2)
            }
            (Atom::CloseInv { ns: n1 }, Atom::CloseInv { ns: n2 }) => n1 == n2,
            _ => false,
        }
    }
    fn props(ctx: &mut ProofCtx, a: &PureProp, b: &PureProp) -> bool {
        use PureProp as P;
        match (a, b) {
            (P::True, P::True) | (P::False, P::False) => true,
            (P::Eq(x1, y1), P::Eq(x2, y2))
            | (P::Ne(x1, y1), P::Ne(x2, y2))
            | (P::Le(x1, y1), P::Le(x2, y2))
            | (P::Lt(x1, y1), P::Lt(x2, y2)) => {
                unify(&mut ctx.vars, x1, x2).is_ok() && unify(&mut ctx.vars, y1, y2).is_ok()
            }
            (P::And(x1, y1), P::And(x2, y2))
            | (P::Or(x1, y1), P::Or(x2, y2))
            | (P::Implies(x1, y1), P::Implies(x2, y2)) => {
                props(ctx, x1, x2) && props(ctx, y1, y2)
            }
            (P::Not(x1), P::Not(x2)) => props(ctx, x1, x2),
            _ => false,
        }
    }
    match (a, b) {
        (Assertion::Pure(p1), Assertion::Pure(p2)) => props(ctx, p1, p2),
        (Assertion::Atom(a1), Assertion::Atom(a2)) => atoms(ctx, a1, a2),
        (Assertion::Sep(l1, r1), Assertion::Sep(l2, r2))
        | (Assertion::Or(l1, r1), Assertion::Or(l2, r2))
        | (Assertion::Wand(l1, r1), Assertion::Wand(l2, r2)) => {
            unify_assertions(ctx, l1, l2) && unify_assertions(ctx, r1, r2)
        }
        (Assertion::Exists(b1, x1), Assertion::Exists(b2, x2))
        | (Assertion::Forall(b1, x1), Assertion::Forall(b2, x2)) => {
            // α-insensitive: rename the right binder to the left one (the
            // sorts must agree), then compare the bodies.
            if b1.var == b2.var {
                unify_assertions(ctx, x1, x2)
            } else if ctx.vars.var_sort(b1.var) == ctx.vars.var_sort(b2.var) {
                let x2 = x2.subst(&diaframe_term::Subst::single(
                    b2.var,
                    Term::var(b1.var),
                ));
                unify_assertions(ctx, x1, &x2)
            } else {
                false
            }
        }
        (Assertion::Later(x1), Assertion::Later(x2))
        | (Assertion::BUpd(x1), Assertion::BUpd(x2)) => unify_assertions(ctx, x1, x2),
        (Assertion::FUpd(f1, t1, x1), Assertion::FUpd(f2, t2, x2)) => {
            ctx.masks.unify(f1, f2) && ctx.masks.unify(t1, t2) && unify_assertions(ctx, x1, x2)
        }
        _ => false,
    }
}
