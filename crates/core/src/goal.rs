//! The goal grammar `G` of §5.1.

use diaframe_heaplang::Expr;
use diaframe_logic::{Assertion, Binder, MaskT, WpPost};
use diaframe_term::{Subst, VarCtx};

/// A proof search goal (the grammar `G` of §5.1):
///
/// ```text
/// G ::= ∀x. G | U −∗ G | wp e {v. L} | |⇛E₁ E₂ L | ∥|⇛E₁ E₂∥ ∃x⃗. L ∗ G
/// ```
///
/// plus [`Goal::MaskSync`], an administrative node that reconciles two
/// masks by closing invariants (the engine's rendering of case 4a), and
/// [`Goal::Done`], the solved goal.
#[derive(Debug, Clone)]
pub enum Goal {
    /// `∀x. G`.
    Forall(Binder, Box<Goal>),
    /// `U −∗ G`.
    WandIntro(Assertion, Box<Goal>),
    /// `wp_E e {v. L}`, followed by a continuation goal.
    ///
    /// The continuation is how a forked thread's weakest precondition
    /// composes with the rest of the proof: branching inside the child
    /// proof then correctly covers the parent's remaining obligations.
    /// The main thread's `wp` carries [`Goal::Done`].
    Wp {
        /// The expression under execution.
        expr: Expr,
        /// The wp mask.
        mask: MaskT,
        /// The postcondition.
        post: WpPost,
        /// Goal to prove after the postcondition.
        then: Box<Goal>,
    },
    /// Strip one later from every hypothesis — performed when a program
    /// step is taken (the `▷` bookkeeping the paper glosses over in §3.2).
    StripLaters(Box<Goal>),
    /// `|⇛E₁ E₂ L`.
    Fupd {
        /// The source mask.
        from: MaskT,
        /// The target mask.
        to: MaskT,
        /// The body (a left-goal, possibly a `wp` atom).
        inner: Assertion,
    },
    /// The synthetic `∥|⇛E₁ E₂∥ ∃x⃗. L ∗ G`.
    SynFupd {
        /// The source mask.
        from: MaskT,
        /// The target mask.
        to: MaskT,
        /// The existential binders (placeholders; converted to evars when
        /// the atom containing them is selected — the *delayed
        /// instantiation* of §3.2).
        exists: Vec<Binder>,
        /// The left-goal to prove.
        lhs: Assertion,
        /// The continuation.
        cont: Box<Goal>,
    },
    /// Reconcile `from` with `to` (unify masks, or close the invariants in
    /// `from ∖ to` via `χ` obligations), then continue.
    MaskSync {
        /// The current mask.
        from: MaskT,
        /// The required mask.
        to: MaskT,
        /// The continuation.
        cont: Box<Goal>,
    },
    /// The solved goal.
    Done,
}

impl Goal {
    /// `∀x. G`.
    #[must_use]
    pub fn forall(b: Binder, g: Goal) -> Goal {
        Goal::Forall(b, Box::new(g))
    }

    /// `U −∗ G`.
    #[must_use]
    pub fn wand_intro(u: Assertion, g: Goal) -> Goal {
        Goal::WandIntro(u, Box::new(g))
    }

    /// Applies a substitution to every embedded assertion.
    #[must_use]
    pub fn subst(&self, s: &Subst) -> Goal {
        match self {
            Goal::Forall(b, g) => Goal::Forall(*b, Box::new(g.subst(s))),
            Goal::WandIntro(u, g) => Goal::WandIntro(u.subst(s), Box::new(g.subst(s))),
            Goal::Wp { expr, mask, post, then } => Goal::Wp {
                expr: expr.clone(),
                mask: mask.clone(),
                post: WpPost {
                    ret: post.ret,
                    body: Box::new(post.body.subst(s)),
                },
                then: Box::new(then.subst(s)),
            },
            Goal::StripLaters(g) => Goal::StripLaters(Box::new(g.subst(s))),
            Goal::Fupd { from, to, inner } => Goal::Fupd {
                from: from.clone(),
                to: to.clone(),
                inner: inner.subst(s),
            },
            Goal::SynFupd {
                from,
                to,
                exists,
                lhs,
                cont,
            } => Goal::SynFupd {
                from: from.clone(),
                to: to.clone(),
                exists: exists.clone(),
                lhs: lhs.subst(s),
                cont: Box::new(cont.subst(s)),
            },
            Goal::MaskSync { from, to, cont } => Goal::MaskSync {
                from: from.clone(),
                to: to.clone(),
                cont: Box::new(cont.subst(s)),
            },
            Goal::Done => Goal::Done,
        }
    }

    /// Zonks every embedded assertion.
    #[must_use]
    pub fn zonk(&self, ctx: &VarCtx) -> Goal {
        match self {
            Goal::Forall(b, g) => Goal::Forall(*b, Box::new(g.zonk(ctx))),
            Goal::WandIntro(u, g) => Goal::WandIntro(u.zonk(ctx), Box::new(g.zonk(ctx))),
            Goal::Wp { expr, mask, post, then } => Goal::Wp {
                expr: expr.clone(),
                mask: mask.clone(),
                post: WpPost {
                    ret: post.ret,
                    body: Box::new(post.body.zonk(ctx)),
                },
                then: Box::new(then.zonk(ctx)),
            },
            Goal::StripLaters(g) => Goal::StripLaters(Box::new(g.zonk(ctx))),
            Goal::Fupd { from, to, inner } => Goal::Fupd {
                from: from.clone(),
                to: to.clone(),
                inner: inner.zonk(ctx),
            },
            Goal::SynFupd {
                from,
                to,
                exists,
                lhs,
                cont,
            } => Goal::SynFupd {
                from: from.clone(),
                to: to.clone(),
                exists: exists.clone(),
                lhs: lhs.zonk(ctx),
                cont: Box::new(cont.zonk(ctx)),
            },
            Goal::MaskSync { from, to, cont } => Goal::MaskSync {
                from: from.clone(),
                to: to.clone(),
                cont: Box::new(cont.zonk(ctx)),
            },
            Goal::Done => Goal::Done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diaframe_logic::Atom;
    use diaframe_term::{PureProp, Sort, Term};

    #[test]
    fn subst_reaches_nested_goals() {
        let mut vars = VarCtx::new();
        let x = vars.fresh_var(Sort::Val, "x");
        let g = Goal::wand_intro(
            Assertion::pure(PureProp::eq(Term::var(x), Term::v_unit())),
            Goal::Done,
        );
        let s = Subst::single(x, Term::v_int_lit(1));
        match g.subst(&s) {
            Goal::WandIntro(u, _) => assert_eq!(
                u,
                Assertion::pure(PureProp::eq(Term::v_int_lit(1), Term::v_unit()))
            ),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn zonk_reaches_syn_fupd() {
        let mut vars = VarCtx::new();
        let e = vars.fresh_evar(Sort::Loc);
        vars.solve_evar(e, Term::Loc(7));
        let g = Goal::SynFupd {
            from: MaskT::top(),
            to: MaskT::top(),
            exists: Vec::new(),
            lhs: Assertion::atom(Atom::points_to(Term::evar(e), Term::v_unit())),
            cont: Box::new(Goal::Done),
        };
        match g.zonk(&vars) {
            Goal::SynFupd { lhs, .. } => assert_eq!(
                lhs,
                Assertion::atom(Atom::points_to(Term::Loc(7), Term::v_unit()))
            ),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
