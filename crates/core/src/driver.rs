//! A deterministic scoped-thread work pool for fanning verification
//! jobs out over the available cores.
//!
//! Verification jobs are embarrassingly parallel: search and check share
//! no mutable state across examples (each `verify` call owns its
//! `ProofCtx`, and the ghost registry and spec tables are read-only).
//! [`run_ordered`] exploits that: items are claimed from an atomic
//! cursor by a fixed-size pool of big-stack worker threads, each item
//! runs under panic isolation, and the results come back **in item
//! order** — callers observe exactly the serial outcome regardless of
//! the interleaving (`jobs = 1` *is* the serial path).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A job panicked; the payload rendered as a string (other jobs are
/// unaffected).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// The panic message, or a placeholder for non-string payloads.
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job panicked: {}", self.message)
    }
}

/// The default worker count: `DIAFRAME_JOBS` if set (minimum 1), else
/// [`std::thread::available_parallelism`].
#[must_use]
pub fn default_jobs() -> usize {
    if let Some(n) = std::env::var("DIAFRAME_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `f` over every item on a pool of `jobs` verification workers,
/// returning per-item results in item order.
///
/// Each worker is a big-stack verification-session thread (so `f` can
/// call `verify` without a further thread hop) and inherits the caller's
/// ablation override. A panic in `f` is confined to its item and
/// reported as [`JobPanic`]; remaining items still run.
pub fn run_ordered<T, I, F>(items: &[I], jobs: usize, f: F) -> Vec<Result<T, JobPanic>>
where
    T: Send,
    I: Sync,
    F: Fn(usize, &I) -> T + Sync,
{
    let jobs = jobs.clamp(1, items.len().max(1));
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<T, JobPanic>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();
    // The pool and the branch-level speculative workers share one thread
    // budget of `jobs` units (see `crate::speculate`): each pool worker
    // occupies a unit for its lifetime, so while the pool is saturated no
    // search speculates, and as workers exit their freed units let the
    // remaining stragglers go intra-spec parallel.
    let _budget = crate::speculate::budget_scope(jobs);
    let ablation = crate::tactic::current_ablation();
    // The telemetry session (like the ablation override) is thread-local
    // state that must be re-installed in every worker; the counters
    // behind it are atomics shared through an `Arc`, so all workers feed
    // one session and the merge at join is free.
    let telemetry = crate::telemetry::current();
    // The profiler propagates the same way; pool workers register their
    // own timeline lanes, and their spans hang off whatever span was
    // open at the pool call site.
    let profile = crate::profile::current();
    let profile_parent = crate::profile::current_span_id();
    std::thread::scope(|scope| {
        let mut workers = Vec::with_capacity(jobs);
        for w in 0..jobs {
            let (cursor, slots, f) = (&cursor, &slots, &f);
            let telemetry = telemetry.clone();
            let profile = profile.clone();
            let worker = std::thread::Builder::new()
                .name(format!("diaframe-worker-{w}"))
                // Workers double as verification sessions — see the
                // stack-size rationale at `with_verification_session`.
                .stack_size(crate::verify::session_stack_bytes())
                .spawn_scoped(scope, move || {
                    crate::verify::mark_session_thread();
                    let _slot = crate::speculate::occupy_worker();
                    let _telemetry_guard = telemetry.as_ref().map(|s| s.install());
                    let _profile_guard = profile
                        .as_ref()
                        .map(|p| p.install_with_parent(profile_parent));
                    crate::tactic::with_ablation_override(ablation, || loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        let outcome = catch_unwind(AssertUnwindSafe(|| f(i, item)))
                            .map_err(|payload| JobPanic {
                                message: panic_message(payload.as_ref()),
                            });
                        *slots[i].lock().unwrap() = Some(outcome);
                    });
                })
                .expect("spawn driver worker");
            workers.push(worker);
        }
        for worker in workers {
            // Workers never panic outside the per-item catch_unwind.
            worker.join().expect("driver worker died");
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock poisoned")
                .expect("worker pool exited with unprocessed item")
        })
        .collect()
}

/// Deterministically aggregates a pool run's results: all values in item
/// order, or — if any job panicked — an error message naming *every*
/// panicked item (rendered by `describe`, in item order) with its panic
/// payload verbatim.
///
/// Callers used to `expect()` each result in a loop, which reported
/// whichever panic happened to sit at the lowest index the iteration
/// reached and dropped the rest; with this helper a multi-failure run
/// reports the same complete, ordered message at any `jobs` level.
///
/// # Errors
///
/// One line per panicked item, joined with `; `.
pub fn collect_ordered<T>(
    results: Vec<Result<T, JobPanic>>,
    describe: impl Fn(usize) -> String,
) -> Result<Vec<T>, String> {
    let mut values = Vec::with_capacity(results.len());
    let mut failures: Vec<String> = Vec::new();
    for (i, r) in results.into_iter().enumerate() {
        match r {
            Ok(v) => values.push(v),
            Err(p) => failures.push(format!("{}: {}", describe(i), p.message)),
        }
    }
    if failures.is_empty() {
        Ok(values)
    } else {
        Err(failures.join("; "))
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pool runs install a budget scope on the process-global speculation
    /// budget; serialize against the `speculate` module's own tests.
    fn budget_lock() -> std::sync::MutexGuard<'static, ()> {
        crate::speculate::TEST_BUDGET_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn results_come_back_in_item_order() {
        let _b = budget_lock();
        let items: Vec<usize> = (0..64).collect();
        for jobs in [1, 3, 8] {
            let out = run_ordered(&items, jobs, |i, &x| {
                assert_eq!(i, x);
                // Skew the finish order: later items run faster.
                if x % 7 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                x * 10
            });
            let got: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(got, (0..64).map(|x| x * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn panics_are_isolated_per_item() {
        let _b = budget_lock();
        let items: Vec<usize> = (0..10).collect();
        let out = run_ordered(&items, 4, |_, &x| {
            assert!(x != 3 && x != 7, "boom {x}");
            x
        });
        for (i, r) in out.iter().enumerate() {
            if i == 3 || i == 7 {
                let err = r.as_ref().unwrap_err();
                assert!(err.message.contains("boom"), "got {err}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i);
            }
        }
    }

    #[test]
    fn ablation_override_reaches_workers() {
        let _b = budget_lock();
        use crate::{current_ablation, with_ablation_override, Ablation};
        let ab = Ablation {
            oldest_first: true,
            ..Ablation::none()
        };
        let seen = with_ablation_override(ab, || {
            run_ordered(&[(), (), ()], 2, |_, ()| current_ablation())
        });
        for s in seen {
            assert_eq!(s.unwrap(), ab);
        }
    }

    #[test]
    fn telemetry_session_reaches_workers() {
        let _b = budget_lock();
        let session = crate::telemetry::TelemetrySession::new("pool");
        let _guard = session.install();
        let labels = run_ordered(&[(), (), ()], 2, |_, ()| {
            // Workers count into the *caller's* session…
            crate::telemetry::probe_attempted();
            crate::telemetry::probe_run();
            crate::telemetry::current().map(|s| s.label().to_owned())
        });
        for l in labels {
            assert_eq!(l.unwrap().as_deref(), Some("pool"));
        }
        // …so the aggregate is visible at the join, no merge step needed.
        let snap = session.snapshot();
        assert_eq!(snap.probes_attempted, 3);
        assert_eq!(snap.probes_indexed_hit, 3);
        snap.check_invariants().unwrap();
    }

    #[test]
    fn empty_and_single_item_edge_cases() {
        let _b = budget_lock();
        let out = run_ordered::<u8, u8, _>(&[], 4, |_, _| unreachable!());
        assert!(out.is_empty());
        let out = run_ordered(&[5u8], 16, |_, &x| x);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].as_ref().unwrap(), &5);
    }

    #[test]
    fn collect_ordered_reports_every_panic_in_item_order() {
        let _b = budget_lock();
        let items: Vec<usize> = (0..10).collect();
        for jobs in [1, 4] {
            let results = run_ordered(&items, jobs, |_, &x| {
                assert!(x != 2 && x != 5, "boom {x}");
                x * 10
            });
            let err = collect_ordered(results, |i| format!("item-{i}")).unwrap_err();
            // Whatever the interleaving, the aggregate message is the
            // same: every failure, in item order, payload verbatim.
            assert_eq!(err, "item-2: boom 2; item-5: boom 5");
        }
        let results = run_ordered(&items, 4, |_, &x| x * 10);
        let values = collect_ordered(results, |i| format!("item-{i}")).unwrap();
        assert_eq!(values, (0..10).map(|x| x * 10).collect::<Vec<_>>());
    }
}
