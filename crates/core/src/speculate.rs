//! The speculation budget: a process-wide thread allowance shared
//! between the spec-level work pool ([`crate::driver::run_ordered`]) and
//! the branch-level speculative workers spawned inside a single search
//! ([`crate::strategy`]).
//!
//! All parallelism in this engine respects one knob, `DIAFRAME_JOBS`:
//! the suite driver fans examples over `jobs` workers, and — new in this
//! layer — a search that reaches a 2-way case split may offload the
//! second branch to a speculative worker. Without coordination those two
//! levels would multiply (`jobs` pool workers × one speculative thread
//! each ≈ `2×jobs` runnable threads). Instead both draw from a single
//! budget of `jobs` *units*:
//!
//! * [`budget_scope`] — installed by `run_ordered` for the duration of a
//!   pool run — sets the budget to the pool's `jobs`;
//! * every pool worker holds one unit for its lifetime
//!   ([`occupy_worker`]);
//! * a search wanting to speculate calls [`try_acquire`]; it gets a
//!   [`Permit`] only if a unit is free.
//!
//! While all pool workers are busy the budget is exhausted and every
//! search runs serially — exactly the pre-existing behavior. As the
//! suite drains and workers exit, their units free up and the remaining
//! *stragglers* (the slowest examples) start winning permits, so the
//! tail of a parallel suite run — which used to be bounded by the
//! slowest single example's serial search — goes intra-spec parallel.
//! A standalone `verify` call (no pool) gets the full default budget.
//!
//! Speculation never changes results: the strategy only accepts a
//! speculative branch when its outcome is provably what the serial
//! search would have produced (see `strategy::split_branches`), so
//! permit availability — and therefore thread scheduling — affects wall
//! time and the `spec_*` telemetry counters, nothing else. The
//! `DIAFRAME_SPECULATE` environment variable (`off`/`0` to disable) and
//! [`force_disable`] are the escape hatches; byte-identity between the
//! two modes is pinned by `crates/bench/tests/speculation_identity.rs`.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// The `Stuck::reason` a cancelled speculative engine aborts with. Only
/// ever constructed inside a speculative worker and always discarded by
/// the spawner; asserted never to escape to user-visible reports.
pub(crate) const CANCELLED_REASON: &str = "speculation cancelled";

/// `DIAFRAME_SPECULATE` parsed once: unset or anything but
/// `0`/`off`/empty means enabled.
fn env_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        std::env::var("DIAFRAME_SPECULATE").map_or(true, |v| {
            let v = v.trim();
            !(v.is_empty() || v == "0" || v.eq_ignore_ascii_case("off"))
        })
    })
}

static FORCE_DISABLE: AtomicBool = AtomicBool::new(false);

/// Programmatic kill switch, overriding the environment (used by the
/// identity tests to compare speculative and serial searches within one
/// process). Applies process-wide.
pub fn force_disable(disabled: bool) {
    FORCE_DISABLE.store(disabled, Ordering::SeqCst);
}

/// Whether speculative branch search is currently allowed at all.
#[must_use]
pub fn enabled() -> bool {
    env_enabled() && !FORCE_DISABLE.load(Ordering::SeqCst)
}

/// The budget in units; 0 means "unset", read as the default job count.
static CAPACITY: AtomicUsize = AtomicUsize::new(0);
/// Units currently held (pool workers + live speculation permits).
static IN_USE: AtomicUsize = AtomicUsize::new(0);

fn capacity() -> usize {
    match CAPACITY.load(Ordering::Relaxed) {
        0 => crate::driver::default_jobs(),
        n => n,
    }
}

/// Sets the speculation budget to `jobs` units until the guard drops
/// (restoring the previous value). Installed by `run_ordered` around a
/// pool run so pool workers and speculative workers share one budget.
///
/// The budget is process-global: concurrent scopes (e.g. parallel tests
/// each running a pool) race on it, which can only mis-size the budget
/// temporarily — permits gate wall-clock behavior, never results.
#[must_use]
pub fn budget_scope(jobs: usize) -> BudgetScope {
    let prev = CAPACITY.swap(jobs.max(1), Ordering::Relaxed);
    BudgetScope { prev }
}

/// Guard from [`budget_scope`]; restores the previous budget on drop.
pub struct BudgetScope {
    prev: usize,
}

impl Drop for BudgetScope {
    fn drop(&mut self) {
        CAPACITY.store(self.prev, Ordering::Relaxed);
    }
}

/// Marks one pool worker as occupying a budget unit for its lifetime.
/// Unconditional (a pool worker exists whether or not it speculates);
/// the unit frees when the guard drops, which is what lets tail
/// stragglers of a draining pool start speculating.
#[must_use]
pub fn occupy_worker() -> WorkerSlot {
    IN_USE.fetch_add(1, Ordering::Relaxed);
    WorkerSlot { _priv: () }
}

/// Guard from [`occupy_worker`].
pub struct WorkerSlot {
    _priv: (),
}

impl Drop for WorkerSlot {
    fn drop(&mut self) {
        IN_USE.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One unit of the budget, held by a live speculative worker; freed on
/// drop.
pub struct Permit {
    _priv: (),
}

impl Drop for Permit {
    fn drop(&mut self) {
        IN_USE.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Tries to reserve a budget unit for a speculative branch worker.
/// `None` when speculation is disabled or every unit is held — the
/// caller then searches the branch serially.
#[must_use]
pub fn try_acquire() -> Option<Permit> {
    if !enabled() {
        return None;
    }
    let mut in_use = IN_USE.load(Ordering::Relaxed);
    loop {
        if in_use >= capacity() {
            return None;
        }
        match IN_USE.compare_exchange_weak(
            in_use,
            in_use + 1,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return Some(Permit { _priv: () }),
            Err(seen) => in_use = seen,
        }
    }
}

/// Serializes unit tests that touch the process-global budget statics
/// (this module's tests and `driver`'s pool tests, which install budget
/// scopes). Other concurrent tests can still *consume* units by
/// speculating, so positive acquisition assertions below retry.
#[cfg(test)]
pub(crate) static TEST_BUDGET_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    /// Retries a permit acquisition for a while: concurrent tests may
    /// transiently hold units, but they drain. Negative assertions need
    /// no such care — units *we* hold keep `try_acquire` failing
    /// regardless of other threads.
    fn acquire_eventually() -> Permit {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            if let Some(p) = try_acquire() {
                return p;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "no budget unit freed up within 5s"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn permits_respect_the_budget() {
        let _l = TEST_BUDGET_LOCK.lock().unwrap();
        let _scope = budget_scope(2);
        let w = occupy_worker();
        let p = acquire_eventually();
        assert!(
            try_acquire().is_none(),
            "budget of 2 fully held by worker + permit"
        );
        drop(p);
        let p2 = acquire_eventually();
        drop(w);
        drop(p2);
    }

    #[test]
    fn a_budget_of_one_never_speculates() {
        let _l = TEST_BUDGET_LOCK.lock().unwrap();
        let _scope = budget_scope(1);
        let _w = occupy_worker();
        assert!(try_acquire().is_none());
    }

    #[test]
    fn force_disable_wins_over_free_budget() {
        let _l = TEST_BUDGET_LOCK.lock().unwrap();
        let _scope = budget_scope(8);
        force_disable(true);
        assert!(!enabled());
        assert!(try_acquire().is_none());
        force_disable(false);
        let p = acquire_eventually();
        drop(p);
    }

    #[test]
    fn budget_scopes_nest_and_restore() {
        let _l = TEST_BUDGET_LOCK.lock().unwrap();
        let outer = budget_scope(3);
        assert_eq!(capacity(), 3);
        {
            let _inner = budget_scope(5);
            assert_eq!(capacity(), 5);
        }
        assert_eq!(capacity(), 3);
        drop(outer);
    }
}
