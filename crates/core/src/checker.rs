//! The independent trace checker — the "foundational" layer.
//!
//! The search engine is heuristic and complicated; the checker is small
//! and dumb. It replays a [`ProofTrace`] and re-validates:
//!
//! * every **pure obligation**: the recorded facts must entail the
//!   recorded goal, re-proved from scratch by the pure solver (evar-free,
//!   since obligations are recorded zonked);
//! * the **mask discipline**: along every branch of the proof tree,
//!   invariants are opened at most once before being closed (no
//!   reentrancy), openings happen within an atomic step, and every opened
//!   invariant is closed again before the next symbolic-execution step of
//!   a *non-atomic* expression;
//! * **branch structure**: case splits are well-nested and every branch
//!   terminates.
//!
//! This plays the role of the Coq kernel in the original artifact, at the
//! granularity of the paper's primitive rules (see DESIGN.md §1 for the
//! substitution argument).

use crate::trace::{ProofTrace, TraceStep};
use diaframe_logic::Namespace;
use diaframe_term::solver::PureSolver;
use std::collections::BTreeSet;
use std::fmt;

/// A validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError {
    /// Index of the offending step.
    pub step: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace step {}: {}", self.step, self.message)
    }
}

impl std::error::Error for CheckError {}

/// Replays and validates a trace.
///
/// # Errors
///
/// Returns the first [`CheckError`] encountered.
pub fn check(trace: &ProofTrace) -> Result<(), CheckError> {
    let _span = crate::telemetry::span("check");
    crate::telemetry::checker_steps(trace.len() as u64);
    let mut open_stack: Vec<BTreeSet<Namespace>> = vec![BTreeSet::new()];
    let mut branch_depth: Vec<usize> = Vec::new();
    for (i, step) in trace.steps().iter().enumerate() {
        match step {
            TraceStep::PureObligation { facts, goal, vars } => {
                // Re-prove from scratch. Remaining evars in recorded
                // obligations are treated as opaque constants by the
                // solver, which is sound.
                let solver = PureSolver::new(facts);
                let mut vars = vars.clone();
                if !solver.prove_frozen(&mut vars, goal) {
                    return Err(CheckError {
                        step: i,
                        message: format!("pure obligation does not re-prove: {goal:?}"),
                    });
                }
            }
            TraceStep::InvOpened { ns } => {
                let open = open_stack.last_mut().expect("non-empty stack");
                if !open.insert(ns.clone()) {
                    return Err(CheckError {
                        step: i,
                        message: format!("invariant {ns} opened twice (reentrancy)"),
                    });
                }
            }
            TraceStep::InvClosed { ns } => {
                let open = open_stack.last_mut().expect("non-empty stack");
                if !open.remove(ns) {
                    return Err(CheckError {
                        step: i,
                        message: format!("invariant {ns} closed but not open"),
                    });
                }
            }
            TraceStep::SymEx { spec, atomic } => {
                let open = open_stack.last().expect("non-empty stack");
                if !atomic && !open.is_empty() {
                    return Err(CheckError {
                        step: i,
                        message: format!(
                            "non-atomic expression {spec} executed with open invariants"
                        ),
                    });
                }
            }
            TraceStep::CaseSplit { branches, .. } => {
                branch_depth.push(*branches);
            }
            TraceStep::BranchStart { .. } => {
                // Each branch starts from the invariant state at the split.
                let cur = open_stack.last().expect("non-empty stack").clone();
                open_stack.push(cur);
            }
            TraceStep::BranchEnd { .. } => {
                if open_stack.len() <= 1 {
                    return Err(CheckError {
                        step: i,
                        message: "unbalanced branch end".into(),
                    });
                }
                open_stack.pop();
            }
            _ => {}
        }
    }
    if open_stack.len() != 1 {
        return Err(CheckError {
            step: trace.len(),
            message: "unbalanced branches at end of trace".into(),
        });
    }
    Ok(())
}

/// Decodes a JSON-lines trace (see [`crate::trace_json`]) and replays
/// it. This is the exported-trace entry point: a trace serialized by a
/// telemetry sink or an external tool round-trips through one codec and
/// lands in the same replay as in-memory traces.
///
/// # Errors
///
/// Returns a [`CheckError`] at step `usize::MAX` when the JSON is
/// malformed, or the first replay failure otherwise.
pub fn check_json(json: &str) -> Result<(), CheckError> {
    let trace = crate::trace_json::trace_from_json(json).map_err(|e| CheckError {
        step: usize::MAX,
        message: format!("trace does not decode: {e}"),
    })?;
    check(&trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use diaframe_term::{PureProp, Term, VarCtx};

    #[test]
    fn accepts_valid_obligations() {
        let mut t = ProofTrace::new();
        t.push(TraceStep::PureObligation {
            facts: vec![PureProp::lt(Term::int(0), Term::int(5))],
            goal: PureProp::le(Term::int(0), Term::int(5)),
            vars: VarCtx::new(),
        });
        assert!(check(&t).is_ok());
    }

    #[test]
    fn rejects_bogus_obligations() {
        let mut t = ProofTrace::new();
        t.push(TraceStep::PureObligation {
            facts: Vec::new(),
            goal: PureProp::lt(Term::int(5), Term::int(0)),
            vars: VarCtx::new(),
        });
        let err = check(&t).unwrap_err();
        assert!(err.message.contains("does not re-prove"));
    }

    #[test]
    fn rejects_reentrant_invariant_opening() {
        let mut t = ProofTrace::new();
        let ns = Namespace::new("N");
        t.push(TraceStep::InvOpened { ns: ns.clone() });
        t.push(TraceStep::InvOpened { ns });
        let err = check(&t).unwrap_err();
        assert!(err.message.contains("reentrancy"));
    }

    #[test]
    fn rejects_close_without_open() {
        let mut t = ProofTrace::new();
        t.push(TraceStep::InvClosed {
            ns: Namespace::new("N"),
        });
        assert!(check(&t).is_err());
    }

    #[test]
    fn rejects_nonatomic_with_open_invariant() {
        let mut t = ProofTrace::new();
        t.push(TraceStep::InvOpened {
            ns: Namespace::new("N"),
        });
        t.push(TraceStep::SymEx {
            spec: "call".into(),
            atomic: false,
        });
        let err = check(&t).unwrap_err();
        assert!(err.message.contains("open invariants"));
    }

    #[test]
    fn branch_isolation() {
        let mut t = ProofTrace::new();
        let ns = Namespace::new("N");
        t.push(TraceStep::CaseSplit {
            on: "x".into(),
            branches: 2,
        });
        t.push(TraceStep::BranchStart { index: 0 });
        t.push(TraceStep::InvOpened { ns: ns.clone() });
        t.push(TraceStep::InvClosed { ns: ns.clone() });
        t.push(TraceStep::BranchEnd { index: 0 });
        t.push(TraceStep::BranchStart { index: 1 });
        t.push(TraceStep::InvOpened { ns: ns.clone() });
        t.push(TraceStep::InvClosed { ns });
        t.push(TraceStep::BranchEnd { index: 1 });
        assert!(check(&t).is_ok());
    }

    #[test]
    fn unbalanced_branches_rejected() {
        let mut t = ProofTrace::new();
        t.push(TraceStep::BranchStart { index: 0 });
        assert!(check(&t).is_err());
    }
}
