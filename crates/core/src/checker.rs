//! The independent trace checker — the "foundational" layer.
//!
//! The search engine is heuristic and complicated; the checker is small
//! and dumb. It replays a [`ProofTrace`] and re-validates:
//!
//! * every **pure obligation**: the recorded facts must entail the
//!   recorded goal, re-proved from scratch by the pure solver (evar-free,
//!   since obligations are recorded zonked);
//! * the **mask discipline**: along every branch of the proof tree,
//!   invariants are opened at most once before being closed (no
//!   reentrancy), openings happen within an atomic step, every opened
//!   invariant is closed again before the next symbolic-execution step of
//!   a *non-atomic* expression, and — unless the branch was discharged
//!   vacuously by a [`TraceStep::Contradiction`] — every invariant opened
//!   inside a branch is closed before that branch (or the whole trace)
//!   ends;
//! * **branch structure**: case splits are well-nested and every branch
//!   terminates.
//!
//! This plays the role of the Coq kernel in the original artifact, at the
//! granularity of the paper's primitive rules (see DESIGN.md §1 for the
//! substitution argument).
//!
//! Both entry points — [`check`] on in-memory traces and [`check_json`]
//! on serialized ones — drive the *same* replay core ([`replay`] below),
//! so the fuzz harness's differential oracle (`crate::fuzz`) compares one
//! verdict path against the codec, never two drifting copies of the
//! rules. The "invariant left open at end of branch" rule exists because
//! that harness found the gap: a mutant that simply *dropped* an
//! `InvClosed` step survived the original checker (see
//! `crates/core/tests/fuzz_regressions.rs`).

use crate::trace::{ProofTrace, TraceStep};
use diaframe_logic::Namespace;
use diaframe_term::solver::egraph::{self, EGraph};
use diaframe_term::solver::PureSolver;
use diaframe_term::{EVarId, PureProp, VarCtx, VarId};
use std::collections::BTreeSet;
use std::fmt;

/// A validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError {
    /// Index of the offending step, or [`CheckError::DECODE_STEP`] when
    /// the trace never decoded.
    pub step: usize,
    /// What went wrong.
    pub message: String,
}

impl CheckError {
    /// The sentinel step index reported when a serialized trace fails to
    /// decode (there is no step to point at).
    pub const DECODE_STEP: usize = usize::MAX;

    /// Whether this error is a decode failure rather than a replay
    /// failure.
    #[must_use]
    pub fn is_decode(&self) -> bool {
        self.step == CheckError::DECODE_STEP
    }
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_decode() {
            write!(f, "trace decode: {}", self.message)
        } else {
            write!(f, "trace step {}: {}", self.step, self.message)
        }
    }
}

impl std::error::Error for CheckError {}

/// A case split in progress within one frame: how many of its branches
/// are still outstanding, and which close-obligations were pending when
/// the split started (each branch must discharge them all, so once every
/// branch has ended cleanly they are discharged for the parent too —
/// the branches jointly *are* the rest of the proof).
struct Split {
    remaining: usize,
    at_split: BTreeSet<Namespace>,
}

/// The invariant-discipline state of one branch of the proof tree.
struct Frame {
    /// Namespaces currently open in this branch (including those
    /// inherited from the enclosing branch at the split).
    open: BTreeSet<Namespace>,
    /// Open namespaces this branch is still responsible for closing:
    /// everything it opened itself plus the obligations inherited from
    /// its parent at the split. Must be empty when the branch (or the
    /// trace) ends, unless the branch is vacuous.
    obligations: BTreeSet<Namespace>,
    /// Whether a [`TraceStep::Contradiction`] discharged this branch
    /// vacuously (`False ⊢ anything`, so leftover openings are moot).
    vacuous: bool,
    /// Case splits opened in this frame whose branches are still being
    /// replayed.
    splits: Vec<Split>,
    /// The incremental pure solver carried across this branch's pure
    /// obligations. Successive obligations along one branch share long
    /// fact prefixes (the search only appends to `Γ` between branch
    /// points), so instead of rebuilding `PureSolver::new(facts)` at
    /// every step, the shared prefix is kept and only the delta is
    /// pushed/rolled back. The independent `fuzz/spec.rs` oracle
    /// intentionally keeps its from-scratch rebuild.
    solver: Option<FrameSolver>,
}

/// The per-frame incremental solver with the inputs it was last aligned
/// to, for the reuse check.
struct FrameSolver {
    egraph: EGraph,
    facts: Vec<PureProp>,
    vars: VarCtx,
}

impl Frame {
    fn root() -> Frame {
        Frame {
            open: BTreeSet::new(),
            obligations: BTreeSet::new(),
            vacuous: false,
            splits: Vec::new(),
            solver: None,
        }
    }

    fn child(&self) -> Frame {
        Frame {
            // Each branch starts from the invariant state at the split
            // and takes over every pending close-obligation.
            open: self.open.clone(),
            obligations: self.obligations.clone(),
            vacuous: false,
            splits: Vec::new(),
            solver: None,
        }
    }
}

/// Whether `new` is an extension of `old` as a variable context: every
/// variable and evar of `old` still exists with the same sort and (for
/// evars) the same recorded solution. Obligations are checked in frozen
/// mode — no evar is ever instantiated — so sorts and solutions are the
/// only inputs the solver reads; levels and display names are irrelevant
/// to verdicts.
fn vars_extends(new: &VarCtx, old: &VarCtx) -> bool {
    new.num_vars() >= old.num_vars()
        && new.num_evars() >= old.num_evars()
        && (0..old.num_vars()).all(|i| {
            let v = VarId::from_index(i);
            new.var_sort(v) == old.var_sort(v)
        })
        && (0..old.num_evars()).all(|i| {
            let e = EVarId::from_index(i);
            new.evar_sort(e) == old.evar_sort(e) && new.evar_solution(e) == old.evar_solution(e)
        })
}

/// Aligns the frame's incremental solver with this obligation's recorded
/// `facts`/`vars`, reusing the shared fact prefix when the recorded
/// variable context extends the one the solver was built under, and
/// rebuilding from scratch otherwise (a mutated or reordered trace never
/// passes the reuse check — it is re-proved on a fresh solver, exactly
/// like the first obligation of a branch).
fn reuse_or_rebuild<'a>(
    slot: &'a mut Option<FrameSolver>,
    facts: &[PureProp],
    vars: &VarCtx,
) -> &'a mut FrameSolver {
    if let Some(fs) = slot {
        if fs.egraph.valid() && vars_extends(vars, &fs.vars) {
            let common = fs
                .facts
                .iter()
                .zip(facts.iter())
                .take_while(|(a, b)| a == b)
                .count();
            fs.egraph.truncate_facts(common);
            fs.facts.truncate(common);
            for f in &facts[common..] {
                fs.egraph.push_fact(f.clone());
                fs.facts.push(f.clone());
            }
            fs.vars = vars.clone();
            return slot.as_mut().expect("just matched Some");
        }
    }
    *slot = Some(FrameSolver {
        egraph: EGraph::from_facts(facts),
        facts: facts.to_vec(),
        vars: vars.clone(),
    });
    slot.as_mut().expect("just assigned Some")
}

/// The shared replay core as an **incremental** state machine: feed
/// steps one at a time, then [`Replay::finish`] to validate the
/// end-of-trace conditions. Every checker entry point funnels through
/// this type — [`check`]/[`check_json`] feed a finished trace in one
/// loop, and the bench harness's pipelined-checking consumer feeds steps
/// as the search streams them, overlapping replay with the remaining
/// search. Incrementality changes *when* steps are validated, never the
/// verdict: feeding a trace step-by-step is literally the same loop.
pub struct Replay {
    stack: Vec<Frame>,
    steps_seen: usize,
}

impl Default for Replay {
    fn default() -> Replay {
        Replay::new()
    }
}

impl Replay {
    /// A replay at the start of a trace.
    #[must_use]
    pub fn new() -> Replay {
        Replay {
            stack: vec![Frame::root()],
            steps_seen: 0,
        }
    }

    /// How many steps have been fed so far (error indices count from the
    /// start of the trace, matching the batch entry points).
    #[must_use]
    pub fn steps_seen(&self) -> usize {
        self.steps_seen
    }

    /// Validates one more step of the trace.
    ///
    /// # Errors
    ///
    /// Returns the validation failure for this step; the replay should
    /// be discarded afterwards.
    pub fn feed(&mut self, step: &TraceStep) -> Result<(), CheckError> {
        let i = self.steps_seen;
        self.steps_seen += 1;
        let stack = &mut self.stack;
        let frame = stack.last_mut().expect("non-empty stack");
        match step {
            TraceStep::PureObligation { facts, goal, vars } => {
                // Re-prove independently. Remaining evars in recorded
                // obligations are treated as opaque constants by the
                // solver (frozen mode), which is sound.
                let proved = if egraph::enabled() {
                    let fs = reuse_or_rebuild(&mut frame.solver, facts, vars);
                    fs.egraph.prove_frozen(&mut vars.clone(), goal)
                } else {
                    PureSolver::new(facts).prove_frozen(&mut vars.clone(), goal)
                };
                if !proved {
                    return Err(CheckError {
                        step: i,
                        message: format!("pure obligation does not re-prove: {goal:?}"),
                    });
                }
            }
            TraceStep::InvOpened { ns } => {
                if !frame.open.insert(ns.clone()) {
                    return Err(CheckError {
                        step: i,
                        message: format!("invariant {ns} opened twice (reentrancy)"),
                    });
                }
                frame.obligations.insert(ns.clone());
            }
            TraceStep::InvClosed { ns } => {
                if !frame.open.remove(ns) {
                    return Err(CheckError {
                        step: i,
                        message: format!("invariant {ns} closed but not open"),
                    });
                }
                frame.obligations.remove(ns);
            }
            TraceStep::SymEx { spec, atomic } if !atomic && !frame.open.is_empty() => {
                return Err(CheckError {
                    step: i,
                    message: format!(
                        "non-atomic expression {spec} executed with open invariants"
                    ),
                });
            }
            TraceStep::Contradiction { .. } => {
                frame.vacuous = true;
            }
            TraceStep::CaseSplit { branches, .. } => {
                frame.splits.push(Split {
                    remaining: *branches,
                    at_split: frame.obligations.clone(),
                });
            }
            TraceStep::BranchStart { .. } => {
                let child = frame.child();
                stack.push(child);
            }
            TraceStep::BranchEnd { .. } => {
                if stack.len() <= 1 {
                    return Err(CheckError {
                        step: i,
                        message: "unbalanced branch end".into(),
                    });
                }
                let done = stack.pop().expect("checked above");
                if !done.vacuous {
                    if let Some(ns) = done.obligations.iter().next() {
                        return Err(CheckError {
                            step: i,
                            message: format!("invariant {ns} left open at end of branch"),
                        });
                    }
                }
                // When the split's final branch ends, its at-split
                // obligations were discharged along every future: the
                // parent is off the hook for them.
                let parent = stack.last_mut().expect("non-empty stack");
                if let Some(split) = parent.splits.last_mut() {
                    split.remaining = split.remaining.saturating_sub(1);
                    if split.remaining == 0 {
                        let split = parent.splits.pop().expect("just inspected");
                        for ns in &split.at_split {
                            parent.open.remove(ns);
                            parent.obligations.remove(ns);
                        }
                    }
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Validates the end-of-trace conditions: balanced branches and no
    /// invariant left open on the root frame.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckError`] at the one-past-the-end step index.
    pub fn finish(mut self) -> Result<(), CheckError> {
        if self.stack.len() != 1 {
            return Err(CheckError {
                step: self.steps_seen,
                message: "unbalanced branches at end of trace".into(),
            });
        }
        let root = self.stack.pop().expect("single frame");
        if !root.vacuous {
            if let Some(ns) = root.obligations.iter().next() {
                return Err(CheckError {
                    step: self.steps_seen,
                    message: format!("invariant {ns} left open at end of trace"),
                });
            }
        }
        Ok(())
    }
}

/// Batch replay of a finished trace: feed every step, then finish.
fn replay(steps: &[TraceStep]) -> Result<(), CheckError> {
    let mut r = Replay::new();
    for step in steps {
        r.feed(step)?;
    }
    r.finish()
}

/// Replays and validates a trace.
///
/// # Errors
///
/// Returns the first [`CheckError`] encountered.
pub fn check(trace: &ProofTrace) -> Result<(), CheckError> {
    let _span = crate::telemetry::span("check");
    let _prof = crate::profile::span(crate::profile::SpanKind::Check);
    crate::telemetry::checker_steps(trace.len() as u64);
    crate::profile::bump(trace.len() as u64);
    // Replay gets its own interner scope (nested scopes restore the
    // outer arena on drop): one trace replays against one arena.
    let intern_scope = diaframe_term::intern::scope();
    let result = replay(trace.steps());
    crate::telemetry::intern_stats(diaframe_term::intern::stats());
    crate::telemetry::egraph_stats(diaframe_term::intern::egraph_stats());
    drop(intern_scope);
    result
}

/// Decodes a JSON-lines trace (see [`crate::trace_json`]) and replays
/// it. This is the exported-trace entry point: a trace serialized by a
/// telemetry sink or an external tool round-trips through one codec and
/// lands in the **same** replay core as in-memory traces — the only
/// behavior this function adds over [`check`] is the decode step.
///
/// # Errors
///
/// Returns a [`CheckError`] at step [`CheckError::DECODE_STEP`] when the
/// JSON is malformed, or the first replay failure otherwise.
pub fn check_json(json: &str) -> Result<(), CheckError> {
    let trace = crate::trace_json::trace_from_json(json).map_err(|e| CheckError {
        step: CheckError::DECODE_STEP,
        message: format!("trace does not decode: {e}"),
    })?;
    check(&trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use diaframe_term::{PureProp, Term, VarCtx};

    #[test]
    fn accepts_valid_obligations() {
        let mut t = ProofTrace::new();
        t.push(TraceStep::PureObligation {
            facts: vec![PureProp::lt(Term::int(0), Term::int(5))],
            goal: PureProp::le(Term::int(0), Term::int(5)),
            vars: VarCtx::new(),
        });
        assert!(check(&t).is_ok());
    }

    #[test]
    fn rejects_bogus_obligations() {
        let mut t = ProofTrace::new();
        t.push(TraceStep::PureObligation {
            facts: Vec::new(),
            goal: PureProp::lt(Term::int(5), Term::int(0)),
            vars: VarCtx::new(),
        });
        let err = check(&t).unwrap_err();
        assert!(err.message.contains("does not re-prove"));
    }

    #[test]
    fn rejects_reentrant_invariant_opening() {
        let mut t = ProofTrace::new();
        let ns = Namespace::new("N");
        t.push(TraceStep::InvOpened { ns: ns.clone() });
        t.push(TraceStep::InvOpened { ns });
        let err = check(&t).unwrap_err();
        assert!(err.message.contains("reentrancy"));
    }

    #[test]
    fn rejects_close_without_open() {
        let mut t = ProofTrace::new();
        t.push(TraceStep::InvClosed {
            ns: Namespace::new("N"),
        });
        assert!(check(&t).is_err());
    }

    #[test]
    fn rejects_nonatomic_with_open_invariant() {
        let mut t = ProofTrace::new();
        t.push(TraceStep::InvOpened {
            ns: Namespace::new("N"),
        });
        t.push(TraceStep::SymEx {
            spec: "call".into(),
            atomic: false,
        });
        let err = check(&t).unwrap_err();
        assert!(err.message.contains("open invariants"));
    }

    #[test]
    fn branch_isolation() {
        let mut t = ProofTrace::new();
        let ns = Namespace::new("N");
        t.push(TraceStep::CaseSplit {
            on: "x".into(),
            branches: 2,
        });
        t.push(TraceStep::BranchStart { index: 0 });
        t.push(TraceStep::InvOpened { ns: ns.clone() });
        t.push(TraceStep::InvClosed { ns: ns.clone() });
        t.push(TraceStep::BranchEnd { index: 0 });
        t.push(TraceStep::BranchStart { index: 1 });
        t.push(TraceStep::InvOpened { ns: ns.clone() });
        t.push(TraceStep::InvClosed { ns });
        t.push(TraceStep::BranchEnd { index: 1 });
        assert!(check(&t).is_ok());
    }

    #[test]
    fn unbalanced_branches_rejected() {
        let mut t = ProofTrace::new();
        t.push(TraceStep::BranchStart { index: 0 });
        assert!(check(&t).is_err());
    }

    #[test]
    fn rejects_invariant_left_open_at_end_of_trace() {
        let mut t = ProofTrace::new();
        t.push(TraceStep::InvOpened {
            ns: Namespace::new("N"),
        });
        let err = check(&t).unwrap_err();
        assert!(err.message.contains("left open at end of trace"));
    }

    #[test]
    fn rejects_invariant_left_open_at_end_of_branch() {
        let mut t = ProofTrace::new();
        t.push(TraceStep::CaseSplit {
            on: "x".into(),
            branches: 2,
        });
        t.push(TraceStep::BranchStart { index: 0 });
        t.push(TraceStep::InvOpened {
            ns: Namespace::new("N"),
        });
        t.push(TraceStep::BranchEnd { index: 0 });
        let err = check(&t).unwrap_err();
        assert!(err.message.contains("left open at end of branch"));
    }

    #[test]
    fn vacuous_branch_may_leave_invariants_open() {
        // A branch discharged by contradiction proves anything, including
        // the mask restoration — the engine stops mid-window there.
        let mut t = ProofTrace::new();
        let ns = Namespace::new("N");
        t.push(TraceStep::CaseSplit {
            on: "x".into(),
            branches: 2,
        });
        t.push(TraceStep::BranchStart { index: 0 });
        t.push(TraceStep::InvOpened { ns: ns.clone() });
        t.push(TraceStep::Contradiction {
            rule: "pure-inconsistency".into(),
        });
        t.push(TraceStep::BranchEnd { index: 0 });
        t.push(TraceStep::BranchStart { index: 1 });
        t.push(TraceStep::InvOpened { ns: ns.clone() });
        t.push(TraceStep::InvClosed { ns: ns.clone() });
        t.push(TraceStep::BranchEnd { index: 1 });
        assert!(check(&t).is_ok());
        // …but the vacuity of one branch does not excuse a sibling that
        // neither closes the inherited invariant nor is vacuous itself.
        let mut t2 = ProofTrace::new();
        t2.push(TraceStep::InvOpened { ns });
        t2.push(TraceStep::CaseSplit {
            on: "y".into(),
            branches: 2,
        });
        t2.push(TraceStep::BranchStart { index: 0 });
        t2.push(TraceStep::Contradiction {
            rule: "pure-inconsistency".into(),
        });
        t2.push(TraceStep::BranchEnd { index: 0 });
        t2.push(TraceStep::BranchStart { index: 1 });
        t2.push(TraceStep::BranchEnd { index: 1 });
        let err = check(&t2).unwrap_err();
        assert!(err.message.contains("left open at end of branch"));
    }

    #[test]
    fn branches_jointly_discharge_an_inherited_open_invariant() {
        // The engine threads the rest of the proof *into* each branch,
        // so an invariant opened before a case split is closed inside
        // every branch; once all branches end cleanly the parent is off
        // the hook for it.
        let mut t = ProofTrace::new();
        let ns = Namespace::new("N");
        t.push(TraceStep::InvOpened { ns: ns.clone() });
        t.push(TraceStep::CaseSplit {
            on: "x".into(),
            branches: 2,
        });
        t.push(TraceStep::BranchStart { index: 0 });
        t.push(TraceStep::InvClosed { ns: ns.clone() });
        t.push(TraceStep::BranchEnd { index: 0 });
        t.push(TraceStep::BranchStart { index: 1 });
        t.push(TraceStep::InvClosed { ns: ns.clone() });
        t.push(TraceStep::BranchEnd { index: 1 });
        assert!(check(&t).is_ok());

        // A branch that keeps the inherited invariant open is caught at
        // its own end — this is exactly the dropped-`InvClosed` mutant
        // that survived the original checker.
        let mut bad = ProofTrace::new();
        bad.push(TraceStep::InvOpened { ns: ns.clone() });
        bad.push(TraceStep::CaseSplit {
            on: "x".into(),
            branches: 2,
        });
        bad.push(TraceStep::BranchStart { index: 0 });
        bad.push(TraceStep::BranchEnd { index: 0 });
        bad.push(TraceStep::BranchStart { index: 1 });
        bad.push(TraceStep::InvClosed { ns });
        bad.push(TraceStep::BranchEnd { index: 1 });
        let err = check(&bad).unwrap_err();
        assert!(err.message.contains("left open at end of branch"));
    }

    #[test]
    fn decode_failures_use_the_sentinel_step() {
        let err = check_json("not json").unwrap_err();
        assert!(err.is_decode());
        assert_eq!(err.step, CheckError::DECODE_STEP);
        assert!(err.message.contains("does not decode"));
    }
}
