//! The bridge between HeapLang values and logical terms.
//!
//! Symbolic execution plugs logical terms (specification return values)
//! into program contexts and extracts logical terms from program redexes.
//! Literal values convert directly; everything else goes through
//! [`Val::Sym`] ids resolved in the [`SymTable`].

use diaframe_heaplang::{Loc, Val};
use diaframe_term::{Sym, Term, VarCtx};

/// The table mapping [`Val::Sym`] ids to logical terms (all of sort `Val`).
#[derive(Debug, Clone, Default)]
pub struct SymTable {
    terms: Vec<Term>,
}

impl SymTable {
    #[must_use]
    /// An empty symbol table.
    pub fn new() -> SymTable {
        SymTable::default()
    }

    /// Interns a term, returning the symbolic value standing for it.
    pub fn intern(&mut self, t: Term) -> Val {
        // Reuse an existing binding for the identical term.
        if let Some(i) = self.terms.iter().position(|u| *u == t) {
            return Val::Sym(i as u64);
        }
        self.terms.push(t);
        Val::Sym((self.terms.len() - 1) as u64)
    }

    /// The term behind a symbolic id.
    #[must_use]
    pub fn resolve(&self, id: u64) -> &Term {
        &self.terms[usize::try_from(id).expect("symbolic id fits usize")]
    }

    /// Applies a function to every interned term (used when substituting
    /// variables through the proof context: expressions hold only the ids,
    /// so updating the table rewrites them transparently).
    pub fn map_terms(&mut self, f: impl Fn(&Term) -> Term) {
        for t in &mut self.terms {
            *t = f(t);
        }
    }

    /// Converts a term (sort `Val`) into a HeapLang value, using literal
    /// embeddings where the term is constructor-shaped and symbolic values
    /// elsewhere.
    pub fn term_to_val(&mut self, ctx: &VarCtx, t: &Term) -> Val {
        let t = t.zonk(ctx);
        match &t {
            Term::App(Sym::VUnit, _) => Val::Unit,
            Term::App(Sym::VInt, args) => match &args[0] {
                Term::Int(n) => Val::Int(*n),
                _ => self.intern(t),
            },
            Term::App(Sym::VBool, args) => match &args[0] {
                Term::Bool(b) => Val::Bool(*b),
                _ => self.intern(t),
            },
            Term::App(Sym::VLoc, args) => match &args[0] {
                Term::Loc(l) => Val::Loc(Loc::new(*l)),
                _ => self.intern(t),
            },
            Term::App(Sym::VPair, args) => Val::pair(
                self.term_to_val(ctx, &args[0]),
                self.term_to_val(ctx, &args[1]),
            ),
            Term::App(Sym::VInjL, args) => Val::inj_l(self.term_to_val(ctx, &args[0])),
            Term::App(Sym::VInjR, args) => Val::inj_r(self.term_to_val(ctx, &args[0])),
            _ => self.intern(t),
        }
    }

    /// Converts a HeapLang value into a term of sort `Val`. Closures are
    /// not convertible (they are matched against function specifications
    /// instead): the result is `None` exactly for values containing a
    /// closure.
    #[must_use]
    pub fn val_to_term(&self, v: &Val) -> Option<Term> {
        match v {
            Val::Unit => Some(Term::v_unit()),
            Val::Int(n) => Some(Term::v_int_lit(*n)),
            Val::Bool(b) => Some(Term::v_bool_lit(*b)),
            Val::Loc(l) => Some(Term::v_loc(Term::Loc(l.raw()))),
            Val::Pair(a, b) => Some(Term::v_pair(self.val_to_term(a)?, self.val_to_term(b)?)),
            Val::InjL(a) => Some(Term::v_inj_l(self.val_to_term(a)?)),
            Val::InjR(a) => Some(Term::v_inj_r(self.val_to_term(a)?)),
            Val::Sym(id) => Some(self.resolve(*id).clone()),
            Val::Rec { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diaframe_term::Sort;

    #[test]
    fn literals_round_trip() {
        let ctx = VarCtx::new();
        let mut tab = SymTable::new();
        for t in [
            Term::v_unit(),
            Term::v_int_lit(5),
            Term::v_bool_lit(true),
            Term::v_pair(Term::v_int_lit(1), Term::v_unit()),
            Term::v_inj_l(Term::v_int_lit(0)),
        ] {
            let v = tab.term_to_val(&ctx, &t);
            assert_eq!(tab.val_to_term(&v), Some(t));
        }
    }

    #[test]
    fn symbolic_terms_intern() {
        let mut ctx = VarCtx::new();
        let mut tab = SymTable::new();
        let x = Term::var(ctx.fresh_var(Sort::Val, "x"));
        let v = tab.term_to_val(&ctx, &x);
        assert!(matches!(v, Val::Sym(_)));
        assert_eq!(tab.val_to_term(&v), Some(x.clone()));
        // Interning the same term twice reuses the id.
        let v2 = tab.term_to_val(&ctx, &x);
        assert_eq!(v, v2);
    }

    #[test]
    fn constructor_shapes_with_symbolic_leaves() {
        let mut ctx = VarCtx::new();
        let mut tab = SymTable::new();
        let z = Term::var(ctx.fresh_var(Sort::Int, "z"));
        // #z with symbolic z stays a single symbolic value…
        let v = tab.term_to_val(&ctx, &Term::v_int(z.clone()));
        assert!(matches!(v, Val::Sym(_)));
        // …but a pair of a literal and a symbolic splits structurally.
        let p = Term::v_pair(Term::v_int_lit(1), Term::v_int(z));
        let v = tab.term_to_val(&ctx, &p);
        match v {
            Val::Pair(a, b) => {
                assert_eq!(*a, Val::Int(1));
                assert!(matches!(*b, Val::Sym(_)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn zonks_before_converting() {
        let mut ctx = VarCtx::new();
        let mut tab = SymTable::new();
        let e = ctx.fresh_evar(Sort::Val);
        ctx.solve_evar(e, Term::v_int_lit(9));
        let v = tab.term_to_val(&ctx, &Term::evar(e));
        assert_eq!(v, Val::Int(9));
    }

    #[test]
    fn closures_do_not_convert() {
        let tab = SymTable::new();
        let clos = Val::Rec {
            f: None,
            x: None,
            body: std::sync::Arc::new(diaframe_heaplang::Expr::unit()),
        };
        assert_eq!(tab.val_to_term(&clos), None);
    }
}
