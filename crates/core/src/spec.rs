//! Hoare-style specifications and the specification table.
//!
//! A [`Spec`] is the paper's `SPEC {{ P }} f arg {{ x⃗, RET v; Q }}`
//! notation: a quantified Hoare triple for a *function value*. During
//! symbolic execution, a call `f a` whose function value has a registered
//! spec is cut through `sym-ex-fupd-exist` instead of being inlined — this
//! is what makes verification modular (clients verify against library
//! specs, §6's comparison with Caper).
//!
//! Recursive functions get their own spec registered while their body is
//! verified (the Löb induction hypothesis); this is sound for partial
//! correctness because applying a call spec always includes the β-step.

use diaframe_heaplang::Val;
use diaframe_logic::Assertion;
use diaframe_term::VarId;

/// A quantified Hoare triple for a single-argument function value.
///
/// Conventions: the function takes exactly one argument (use pairs for
/// more), bound to the placeholder [`Spec::arg`]. The auxiliary
/// quantifiers `x⃗` ([`Spec::binders`]) scope over precondition and
/// postcondition; the postcondition additionally binds [`Spec::ret`].
#[derive(Debug, Clone)]
pub struct Spec {
    /// Name for traces and error messages.
    pub name: String,
    /// The closure value this spec describes.
    pub func: Val,
    /// Placeholder for the call argument.
    pub arg: VarId,
    /// Auxiliary universally quantified placeholders.
    pub binders: Vec<VarId>,
    /// The precondition (a left-goal over `arg` and `binders`).
    pub pre: Assertion,
    /// Placeholder for the return value.
    pub ret: VarId,
    /// The postcondition (over `arg`, `binders` and `ret`).
    pub post: Assertion,
    /// Whether the call may be treated as atomic for invariant purposes.
    /// Function calls never are; this exists so primitive specs can share
    /// the representation.
    pub atomic: bool,
}

/// The table of function specifications available during one verification.
#[derive(Debug, Clone, Default)]
pub struct SpecTable {
    specs: Vec<Spec>,
}

impl SpecTable {
    #[must_use]
    /// An empty table.
    pub fn new() -> SpecTable {
        SpecTable::default()
    }

    /// Registers a spec.
    pub fn register(&mut self, spec: Spec) {
        self.specs.push(spec);
    }

    /// Finds the spec for a function value, if any.
    #[must_use]
    pub fn lookup(&self, f: &Val) -> Option<&Spec> {
        self.specs.iter().find(|s| s.func == *f)
    }

    /// All registered specs.
    #[must_use]
    pub fn specs(&self) -> &[Spec] {
        &self.specs
    }

    /// Number of registered specs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    #[must_use]
    /// Whether the table has no specifications.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diaframe_heaplang::Expr;
    use diaframe_term::{Sort, VarCtx};

    #[test]
    fn lookup_by_function_value() {
        let mut vars = VarCtx::new();
        let f = Expr::lam("x", Expr::var("x")).to_rec_val().unwrap();
        let g = Expr::lam("y", Expr::unit()).to_rec_val().unwrap();
        let arg = vars.fresh_var(Sort::Val, "a");
        let ret = vars.fresh_var(Sort::Val, "w");
        let mut table = SpecTable::new();
        table.register(Spec {
            name: "id".into(),
            func: f.clone(),
            arg,
            binders: Vec::new(),
            pre: Assertion::emp(),
            ret,
            post: Assertion::emp(),
            atomic: false,
        });
        assert!(table.lookup(&f).is_some());
        assert!(table.lookup(&g).is_none());
        assert_eq!(table.len(), 1);
    }
}
