//! Engine fingerprinting and content hashing for the persistent proof
//! store.
//!
//! A cached proof trace is only sound to replay when the engine that
//! would re-search it is *semantically the same* engine that produced
//! it: the same trace format, the same checker contract, and the same
//! settings of every knob that can change which traces the search
//! emits. [`engine_fingerprint`] distils all of that into one stable
//! string; the proof store mixes it into every content address, so a
//! cache written by an older binary (or the same binary under different
//! semantics-affecting knobs) can never replay — the lookup simply
//! misses and the engine re-searches.
//!
//! The hash itself is a from-scratch SHA-256 ([`Sha256`]): the build
//! environment vendors no crypto crate, and a content-addressed store
//! wants a collision-resistant digest, not a fast checksum. The
//! implementation is the plain FIPS 180-4 compression function —
//! ~100 lines, no lookup beyond the round constants — and is pinned by
//! the standard test vectors below.

use std::fmt::Write as _;

/// The round constants of FIPS 180-4 §4.2.2.
const K: [u32; 64] = [
    0x428a_2f98, 0x7137_4491, 0xb5c0_fbcf, 0xe9b5_dba5, 0x3956_c25b, 0x59f1_11f1, 0x923f_82a4,
    0xab1c_5ed5, 0xd807_aa98, 0x1283_5b01, 0x2431_85be, 0x550c_7dc3, 0x72be_5d74, 0x80de_b1fe,
    0x9bdc_06a7, 0xc19b_f174, 0xe49b_69c1, 0xefbe_4786, 0x0fc1_9dc6, 0x240c_a1cc, 0x2de9_2c6f,
    0x4a74_84aa, 0x5cb0_a9dc, 0x76f9_88da, 0x983e_5152, 0xa831_c66d, 0xb003_27c8, 0xbf59_7fc7,
    0xc6e0_0bf3, 0xd5a7_9147, 0x06ca_6351, 0x1429_2967, 0x27b7_0a85, 0x2e1b_2138, 0x4d2c_6dfc,
    0x5338_0d13, 0x650a_7354, 0x766a_0abb, 0x81c2_c92e, 0x9272_2c85, 0xa2bf_e8a1, 0xa81a_664b,
    0xc24b_8b70, 0xc76c_51a3, 0xd192_e819, 0xd699_0624, 0xf40e_3585, 0x106a_a070, 0x19a4_c116,
    0x1e37_6c08, 0x2748_774c, 0x34b0_bcb5, 0x391c_0cb3, 0x4ed8_aa4a, 0x5b9c_ca4f, 0x682e_6ff3,
    0x748f_82ee, 0x78a5_636f, 0x84c8_7814, 0x8cc7_0208, 0x90be_fffa, 0xa450_6ceb, 0xbef9_a3f7,
    0xc671_78f2,
];

/// An incremental SHA-256 hasher (FIPS 180-4). Feed bytes with
/// [`Sha256::update`], finish with [`Sha256::finish_hex`].
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Sha256 {
        Sha256::new()
    }
}

impl Sha256 {
    /// A fresh hasher at the standard initial state.
    #[must_use]
    pub fn new() -> Sha256 {
        Sha256 {
            state: [
                0x6a09_e667,
                0xbb67_ae85,
                0x3c6e_f372,
                0xa54f_f53a,
                0x510e_527f,
                0x9b05_688c,
                0x1f83_d9ab,
                0x5be0_cd19,
            ],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }

    /// Feeds `data` into the hash.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Pads, finalises, and renders the digest as 64 lowercase hex
    /// characters.
    #[must_use]
    pub fn finish_hex(mut self) -> String {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Length goes straight into the buffer: `update` would count it.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = String::with_capacity(64);
        for word in self.state {
            let _ = write!(out, "{word:08x}");
        }
        out
    }
}

/// SHA-256 of `data`, as lowercase hex.
#[must_use]
pub fn sha256_hex(data: &[u8]) -> String {
    let mut h = Sha256::new();
    h.update(data);
    h.finish_hex()
}

/// A convenience builder hashing a sequence of labelled components into
/// one digest. Each component is fed as `key=value\n` with the lengths
/// mixed in, so component boundaries cannot be confused (no
/// concatenation ambiguity between `("ab","c")` and `("a","bc")`).
#[derive(Default)]
pub struct Fingerprinter {
    hasher: Sha256,
}

impl Fingerprinter {
    /// A fresh fingerprint builder.
    #[must_use]
    pub fn new() -> Fingerprinter {
        Fingerprinter::default()
    }

    /// Mixes one labelled component into the digest.
    pub fn field(&mut self, key: &str, value: &str) -> &mut Fingerprinter {
        self.hasher
            .update(format!("{}:{}={}\n", key.len(), key, value).as_bytes());
        self.hasher
            .update(format!("#{}\n", value.len()).as_bytes());
        self.hasher.update(value.as_bytes());
        self.hasher.update(b"\n");
        self
    }

    /// The final digest as 64 hex characters.
    #[must_use]
    pub fn finish(self) -> String {
        self.hasher.finish_hex()
    }
}

/// The semantics-relevant identity of this engine build and process
/// configuration, as a stable hex digest.
///
/// Components:
///
/// * the workspace crate version (all `diaframe-*` crates share it);
/// * the trace-format revision ([`crate::trace_json::FORMAT_REV`]) —
///   bumped whenever the serialized trace shape or the checker contract
///   changes, which is exactly when old stored traces must stop
///   replaying;
/// * the state of every semantics-affecting engine knob: the term
///   interner (`DIAFRAME_INTERN`), the incremental e-graph solver
///   (`DIAFRAME_EGRAPH`), speculative branch search
///   (`DIAFRAME_SPECULATE`) and the hint index. All four are
///   trace-identical by construction (each has an identity test pinning
///   that), but the store treats "identical" as a claim to be immune
///   to, not to rely on: flipping any knob changes the fingerprint and
///   cold-misses the cache rather than replaying traces recorded under
///   a different configuration.
///
/// Deliberately **not** included: the per-thread [`crate::Ablation`]
/// override (it varies per request, so the store keys it separately)
/// and observability state (telemetry/profiling are identity-preserving
/// side channels; their identity tests gate that in CI).
///
/// The digest is stable across processes of the same build + knob
/// configuration — asserted by `crates/core/tests/fingerprint_restart.rs`
/// via a subprocess — and is cheap enough to recompute per call (the
/// store caches it once per open).
#[must_use]
pub fn engine_fingerprint() -> String {
    let mut fp = Fingerprinter::new();
    fp.field("crate_version", env!("CARGO_PKG_VERSION"));
    fp.field(
        "trace_format_rev",
        &crate::trace_json::FORMAT_REV.to_string(),
    );
    fp.field(
        "intern",
        if diaframe_term::intern::enabled() { "on" } else { "off" },
    );
    fp.field(
        "egraph",
        if diaframe_term::solver::egraph::configured() { "on" } else { "off" },
    );
    fp.field(
        "speculate",
        if crate::speculate::enabled() { "on" } else { "off" },
    );
    fp.field(
        "hint_index",
        if crate::index::hint_index_enabled() { "on" } else { "off" },
    );
    fp.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The FIPS 180-4 test vectors (empty string, "abc", two-block
    /// message) plus a chunking-independence check.
    #[test]
    fn sha256_standard_vectors() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_is_chunking_independent() {
        let data = vec![0xa5u8; 300];
        let whole = sha256_hex(&data);
        let mut h = Sha256::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish_hex(), whole);
        // And across the exact block boundary.
        let mut h = Sha256::new();
        h.update(&data[..64]);
        h.update(&data[64..]);
        assert_eq!(h.finish_hex(), whole);
    }

    #[test]
    fn fingerprinter_separates_component_boundaries() {
        let mut a = Fingerprinter::new();
        a.field("x", "ab").field("y", "c");
        let mut b = Fingerprinter::new();
        b.field("x", "a").field("y", "bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn engine_fingerprint_is_deterministic_and_hex() {
        let a = engine_fingerprint();
        let b = engine_fingerprint();
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn engine_fingerprint_tracks_solver_knob() {
        use diaframe_term::solver::egraph;
        let on = engine_fingerprint();
        egraph::force_disable(true);
        let off = engine_fingerprint();
        egraph::force_disable(false);
        assert_ne!(
            on, off,
            "flipping the e-graph knob must change the engine fingerprint"
        );
        assert_eq!(engine_fingerprint(), on);
    }
}
