//! Opt-in hierarchical search-tree profiler.
//!
//! Where [`crate::telemetry`] aggregates *flat counters* per verification,
//! this module records the *shape* of a run: every verification, spec,
//! search phase, hint-probe batch, case-split branch, speculative worker
//! lifetime, solver query batch and checker replay window becomes a
//! timestamped span with a parent id and a thread/worker *lane*. The span
//! tree is the substrate for three consumers in `diaframe-bench`:
//!
//! * `figure6 --profile-out FILE` — Chrome trace-event JSON (open the file
//!   in [Perfetto](https://ui.perfetto.dev), one lane per pool worker /
//!   speculation worker / pipelined-checker consumer), hand-rolled like
//!   [`crate::trace_json`] since serde is not available in this container;
//! * `figure6 --folded-out FILE` — folded-stacks text for flamegraph tools
//!   (`kind:label;kind:label;... self_us` per line);
//! * `figure6 --hotspots N` — per-rule/per-hint cost attribution (self vs.
//!   cumulative time, probe counts per span label).
//!
//! Discipline is identical to the telemetry layer: **zero cost when off**
//! (a single relaxed atomic load per hook), sessions are installed
//! per-thread and propagated across `run_ordered` workers, verification
//! session threads, speculative branch workers and the pipelined-checker
//! consumer. Profiling is a pure side channel: turning it on must not
//! change a single byte of any emitted proof trace or figure6 table
//! (pinned by `crates/bench/tests/profile_identity.rs`).
//!
//! The profiler is not trusted, it is *cross-checked*: span rollups must
//! reconcile exactly with the flat telemetry counters (e.g. the sum of
//! probe-batch span counts equals `probes_attempted` plus
//! `spec_wasted_probes`), asserted by `figure6 --profile-out`, the
//! profile-identity suite and the fuzz campaign in CI.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use crate::trace_json::{json_escape, parse_json_value, JsonValue};

/// The kind of a profiled span — one variant per instrumented region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// One example verification run (all its specs), labelled with the
    /// example name (bench cache layer).
    Verify,
    /// One spec verification, labelled with the spec name (`verify.rs`).
    Spec,
    /// One engine search phase for a goal (`verify.rs::verify_goal`).
    Search,
    /// One `find_hint` probe batch; `count` is the number of hypothesis
    /// probes attempted, the label is the matched hypothesis (or `(miss)`).
    FindHint,
    /// One case-split branch search, labelled with the branch index
    /// (`strategy.rs`).
    Branch,
    /// The lifetime of one speculative branch worker, from spawn to join
    /// (`strategy.rs::split_branches`); win/cancel outcomes appear as
    /// zero-duration `Speculate` marks on the spawning lane.
    Speculate,
    /// One pure-solver query batch discharging a recorded obligation;
    /// `count` is the number of solver queries in the batch.
    SolverBatch,
    /// One whole-trace checker replay (`checker::check`); `count` is the
    /// number of steps replayed.
    Check,
    /// One pipelined incremental checker replay window (`cache.rs`
    /// consumer); `count` is the number of steps fed through
    /// `checker::Replay`.
    CheckWindow,
}

impl SpanKind {
    /// Number of span kinds.
    pub const COUNT: usize = 9;

    /// All kinds, in `index()` order.
    pub const ALL: [SpanKind; SpanKind::COUNT] = [
        SpanKind::Verify,
        SpanKind::Spec,
        SpanKind::Search,
        SpanKind::FindHint,
        SpanKind::Branch,
        SpanKind::Speculate,
        SpanKind::SolverBatch,
        SpanKind::Check,
        SpanKind::CheckWindow,
    ];

    /// Dense index of this kind (position in [`SpanKind::ALL`]).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            SpanKind::Verify => 0,
            SpanKind::Spec => 1,
            SpanKind::Search => 2,
            SpanKind::FindHint => 3,
            SpanKind::Branch => 4,
            SpanKind::Speculate => 5,
            SpanKind::SolverBatch => 6,
            SpanKind::Check => 7,
            SpanKind::CheckWindow => 8,
        }
    }

    /// Stable snake_case name (used in the trace-event `cat` field, the
    /// folded-stacks paths and the hotspots table).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Verify => "verify",
            SpanKind::Spec => "spec",
            SpanKind::Search => "search",
            SpanKind::FindHint => "find_hint",
            SpanKind::Branch => "branch",
            SpanKind::Speculate => "speculate",
            SpanKind::SolverBatch => "solver_batch",
            SpanKind::Check => "check",
            SpanKind::CheckWindow => "check_window",
        }
    }
}

/// One completed span, as stored in the session.
#[derive(Debug, Clone)]
pub struct SpanRec {
    /// Session-unique id (ids start at 1; 0 never occurs).
    pub id: u64,
    /// Parent span id, if any. The parent is the innermost open span on
    /// the recording thread, or the span adopted across a thread hop
    /// (`install_with_parent`), and may live on a different lane.
    pub parent: Option<u64>,
    /// What was being timed.
    pub kind: SpanKind,
    /// Kind-specific label (spec name, matched hypothesis, branch index…).
    /// Empty when the kind alone identifies the region.
    pub label: String,
    /// Lane (thread/worker instance) the span was recorded on.
    pub lane: u32,
    /// Start offset from the session epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds (0 for instant marks).
    pub dur_ns: u64,
    /// Kind-specific payload counter (probes for `FindHint`, replayed
    /// steps for `Check`/`CheckWindow`, queries for `SolverBatch`).
    pub count: u64,
}

impl SpanRec {
    fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

struct ProfInner {
    epoch: Instant,
    next_id: AtomicU64,
    spans: Mutex<Vec<SpanRec>>,
    lanes: Mutex<Vec<String>>,
}

impl ProfInner {
    fn register_lane(&self, base: &str) -> u32 {
        let mut lanes = self.lanes.lock().unwrap_or_else(PoisonError::into_inner);
        let mut name = base.to_string();
        let mut k = 1usize;
        while lanes.iter().any(|l| l == &name) {
            k += 1;
            name = format!("{base}#{k}");
        }
        lanes.push(name);
        u32::try_from(lanes.len() - 1).expect("lane count fits u32")
    }

    fn push(&self, rec: SpanRec) {
        self.spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(rec);
    }
}

/// How many profile sessions are currently installed, process-wide. The
/// fast path of every hook is a single relaxed load of this counter.
static ACTIVE_PROFILERS: AtomicUsize = AtomicUsize::new(0);

struct OpenSpan {
    id: u64,
    kind: SpanKind,
    label: Option<String>,
    start: Instant,
    count: u64,
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<ProfInner>>> = const { RefCell::new(None) };
    static LANE: Cell<u32> = const { Cell::new(0) };
    static ADOPTED: Cell<Option<u64>> = const { Cell::new(None) };
    static OPEN: RefCell<Vec<OpenSpan>> = const { RefCell::new(Vec::new()) };
}

/// A profiling session: an append-only span log shared by every thread
/// the session is [installed](ProfileSession::install) on. Clone is
/// cheap (`Arc`); clones share the log.
#[derive(Clone)]
pub struct ProfileSession {
    inner: Arc<ProfInner>,
}

impl std::fmt::Debug for ProfileSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfileSession").finish_non_exhaustive()
    }
}

impl Default for ProfileSession {
    fn default() -> Self {
        ProfileSession::new()
    }
}

/// Restores the previously installed session (if any) on drop.
/// Not `Send`: must be dropped on the installing thread.
pub struct ProfileGuard {
    prev: Option<Arc<ProfInner>>,
    prev_lane: u32,
    prev_adopted: Option<u64>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for ProfileGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            let mut cur = c.borrow_mut();
            if cur.is_some() {
                ACTIVE_PROFILERS.fetch_sub(1, Ordering::SeqCst);
            }
            *cur = self.prev.take();
            if cur.is_some() {
                ACTIVE_PROFILERS.fetch_add(1, Ordering::SeqCst);
            }
        });
        LANE.with(|l| l.set(self.prev_lane));
        ADOPTED.with(|a| a.set(self.prev_adopted));
    }
}

impl ProfileSession {
    /// Create a new, empty session. Nothing is recorded until it is
    /// [installed](ProfileSession::install) on a thread.
    #[must_use]
    pub fn new() -> Self {
        ProfileSession {
            inner: Arc::new(ProfInner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                spans: Mutex::new(Vec::new()),
                lanes: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Install this session on the current thread: spans opened on this
    /// thread are recorded into it until the guard drops. The thread gets
    /// its own *lane*, named after the OS thread (uniquified with `#k` on
    /// collision), so pool workers, speculation workers and the checker
    /// consumer each render as their own timeline row.
    #[must_use]
    pub fn install(&self) -> ProfileGuard {
        self.install_with_parent(None)
    }

    /// Like [`install`](ProfileSession::install), but new root spans on
    /// this thread adopt `parent` as their parent id — used when hopping
    /// threads (verification session threads, speculative workers, the
    /// pipelined-checker consumer) so the tree stays connected across
    /// lanes.
    #[must_use]
    pub fn install_with_parent(&self, parent: Option<u64>) -> ProfileGuard {
        let base = std::thread::current()
            .name()
            .unwrap_or("main")
            .to_string();
        let lane = self.inner.register_lane(&base);
        let prev = CURRENT.with(|c| {
            let mut cur = c.borrow_mut();
            if cur.is_none() {
                ACTIVE_PROFILERS.fetch_add(1, Ordering::SeqCst);
            }
            cur.replace(Arc::clone(&self.inner))
        });
        ProfileGuard {
            prev,
            prev_lane: LANE.with(|l| l.replace(lane)),
            prev_adopted: ADOPTED.with(|a| a.replace(parent)),
            _not_send: PhantomData,
        }
    }

    /// Snapshot of all completed spans, in completion order.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRec> {
        self.inner
            .spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Lane names, indexed by [`SpanRec::lane`].
    #[must_use]
    pub fn lanes(&self) -> Vec<String> {
        self.inner
            .lanes
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Per-kind rollup: number of spans, payload-counter sum, cumulative
    /// nanoseconds. Indexed by [`SpanKind::index`]. These are the values
    /// the accounting identities check against the flat telemetry
    /// counters.
    #[must_use]
    pub fn rollup(&self) -> [KindRollup; SpanKind::COUNT] {
        let mut out = [KindRollup::default(); SpanKind::COUNT];
        for s in self
            .inner
            .spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            let slot = &mut out[s.kind.index()];
            slot.spans += 1;
            slot.count += s.count;
            slot.total_ns += s.dur_ns;
        }
        out
    }

    /// Chrome trace-event JSON for the whole session: balanced `B`/`E`
    /// duration events per lane (`tid` = lane index, timestamps in
    /// microseconds, monotonically non-decreasing within a lane), plus
    /// `M` metadata events naming each lane. Load the output in Perfetto
    /// or `chrome://tracing`.
    #[must_use]
    pub fn chrome_trace(&self) -> String {
        let spans = self.spans();
        let lanes = self.lanes();
        let mut out = String::with_capacity(spans.len() * 128 + 256);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        out.push_str(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"diaframe\"}}",
        );
        for (i, lane) in lanes.iter().enumerate() {
            out.push_str(&format!(
                ",\n{{\"ph\":\"M\",\"pid\":1,\"tid\":{i},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(lane)
            ));
            out.push_str(&format!(
                ",\n{{\"ph\":\"M\",\"pid\":1,\"tid\":{i},\"name\":\"thread_sort_index\",\
                 \"args\":{{\"sort_index\":{i}}}}}",
            ));
        }
        // Emit each lane's spans as properly nested B/E pairs. Within a
        // lane the spans came from one thread's guard stack, so sorting
        // by (start asc, end desc) and walking with a stack reconstructs
        // the nesting; ends are clamped to the enclosing span so the
        // output stays balanced and monotonic even if clock granularity
        // produced a tie.
        for (lane, idxs) in per_lane_sorted(&spans) {
            let mut stack: Vec<(usize, u64)> = Vec::new(); // (span idx, effective end)
            for i in idxs {
                let s = &spans[i];
                let (start, mut end) = (s.start_ns / 1000, s.end_ns() / 1000);
                while let Some(&(_, top_end)) = stack.last() {
                    if top_end <= start {
                        out.push_str(&format!(
                            ",\n{{\"ph\":\"E\",\"pid\":1,\"tid\":{lane},\"ts\":{top_end}}}"
                        ));
                        stack.pop();
                    } else {
                        break;
                    }
                }
                if let Some(&(_, top_end)) = stack.last() {
                    end = end.min(top_end);
                }
                let name = if s.label.is_empty() {
                    s.kind.name().to_string()
                } else {
                    format!("{}:{}", s.kind.name(), s.label)
                };
                let parent = s.parent.unwrap_or(0);
                out.push_str(&format!(
                    ",\n{{\"ph\":\"B\",\"pid\":1,\"tid\":{lane},\"ts\":{start},\
                     \"name\":\"{}\",\"cat\":\"{}\",\
                     \"args\":{{\"id\":{},\"parent\":{parent},\"count\":{}}}}}",
                    json_escape(&name),
                    s.kind.name(),
                    s.id,
                    s.count
                ));
                stack.push((i, end.max(start)));
            }
            while let Some((_, top_end)) = stack.pop() {
                out.push_str(&format!(
                    ",\n{{\"ph\":\"E\",\"pid\":1,\"tid\":{lane},\"ts\":{top_end}}}"
                ));
            }
        }
        out.push_str("\n]}\n");
        out
    }

    /// Folded-stacks flamegraph text: one `path value` line per distinct
    /// root-to-span path (`;`-separated `kind:label` frames, following
    /// parent ids across lanes), value = aggregated *self* time in
    /// microseconds. Feed to any `flamegraph.pl`-compatible tool.
    #[must_use]
    pub fn folded_stacks(&self) -> String {
        let spans = self.spans();
        let selfs = self_times(&spans);
        let by_id: BTreeMap<u64, usize> = spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        for (i, self_ns) in selfs.iter().enumerate() {
            let self_us = self_ns / 1000;
            if self_us == 0 {
                continue;
            }
            let mut frames = Vec::new();
            let mut cur = Some(i);
            let mut hops = 0usize;
            while let Some(j) = cur {
                let sp = &spans[j];
                let frame = if sp.label.is_empty() {
                    sp.kind.name().to_string()
                } else {
                    format!("{}:{}", sp.kind.name(), sp.label)
                };
                frames.push(frame);
                hops += 1;
                if hops > 128 {
                    break; // defensive: a parent cycle would be a bug
                }
                cur = sp.parent.and_then(|p| by_id.get(&p).copied());
            }
            frames.reverse();
            let path = frames.join(";").replace(' ', "_");
            *folded.entry(path).or_insert(0) += self_us;
        }
        let mut out = String::new();
        for (path, us) in &folded {
            out.push_str(&format!("{path} {us}\n"));
        }
        out
    }

    /// Top-`n` cost attribution rows aggregated by `(kind, label)`,
    /// sorted by self time (cumulative minus same-lane children)
    /// descending.
    #[must_use]
    pub fn hotspots(&self, n: usize) -> Vec<Hotspot> {
        let spans = self.spans();
        let selfs = self_times(&spans);
        let mut agg: BTreeMap<(SpanKind, String), Hotspot> = BTreeMap::new();
        for (i, s) in spans.iter().enumerate() {
            let slot = agg
                .entry((s.kind, s.label.clone()))
                .or_insert_with(|| Hotspot {
                    kind: s.kind,
                    label: s.label.clone(),
                    calls: 0,
                    self_ns: 0,
                    cum_ns: 0,
                    count: 0,
                });
            slot.calls += 1;
            slot.self_ns += selfs[i];
            slot.cum_ns += s.dur_ns;
            slot.count += s.count;
        }
        let mut rows: Vec<Hotspot> = agg.into_values().collect();
        rows.sort_by(|a, b| {
            b.self_ns
                .cmp(&a.self_ns)
                .then_with(|| b.cum_ns.cmp(&a.cum_ns))
                .then_with(|| a.label.cmp(&b.label))
        });
        rows.truncate(n);
        rows
    }
}

/// Per-kind rollup totals (see [`ProfileSession::rollup`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindRollup {
    /// Number of spans of this kind.
    pub spans: u64,
    /// Sum of the kind-specific payload counters.
    pub count: u64,
    /// Cumulative duration, nanoseconds.
    pub total_ns: u64,
}

/// One row of the `figure6 --hotspots` table.
#[derive(Debug, Clone)]
pub struct Hotspot {
    /// Span kind of the aggregated group.
    pub kind: SpanKind,
    /// Span label of the aggregated group (may be empty).
    pub label: String,
    /// Number of spans aggregated.
    pub calls: u64,
    /// Self time (cumulative minus same-lane children), nanoseconds.
    pub self_ns: u64,
    /// Cumulative time, nanoseconds.
    pub cum_ns: u64,
    /// Payload counter sum (probes / steps / queries).
    pub count: u64,
}

/// Group span indices by lane, each sorted by (start asc, end desc, id).
fn per_lane_sorted(spans: &[SpanRec]) -> BTreeMap<u32, Vec<usize>> {
    let mut by_lane: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        by_lane.entry(s.lane).or_default().push(i);
    }
    for idxs in by_lane.values_mut() {
        idxs.sort_by(|&a, &b| {
            spans[a]
                .start_ns
                .cmp(&spans[b].start_ns)
                .then_with(|| spans[b].end_ns().cmp(&spans[a].end_ns()))
                .then_with(|| spans[a].id.cmp(&spans[b].id))
        });
    }
    by_lane
}

/// Self time per span: duration minus the durations of *direct same-lane
/// children* (concurrent cross-lane children — speculative workers under
/// a branch span — do not eat their parent's self time).
fn self_times(spans: &[SpanRec]) -> Vec<u64> {
    let mut child_ns = vec![0u64; spans.len()];
    for idxs in per_lane_sorted(spans).values() {
        let mut stack: Vec<usize> = Vec::new();
        for &i in idxs {
            let s = &spans[i];
            while let Some(&top) = stack.last() {
                if spans[top].end_ns() <= s.start_ns {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&top) = stack.last() {
                child_ns[top] += s.dur_ns.min(spans[top].dur_ns);
            }
            stack.push(i);
        }
    }
    spans
        .iter()
        .zip(&child_ns)
        .map(|(s, &c)| s.dur_ns.saturating_sub(c))
        .collect()
}

/// Whether any profile session is installed anywhere in the process.
/// One relaxed load — this is the hook fast path.
#[must_use]
pub fn enabled() -> bool {
    ACTIVE_PROFILERS.load(Ordering::Relaxed) != 0
}

/// Whether a profile session is installed on *this* thread (label
/// computations may key off this to stay free when profiling is off).
#[must_use]
pub fn active() -> bool {
    enabled() && CURRENT.with(|c| c.borrow().is_some())
}

/// The session installed on this thread, if any — used to propagate the
/// session into spawned workers, mirroring `telemetry::current()`.
#[must_use]
pub fn current() -> Option<ProfileSession> {
    if !enabled() {
        return None;
    }
    CURRENT.with(|c| {
        c.borrow()
            .as_ref()
            .map(|inner| ProfileSession {
                inner: Arc::clone(inner),
            })
    })
}

/// Id of the innermost span currently open on this thread, if any — pass
/// it to [`ProfileSession::install_with_parent`] across a thread hop.
#[must_use]
pub fn current_span_id() -> Option<u64> {
    if !enabled() {
        return None;
    }
    OPEN.with(|o| o.borrow().last().map(|f| f.id))
}

/// RAII guard for one span. Records the span into the installed session
/// when dropped. Not `Send`; must drop on the opening thread.
pub struct Span {
    active: Option<SpanActive>,
    _not_send: PhantomData<*const ()>,
}

struct SpanActive {
    inner: Arc<ProfInner>,
    idx: usize,
}

/// Open a span of `kind` on this thread. No-op (and allocation-free)
/// unless a session is installed here.
#[must_use]
pub fn span(kind: SpanKind) -> Span {
    if !enabled() {
        return Span {
            active: None,
            _not_send: PhantomData,
        };
    }
    let inner = CURRENT.with(|c| c.borrow().as_ref().map(Arc::clone));
    let Some(inner) = inner else {
        return Span {
            active: None,
            _not_send: PhantomData,
        };
    };
    let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
    let idx = OPEN.with(|o| {
        let mut open = o.borrow_mut();
        open.push(OpenSpan {
            id,
            kind,
            label: None,
            start: Instant::now(),
            count: 0,
        });
        open.len() - 1
    });
    Span {
        active: Some(SpanActive { inner, idx }),
        _not_send: PhantomData,
    }
}

impl Span {
    /// Attach a label (spec name, matched hypothesis…). Cheap no-op when
    /// the span is inactive; call sites guard expensive label rendering
    /// behind [`active`].
    pub fn set_label(&mut self, label: &str) {
        if let Some(a) = &self.active {
            OPEN.with(|o| {
                if let Some(f) = o.borrow_mut().get_mut(a.idx) {
                    f.label = Some(label.to_string());
                }
            });
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        let now = Instant::now();
        OPEN.with(|o| {
            let mut open = o.borrow_mut();
            // Normally we pop exactly our own frame; during an unwind
            // that skipped inner guards (they always run, but be
            // defensive) any deeper frames are closed innermost-first at
            // the same end time to keep the tree balanced.
            while open.len() > a.idx {
                let f = open.pop().expect("len checked");
                let parent = if open.is_empty() {
                    ADOPTED.with(Cell::get)
                } else {
                    open.last().map(|p| p.id)
                };
                let start_ns =
                    u64::try_from(f.start.saturating_duration_since(a.inner.epoch).as_nanos())
                        .unwrap_or(u64::MAX);
                let dur_ns = u64::try_from(now.saturating_duration_since(f.start).as_nanos())
                    .unwrap_or(u64::MAX);
                a.inner.push(SpanRec {
                    id: f.id,
                    parent,
                    kind: f.kind,
                    label: f.label.unwrap_or_default(),
                    lane: LANE.with(Cell::get),
                    start_ns,
                    dur_ns,
                    count: f.count,
                });
            }
        });
    }
}

/// Add `n` to the payload counter of the innermost open span on this
/// thread (e.g. one probe attempted inside a `FindHint` span). No-op
/// when profiling is off.
pub fn bump(n: u64) {
    if !enabled() {
        return;
    }
    OPEN.with(|o| {
        if let Some(f) = o.borrow_mut().last_mut() {
            f.count += n;
        }
    });
}

/// Record an instant (zero-duration) mark of `kind` under the innermost
/// open span — used for speculative win/cancel outcomes on the deciding
/// lane. No-op when profiling is off.
pub fn mark(kind: SpanKind, label: &str) {
    if !enabled() {
        return;
    }
    let Some(inner) = CURRENT.with(|c| c.borrow().as_ref().map(Arc::clone)) else {
        return;
    };
    let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
    let parent = OPEN.with(|o| o.borrow().last().map(|f| f.id)).or_else(|| ADOPTED.with(Cell::get));
    let start_ns = u64::try_from(
        Instant::now()
            .saturating_duration_since(inner.epoch)
            .as_nanos(),
    )
    .unwrap_or(u64::MAX);
    inner.push(SpanRec {
        id,
        parent,
        kind,
        label: label.to_string(),
        lane: LANE.with(Cell::get),
        start_ns,
        dur_ns: 0,
        count: 0,
    });
}

/// Validate a Chrome trace-event JSON document produced by
/// [`ProfileSession::chrome_trace`] (or anything claiming the same
/// contract): every lane's `B`/`E` events must balance and its
/// timestamps must be monotonically non-decreasing. Returns
/// `(duration_event_count, lane_count)`.
///
/// This is the checker the CI profile gate runs against the exported
/// trace — the profiler is cross-checked, not trusted.
pub fn validate_chrome_trace(text: &str) -> Result<(usize, usize), String> {
    let doc = parse_json_value(text).map_err(|e| format!("trace JSON parse error: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or("missing traceEvents array")?;
    struct LaneState {
        depth: usize,
        last_ts: u64,
    }
    let mut lanes: BTreeMap<u64, LaneState> = BTreeMap::new();
    let mut n_events = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph == "M" {
            continue;
        }
        if ph != "B" && ph != "E" {
            return Err(format!("event {i}: unexpected ph {ph:?}"));
        }
        let tid = ev
            .get("tid")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        let ts = ev
            .get("ts")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        let lane = lanes.entry(tid).or_insert(LaneState { depth: 0, last_ts: 0 });
        if ts < lane.last_ts {
            return Err(format!(
                "event {i}: lane {tid} timestamp went backwards ({ts} < {})",
                lane.last_ts
            ));
        }
        lane.last_ts = ts;
        if ph == "B" {
            lane.depth += 1;
        } else if lane.depth == 0 {
            return Err(format!("event {i}: lane {tid} E without matching B"));
        } else {
            lane.depth -= 1;
        }
        n_events += 1;
    }
    for (tid, lane) in &lanes {
        if lane.depth != 0 {
            return Err(format!("lane {tid}: {} unclosed B events", lane.depth));
        }
    }
    Ok((n_events, lanes.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(us: u64) {
        let t = Instant::now();
        while t.elapsed().as_micros() < u128::from(us) {
            std::hint::black_box(0);
        }
    }

    #[test]
    fn off_records_nothing_and_is_inert() {
        // No session installed on this thread: spans are no-ops.
        let s = ProfileSession::new();
        {
            let mut sp = span(SpanKind::Search);
            sp.set_label("ignored");
            bump(7);
            mark(SpanKind::Speculate, "win");
        }
        assert!(s.spans().is_empty());
        assert_eq!(current_span_id(), None);
    }

    #[test]
    fn nesting_parents_counts_and_labels() {
        let s = ProfileSession::new();
        let g = s.install();
        {
            let mut outer = span(SpanKind::Spec);
            outer.set_label("push");
            {
                let _inner = span(SpanKind::FindHint);
                bump(3);
                bump(2);
                spin(50);
            }
            mark(SpanKind::Speculate, "win");
        }
        drop(g);
        let spans = s.spans();
        assert_eq!(spans.len(), 3);
        // Completion order: inner FindHint, Speculate mark, outer Spec.
        let inner = &spans[0];
        let mk = &spans[1];
        let outer = &spans[2];
        assert_eq!(inner.kind, SpanKind::FindHint);
        assert_eq!(inner.count, 5);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(mk.kind, SpanKind::Speculate);
        assert_eq!(mk.label, "win");
        assert_eq!(mk.dur_ns, 0);
        assert_eq!(mk.parent, Some(outer.id));
        assert_eq!(outer.kind, SpanKind::Spec);
        assert_eq!(outer.label, "push");
        assert_eq!(outer.parent, None);
        assert!(outer.dur_ns >= inner.dur_ns);
        assert!(inner.start_ns >= outer.start_ns);
        let roll = s.rollup();
        assert_eq!(roll[SpanKind::FindHint.index()].count, 5);
        assert_eq!(roll[SpanKind::Spec.index()].spans, 1);
    }

    #[test]
    fn adopted_parent_links_across_threads() {
        let s = ProfileSession::new();
        let g = s.install();
        let outer = span(SpanKind::Branch);
        let parent = current_span_id().expect("branch span open");
        let s2 = s.clone();
        std::thread::Builder::new()
            .name("prof-test-worker".into())
            .spawn(move || {
                let _g = s2.install_with_parent(Some(parent));
                let _w = span(SpanKind::Speculate);
                spin(20);
            })
            .expect("spawn")
            .join()
            .expect("join");
        drop(outer);
        drop(g);
        let spans = s.spans();
        let worker = spans
            .iter()
            .find(|r| r.kind == SpanKind::Speculate)
            .expect("worker span recorded");
        assert_eq!(worker.parent, Some(parent));
        let lanes = s.lanes();
        assert_eq!(lanes.len(), 2);
        assert!(lanes[usize::try_from(worker.lane).unwrap()].contains("prof-test-worker"));
    }

    #[test]
    fn chrome_trace_escapes_validates_and_round_trips() {
        let s = ProfileSession::new();
        let g = s.install();
        {
            let mut sp = span(SpanKind::Spec);
            sp.set_label("odd \"name\"\\with\nnewline\tand\u{1}ctl");
            spin(30);
            {
                let _inner = span(SpanKind::Search);
                spin(30);
            }
        }
        drop(g);
        let trace = s.chrome_trace();
        // Escaping: the raw control characters must not survive.
        assert!(trace.contains("odd \\\"name\\\"\\\\with\\nnewline\\tand\\u0001ctl"));
        assert!(!trace.contains('\u{1}'));
        // Round-trip: our own hand-rolled parser must accept it and the
        // validator must find balanced, monotonic lanes.
        let (events, lanes) = validate_chrome_trace(&trace).expect("valid trace");
        assert_eq!(events, 4); // 2 spans -> 2 B + 2 E
        assert_eq!(lanes, 1);
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        // Unbalanced: B without E.
        let unbalanced = "{\"traceEvents\":[\
            {\"ph\":\"B\",\"pid\":1,\"tid\":0,\"ts\":1,\"name\":\"x\"}]}";
        assert!(validate_chrome_trace(unbalanced).is_err());
        // E without B.
        let stray = "{\"traceEvents\":[{\"ph\":\"E\",\"pid\":1,\"tid\":0,\"ts\":1}]}";
        assert!(validate_chrome_trace(stray).is_err());
        // Backwards timestamps within a lane.
        let backwards = "{\"traceEvents\":[\
            {\"ph\":\"B\",\"pid\":1,\"tid\":0,\"ts\":5,\"name\":\"x\"},\
            {\"ph\":\"E\",\"pid\":1,\"tid\":0,\"ts\":4}]}";
        assert!(validate_chrome_trace(backwards).is_err());
        // A correct two-lane trace passes.
        let ok = "{\"traceEvents\":[\
            {\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"a\"}},\
            {\"ph\":\"B\",\"pid\":1,\"tid\":0,\"ts\":1,\"name\":\"x\"},\
            {\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":1,\"name\":\"y\"},\
            {\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":2},\
            {\"ph\":\"E\",\"pid\":1,\"tid\":0,\"ts\":3}]}";
        assert_eq!(validate_chrome_trace(ok).expect("valid"), (4, 2));
    }

    #[test]
    fn folded_stacks_and_hotspots_attribute_self_time() {
        let s = ProfileSession::new();
        let g = s.install();
        {
            let mut outer = span(SpanKind::Spec);
            outer.set_label("push");
            spin(300);
            {
                let mut inner = span(SpanKind::FindHint);
                inner.set_label("lock");
                bump(4);
                spin(300);
            }
        }
        drop(g);
        let folded = s.folded_stacks();
        assert!(folded.contains("spec:push;find_hint:lock "));
        assert!(folded.lines().any(|l| l.starts_with("spec:push ")));
        let hot = s.hotspots(10);
        assert_eq!(hot.len(), 2);
        let spec = hot
            .iter()
            .find(|h| h.kind == SpanKind::Spec)
            .expect("spec row");
        let fh = hot
            .iter()
            .find(|h| h.kind == SpanKind::FindHint)
            .expect("find_hint row");
        assert_eq!(fh.count, 4);
        // The parent's self time excludes the child's cumulative time.
        assert!(spec.self_ns < spec.cum_ns);
        assert!(fh.cum_ns <= spec.cum_ns);
    }
}
