//! User tactics and verification options — the interactive escape hatch.
//!
//! When the automation gets stuck, the paper's workflow (§2.2, §6) is: the
//! user inspects the proof state and helps with a manual step (a case
//! distinction like `destruct (decide (x2 = 1))` in the ARC `drop` proof),
//! a custom bi-abduction hint, or opt-in backtracking on disjunctions.
//! Every consumed tactic and custom hint counts as *manual proof work* in
//! the Figure 6 statistics.

use crate::ctx::ProofCtx;
use diaframe_ghost::HintCandidate;
use diaframe_logic::Atom;
use diaframe_term::{PureProp, VarCtx};
use std::sync::Arc;

/// A function inspecting the stuck proof context and producing the
/// proposition to case-split on.
pub type CaseSplitFn = Arc<dyn Fn(&ProofCtx) -> Option<PureProp> + Send + Sync>;

/// A user-provided hypothesis-directed hint: given a hypothesis atom and
/// the goal atom, produce candidates.
pub type CustomHintFn =
    Arc<dyn Fn(&mut VarCtx, &Atom, &Atom) -> Vec<HintCandidate> + Send + Sync>;

/// A user-provided last-resort (`ε₁`) hint: candidates for a goal atom
/// with no keying hypothesis — e.g. folding a recursive predicate.
pub type CustomAllocFn = Arc<dyn Fn(&mut VarCtx, &Atom) -> Vec<HintCandidate> + Send + Sync>;

/// A function probing the stuck context for a hypothesis to *unfold*:
/// returns the hypothesis index and its replacement assertion. The
/// replacement must be a definitional unfolding of the hypothesis — this
/// is the trusted counterpart of the paper's user-provided lemmas backing
/// custom hints (see DESIGN.md).
pub type UnfoldFn = Arc<dyn Fn(&mut ProofCtx) -> Option<(usize, Assertion)> + Send + Sync>;

use diaframe_logic::Assertion;

/// A user tactic, consumed in order when the automation gets stuck.
#[derive(Clone)]
pub enum Tactic {
    /// Case split on a pure proposition (`destruct (decide φ)`): the
    /// remaining goal is proved once under `φ` and once under `¬φ`.
    CasePure {
        /// Description for the trace.
        name: String,
        /// Computes the proposition from the stuck context.
        prop: CaseSplitFn,
    },
    /// Commit to the left disjunct of a stuck goal disjunction.
    ChooseLeft,
    /// Commit to the right disjunct of a stuck goal disjunction.
    ChooseRight,
    /// Replace a hypothesis by its definitional unfolding (recursive
    /// predicates).
    UnfoldHyp {
        /// Description for the trace.
        name: String,
        /// Probes the context for an unfoldable hypothesis.
        probe: UnfoldFn,
    },
}

impl std::fmt::Debug for Tactic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tactic::CasePure { name, .. } => write!(f, "CasePure({name})"),
            Tactic::ChooseLeft => write!(f, "ChooseLeft"),
            Tactic::ChooseRight => write!(f, "ChooseRight"),
            Tactic::UnfoldHyp { name, .. } => write!(f, "UnfoldHyp({name})"),
        }
    }
}

/// Ablation switches for the search-order design decisions documented in
/// DESIGN.md §5. Each switch *disables* one decision, so the benchmark
/// harness can measure what that decision buys. All-false is the normal
/// engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Ablation {
    /// Scan hypotheses oldest-first instead of newest-first.
    pub oldest_first: bool,
    /// Single-pass hint search: invariant-opening hints compete with
    /// direct hypothesis hints in one scan instead of being deferred to a
    /// second pass.
    pub single_pass: bool,
    /// Disable the prefer-allocation rule for ghost goals whose name is
    /// an unsolved evar (fresh ghosts may then capture an unrelated
    /// hypothesis's name).
    pub no_alloc_preference: bool,
}

impl Ablation {
    /// The normal engine (no ablation).
    #[must_use]
    pub fn none() -> Ablation {
        Ablation::default()
    }

    /// Field-wise OR of two ablation sets.
    #[must_use]
    pub fn merged(self, other: Ablation) -> Ablation {
        Ablation {
            oldest_first: self.oldest_first || other.oldest_first,
            single_pass: self.single_pass || other.single_pass,
            no_alloc_preference: self.no_alloc_preference || other.no_alloc_preference,
        }
    }
}

std::thread_local! {
    static ABLATION_OVERRIDE: std::cell::Cell<Ablation> =
        const { std::cell::Cell::new(Ablation {
            oldest_first: false,
            single_pass: false,
            no_alloc_preference: false,
        }) };
}

/// Runs `f` with every verification on this thread ablated by `a` (merged
/// into each run's own [`VerifyOptions::ablation`]). Used by the ablation
/// benchmark to re-run unmodified examples under degraded search orders.
pub fn with_ablation_override<T>(a: Ablation, f: impl FnOnce() -> T) -> T {
    let prev = ABLATION_OVERRIDE.with(|c| c.replace(a));
    let out = f();
    ABLATION_OVERRIDE.with(|c| c.set(prev));
    out
}

/// The ablation override currently active on this thread.
#[must_use]
pub fn current_ablation() -> Ablation {
    ABLATION_OVERRIDE.with(std::cell::Cell::get)
}

/// Options controlling one verification run.
#[derive(Clone, Default)]
pub struct VerifyOptions {
    /// Tactics consumed (in order) when the automation gets stuck — the
    /// "proof script".
    pub tactics: Vec<Tactic>,
    /// User-provided bi-abduction hints, tried alongside the ghost
    /// libraries' hints.
    pub custom_hints: Vec<(String, CustomHintFn)>,
    /// User-provided last-resort hints (folding recursive predicates).
    pub custom_alloc_hints: Vec<(String, CustomAllocFn)>,
    /// Opt-in backtracking for goal disjunctions (§5.3's last paragraph).
    pub backtrack_disjunctions: bool,
    /// Step budget; the engine stops with a stuck report when exhausted.
    /// `0` means the default budget.
    pub fuel: u64,
    /// Disabled search-order decisions (benchmark ablations); all-false
    /// for the normal engine.
    pub ablation: Ablation,
}

impl std::fmt::Debug for VerifyOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifyOptions")
            .field("tactics", &self.tactics)
            .field(
                "custom_hints",
                &self.custom_hints.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            )
            .field("backtrack_disjunctions", &self.backtrack_disjunctions)
            .field("fuel", &self.fuel)
            .field("ablation", &self.ablation)
            .finish()
    }
}

impl VerifyOptions {
    /// The default options: full automation, no manual help.
    #[must_use]
    pub fn automatic() -> VerifyOptions {
        VerifyOptions::default()
    }

    /// Adds a case-split tactic.
    #[must_use]
    pub fn with_case_split(
        mut self,
        name: &str,
        f: impl Fn(&ProofCtx) -> Option<PureProp> + Send + Sync + 'static,
    ) -> VerifyOptions {
        self.tactics.push(Tactic::CasePure {
            name: name.to_owned(),
            prop: Arc::new(f),
        });
        self
    }

    /// Adds a custom hint.
    #[must_use]
    pub fn with_custom_hint(
        mut self,
        name: &str,
        f: impl Fn(&mut VarCtx, &Atom, &Atom) -> Vec<HintCandidate> + Send + Sync + 'static,
    ) -> VerifyOptions {
        self.custom_hints.push((name.to_owned(), Arc::new(f)));
        self
    }

    /// Adds a custom last-resort hint.
    #[must_use]
    pub fn with_custom_alloc(
        mut self,
        name: &str,
        f: impl Fn(&mut VarCtx, &Atom) -> Vec<HintCandidate> + Send + Sync + 'static,
    ) -> VerifyOptions {
        self.custom_alloc_hints.push((name.to_owned(), Arc::new(f)));
        self
    }

    /// Adds an unfold tactic for recursive predicates.
    #[must_use]
    pub fn with_unfold(
        mut self,
        name: &str,
        f: impl Fn(&mut ProofCtx) -> Option<(usize, Assertion)> + Send + Sync + 'static,
    ) -> VerifyOptions {
        self.tactics.push(Tactic::UnfoldHyp {
            name: name.to_owned(),
            probe: Arc::new(f),
        });
        self
    }

    /// Enables disjunction backtracking.
    #[must_use]
    pub fn with_backtracking(mut self) -> VerifyOptions {
        self.backtrack_disjunctions = true;
        self
    }

    /// The effective fuel.
    #[must_use]
    pub fn effective_fuel(&self) -> u64 {
        if self.fuel == 0 {
            200_000
        } else {
            self.fuel
        }
    }

    /// Lines of manual proof work this option set represents (tactics +
    /// custom hints), the unit of the paper's "proof burden" comparison.
    #[must_use]
    pub fn manual_steps(&self) -> usize {
        self.tactics.len() + self.custom_hints.len() + self.custom_alloc_hints.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_merge_and_override_scoping() {
        let a = Ablation {
            oldest_first: true,
            ..Ablation::none()
        };
        let b = Ablation {
            single_pass: true,
            ..Ablation::none()
        };
        let m = a.merged(b);
        assert!(m.oldest_first && m.single_pass && !m.no_alloc_preference);
        assert_eq!(Ablation::none().merged(Ablation::none()), Ablation::none());

        assert_eq!(current_ablation(), Ablation::none());
        let inner = with_ablation_override(a, || {
            // Nested overrides replace, and restore on exit.
            let nested = with_ablation_override(b, current_ablation);
            assert_eq!(nested, b);
            current_ablation()
        });
        assert_eq!(inner, a);
        assert_eq!(current_ablation(), Ablation::none());
    }

    #[test]
    fn builder_and_accounting() {
        let opts = VerifyOptions::automatic()
            .with_case_split("z = 1", |_| Some(PureProp::True))
            .with_backtracking();
        assert_eq!(opts.tactics.len(), 1);
        assert!(opts.backtrack_disjunctions);
        assert_eq!(opts.manual_steps(), 1);
        assert_eq!(VerifyOptions::automatic().manual_steps(), 0);
        assert!(opts.effective_fuel() > 0);
    }
}
