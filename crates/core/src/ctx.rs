//! The proof context: `Γ` (pure facts + variables) and `Δ` (spatial and
//! persistent hypotheses).

use crate::index::HeadSet;
use crate::symval::SymTable;
use diaframe_logic::{Assertion, MaskStore, PredTable};
use diaframe_term::solver::egraph::{self, EGraph};
use diaframe_term::solver::PureSolver;
use diaframe_term::{PureProp, Subst, Term, VarCtx, VarId};

/// One hypothesis in `Δ`.
#[derive(Debug, Clone)]
pub struct Hyp {
    /// The (clean, §5.1) hypothesis.
    pub assertion: Assertion,
    /// Whether the hypothesis is persistent (usable without consumption).
    pub persistent: bool,
    /// A display name (`"H1"`, `"H2"`, …).
    pub name: String,
    /// Atom-head summary of `assertion`, letting `find_hint` skip
    /// structurally hopeless probes. Computed once at [`ProofCtx::add_hyp`]
    /// time: heads are term-independent, and every in-place rewrite the
    /// strategy performs (substitution, zonking, later-stripping,
    /// same-head resource merges) preserves them — see `index.rs`.
    pub heads: HeadSet,
}

/// The entire mutable proof state of one branch of the search.
///
/// Branching (hypothesis disjunctions, `if` on symbolic booleans, manual
/// case splits) clones the whole context, so sibling branches can never
/// interfere through shared evars.
#[derive(Clone)]
pub struct ProofCtx {
    /// Variables and term evars.
    pub vars: VarCtx,
    /// Mask evars.
    pub masks: MaskStore,
    /// Abstract predicates of this verification.
    pub preds: PredTable,
    /// The pure context `Γ`.
    pub facts: Vec<PureProp>,
    /// The spatial/persistent context `Δ`.
    pub delta: Vec<Hyp>,
    /// The symbolic-value table.
    pub syms: SymTable,
    /// Pure goals postponed because they still contain unsolved evars
    /// (they are re-proved once the evars are determined — at the latest
    /// when the branch completes).
    pub pending_pure: Vec<PureProp>,
    next_hyp: u32,
    /// Revision counter for `facts`, bumped by every mutation
    /// ([`ProofCtx::add_fact`], [`ProofCtx::truncate_facts`], the
    /// substitution/zonking rewrites). `facts` must only be mutated
    /// through those methods; reads are unrestricted. Keys the cached
    /// pure solver below.
    facts_rev: u64,
    /// The last pure solver built over `facts`, with the revision it was
    /// built at. The rebuild-per-query fallback path
    /// (`DIAFRAME_EGRAPH=off`): rebuilding the solver used to dominate
    /// `prove_pure` — every call re-flattened and re-cloned every fact
    /// even though the fact list changes far more rarely than it is
    /// queried.
    solver_cache: Option<(u64, PureSolver)>,
    /// The incremental pure solver, kept in lockstep with `facts` by
    /// [`ProofCtx::add_fact`] / [`ProofCtx::truncate_facts`] (push and
    /// O(changes) rollback instead of rebuilds). Dropped to `None` by the
    /// whole-context rewrites (substitution, zonking) — those change
    /// every fact at once, so a rebuild at the next query is the honest
    /// cost — and rebuilt lazily when absent or from a dead interner
    /// scope.
    egraph: Option<EGraph>,
}

/// Solver caches are internal state, not proof state: keep them out of
/// `Debug` so rendered contexts are identical whether or not the
/// incremental solver is enabled (and regardless of its warm-up state).
impl std::fmt::Debug for ProofCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProofCtx")
            .field("vars", &self.vars)
            .field("masks", &self.masks)
            .field("preds", &self.preds)
            .field("facts", &self.facts)
            .field("delta", &self.delta)
            .field("syms", &self.syms)
            .field("pending_pure", &self.pending_pure)
            .field("next_hyp", &self.next_hyp)
            .finish_non_exhaustive()
    }
}

impl ProofCtx {
    /// An empty context over the given predicate table.
    #[must_use]
    pub fn new(preds: PredTable) -> ProofCtx {
        ProofCtx {
            vars: VarCtx::new(),
            masks: MaskStore::new(),
            preds,
            facts: Vec::new(),
            delta: Vec::new(),
            syms: SymTable::new(),
            pending_pure: Vec::new(),
            next_hyp: 0,
            facts_rev: 0,
            solver_cache: None,
            egraph: None,
        }
    }

    /// A clone of the proof state for a speculative branch worker on
    /// another thread: all *proof* state (variables, masks, hypotheses,
    /// facts, symbolic heaps) is copied, while the thread-affine solver
    /// caches are dropped. The caches live in the spawning thread's
    /// interner scope, so a detached fork must rebuild them — which the
    /// first pure query does, cheaply and deterministically from
    /// `facts` — under the worker's own scope. Verdicts never depend on
    /// cache warm-up, so a fork proves exactly what its parent would.
    #[must_use]
    pub fn fork_detached(&self) -> ProofCtx {
        ProofCtx {
            vars: self.vars.clone(),
            masks: self.masks.clone(),
            preds: self.preds.clone(),
            facts: self.facts.clone(),
            delta: self.delta.clone(),
            syms: self.syms.clone(),
            pending_pure: self.pending_pure.clone(),
            next_hyp: self.next_hyp,
            facts_rev: self.facts_rev,
            solver_cache: None,
            egraph: None,
        }
    }

    /// Adds a pure fact to `Γ`.
    pub fn add_fact(&mut self, p: PureProp) {
        if p != PureProp::True {
            if let Some(eg) = &mut self.egraph {
                eg.push_fact(p.clone());
            }
            self.facts.push(p);
            self.facts_rev += 1;
        }
    }

    /// Truncates `Γ` back to a previously recorded length (probe-loop
    /// rollback). All fact mutations must go through `ProofCtx` methods so
    /// the cached solver is invalidated — see [`ProofCtx::facts_rev`].
    ///
    /// [`ProofCtx::facts_rev`]: field@ProofCtx::facts_rev
    pub fn truncate_facts(&mut self, len: usize) {
        if len < self.facts.len() {
            if let Some(eg) = &mut self.egraph {
                eg.truncate_facts(len);
            }
            self.facts.truncate(len);
            self.facts_rev += 1;
        }
    }

    /// Adds a hypothesis to `Δ`, returning its index.
    pub fn add_hyp(&mut self, assertion: Assertion, persistent: bool) -> usize {
        self.next_hyp += 1;
        let heads = HeadSet::of(&assertion);
        self.delta.push(Hyp {
            assertion,
            persistent,
            name: format!("H{}", self.next_hyp),
            heads,
        });
        self.delta.len() - 1
    }

    /// Removes a hypothesis by index.
    pub fn remove_hyp(&mut self, idx: usize) -> Hyp {
        self.delta.remove(idx)
    }

    /// A pure solver over the current facts.
    #[must_use]
    pub fn solver(&self) -> PureSolver {
        PureSolver::new(&self.facts)
    }

    /// Rebuilds the cached solver if `facts` changed since it was built.
    fn refresh_solver(&mut self) {
        if self.solver_cache.as_ref().map(|(rev, _)| *rev) != Some(self.facts_rev) {
            // Asserting the whole fact list into a fresh solver is the
            // batch-shaped cost of pure reasoning; individual `prove`
            // calls against the cached solver are too cheap (and far too
            // numerous) to span individually.
            let mut sp = crate::profile::span(crate::profile::SpanKind::SolverBatch);
            sp.set_label("solver-rebuild");
            crate::profile::bump(self.facts.len() as u64);
            self.solver_cache = Some((self.facts_rev, PureSolver::new(&self.facts)));
        }
    }

    /// Ensures the incremental solver exists and belongs to the current
    /// interner scope; rebuilt from the fact list otherwise (context
    /// creation, a whole-context rewrite, or a context that outlived its
    /// scope).
    fn refresh_egraph(&mut self) {
        if !self.egraph.as_ref().is_some_and(EGraph::valid) {
            let mut sp = crate::profile::span(crate::profile::SpanKind::SolverBatch);
            sp.set_label("egraph-rebuild");
            crate::profile::bump(self.facts.len() as u64);
            self.egraph = Some(EGraph::from_facts(&self.facts));
        }
    }

    /// Proves a pure proposition from `Γ` (may instantiate evars).
    pub fn prove_pure(&mut self, goal: &PureProp) -> bool {
        if egraph::enabled() {
            self.refresh_egraph();
            if let Some(eg) = &mut self.egraph {
                return eg.prove(&mut self.vars, goal);
            }
        }
        self.refresh_solver();
        let Some((_, solver)) = &self.solver_cache else {
            unreachable!("refresh_solver always fills the cache")
        };
        solver.prove(&mut self.vars, goal)
    }

    /// Proves a pure proposition without instantiating evars (for
    /// disjunction guards, §5.3).
    pub fn prove_pure_frozen(&mut self, goal: &PureProp) -> bool {
        if egraph::enabled() {
            self.refresh_egraph();
            if let Some(eg) = &mut self.egraph {
                return eg.prove_frozen(&mut self.vars, goal);
            }
        }
        self.refresh_solver();
        let Some((_, solver)) = &self.solver_cache else {
            unreachable!("refresh_solver always fills the cache")
        };
        solver.prove_frozen(&mut self.vars, goal)
    }

    /// Whether `Γ` is contradictory.
    pub fn inconsistent(&mut self) -> bool {
        if egraph::enabled() {
            self.refresh_egraph();
            if let Some(eg) = &mut self.egraph {
                return eg.inconsistent(&mut self.vars);
            }
        }
        self.refresh_solver();
        let Some((_, solver)) = &self.solver_cache else {
            unreachable!("refresh_solver always fills the cache")
        };
        solver.inconsistent(&mut self.vars)
    }

    /// Substitutes a variable by a term throughout the context (facts and
    /// hypotheses). Used by the cleaning step that eliminates equations
    /// `⌜x = t⌝` with `x` a variable.
    pub fn substitute_var(&mut self, v: VarId, t: &Term) {
        let s = Subst::single(v, t.clone());
        self.facts_rev += 1;
        self.egraph = None;
        for f in &mut self.facts {
            *f = f.subst(&s);
        }
        for h in &mut self.delta {
            h.assertion = h.assertion.subst(&s);
        }
        self.syms.map_terms(|t| s.apply(t));
        self.vars.map_solutions(|t| s.apply(t));
    }

    /// Zonks all hypotheses and facts (resolving solved evars), keeping
    /// displays and matching fast paths precise.
    pub fn zonk_all(&mut self) {
        self.facts_rev += 1;
        self.egraph = None;
        let vars = &self.vars;
        for f in &mut self.facts {
            *f = f.zonk(vars);
        }
        for h in &mut self.delta {
            h.assertion = h.assertion.zonk(vars);
        }
        self.syms.map_terms(|t| t.zonk(vars));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diaframe_logic::Atom;
    use diaframe_term::Sort;

    #[test]
    fn facts_and_proving() {
        let mut ctx = ProofCtx::new(PredTable::new());
        let z = Term::var(ctx.vars.fresh_var(Sort::Int, "z"));
        ctx.add_fact(PureProp::lt(Term::int(0), z.clone()));
        assert!(ctx.prove_pure(&PureProp::le(Term::int(1), z.clone())));
        assert!(!ctx.inconsistent());
        ctx.add_fact(PureProp::eq(z, Term::int(0)));
        assert!(ctx.inconsistent());
    }

    #[test]
    fn hypothesis_management() {
        let mut ctx = ProofCtx::new(PredTable::new());
        let i = ctx.add_hyp(
            Assertion::atom(Atom::points_to(Term::Loc(0), Term::v_unit())),
            false,
        );
        assert_eq!(ctx.delta.len(), 1);
        assert_eq!(ctx.delta[i].name, "H1");
        let h = ctx.remove_hyp(i);
        assert!(!h.persistent);
        assert!(ctx.delta.is_empty());
    }

    #[test]
    fn substitution_reaches_everything() {
        let mut ctx = ProofCtx::new(PredTable::new());
        let v = ctx.vars.fresh_var(Sort::Val, "v");
        let l = Term::var(ctx.vars.fresh_var(Sort::Loc, "l"));
        ctx.add_fact(PureProp::ne(Term::var(v), Term::v_unit()));
        ctx.add_hyp(
            Assertion::atom(Atom::points_to(l.clone(), Term::var(v))),
            false,
        );
        ctx.substitute_var(v, &Term::v_int_lit(3));
        assert_eq!(
            ctx.facts[0],
            PureProp::ne(Term::v_int_lit(3), Term::v_unit())
        );
        assert_eq!(
            ctx.delta[0].assertion,
            Assertion::atom(Atom::points_to(l, Term::v_int_lit(3)))
        );
    }
}
