//! The Diaframe proof search strategy (§5.2 of the paper).
//!
//! [`Engine::solve`] performs the case analysis of §5.2 on [`Goal`]s:
//! introduction and *cleaning* of hypotheses, symbolic execution through
//! `sym-ex-fupd-exist` (§3.2), processing of the synthetic
//! `∥|⇛E₁ E₂∥ ∃x⃗. L ∗ G` goals by splitting separating conjunctions
//! left-to-right and discharging atoms via bi-abduction hints (§4), the
//! guard-based disjunction handling of §5.3, and the invariant-closing
//! `χ` bookkeeping.
//!
//! The search never backtracks globally; when nothing applies it consumes
//! the next user tactic, or stops with a [`Stuck`] report.

use crate::ctx::ProofCtx;
use crate::goal::Goal;
use crate::hint::find_hint;
use crate::report::Stuck;
use crate::spec::SpecTable;
use crate::tactic::{Tactic, VerifyOptions};
use crate::trace::{ProofTrace, TraceStep};
use diaframe_ghost::{MergeOutcome, Registry};
use diaframe_heaplang::ectx::{decompose, fill_ctx, Decomp, Frame};
use diaframe_heaplang::step::head_step;
use diaframe_heaplang::{BinOp, Expr, Heap, UnOp, Val};
use diaframe_logic::{Assertion, Atom, Binder, Mask, MaskT, Namespace, WpPost};
use diaframe_term::{PureProp, Sort, Subst, Sym, Term, VarId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A live step consumer for pipelined per-frame checking: every step
/// appended to the trace (including spliced speculative steps, in trace
/// order) is mirrored to the sink as it lands.
pub(crate) type StepSink = Arc<dyn Fn(&TraceStep) + Send + Sync>;

/// The proof search engine for one verification.
pub struct Engine<'a> {
    registry: &'a Registry,
    specs: &'a SpecTable,
    opts: &'a VerifyOptions,
    /// The trace of the proof so far.
    pub trace: ProofTrace,
    tactic_used: Vec<bool>,
    tactic_fires: Vec<u32>,
    fuel: u64,
    /// Set on speculative branch engines: polled at every `solve` entry,
    /// aborting the worker's search once its result cannot matter.
    cancel: Option<Arc<AtomicBool>>,
    step_sink: Option<StepSink>,
}

type Solved = Result<ProofCtx, Box<Stuck>>;

impl<'a> Engine<'a> {
    /// Creates an engine.
    #[must_use]
    pub fn new(registry: &'a Registry, specs: &'a SpecTable, opts: &'a VerifyOptions) -> Self {
        Engine {
            registry,
            specs,
            opts,
            trace: ProofTrace::new(),
            tactic_used: vec![false; opts.tactics.len()],
            tactic_fires: vec![0; opts.tactics.len()],
            fuel: opts.effective_fuel(),
            cancel: None,
            step_sink: None,
        }
    }

    /// Attaches a live step consumer (pipelined frame checking). Not
    /// compatible with opt-in disjunction backtracking, which truncates
    /// the trace — callers gate on `opts.backtrack_disjunctions`.
    pub(crate) fn set_step_sink(&mut self, sink: StepSink) {
        self.step_sink = Some(sink);
    }

    fn stuck(&self, ctx: &ProofCtx, reason: impl Into<String>, goal: &Goal) -> Box<Stuck> {
        if std::env::var_os("DIAFRAME_TRACE").is_some() {
            eprintln!("==== trace at stuck point ====");
            for (i, step) in self.trace.steps().iter().enumerate() {
                eprintln!("{i:4} {step:?}");
            }
        }
        Box::new(Stuck {
            reason: reason.into(),
            ctx: ctx.clone(),
            goal: describe_goal(goal),
            unmatched_head: None,
            diag: crate::telemetry::stuck_diag(),
        })
    }

    /// Records a trace step, mirroring it into the telemetry counters.
    /// Every rule application must go through here (never `trace.push`
    /// directly) so the per-kind counters stay exact; trace *restores*
    /// on disjunction backtracking bypass it by design — counters
    /// measure search effort, not final trace length.
    fn push_step(&mut self, step: TraceStep) {
        crate::telemetry::count_step(&step);
        if let Some(sink) = &self.step_sink {
            sink(&step);
        }
        self.trace.push(step);
    }

    /// Appends a step produced by a *won speculative worker*. Bypasses
    /// `count_step` — the worker already counted its steps into its own
    /// session, which the parent absorbs wholesale on a win — but still
    /// feeds the live step sink (steps reach the sink in trace order).
    fn splice_step(&mut self, step: TraceStep) {
        if let Some(sink) = &self.step_sink {
            sink(&step);
        }
        self.trace.push(step);
    }

    /// Consume the next *applicable* case-split tactic at a stuck point:
    /// a tactic whose probe returns `None` (it cannot decide anything
    /// here) is skipped without being consumed, so it can fire at a later
    /// stuck point.
    fn try_case_tactic(&mut self, ctx: &ProofCtx) -> Option<(String, PureProp)> {
        for i in 0..self.opts.tactics.len() {
            if self.tactic_used[i] {
                continue;
            }
            if let Tactic::CasePure { name, prop } = &self.opts.tactics[i] {
                // Probe-based case splits are reusable (the probe only
                // offers a proposition while it is undecided), but capped
                // to keep degenerate probes from diverging.
                if self.tactic_fires[i] >= 32 {
                    continue;
                }
                if let Some(p) = prop(ctx) {
                    self.tactic_fires[i] += 1;
                    return Some((name.clone(), p));
                }
            }
        }
        None
    }

    /// Consume the next applicable unfold tactic at a stuck point.
    fn try_unfold_tactic(&mut self, ctx: &mut ProofCtx) -> Option<(String, usize, Assertion)> {
        for i in 0..self.opts.tactics.len() {
            if let Tactic::UnfoldHyp { name, probe } = &self.opts.tactics[i] {
                if self.tactic_fires[i] >= 64 {
                    continue;
                }
                if let Some((idx, a)) = probe(ctx) {
                    self.tactic_fires[i] += 1;
                    return Some((name.clone(), idx, a));
                }
            }
        }
        None
    }

    fn try_choose_tactic(&mut self) -> Option<Tactic> {
        for i in 0..self.opts.tactics.len() {
            if self.tactic_used[i] {
                continue;
            }
            let t = self.opts.tactics[i].clone();
            if matches!(t, Tactic::ChooseLeft | Tactic::ChooseRight) {
                self.tactic_used[i] = true;
                return Some(t);
            }
        }
        None
    }

    /// Solves a goal, consuming hypotheses; returns the leftover context.
    ///
    /// # Errors
    ///
    /// Returns a [`Stuck`] report when no rule applies and no tactic helps.
    pub fn solve(&mut self, mut ctx: ProofCtx, goal: Goal) -> Solved {
        // Speculative engines poll their cancellation flag here — the
        // one place every rule application funnels through. The sentinel
        // error is always discarded by the spawner; it never reaches a
        // user-visible stuck report.
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return Err(self.stuck(&ctx, crate::speculate::CANCELLED_REASON, &goal));
            }
        }
        if self.fuel == 0 {
            return Err(self.stuck(&ctx, "out of fuel", &goal));
        }
        self.fuel -= 1;
        match goal {
            Goal::Done => self.discharge_pending(ctx),
            // Case 1: introduce a universal variable; entering a deeper
            // scope protects older evars (§3.2).
            Goal::Forall(b, g) => {
                ctx.vars.push_level();
                let sort = ctx.vars.var_sort(b.var);
                let name = ctx.vars.var_name(b.var).to_owned();
                let v = ctx.vars.fresh_var(sort, &name);
                self.push_step(TraceStep::IntroVar { name });
                let g = g.subst(&Subst::single(b.var, Term::var(v)));
                self.solve(ctx, g)
            }
            // Case 2: introduce and clean a hypothesis.
            Goal::WandIntro(u, g) => self.intro_hyps(ctx, vec![u], *g),
            Goal::StripLaters(g) => {
                for h in &mut ctx.delta {
                    if let Assertion::Later(inner) = &h.assertion {
                        h.assertion = (**inner).clone();
                    }
                }
                self.solve(ctx, *g)
            }
            // Case 3: weakest preconditions.
            Goal::Wp {
                expr,
                mask,
                post,
                then,
            } => self.wp_step(ctx, expr, mask, post, *then),
            // Case 4: fancy updates.
            Goal::Fupd { from, to, inner } => match inner {
                Assertion::Atom(Atom::Wp { expr, mask, post }) => self.solve(
                    ctx,
                    Goal::MaskSync {
                        from,
                        to,
                        cont: Box::new(Goal::Wp {
                            expr,
                            mask,
                            post,
                            then: Box::new(Goal::Done),
                        }),
                    },
                ),
                other => self.solve(
                    ctx,
                    Goal::SynFupd {
                        from,
                        to,
                        exists: Vec::new(),
                        lhs: other,
                        cont: Box::new(Goal::Done),
                    },
                ),
            },
            Goal::MaskSync { from, to, cont } => self.mask_sync(ctx, from, to, *cont),
            // Case 5: the synthetic fupd goal.
            Goal::SynFupd {
                from,
                to,
                exists,
                lhs,
                cont,
            } => self.syn_fupd(ctx, from, to, exists, lhs, *cont),
        }
    }

    /// Discharges postponed pure goals at the end of a branch. Remaining
    /// single-evar bounds are instantiated with their extremal value.
    fn discharge_pending(&mut self, mut ctx: ProofCtx) -> Solved {
        let pending = std::mem::take(&mut ctx.pending_pure);
        for p in pending {
            let p = p.zonk(&ctx.vars);
            if ctx.prove_pure(&p) {
                self.push_step(TraceStep::PureObligation {
                    facts: ctx.facts.clone(),
                    goal: p,
                    vars: ctx.vars.clone(),
                });
                continue;
            }
            // Heuristic instantiation for a bound on a lone unsolved evar.
            let solved = match &p {
                PureProp::Le(a, b) | PureProp::Lt(a, b) => {
                    let assign = |ctx: &mut ProofCtx, e: &Term, t: &Term| {
                        diaframe_term::unify(&mut ctx.vars, e, t).is_ok()
                    };
                    match (a, b) {
                        (Term::EVar(e), t) if ctx.vars.evar_unsolved(*e) && !t.has_evars() => {
                            assign(&mut ctx, &Term::EVar(*e), t)
                        }
                        (t, Term::EVar(e)) if ctx.vars.evar_unsolved(*e) && !t.has_evars() => {
                            let bump = if matches!(p, PureProp::Lt(..)) {
                                Term::add(t.clone(), Term::int(1))
                            } else {
                                t.clone()
                            };
                            assign(&mut ctx, &Term::EVar(*e), &bump)
                        }
                        _ => false,
                    }
                }
                _ => false,
            };
            let p = p.zonk(&ctx.vars);
            if !(solved && ctx.prove_pure(&p)) {
                let g = Goal::Done;
                return Err(self.stuck(
                    &ctx,
                    format!("postponed pure goal remains unprovable: {p:?}"),
                    &g,
                ));
            }
            self.push_step(TraceStep::PureObligation {
                facts: ctx.facts.clone(),
                goal: p,
                vars: ctx.vars.clone(),
            });
        }
        Ok(ctx)
    }

    /// Introduces a stack of unstructured hypotheses (cleaning, case 2 of
    /// §5.2 and item 1 of §3.3), then continues with `cont`.
    fn intro_hyps(&mut self, mut ctx: ProofCtx, mut pending: Vec<Assertion>, mut cont: Goal) -> Solved {
        while let Some(u) = pending.pop() {
            let u = u.zonk_owned(&ctx.vars);
            match u {
                Assertion::Pure(p) => {
                    if p == PureProp::True {
                        continue;
                    }
                    // Decompose injective-constructor equations
                    // (`#b = #false` becomes `b = false`), enabling the
                    // substitution-based cleaning below.
                    if let Some(parts) = decompose_ctor_eq(&p) {
                        pending.extend(parts.into_iter().map(Assertion::pure));
                        continue;
                    }
                    self.push_step(TraceStep::Fact { prop: p.clone() });
                    if p == PureProp::False {
                        self.push_step(TraceStep::Contradiction {
                            rule: "false-hypothesis".into(),
                        });
                        return Ok(ctx);
                    }
                    // Cleaning: eliminate ⌜x = t⌝ by substitution.
                    if let Some((v, t)) = as_var_equation(&ctx, &p) {
                        ctx.substitute_var(v, &t);
                        let s = Subst::single(v, t);
                        for q in &mut pending {
                            *q = q.subst(&s);
                        }
                        cont = cont.subst(&s);
                        // The substitution may have made Γ contradictory
                        // (e.g. `z := 0` under the fact `0 < z`).
                        if ctx.inconsistent() {
                            self.push_step(TraceStep::Contradiction {
                                rule: "pure-inconsistency".into(),
                            });
                            return Ok(ctx);
                        }
                        continue;
                    }
                    ctx.add_fact(p);
                    if ctx.inconsistent() {
                        self.push_step(TraceStep::Contradiction {
                            rule: "pure-inconsistency".into(),
                        });
                        return Ok(ctx);
                    }
                }
                Assertion::Sep(l, r) => {
                    pending.push(*r);
                    pending.push(*l);
                }
                Assertion::Exists(b, body) => {
                    ctx.vars.push_level();
                    let sort = ctx.vars.var_sort(b.var);
                    let name = ctx.vars.var_name(b.var).to_owned();
                    let v = ctx.vars.fresh_var(sort, &name);
                    self.push_step(TraceStep::IntroVar { name });
                    pending.push(body.subst(&Subst::single(b.var, Term::var(v))));
                }
                Assertion::Or(l, r) => {
                    self.push_step(TraceStep::CaseSplit {
                        on: "hypothesis disjunction".into(),
                        branches: 2,
                    });
                    let ctx2 = ctx.clone();
                    let mut pending2 = pending.clone();
                    let cont2 = cont.clone();
                    pending.push(*l);
                    pending2.push(*r);
                    // Both branches must complete the remaining proof;
                    // branch 1 may run speculatively.
                    return self.split_branches(ctx, pending, cont, ctx2, pending2, cont2);
                }
                Assertion::Later(inner) => {
                    let stripped = inner.strip_later(&ctx.preds);
                    match stripped {
                        Assertion::Later(core) => {
                            // Not timeless: keep the later as a hypothesis.
                            let a = Assertion::Later(core);
                            self.push_step(TraceStep::IntroHyp {
                                hyp: format!("{a:?}"),
                            });
                            ctx.add_hyp(a, false);
                        }
                        other => pending.push(other),
                    }
                }
                Assertion::Atom(a) => {
                    if let Some(done) = self.add_atom_hyp(&mut ctx, a, &mut pending) {
                        return done.map(|()| ctx);
                    }
                }
                other @ (Assertion::Wand(..)
                | Assertion::Forall(..)
                | Assertion::BUpd(_)
                | Assertion::FUpd(..)) => {
                    self.push_step(TraceStep::IntroHyp {
                        hyp: "wand/quantified hypothesis".into(),
                    });
                    ctx.add_hyp(other, false);
                }
            }
        }
        self.solve(ctx, cont)
    }

    /// Adds an atom hypothesis with merging and contradiction detection.
    /// Returns `Some(Ok(()))` when the context became contradictory (the
    /// goal is vacuously discharged).
    fn add_atom_hyp(
        &mut self,
        ctx: &mut ProofCtx,
        atom: Atom,
        pending: &mut Vec<Assertion>,
    ) -> Option<Result<(), Box<Stuck>>> {
        let atom = atom.zonk_owned(&ctx.vars);
        match &atom {
            Atom::Ghost(g) => {
                if let Some(lib) = self.registry.library_for(g.kind) {
                    for f in lib.implied_facts(g) {
                        pending.push(Assertion::pure(f));
                    }
                    // Interaction rules against existing atoms with the
                    // same ghost name.
                    for i in 0..ctx.delta.len() {
                        let existing = ctx.delta[i].assertion.clone();
                        let Assertion::Atom(Atom::Ghost(h)) = &existing else {
                            continue;
                        };
                        if h.gname.zonk(&ctx.vars) != g.gname.zonk(&ctx.vars) {
                            continue;
                        }
                        if !lib.kinds().contains(&h.kind) {
                            continue;
                        }
                        match lib.merge(&mut ctx.vars, h, g) {
                            Some(MergeOutcome::Contradiction { rule }) => {
                                self.push_step(TraceStep::Contradiction {
                                    rule: rule.to_owned(),
                                });
                                return Some(Ok(()));
                            }
                            Some(MergeOutcome::Merged { rule, atom, facts }) => {
                                self.push_step(TraceStep::IntroHyp {
                                    hyp: format!("merged by {rule}"),
                                });
                                ctx.delta[i].assertion = Assertion::Atom(Atom::Ghost(atom));
                                for f in facts {
                                    pending.push(Assertion::pure(f));
                                }
                                return None;
                            }
                            Some(MergeOutcome::Facts { rule: _, facts }) => {
                                for f in facts {
                                    pending.push(Assertion::pure(f));
                                }
                            }
                            None => {}
                        }
                    }
                    let persistent = lib.is_persistent(g);
                    // Persistent derived copies (e.g. monotone snapshots).
                    for d in lib.derived(g) {
                        let a = Assertion::Atom(Atom::Ghost(d));
                        if !ctx.delta.iter().any(|h| h.assertion == a) {
                            ctx.add_hyp(a, true);
                        }
                    }
                    self.push_step(TraceStep::IntroHyp {
                        hyp: g.kind.name.to_owned(),
                    });
                    ctx.add_hyp(Assertion::Atom(atom), persistent);
                    return None;
                }
                self.push_step(TraceStep::IntroHyp {
                    hyp: g.kind.name.to_owned(),
                });
                ctx.add_hyp(Assertion::Atom(atom), false);
                None
            }
            Atom::PointsTo { loc, frac, val } => {
                // Merge fractions on the same location.
                for i in 0..ctx.delta.len() {
                    let Assertion::Atom(Atom::PointsTo {
                        loc: l2,
                        frac: q2,
                        val: v2,
                    }) = &ctx.delta[i].assertion
                    else {
                        continue;
                    };
                    if l2.zonk(&ctx.vars) != loc.zonk(&ctx.vars) {
                        continue;
                    }
                    let sum = Term::add(frac.clone(), q2.clone());
                    pending.push(Assertion::pure(PureProp::le(sum.clone(), Term::qp_one())));
                    pending.push(Assertion::pure(PureProp::eq(val.clone(), v2.clone())));
                    let merged = Atom::PointsTo {
                        loc: loc.clone(),
                        frac: sum,
                        val: v2.clone(),
                    };
                    self.push_step(TraceStep::IntroHyp {
                        hyp: "points-to merged".into(),
                    });
                    ctx.delta[i].assertion = Assertion::Atom(merged);
                    return None;
                }
                self.push_step(TraceStep::IntroHyp { hyp: "↦".into() });
                ctx.add_hyp(Assertion::Atom(atom), false);
                None
            }
            Atom::PredApp { pred, args } if ctx.preds.info(*pred).fractional && args.len() == 1 => {
                for i in 0..ctx.delta.len() {
                    let Assertion::Atom(Atom::PredApp { pred: p2, args: a2 }) =
                        &ctx.delta[i].assertion
                    else {
                        continue;
                    };
                    if p2 != pred || a2.len() != 1 {
                        continue;
                    }
                    let sum = Term::add(args[0].clone(), a2[0].clone());
                    let merged = Atom::PredApp {
                        pred: *pred,
                        args: vec![sum],
                    };
                    self.push_step(TraceStep::IntroHyp {
                        hyp: "fractional predicate merged".into(),
                    });
                    ctx.delta[i].assertion = Assertion::Atom(merged);
                    return None;
                }
                ctx.add_hyp(Assertion::Atom(atom), false);
                None
            }
            Atom::Invariant { .. } => {
                // Duplicable: drop exact duplicates.
                let dup = ctx
                    .delta
                    .iter()
                    .any(|h| h.assertion == Assertion::Atom(atom.clone()));
                if !dup {
                    self.push_step(TraceStep::IntroHyp { hyp: "inv".into() });
                    ctx.add_hyp(Assertion::Atom(atom), true);
                }
                None
            }
            _ => {
                self.push_step(TraceStep::IntroHyp {
                    hyp: "atom".into(),
                });
                ctx.add_hyp(Assertion::Atom(atom), false);
                None
            }
        }
    }

    /// Case 4a: reconcile masks, closing invariants as needed.
    fn mask_sync(&mut self, mut ctx: ProofCtx, from: MaskT, to: MaskT, cont: Goal) -> Solved {
        if ctx.masks.unify(&from, &to) {
            return self.solve(ctx, cont);
        }
        let (Some(f), Some(t)) = (from.resolve(&ctx.masks), to.resolve(&ctx.masks)) else {
            return Err(self.stuck(&ctx, "cannot reconcile undetermined masks", &cont));
        };
        // Invariants to close: those removed in `from` but present in `to`.
        let to_close: Vec<Namespace> = f.removed().filter(|n| t.contains(n)).cloned().collect();
        if to_close.is_empty() || f.removed().any(|n| !t.contains(n) && !f.contains(n)) {
            return Err(self.stuck(
                &ctx,
                format!("cannot reconcile masks {f} and {t}"),
                &cont,
            ));
        }
        let ns = to_close[0].clone();
        let mid = MaskT::EVar(ctx.masks.fresh());
        let goal = Goal::SynFupd {
            from: MaskT::Concrete(f),
            to: mid.clone(),
            exists: Vec::new(),
            lhs: Assertion::atom(Atom::CloseInv { ns }),
            cont: Box::new(Goal::MaskSync {
                from: mid,
                to,
                cont: Box::new(cont),
            }),
        };
        self.solve(ctx, goal)
    }

    /// Case 5: the synthetic fupd goal.
    fn syn_fupd(
        &mut self,
        mut ctx: ProofCtx,
        from: MaskT,
        to: MaskT,
        mut exists: Vec<Binder>,
        lhs: Assertion,
        cont: Goal,
    ) -> Solved {
        let Some(from_mask) = from.resolve(&ctx.masks) else {
            // An unconstrained source: unify with the target and continue.
            if ctx.masks.unify(&from, &to) {
                return self.syn_fupd(ctx, to.clone(), to, exists, lhs, cont);
            }
            return Err(self.stuck(&ctx, "unresolved source mask", &cont));
        };
        // Normalisation: a determined target is replaced by a fresh evar
        // plus a MaskSync, so atom hints can always unify the target and
        // invariants opened along the way are closed by the sync.
        if let Some(concrete) = to.resolve(&ctx.masks) {
            let fresh = MaskT::EVar(ctx.masks.fresh());
            return self.syn_fupd_inner(
                ctx,
                from_mask,
                fresh.clone(),
                exists,
                lhs,
                Goal::MaskSync {
                    from: fresh,
                    to: MaskT::Concrete(concrete),
                    cont: Box::new(cont),
                },
            );
        }
        let _ = &mut exists;
        self.syn_fupd_inner(ctx, from_mask, to, exists, lhs, cont)
    }

    #[allow(clippy::too_many_lines)]
    fn syn_fupd_inner(
        &mut self,
        mut ctx: ProofCtx,
        from: Mask,
        to: MaskT,
        mut exists: Vec<Binder>,
        lhs: Assertion,
        cont: Goal,
    ) -> Solved {
        let lhs = lhs.zonk_owned(&ctx.vars);
        match lhs {
            // 5a: pure goals.
            Assertion::Pure(p) => {
                // Remaining binders become evars (they may be determined by
                // solving the pure goal, e.g. ⌜?b = true⌝).
                let s = Self::evarify(&mut ctx, &exists);
                let p = p.subst(&s).zonk(&ctx.vars);
                let cont = cont.subst(&s);
                // Try to prove (equations may instantiate evars); a goal
                // whose evars remain undetermined is *postponed* and
                // re-proved once instantiation happens (delayed
                // instantiation, §3.2).
                if !ctx.prove_pure(&p) && p.zonk(&ctx.vars).has_evars() {
                    ctx.pending_pure.push(p);
                    if !ctx.masks.unify(&to, &MaskT::Concrete(from.clone())) {
                        return Err(self.stuck(&ctx, "mask mismatch at pure goal", &cont));
                    }
                    return self.solve(ctx, cont);
                }
                if !ctx.prove_pure(&p) {
                    // Tactic fallback: a manual case split may decide it.
                    if let Some((name, prop)) = self.try_case_tactic(&ctx) {
                        return self.case_split_tactic(
                            ctx,
                            name,
                            prop,
                            Goal::SynFupd {
                                from: MaskT::Concrete(from),
                                to,
                                exists: Vec::new(),
                                lhs: Assertion::Pure(p),
                                cont: Box::new(cont),
                            },
                        );
                    }
                    let goal = Goal::SynFupd {
                        from: MaskT::Concrete(from),
                        to,
                        exists: Vec::new(),
                        lhs: Assertion::Pure(p.clone()),
                        cont: Box::new(cont),
                    };
                    return Err(self.stuck(
                        &ctx,
                        format!("cannot prove pure goal {p:?}"),
                        &goal,
                    ));
                }
                self.push_step(TraceStep::PureObligation {
                    facts: ctx.facts.clone(),
                    goal: p,
                    vars: ctx.vars.clone(),
                });
                if !ctx.masks.unify(&to, &MaskT::Concrete(from.clone())) {
                    return Err(self.stuck(&ctx, "mask mismatch at pure goal", &cont));
                }
                self.solve(ctx, cont)
            }
            // 5b: split separating conjunctions left-to-right — but defer
            // pure conjuncts that mention a still-undetermined binder
            // until after the atoms (which determine the binder), so the
            // annotation's conjunct order does not matter for
            // `⌜2 ≤ m⌝ ∗ lb γ m`-style goals.
            Assertion::Sep(..) => {
                let lhs_owned = lhs;
                let mut conjuncts: Vec<Assertion> =
                    lhs_owned.sep_conjuncts().into_iter().cloned().collect();
                if !exists.is_empty() {
                    let binder_vars: Vec<_> = exists.iter().map(|b| b.var).collect();
                    let (deferred, front): (Vec<Assertion>, Vec<Assertion>) =
                        conjuncts.into_iter().partition(|c| {
                            // Equations *determine* binders (the solver
                            // instantiates them by unification), so only
                            // non-equational constraints are deferred.
                            matches!(c, Assertion::Pure(p) if !matches!(p, PureProp::Eq(..)))
                                && c.free_vars().iter().any(|v| binder_vars.contains(v))
                        });
                    conjuncts = front;
                    conjuncts.extend(deferred);
                }
                let first = conjuncts.remove(0);
                let rest_lhs = Assertion::sep_list(conjuncts);
                let l_vars = first.free_vars();
                let (l_binders, rest): (Vec<Binder>, Vec<Binder>) =
                    exists.into_iter().partition(|b| l_vars.contains(&b.var));
                let mid = MaskT::EVar(ctx.masks.fresh());
                let goal = Goal::SynFupd {
                    from: MaskT::Concrete(from),
                    to: mid.clone(),
                    exists: l_binders,
                    lhs: first,
                    cont: Box::new(Goal::SynFupd {
                        from: mid,
                        to,
                        exists: rest,
                        lhs: rest_lhs,
                        cont: Box::new(cont),
                    }),
                };
                self.solve(ctx, goal)
            }
            // 5c: hoist existentials.
            Assertion::Exists(b, body) => {
                exists.push(b);
                self.syn_fupd_inner(ctx, from, to, exists, *body, cont)
            }
            // Later introduction: A ⊢ ▷A.
            Assertion::Later(inner) => self.syn_fupd_inner(ctx, from, to, exists, *inner, cont),
            // §5.3: guarded disjunctions.
            Assertion::Or(l, r) => self.goal_disjunction(ctx, from, to, exists, *l, *r, cont),
            // 5d: atoms.
            Assertion::Atom(Atom::Wp { expr, mask, post }) => {
                // A wp atom (fork): prove the child's wp, threading the
                // remaining context through its continuation.
                if !ctx.masks.unify(&to, &MaskT::Concrete(from.clone())) {
                    return Err(self.stuck(&ctx, "mask mismatch at wp side condition", &cont));
                }
                if !from.is_top() {
                    return Err(self.stuck(
                        &ctx,
                        "fork while an invariant is open",
                        &cont,
                    ));
                }
                self.solve(
                    ctx,
                    Goal::Wp {
                        expr,
                        mask,
                        post,
                        then: Box::new(cont),
                    },
                )
            }
            Assertion::Atom(atom) => self.atom_goal(ctx, from, to, exists, atom, cont),
            other => {
                let goal = Goal::SynFupd {
                    from: MaskT::Concrete(from),
                    to,
                    exists,
                    lhs: other,
                    cont: Box::new(cont),
                };
                Err(self.stuck(&ctx, "left-goal outside the grammar", &goal))
            }
        }
    }

    /// Converts binder placeholders to evars (delayed instantiation: only
    /// at the point of atom selection / pure solving). Binder placeholders
    /// occur only in the goal, so the caller applies the returned
    /// substitution to the relevant goal parts.
    fn evarify(ctx: &mut ProofCtx, binders: &[Binder]) -> Subst {
        let mut s = Subst::new();
        for b in binders {
            let sort = ctx.vars.var_sort(b.var);
            let e = ctx.vars.fresh_evar(sort);
            s.insert(b.var, Term::evar(e));
        }
        s
    }

    /// Case 5d for a proper atom: select it, push a hint scope, convert its
    /// existential outputs to evars, and search for a bi-abduction hint.
    fn atom_goal(
        &mut self,
        mut ctx: ProofCtx,
        from: Mask,
        to: MaskT,
        exists: Vec<Binder>,
        atom: Atom,
        cont: Goal,
    ) -> Solved {
        // Push the hint scope: output evars live here and may capture
        // variables the hint introduces (invariant-body existentials,
        // freshly allocated ghost names) but *older* evars may not (§3.2).
        ctx.vars.push_level();
        let mut s = Subst::new();
        for b in &exists {
            let sort = ctx.vars.var_sort(b.var);
            let e = ctx.vars.fresh_evar(sort);
            s.insert(b.var, Term::evar(e));
        }
        let atom = atom.subst(&s);
        let cont = cont.subst(&s);
        match find_hint(&mut ctx, self.registry, self.opts, &atom, &from) {
            Some(found) => {
                if let Some(ns) = &found.opened {
                    self.push_step(TraceStep::InvOpened { ns: ns.clone() });
                }
                if let Some(ns) = &found.closed {
                    self.push_step(TraceStep::InvClosed { ns: ns.clone() });
                }
                self.push_step(TraceStep::HintApplied {
                    rules: found.rules.clone(),
                    hyp: found.hyp_idx.map(|i| ctx.delta[i].name.clone()),
                    custom: found.custom,
                });
                if let Some(i) = found.hyp_idx {
                    if found.consume {
                        ctx.remove_hyp(i);
                    }
                }
                let mut pending: Vec<Assertion> =
                    found.learned.into_iter().map(Assertion::pure).collect();
                match found.mask_to {
                    Some(target) => {
                        // A mask-changing hint (invariant opening / closing
                        // wand): the goal's target mask becomes the hint's,
                        // and the side condition is proved at the source
                        // mask.
                        if !ctx.masks.unify(&to, &MaskT::Concrete(target)) {
                            return Err(self.stuck(&ctx, "hint target mask mismatch", &cont));
                        }
                        if found.side.is_emp() {
                            pending.push(found.residue);
                            self.intro_hyps(ctx, pending, cont)
                        } else {
                            let side_goal = Goal::SynFupd {
                                from: MaskT::Concrete(from.clone()),
                                to: MaskT::Concrete(from),
                                exists: Vec::new(),
                                lhs: found.side,
                                cont: Box::new(Goal::WandIntro(
                                    Assertion::sep_list(
                                        pending.into_iter().chain([found.residue]),
                                    ),
                                    Box::new(cont),
                                )),
                            };
                            self.solve(ctx, side_goal)
                        }
                    }
                    None => {
                        // A base hint: the side condition's own invariant
                        // openings flow into the continuation's mask (the
                        // update composes), so the chain target is left to
                        // the side-goal.
                        if found.side.is_emp() {
                            if !ctx.masks.unify(&to, &MaskT::Concrete(from)) {
                                return Err(self.stuck(
                                    &ctx,
                                    "hint target mask mismatch",
                                    &cont,
                                ));
                            }
                            pending.push(found.residue);
                            self.intro_hyps(ctx, pending, cont)
                        } else {
                            let side_goal = Goal::SynFupd {
                                from: MaskT::Concrete(from),
                                to,
                                exists: Vec::new(),
                                lhs: found.side,
                                cont: Box::new(Goal::WandIntro(
                                    Assertion::sep_list(
                                        pending.into_iter().chain([found.residue]),
                                    ),
                                    Box::new(cont),
                                )),
                            };
                            self.solve(ctx, side_goal)
                        }
                    }
                }
            }
            None => {
                // Tactic fallback: unfolding a recursive predicate, or a
                // manual case split.
                if let Some((name, idx, replacement)) = self.try_unfold_tactic(&mut ctx) {
                    self.push_step(TraceStep::TacticUsed { name: name.clone() });
                    self.push_step(TraceStep::HintApplied {
                        rules: vec![name],
                        hyp: Some(ctx.delta[idx].name.clone()),
                        custom: true,
                    });
                    ctx.remove_hyp(idx);
                    let goal = Goal::SynFupd {
                        from: MaskT::Concrete(from),
                        to,
                        exists: Vec::new(),
                        lhs: Assertion::Atom(atom),
                        cont: Box::new(cont),
                    };
                    return self.intro_hyps(ctx, vec![replacement], goal);
                }
                if let Some((name, prop)) = self.try_case_tactic(&ctx) {
                    let goal = Goal::SynFupd {
                        from: MaskT::Concrete(from),
                        to,
                        exists: Vec::new(),
                        lhs: Assertion::Atom(atom),
                        cont: Box::new(cont),
                    };
                    return self.case_split_tactic(ctx, name, prop, goal);
                }
                let atom = atom.zonk_owned(&ctx.vars);
                let head = crate::index::goal_head(&atom, &ctx.preds);
                let goal = Goal::SynFupd {
                    from: MaskT::Concrete(from),
                    to,
                    exists: Vec::new(),
                    lhs: Assertion::Atom(atom),
                    cont: Box::new(cont),
                };
                let mut stuck = self.stuck(&ctx, "no bi-abduction hint applies", &goal);
                stuck.unmatched_head = Some(head);
                Err(stuck)
            }
        }
    }

    /// §5.3: guarded goal disjunctions.
    #[allow(clippy::too_many_arguments)]
    fn goal_disjunction(
        &mut self,
        mut ctx: ProofCtx,
        from: Mask,
        to: MaskT,
        exists: Vec<Binder>,
        l: Assertion,
        r: Assertion,
        cont: Goal,
    ) -> Solved {
        fn refuted(this: &mut Engine, ctx: &mut ProofCtx, side: &Assertion) -> bool {
            // A nested disjunction is refuted when both disjuncts are.
            if let Assertion::Or(a, b) = strip_wrappers(side) {
                return refuted(this, ctx, a) && refuted(this, ctx, b);
            }
            match guard_of(side) {
                Some(g) => {
                    let neg = g.negated();
                    if ctx.prove_pure_frozen(&neg) {
                        this.push_step(TraceStep::PureObligation {
                            facts: ctx.facts.clone(),
                            goal: neg,
                            vars: ctx.vars.clone(),
                        });
                        true
                    } else {
                        false
                    }
                }
                None => false,
            }
        }
        if refuted(self, &mut ctx, &l) {
            self.push_step(TraceStep::DisjunctChosen {
                side: "right",
                reason: "left guard refuted",
            });
            return self.syn_fupd_inner(ctx, from, to, exists, r, cont);
        }
        if refuted(self, &mut ctx, &r) {
            self.push_step(TraceStep::DisjunctChosen {
                side: "left",
                reason: "right guard refuted",
            });
            return self.syn_fupd_inner(ctx, from, to, exists, l, cont);
        }
        // Tactics: explicit disjunct choice.
        if let Some(t) = self.try_choose_tactic() {
            let (side, a) = match t {
                Tactic::ChooseLeft => ("left", l),
                Tactic::ChooseRight => ("right", r),
                Tactic::CasePure { .. } | Tactic::UnfoldHyp { .. } => {
                    unreachable!("filtered by try_choose_tactic")
                }
            };
            self.push_step(TraceStep::TacticUsed {
                name: format!("choose {side}"),
            });
            return self.syn_fupd_inner(ctx, from, to, exists, a, cont);
        }
        // A manual case split may decide the guards.
        if let Some((name, prop)) = self.try_case_tactic(&ctx) {
            let goal = Goal::SynFupd {
                from: MaskT::Concrete(from),
                to,
                exists,
                lhs: Assertion::or(l, r),
                cont: Box::new(cont),
            };
            return self.case_split_tactic(ctx, name, prop, goal);
        }
        // Opt-in backtracking.
        if self.opts.backtrack_disjunctions {
            let ctx2 = ctx.clone();
            let saved_trace = self.trace.clone();
            let saved_fuel = self.fuel;
            match self.syn_fupd_inner(
                ctx,
                from.clone(),
                to.clone(),
                exists.clone(),
                l,
                cont.clone(),
            ) {
                Ok(out) => {
                    self.push_step(TraceStep::DisjunctChosen {
                        side: "left",
                        reason: "backtracking",
                    });
                    return Ok(out);
                }
                Err(_) => {
                    crate::telemetry::backtracked((self.trace.len() - saved_trace.len()) as u64);
                    self.trace = saved_trace;
                    self.fuel = saved_fuel.saturating_sub(1);
                    self.push_step(TraceStep::DisjunctChosen {
                        side: "right",
                        reason: "backtracking",
                    });
                    return self.syn_fupd_inner(ctx2, from, to, exists, r, cont);
                }
            }
        }
        let goal = Goal::SynFupd {
            from: MaskT::Concrete(from),
            to,
            exists,
            lhs: Assertion::or(l, r),
            cont: Box::new(cont),
        };
        Err(self.stuck(&ctx, "cannot decide goal disjunction", &goal))
    }

    /// The strictly serial two-branch order (the historical behavior,
    /// and the fallback whenever no speculation permit is available):
    /// branch 0, then branch 1, each bracketed by its `BranchStart`/
    /// `BranchEnd` steps. The caller has already pushed the `CaseSplit`.
    fn split_serial(
        &mut self,
        ctx0: ProofCtx,
        pending0: Vec<Assertion>,
        cont0: Goal,
        ctx1: ProofCtx,
        pending1: Vec<Assertion>,
        cont1: Goal,
    ) -> Solved {
        self.push_step(TraceStep::BranchStart { index: 0 });
        {
            let mut sp = crate::profile::span(crate::profile::SpanKind::Branch);
            sp.set_label("0");
            self.intro_hyps(ctx0, pending0, cont0)?;
        }
        self.push_step(TraceStep::BranchEnd { index: 0 });
        self.push_step(TraceStep::BranchStart { index: 1 });
        let out = {
            let mut sp = crate::profile::span(crate::profile::SpanKind::Branch);
            sp.set_label("1");
            self.intro_hyps(ctx1, pending1, cont1)?
        };
        self.push_step(TraceStep::BranchEnd { index: 1 });
        Ok(out)
    }

    /// Solves both branches of a 2-way case split whose `CaseSplit` step
    /// the caller has already pushed: branch 0 inline, branch 1 either
    /// serially after it or — when the speculation budget grants a
    /// permit (see [`crate::speculate`]) — concurrently on a worker
    /// thread.
    ///
    /// # Determinism
    ///
    /// The emitted trace is byte-identical to the serial search
    /// regardless of scheduling. The worker searches branch 1 from a
    /// detached snapshot of the split state (context fork, cloned tactic
    /// state, fresh interner scope, private telemetry session); its
    /// result is accepted only when it is provably what the serial
    /// search would have produced:
    ///
    /// * the worker finished its branch without getting stuck,
    ///   cancelled, or panicking, **and**
    /// * branch 0 left the tactic consumption state untouched (the
    ///   worker started from the state *at the split*; serial branch 1
    ///   would start from the state *after branch 0*), **and**
    /// * the worker consumed no more fuel than remained after branch 0
    ///   (otherwise the serial branch 1 could have run out of fuel
    ///   mid-search and produced a different outcome).
    ///
    /// On acceptance the worker's steps are spliced into the trace and
    /// its fuel/tactic/telemetry state adopted — exactly the serial
    /// outcome, minus the wall-clock. On any other outcome branch 1
    /// reruns serially from the kept originals (a deterministic worker
    /// panic thereby reproduces inline with exact serial semantics and
    /// payload). Outcomes never depend on thread scheduling; only wall
    /// time and the `spec_*` telemetry counters do.
    #[allow(clippy::too_many_arguments)]
    fn split_branches(
        &mut self,
        ctx0: ProofCtx,
        pending0: Vec<Assertion>,
        cont0: Goal,
        ctx1: ProofCtx,
        pending1: Vec<Assertion>,
        cont1: Goal,
    ) -> Solved {
        let Some(permit) = crate::speculate::try_acquire() else {
            return self.split_serial(ctx0, pending0, cont0, ctx1, pending1, cont1);
        };
        crate::telemetry::spec_spawned();
        let fuel_at_split = self.fuel;
        let used_at_split = self.tactic_used.clone();
        let fires_at_split = self.tactic_fires.clone();
        let cancel = Arc::new(AtomicBool::new(false));
        let worker_session = crate::telemetry::TelemetrySession::new("speculate");
        let (registry, specs, opts) = (self.registry, self.specs, self.opts);
        let w_ctx = ctx1.fork_detached();
        let w_pending = pending1.clone();
        let w_cont = cont1.clone();
        let w_cancel = Arc::clone(&cancel);
        let w_session = worker_session.clone();
        let w_used = used_at_split.clone();
        let w_fires = fires_at_split.clone();
        let w_prof = crate::profile::current();
        let w_prof_parent = crate::profile::current_span_id();
        // If branch 0 *panics* (unwinds out of the scope closure), the
        // spawn must still be resolved as cancelled so the session's
        // `spec_spawned == spec_won + spec_cancelled` identity holds
        // even when a harness contains the panic and snapshots the
        // counters afterwards — and the worker's probes must land in
        // `spec_wasted_probes` or the profiler's probe-batch rollup
        // would drift from the flat ledger. This guard sits *outside*
        // the scope, so by the time it drops the scope's implicit join
        // has completed and the worker session counters are final.
        struct ResolveOnUnwind<'s> {
            armed: bool,
            session: &'s crate::telemetry::TelemetrySession,
        }
        impl Drop for ResolveOnUnwind<'_> {
            fn drop(&mut self) {
                if self.armed {
                    crate::telemetry::spec_cancelled();
                    crate::telemetry::spec_wasted(self.session.snapshot().probes_attempted);
                    crate::profile::mark(crate::profile::SpanKind::Speculate, "cancel");
                }
            }
        }
        let mut resolve_guard = ResolveOnUnwind {
            armed: true,
            session: &worker_session,
        };
        let result = std::thread::scope(|scope| {
            let handle = std::thread::Builder::new()
                .name("diaframe-speculate".to_owned())
                .stack_size(crate::verify::session_stack_bytes())
                .spawn_scoped(scope, move || {
                    let _permit = permit; // unit freed when the worker exits
                    let _guard = w_session.install();
                    let _prof_guard = w_prof
                        .as_ref()
                        .map(|p| p.install_with_parent(w_prof_parent));
                    let mut prof_span =
                        crate::profile::span(crate::profile::SpanKind::Speculate);
                    prof_span.set_label("branch-1");
                    let intern_scope = diaframe_term::intern::scope();
                    let mut sub = Engine {
                        registry,
                        specs,
                        opts,
                        trace: ProofTrace::new(),
                        tactic_used: w_used,
                        tactic_fires: w_fires,
                        fuel: fuel_at_split,
                        cancel: Some(w_cancel),
                        step_sink: None,
                    };
                    let result = sub.intro_hyps(w_ctx, w_pending, w_cont);
                    crate::telemetry::intern_stats(diaframe_term::intern::stats());
                    crate::telemetry::egraph_stats(diaframe_term::intern::egraph_stats());
                    drop(intern_scope);
                    (result, sub.trace, sub.tactic_used, sub.tactic_fires, sub.fuel)
                })
                .expect("spawn speculative branch worker");
            // If branch 0 *panics* (unwinds out of this closure), cancel
            // the worker before the scope's implicit join so the panic
            // is not stalled behind a doomed search; nested speculation
            // inside the worker unwinds the same way, recursively. The
            // counter bookkeeping for that path lives in the outer
            // `ResolveOnUnwind` guard, which fires only after the join.
            struct CancelOnUnwind<'c>(&'c AtomicBool);
            impl Drop for CancelOnUnwind<'_> {
                fn drop(&mut self) {
                    self.0.store(true, Ordering::Relaxed);
                }
            }
            let unwind_guard = CancelOnUnwind(&cancel);
            self.push_step(TraceStep::BranchStart { index: 0 });
            let r0 = {
                let mut sp = crate::profile::span(crate::profile::SpanKind::Branch);
                sp.set_label("0");
                self.intro_hyps(ctx0, pending0, cont0)
            };
            std::mem::forget(unwind_guard);
            if r0.is_err() {
                // Branch 0 failed: whatever the worker finds is moot —
                // the serial search would have stopped here too.
                cancel.store(true, Ordering::Relaxed);
            }
            // Always reap the worker before deciding anything: fuel
            // bounds its search, so the join cannot hang.
            let joined = handle.join();
            if let Err(mut e) = r0 {
                crate::telemetry::spec_cancelled();
                crate::telemetry::spec_wasted(worker_session.snapshot().probes_attempted);
                crate::profile::mark(crate::profile::SpanKind::Speculate, "cancel");
                // The stuck report snapshotted the counters at its
                // construction site, *inside* branch 0 — before this
                // spawn was resolved. Refresh it so the diagnostics a
                // caller renders satisfy the counter identities.
                e.diag = crate::telemetry::stuck_diag();
                return Err(e);
            }
            self.push_step(TraceStep::BranchEnd { index: 0 });
            let fuel_after_b0 = self.fuel;
            if let Ok((w_result, w_trace, w_used, w_fires, w_fuel)) = joined {
                let consumed = fuel_at_split - w_fuel;
                if let Ok(out) = w_result {
                    if self.tactic_used == used_at_split
                        && self.tactic_fires == fires_at_split
                        && consumed <= fuel_after_b0
                    {
                        crate::telemetry::spec_won();
                        crate::profile::mark(crate::profile::SpanKind::Speculate, "win");
                        if let Some(session) = crate::telemetry::current() {
                            session.absorb(&worker_session);
                        }
                        self.push_step(TraceStep::BranchStart { index: 1 });
                        for step in w_trace.into_steps() {
                            self.splice_step(step);
                        }
                        self.push_step(TraceStep::BranchEnd { index: 1 });
                        self.fuel = fuel_after_b0 - consumed;
                        self.tactic_used = w_used;
                        self.tactic_fires = w_fires;
                        return Ok(out);
                    }
                }
            }
            // Worker stuck, cancelled, panicked, or diverged from what
            // the serial accounting allows: discard it and rerun branch
            // 1 serially from the kept originals.
            crate::telemetry::spec_cancelled();
            crate::telemetry::spec_wasted(worker_session.snapshot().probes_attempted);
            crate::profile::mark(crate::profile::SpanKind::Speculate, "cancel");
            self.push_step(TraceStep::BranchStart { index: 1 });
            let out = {
                let mut sp = crate::profile::span(crate::profile::SpanKind::Branch);
                sp.set_label("1");
                self.intro_hyps(ctx1, pending1, cont1)?
            };
            self.push_step(TraceStep::BranchEnd { index: 1 });
            Ok(out)
        });
        resolve_guard.armed = false;
        result
    }

    /// Applies a user case-split tactic: prove the goal under `φ` and
    /// under `¬φ`.
    fn case_split_tactic(
        &mut self,
        ctx: ProofCtx,
        name: String,
        prop: PureProp,
        goal: Goal,
    ) -> Solved {
        self.push_step(TraceStep::TacticUsed { name: name.clone() });
        self.push_step(TraceStep::CaseSplit {
            on: name,
            branches: 2,
        });
        let ctx2 = ctx.clone();
        let goal2 = goal.clone();
        self.split_branches(
            ctx,
            vec![Assertion::pure(prop.clone())],
            goal,
            ctx2,
            vec![Assertion::pure(prop.negated())],
            goal2,
        )
    }

    // ------------------------------------------------------------------
    // Weakest preconditions (case 3).
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn wp_step(
        &mut self,
        mut ctx: ProofCtx,
        expr: Expr,
        mask: MaskT,
        post: WpPost,
        then: Goal,
    ) -> Solved {
        match decompose(&expr) {
            Decomp::Value(v) => {
                self.push_step(TraceStep::ValueReached);
                let v = resolve_val(&mut ctx, &v);
                let Some(term) = ctx.syms.val_to_term(&v) else {
                    let g = Goal::Done;
                    return Err(self.stuck(&ctx, "closure-valued result", &g));
                };
                let inner = post.at(&term);
                self.solve(
                    ctx,
                    Goal::Fupd {
                        from: mask.clone(),
                        to: mask,
                        inner,
                    },
                )
            }
            Decomp::Head(k, redex) => {
                let redex = resolve_redex(&mut ctx, redex);
                // 1. Registered function specifications (modular calls and
                //    Löb induction hypotheses).
                if let Expr::App(f, a) = &redex {
                    if let (Some(fv), Some(av)) = (f.as_val(), a.as_val()) {
                        if let Some(spec) = self.specs.lookup(fv).cloned() {
                            if let Some(arg_term) = ctx.syms.val_to_term(av) {
                                return self.symex_spec(
                                    ctx, &k, mask, post, then, &spec, arg_term,
                                );
                            }
                        }
                    }
                }
                // 2. Primitive heap operations and fork.
                if is_heap_op(&redex) {
                    return self.symex_prim(ctx, &k, mask, post, then, &redex);
                }
                // 3. Pure and symbolic steps.
                self.pure_or_symbolic_step(ctx, k, redex, mask, post, then)
            }
        }
    }

    /// A pure reduction or a symbolic case split.
    fn pure_or_symbolic_step(
        &mut self,
        mut ctx: ProofCtx,
        k: Vec<Frame>,
        redex: Expr,
        mask: MaskT,
        post: WpPost,
        then: Goal,
    ) -> Solved {
        // Symbolic `if`.
        if let Expr::If(c, t, e) = &redex {
            if let Some(Val::Sym(id)) = c.as_val() {
                let cond = ctx.syms.resolve(*id).zonk(&ctx.vars);
                let Term::App(Sym::VBool, args) = &cond else {
                    let g = Goal::Done;
                    return Err(self.stuck(&ctx, "if on a non-boolean symbolic value", &g));
                };
                let b = args[0].clone();
                let mk = |branch: &Expr| fill_ctx(&k, branch.clone());
                if ctx.prove_pure_frozen(&PureProp::eq(b.clone(), Term::bool(true))) {
                    self.push_step(TraceStep::PureStep { rule: "if-true" });
                    return self.wp_goal(ctx, mk(t), mask, post, then);
                }
                if ctx.prove_pure_frozen(&PureProp::eq(b.clone(), Term::bool(false))) {
                    self.push_step(TraceStep::PureStep { rule: "if-false" });
                    return self.wp_goal(ctx, mk(e), mask, post, then);
                }
                // Case split on the boolean.
                self.push_step(TraceStep::CaseSplit {
                    on: "symbolic if".into(),
                    branches: 2,
                });
                for h in &mut ctx.delta {
                    if let Assertion::Later(inner) = &h.assertion {
                        h.assertion = (**inner).clone();
                    }
                }
                let ctx2 = ctx.clone();
                return self.split_branches(
                    ctx,
                    vec![Assertion::pure(PureProp::eq(b.clone(), Term::bool(true)))],
                    Goal::Wp {
                        expr: mk(t),
                        mask: mask.clone(),
                        post: post.clone(),
                        then: Box::new(then.clone()),
                    },
                    ctx2,
                    vec![Assertion::pure(PureProp::eq(b, Term::bool(false)))],
                    Goal::Wp {
                        expr: mk(e),
                        mask,
                        post,
                        then: Box::new(then),
                    },
                );
            }
        }
        // Symbolic binary operations.
        if let Expr::BinOp(op, l, r) = &redex {
            if let (Some(lv), Some(rv)) = (l.as_val(), r.as_val()) {
                if matches!(lv, Val::Sym(_)) || matches!(rv, Val::Sym(_)) {
                    return self.symbolic_binop(ctx, k, *op, lv.clone(), rv.clone(), mask, post, then);
                }
            }
        }
        if let Expr::UnOp(UnOp::Neg, a) = &redex {
            if let Some(Val::Sym(id)) = a.as_val() {
                let t = ctx.syms.resolve(*id).zonk(&ctx.vars);
                if let Term::App(Sym::VInt, args) = &t {
                    let out = Term::v_int(Term::neg(args[0].clone()));
                    let v = ctx.syms.term_to_val(&ctx.vars, &out);
                    self.push_step(TraceStep::PureStep { rule: "neg-sym" });
                    return self.wp_goal(ctx, fill_ctx(&k, Expr::Val(v)), mask, post, then);
                }
            }
        }
        // Concrete head step (β, projections, literal arithmetic, …).
        let mut dummy_heap = Heap::new();
        match head_step(&redex, &mut dummy_heap) {
            Ok(res) => {
                debug_assert!(res.forked.is_none(), "fork handled as heap op");
                debug_assert!(dummy_heap.is_empty(), "heap op slipped through");
                self.push_step(TraceStep::PureStep { rule: "head-step" });
                self.wp_goal(ctx, fill_ctx(&k, res.expr), mask, post, then)
            }
            Err(e) => {
                let g = Goal::Done;
                Err(self.stuck(&ctx, format!("program is stuck: {e}"), &g))
            }
        }
    }

    /// Continues a `wp` after a program step was taken; stripping one
    /// later from every hypothesis (every pure/symbolic reduction is a
    /// real step).
    fn wp_goal(
        &mut self,
        mut ctx: ProofCtx,
        expr: Expr,
        mask: MaskT,
        post: WpPost,
        then: Goal,
    ) -> Solved {
        for h in &mut ctx.delta {
            if let Assertion::Later(inner) = &h.assertion {
                h.assertion = (**inner).clone();
            }
        }
        self.solve(
            ctx,
            Goal::Wp {
                expr,
                mask,
                post,
                then: Box::new(then),
            },
        )
    }

    /// Symbolic comparison / arithmetic on values.
    #[allow(clippy::too_many_arguments, clippy::too_many_lines)]
    fn symbolic_binop(
        &mut self,
        mut ctx: ProofCtx,
        k: Vec<Frame>,
        op: BinOp,
        l: Val,
        r: Val,
        mask: MaskT,
        post: WpPost,
        then: Goal,
    ) -> Solved {
        let stuck_goal = Goal::Done;
        let (Some(lt), Some(rt)) = (ctx.syms.val_to_term(&l), ctx.syms.val_to_term(&r)) else {
            return Err(self.stuck(&ctx, "binop on closures", &stuck_goal));
        };
        let lt = lt.zonk(&ctx.vars);
        let rt = rt.zonk(&ctx.vars);
        let as_int = |t: &Term| -> Option<Term> {
            match t {
                Term::App(Sym::VInt, args) => Some(args[0].clone()),
                _ => None,
            }
        };
        match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul => {
                let (Some(a), Some(b)) = (as_int(&lt), as_int(&rt)) else {
                    return Err(self.stuck(&ctx, "arithmetic on non-integers", &stuck_goal));
                };
                let out = match op {
                    BinOp::Add => Term::add(a, b),
                    BinOp::Sub => Term::sub(a, b),
                    _ => Term::mul(a, b),
                };
                let v = ctx.syms.term_to_val(&ctx.vars, &Term::v_int(out));
                self.push_step(TraceStep::PureStep { rule: "arith-sym" });
                self.wp_goal(ctx, fill_ctx(&k, Expr::Val(v)), mask, post, then)
            }
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                // Build the proposition the comparison decides.
                let prop = match op {
                    BinOp::Eq => {
                        if !(is_unboxed(&lt) || is_unboxed(&rt)) {
                            return Err(self.stuck(
                                &ctx,
                                "cannot establish compare-safety of symbolic equality",
                                &stuck_goal,
                            ));
                        }
                        PureProp::eq(lt, rt)
                    }
                    BinOp::Ne => {
                        if !(is_unboxed(&lt) || is_unboxed(&rt)) {
                            return Err(self.stuck(
                                &ctx,
                                "cannot establish compare-safety of symbolic equality",
                                &stuck_goal,
                            ));
                        }
                        PureProp::ne(lt, rt)
                    }
                    _ => {
                        let (Some(a), Some(b)) = (as_int(&lt), as_int(&rt)) else {
                            return Err(self.stuck(
                                &ctx,
                                "comparison on non-integers",
                                &stuck_goal,
                            ));
                        };
                        match op {
                            BinOp::Lt => PureProp::lt(a, b),
                            BinOp::Le => PureProp::le(a, b),
                            BinOp::Gt => PureProp::gt(a, b),
                            _ => PureProp::ge(a, b),
                        }
                    }
                };
                let mk = |b: bool| fill_ctx(&k, Expr::bool(b));
                if ctx.prove_pure_frozen(&prop) {
                    self.push_step(TraceStep::PureStep { rule: "cmp-true" });
                    return self.wp_goal(ctx, mk(true), mask, post, then);
                }
                if ctx.prove_pure_frozen(&prop.negated()) {
                    self.push_step(TraceStep::PureStep { rule: "cmp-false" });
                    return self.wp_goal(ctx, mk(false), mask, post, then);
                }
                self.push_step(TraceStep::CaseSplit {
                    on: "symbolic comparison".into(),
                    branches: 2,
                });
                for h in &mut ctx.delta {
                    if let Assertion::Later(inner) = &h.assertion {
                        h.assertion = (**inner).clone();
                    }
                }
                let ctx2 = ctx.clone();
                self.split_branches(
                    ctx,
                    vec![Assertion::pure(prop.clone())],
                    Goal::Wp {
                        expr: mk(true),
                        mask: mask.clone(),
                        post: post.clone(),
                        then: Box::new(then.clone()),
                    },
                    ctx2,
                    vec![Assertion::pure(prop.negated())],
                    Goal::Wp {
                        expr: mk(false),
                        mask,
                        post,
                        then: Box::new(then),
                    },
                )
            }
            _ => Err(self.stuck(
                &ctx,
                format!("symbolic binop {op} unsupported"),
                &stuck_goal,
            )),
        }
    }

    /// `sym-ex-fupd-exist` for a registered function specification.
    #[allow(clippy::too_many_arguments)]
    fn symex_spec(
        &mut self,
        mut ctx: ProofCtx,
        k: &[Frame],
        mask: MaskT,
        post: WpPost,
        then: Goal,
        spec: &crate::spec::Spec,
        arg_term: Term,
    ) -> Solved {
        self.push_step(TraceStep::SymEx {
            spec: spec.name.clone(),
            atomic: spec.atomic,
        });
        let mut s = Subst::single(spec.arg, arg_term);
        let mut binders = Vec::new();
        for b in &spec.binders {
            let sort = ctx.vars.var_sort(*b);
            let name = ctx.vars.var_name(*b).to_owned();
            let fresh = ctx.vars.fresh_var(sort, &name);
            s.insert(*b, Term::var(fresh));
            binders.push(Binder::new(fresh));
        }
        let w = ctx.vars.fresh_var(Sort::Val, "w");
        let pre = spec.pre.subst(&s);
        s.insert(spec.ret, Term::var(w));
        let spec_post = spec.post.subst(&s);
        self.symex(ctx, k, mask, post, then, binders, pre, w, spec_post, spec.atomic)
    }

    /// Builds and solves the `sym-ex-fupd-exist` goal.
    #[allow(clippy::too_many_arguments)]
    fn symex(
        &mut self,
        mut ctx: ProofCtx,
        k: &[Frame],
        mask: MaskT,
        post: WpPost,
        then: Goal,
        binders: Vec<Binder>,
        pre: Assertion,
        w: VarId,
        spec_post: Assertion,
        atomic: bool,
    ) -> Solved {
        let Some(cur) = mask.resolve(&ctx.masks) else {
            let g = Goal::Done;
            return Err(self.stuck(&ctx, "wp mask unresolved", &g));
        };
        ctx.vars.push_level();
        let wval = ctx.syms.term_to_val(&ctx.vars, &Term::var(w));
        let to = if atomic {
            MaskT::EVar(ctx.masks.fresh())
        } else {
            MaskT::Concrete(cur.clone())
        };
        let cont_wp = Goal::Fupd {
            from: to.clone(),
            to: mask.clone(),
            inner: Assertion::Atom(Atom::Wp {
                expr: fill_ctx(k, Expr::Val(wval)),
                mask,
                post,
            }),
        };
        // The return value `w` is already a fresh universal variable (it was
        // created after the current scope was entered and is interned in the
        // symbol table), so the `∀w` of sym-ex-fupd-exist needs no further
        // introduction step.
        self.push_step(TraceStep::IntroVar { name: "w".into() });
        let cont = Goal::wand_intro(spec_post, Goal::StripLaters(Box::new(cont_wp)));
        // `then` runs after the whole wp; splice it at the end by wrapping:
        // the wp atom inside cont_wp carries its own continuation via the
        // solve of Fupd → MaskSync → Wp { then: Done }. To keep `then`
        // we instead sequence after the inner Wp by reconstructing here.
        let cont = splice_then(cont, then);
        let goal = Goal::SynFupd {
            from: MaskT::Concrete(cur),
            to,
            exists: binders,
            lhs: pre,
            cont: Box::new(cont),
        };
        self.solve(ctx, goal)
    }

    /// `sym-ex-fupd-exist` for a primitive operation.
    fn symex_prim(
        &mut self,
        mut ctx: ProofCtx,
        k: &[Frame],
        mask: MaskT,
        post: WpPost,
        then: Goal,
        redex: &Expr,
    ) -> Solved {
        let w = ctx.vars.fresh_var(Sort::Val, "w");
        let ret = Term::var(w);
        let stuck_goal = Goal::Done;
        let term_of = |ctx: &ProofCtx, e: &Expr| -> Option<Term> {
            e.as_val().and_then(|v| ctx.syms.val_to_term(v))
        };
        let loc_of = |ctx: &ProofCtx, e: &Expr| -> Option<Term> {
            let t = term_of(ctx, e)?.zonk(&ctx.vars);
            match t {
                Term::App(Sym::VLoc, args) => Some(args[0].clone()),
                _ => None,
            }
        };
        let (name, binders, pre, spec_post): (&str, Vec<Binder>, Assertion, Assertion) =
            match redex {
                Expr::Alloc(v) => {
                    let Some(vt) = term_of(&ctx, v) else {
                        return Err(self.stuck(&ctx, "allocating a closure", &stuck_goal));
                    };
                    let l = ctx.vars.fresh_var(Sort::Loc, "l");
                    let post_a = Assertion::exists(
                        Binder::new(l),
                        Assertion::sep(
                            Assertion::pure(PureProp::eq(ret.clone(), Term::v_loc(Term::var(l)))),
                            Assertion::atom(Atom::points_to(Term::var(l), vt)),
                        ),
                    );
                    ("alloc", Vec::new(), Assertion::emp(), post_a)
                }
                Expr::Load(l) => {
                    let Some(loc) = loc_of(&ctx, l) else {
                        return self.retry_after_unfold(
                            ctx,
                            k,
                            mask,
                            post,
                            then,
                            redex,
                            "load from unknown location",
                        );
                    };
                    let q = ctx.vars.fresh_var(Sort::Qp, "q");
                    let v = ctx.vars.fresh_var(Sort::Val, "v");
                    let pt = Atom::points_to_frac(loc, Term::var(q), Term::var(v));
                    (
                        "load",
                        vec![Binder::new(q), Binder::new(v)],
                        Assertion::atom(pt.clone()),
                        Assertion::sep(
                            Assertion::pure(PureProp::eq(ret.clone(), Term::var(v))),
                            Assertion::atom(pt),
                        ),
                    )
                }
                Expr::Store(l, x) => {
                    let Some(loc) = loc_of(&ctx, l) else {
                        return Err(self.stuck(&ctx, "store to unknown location", &stuck_goal));
                    };
                    let Some(xt) = term_of(&ctx, x) else {
                        return Err(self.stuck(&ctx, "storing a closure", &stuck_goal));
                    };
                    let v = ctx.vars.fresh_var(Sort::Val, "v");
                    (
                        "store",
                        vec![Binder::new(v)],
                        Assertion::atom(Atom::points_to(loc.clone(), Term::var(v))),
                        Assertion::sep(
                            Assertion::pure(PureProp::eq(ret.clone(), Term::v_unit())),
                            Assertion::atom(Atom::points_to(loc, xt)),
                        ),
                    )
                }
                Expr::Cas(l, o, n) => {
                    let Some(loc) = loc_of(&ctx, l) else {
                        return Err(self.stuck(&ctx, "CAS on unknown location", &stuck_goal));
                    };
                    let (Some(ot), Some(nt)) = (term_of(&ctx, o), term_of(&ctx, n)) else {
                        return Err(self.stuck(&ctx, "CAS with closure operands", &stuck_goal));
                    };
                    if !is_unboxed(&ot.zonk(&ctx.vars)) {
                        return Err(self.stuck(
                            &ctx,
                            "CAS comparison value not unboxed",
                            &stuck_goal,
                        ));
                    }
                    let v = ctx.vars.fresh_var(Sort::Val, "v");
                    let success = Assertion::sep_list([
                        Assertion::pure(PureProp::eq(ret.clone(), Term::v_bool_lit(true))),
                        Assertion::pure(PureProp::eq(Term::var(v), ot.clone())),
                        Assertion::atom(Atom::points_to(loc.clone(), nt)),
                    ]);
                    let failure = Assertion::sep_list([
                        Assertion::pure(PureProp::eq(ret.clone(), Term::v_bool_lit(false))),
                        Assertion::pure(PureProp::ne(Term::var(v), ot)),
                        Assertion::atom(Atom::points_to(loc.clone(), Term::var(v))),
                    ]);
                    (
                        "cas",
                        vec![Binder::new(v)],
                        Assertion::atom(Atom::points_to(loc, Term::var(v))),
                        Assertion::or(success, failure),
                    )
                }
                Expr::Faa(l, kk) => {
                    let Some(loc) = loc_of(&ctx, l) else {
                        return Err(self.stuck(&ctx, "FAA on unknown location", &stuck_goal));
                    };
                    let kt = term_of(&ctx, kk)
                        .map(|t| t.zonk(&ctx.vars))
                        .and_then(|t| match t {
                            Term::App(Sym::VInt, args) => Some(args[0].clone()),
                            _ => None,
                        });
                    let Some(kt) = kt else {
                        return Err(self.stuck(&ctx, "FAA with non-integer increment", &stuck_goal));
                    };
                    let z = ctx.vars.fresh_var(Sort::Int, "z");
                    (
                        "faa",
                        vec![Binder::new(z)],
                        Assertion::atom(Atom::points_to(
                            loc.clone(),
                            Term::v_int(Term::var(z)),
                        )),
                        Assertion::sep_list([
                            Assertion::pure(PureProp::eq(
                                ret.clone(),
                                Term::v_int(Term::var(z)),
                            )),
                            Assertion::atom(Atom::points_to(
                                loc,
                                Term::v_int(Term::add(Term::var(z), kt)),
                            )),
                        ]),
                    )
                }
                Expr::Fork(body) => {
                    let r = ctx.vars.fresh_var(Sort::Val, "r");
                    let child = Atom::Wp {
                        expr: (**body).clone(),
                        mask: MaskT::top(),
                        post: WpPost {
                            ret: r,
                            body: Box::new(Assertion::emp()),
                        },
                    };
                    (
                        "fork",
                        Vec::new(),
                        Assertion::atom(child),
                        Assertion::pure(PureProp::eq(ret.clone(), Term::v_unit())),
                    )
                }
                other => {
                    return Err(self.stuck(
                        &ctx,
                        format!("no specification for redex {other}"),
                        &stuck_goal,
                    ))
                }
            };
        self.push_step(TraceStep::SymEx {
            spec: name.to_owned(),
            atomic: true,
        });
        self.symex(ctx, k, mask, post, then, binders, pre, w, spec_post, true)
    }
}

impl Engine<'_> {
    /// A heap operation could not determine its location: try an unfold
    /// tactic (the location may be hidden inside a recursive predicate)
    /// and retry the step once.
    #[allow(clippy::too_many_arguments)]
    fn retry_after_unfold(
        &mut self,
        mut ctx: ProofCtx,
        k: &[Frame],
        mask: MaskT,
        post: WpPost,
        then: Goal,
        redex: &Expr,
        reason: &str,
    ) -> Solved {
        if let Some((name, idx, replacement)) = self.try_unfold_tactic(&mut ctx) {
            self.push_step(TraceStep::TacticUsed { name: name.clone() });
            self.push_step(TraceStep::HintApplied {
                rules: vec![name],
                hyp: Some(ctx.delta[idx].name.clone()),
                custom: true,
            });
            ctx.remove_hyp(idx);
            let goal = Goal::Wp {
                expr: fill_ctx(k, redex.clone()),
                mask,
                post,
                then: Box::new(then),
            };
            return self.intro_hyps(ctx, vec![replacement], goal);
        }
        let g = Goal::Done;
        Err(self.stuck(&ctx, reason, &g))
    }
}

/// Whether the redex is a heap operation or fork (handled by `sym-ex`).
fn is_heap_op(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Alloc(_) | Expr::Load(_) | Expr::Store(..) | Expr::Cas(..) | Expr::Faa(..)
            | Expr::Fork(_)
    )
}

/// Whether a value term is unboxed (word-sized), so `CAS`/`=` may compare
/// it atomically.
fn is_unboxed(t: &Term) -> bool {
    matches!(
        t,
        Term::App(Sym::VInt | Sym::VBool | Sym::VLoc | Sym::VUnit, _)
    )
}

/// Resolves the immediate `Val::Sym` children of a redex to literal shapes
/// where their terms are known (e.g. after substitution turned a symbolic
/// boolean into `#true`).
fn resolve_redex(ctx: &mut ProofCtx, e: Expr) -> Expr {
    fn res(ctx: &mut ProofCtx, e: &Expr) -> Expr {
        match e.as_val() {
            Some(v) => Expr::Val(resolve_val(ctx, v)),
            None => e.clone(),
        }
    }
    match e {
        Expr::App(f, a) => Expr::app(res(ctx, &f), res(ctx, &a)),
        Expr::UnOp(op, a) => Expr::UnOp(op, Arc::new(res(ctx, &a))),
        Expr::BinOp(op, a, b) => Expr::binop(op, res(ctx, &a), res(ctx, &b)),
        Expr::If(c, t, f) => Expr::If(Arc::new(res(ctx, &c)), t, f),
        Expr::Pair(a, b) => Expr::Pair(Arc::new(res(ctx, &a)), Arc::new(res(ctx, &b))),
        Expr::Fst(a) => Expr::Fst(Arc::new(res(ctx, &a))),
        Expr::Snd(a) => Expr::Snd(Arc::new(res(ctx, &a))),
        Expr::InjL(a) => Expr::InjL(Arc::new(res(ctx, &a))),
        Expr::InjR(a) => Expr::InjR(Arc::new(res(ctx, &a))),
        Expr::Case(s, l, r) => Expr::Case(Arc::new(res(ctx, &s)), l, r),
        Expr::Alloc(a) => Expr::Alloc(Arc::new(res(ctx, &a))),
        Expr::Load(a) => Expr::Load(Arc::new(res(ctx, &a))),
        Expr::Store(a, b) => Expr::store(res(ctx, &a), res(ctx, &b)),
        Expr::Cas(a, b, c) => Expr::cas(res(ctx, &a), res(ctx, &b), res(ctx, &c)),
        Expr::Faa(a, b) => Expr::faa(res(ctx, &a), res(ctx, &b)),
        other => other,
    }
}

/// Resolves one value: a symbolic value whose term has become
/// constructor-shaped is replaced by the structured value.
fn resolve_val(ctx: &mut ProofCtx, v: &Val) -> Val {
    match v {
        Val::Sym(id) => {
            let t = ctx.syms.resolve(*id).clone();
            ctx.syms.term_to_val(&ctx.vars, &t)
        }
        Val::Pair(a, b) => Val::pair(resolve_val(ctx, a), resolve_val(ctx, b)),
        Val::InjL(a) => Val::inj_l(resolve_val(ctx, a)),
        Val::InjR(a) => Val::inj_r(resolve_val(ctx, a)),
        other => other.clone(),
    }
}

/// Strips ▷ and ∃ wrappers to expose a disjunction.
fn strip_wrappers(a: &Assertion) -> &Assertion {
    match a {
        Assertion::Later(x) | Assertion::Exists(_, x) => strip_wrappers(x),
        other => other,
    }
}

/// The pure *guard* of a disjunct (§5.3): its leading pure conjunct.
fn guard_of(a: &Assertion) -> Option<PureProp> {
    match a {
        Assertion::Pure(p) => Some(p.clone()),
        Assertion::Sep(l, _) => guard_of(l),
        Assertion::Exists(_, body) => guard_of(body),
        Assertion::Later(x) => guard_of(x),
        _ => None,
    }
}

/// Decomposes an equation between applications of the same injective value
/// constructor into argument equations; an equation between *different*
/// constructor heads becomes `False`. Returns `None` when no decomposition
/// applies.
fn decompose_ctor_eq(p: &PureProp) -> Option<Vec<PureProp>> {
    let PureProp::Eq(a, b) = p else { return None };
    let (Term::App(f, xs), Term::App(g, ys)) = (a, b) else {
        return None;
    };
    if !(f.is_value_ctor() && g.is_value_ctor()) {
        return None;
    }
    if f != g {
        return Some(vec![PureProp::False]);
    }
    Some(
        xs.iter()
            .zip(ys.iter())
            .map(|(x, y)| PureProp::eq(x.clone(), y.clone()))
            .collect(),
    )
}

/// If the fact is an equation `x = t` (or `t = x`) with `x` a variable not
/// occurring in `t`, return the substitution pair.
fn as_var_equation(ctx: &ProofCtx, p: &PureProp) -> Option<(VarId, Term)> {
    let PureProp::Eq(a, b) = p else { return None };
    let a = a.zonk(&ctx.vars);
    let b = b.zonk(&ctx.vars);
    match (&a, &b) {
        (Term::Var(v), t) if !t.mentions_var(*v) => Some((*v, t.clone())),
        (t, Term::Var(v)) if !t.mentions_var(*v) => Some((*v, t.clone())),
        _ => None,
    }
}

/// Splices `then` after the terminal `Done` reached through the wp chain
/// of a sym-ex continuation: the inner `Fupd`'s wp atom becomes a
/// `Goal::Wp` whose `then` must be the outer continuation.
fn splice_then(goal: Goal, then: Goal) -> Goal {
    if matches!(then, Goal::Done) {
        return goal;
    }
    match goal {
        Goal::Forall(b, g) => Goal::Forall(b, Box::new(splice_then(*g, then))),
        Goal::WandIntro(u, g) => Goal::WandIntro(u, Box::new(splice_then(*g, then))),
        Goal::StripLaters(g) => Goal::StripLaters(Box::new(splice_then(*g, then))),
        Goal::Fupd { from, to, inner } => match inner {
            Assertion::Atom(Atom::Wp { expr, mask, post }) => Goal::MaskSync {
                from,
                to,
                cont: Box::new(Goal::Wp {
                    expr,
                    mask,
                    post,
                    then: Box::new(then),
                }),
            },
            other => Goal::SynFupd {
                from,
                to,
                exists: Vec::new(),
                lhs: other,
                cont: Box::new(then),
            },
        },
        other => other,
    }
}

/// A one-line description of a goal for stuck reports.
fn describe_goal(goal: &Goal) -> String {
    match goal {
        Goal::Forall(..) => "∀ …".into(),
        Goal::WandIntro(..) => "… −∗ …".into(),
        Goal::Wp { expr, .. } => format!("WP {expr} {{{{ … }}}}"),
        Goal::StripLaters(g) => describe_goal(g),
        Goal::Fupd { from, to, .. } => format!("|⇛{from} {to} …"),
        Goal::SynFupd { from, to, lhs, .. } => {
            format!("∥|⇛{from} {to}∥ ∃… {lhs:?} ∗ …")
        }
        Goal::MaskSync { from, to, .. } => format!("mask sync {from} → {to}"),
        Goal::Done => "done".into(),
    }
}
