//! Proof traces — the machine-checkable record of a proof search.
//!
//! Every rule the strategy applies appends a [`TraceStep`]. The trace is
//! the foundational artifact of this reproduction: the [`crate::checker`]
//! replays it independently of the heuristic search, re-validating pure
//! obligations and the invariant-mask discipline.

use diaframe_logic::Namespace;
use diaframe_term::{PureProp, VarCtx};
use std::collections::BTreeSet;

/// One step of the proof.
#[derive(Debug, Clone)]
pub enum TraceStep {
    /// A universal variable was introduced (case 1 of §5.2).
    IntroVar {
        /// Display name of the variable.
        name: String,
    },
    /// A hypothesis was introduced and cleaned (case 2).
    IntroHyp {
        /// Rendering of the hypothesis.
        hyp: String,
    },
    /// A pure fact entered `Γ`.
    Fact {
        /// The fact.
        prop: PureProp,
    },
    /// A pure program step (β-reduction, projections, arithmetic on
    /// literals, …).
    PureStep {
        /// Which reduction fired.
        rule: &'static str,
    },
    /// `sym-ex-fupd-exist` was applied (case 3b).
    SymEx {
        /// The specification used (primitive name or function name).
        spec: String,
        /// Whether the expression was atomic (invariants may stay open).
        atomic: bool,
    },
    /// A bi-abduction hint was applied (case 5d).
    HintApplied {
        /// The chain of rule names (e.g. `["inv-open", "token-mutate-incr"]`).
        rules: Vec<String>,
        /// The hypothesis it keyed on (`None` for `ε₁` hints).
        hyp: Option<String>,
        /// Whether a user-provided hint was involved.
        custom: bool,
    },
    /// An invariant was opened.
    InvOpened {
        /// Its namespace.
        ns: Namespace,
    },
    /// An invariant was closed.
    InvClosed {
        /// Its namespace.
        ns: Namespace,
    },
    /// A pure obligation was discharged; recorded with the facts in scope
    /// and a snapshot of the variable context so the checker can re-prove
    /// it from scratch.
    PureObligation {
        /// The facts available.
        facts: Vec<PureProp>,
        /// The proposition proved.
        goal: PureProp,
        /// Snapshot of the variable context (sorts for the solver).
        vars: VarCtx,
    },
    /// The context was found contradictory (vacuous branch).
    Contradiction {
        /// The rule detecting it (e.g. `locked-unique`).
        rule: String,
    },
    /// A case split started `branches` sub-proofs.
    CaseSplit {
        /// What the split is on.
        on: String,
        /// Number of branches.
        branches: usize,
    },
    /// A branch of the latest case split begins.
    BranchStart {
        /// Its index.
        index: usize,
    },
    /// The branch ends (successfully).
    BranchEnd {
        /// Its index.
        index: usize,
    },
    /// The `wp` reached a value (case 3a).
    ValueReached,
    /// A user tactic was consumed (manual proof work).
    TacticUsed {
        /// Description of the tactic.
        name: String,
    },
    /// A disjunct was chosen by guard reasoning (§5.3).
    DisjunctChosen {
        /// `"left"` or `"right"`.
        side: &'static str,
        /// Why (guard refuted / proved / backtracking).
        reason: &'static str,
    },
}

/// The full trace of one verification.
#[derive(Debug, Clone, Default)]
pub struct ProofTrace {
    steps: Vec<TraceStep>,
}

impl ProofTrace {
    #[must_use]
    /// An empty trace.
    pub fn new() -> ProofTrace {
        ProofTrace::default()
    }

    /// Appends a step.
    pub fn push(&mut self, step: TraceStep) {
        self.steps.push(step);
    }

    /// All steps, in order.
    #[must_use]
    pub fn steps(&self) -> &[TraceStep] {
        &self.steps
    }

    /// Number of steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    #[must_use]
    /// Whether the trace has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The distinct hint rules used (the paper's "hints used" column).
    #[must_use]
    pub fn hints_used(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for s in &self.steps {
            if let TraceStep::HintApplied { rules, .. } = s {
                for r in rules {
                    out.insert(r.clone());
                }
            }
        }
        out
    }

    /// The distinct *custom* (user-provided) hint rules used.
    #[must_use]
    pub fn custom_hints_used(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for s in &self.steps {
            if let TraceStep::HintApplied {
                rules,
                custom: true,
                ..
            } = s
            {
                for r in rules {
                    out.insert(r.clone());
                }
            }
        }
        out
    }

    /// Number of user tactics consumed (manual proof work).
    #[must_use]
    pub fn tactics_used(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, TraceStep::TacticUsed { .. }))
            .count()
    }

    /// Number of symbolic execution steps.
    #[must_use]
    pub fn symex_steps(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, TraceStep::SymEx { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_hint_statistics() {
        let mut t = ProofTrace::new();
        t.push(TraceStep::HintApplied {
            rules: vec!["inv-open".into(), "token-mutate-incr".into()],
            hyp: Some("H1".into()),
            custom: false,
        });
        t.push(TraceStep::HintApplied {
            rules: vec!["my-custom".into()],
            hyp: None,
            custom: true,
        });
        t.push(TraceStep::TacticUsed {
            name: "case z = 1".into(),
        });
        assert_eq!(t.hints_used().len(), 3);
        assert_eq!(t.custom_hints_used().len(), 1);
        assert_eq!(t.tactics_used(), 1);
        assert_eq!(t.len(), 3);
    }
}
