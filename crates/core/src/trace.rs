//! Proof traces — the machine-checkable record of a proof search.
//!
//! Every rule the strategy applies appends a [`TraceStep`]. The trace is
//! the foundational artifact of this reproduction: the [`crate::checker`]
//! replays it independently of the heuristic search, re-validating pure
//! obligations and the invariant-mask discipline.

use diaframe_logic::Namespace;
use diaframe_term::{PureProp, VarCtx};
use std::collections::BTreeSet;

/// One step of the proof.
#[derive(Debug, Clone)]
pub enum TraceStep {
    /// A universal variable was introduced (case 1 of §5.2).
    IntroVar {
        /// Display name of the variable.
        name: String,
    },
    /// A hypothesis was introduced and cleaned (case 2).
    IntroHyp {
        /// Rendering of the hypothesis.
        hyp: String,
    },
    /// A pure fact entered `Γ`.
    Fact {
        /// The fact.
        prop: PureProp,
    },
    /// A pure program step (β-reduction, projections, arithmetic on
    /// literals, …).
    PureStep {
        /// Which reduction fired.
        rule: &'static str,
    },
    /// `sym-ex-fupd-exist` was applied (case 3b).
    SymEx {
        /// The specification used (primitive name or function name).
        spec: String,
        /// Whether the expression was atomic (invariants may stay open).
        atomic: bool,
    },
    /// A bi-abduction hint was applied (case 5d).
    HintApplied {
        /// The chain of rule names (e.g. `["inv-open", "token-mutate-incr"]`).
        rules: Vec<String>,
        /// The hypothesis it keyed on (`None` for `ε₁` hints).
        hyp: Option<String>,
        /// Whether a user-provided hint was involved.
        custom: bool,
    },
    /// An invariant was opened.
    InvOpened {
        /// Its namespace.
        ns: Namespace,
    },
    /// An invariant was closed.
    InvClosed {
        /// Its namespace.
        ns: Namespace,
    },
    /// A pure obligation was discharged; recorded with the facts in scope
    /// and a snapshot of the variable context so the checker can re-prove
    /// it from scratch.
    PureObligation {
        /// The facts available.
        facts: Vec<PureProp>,
        /// The proposition proved.
        goal: PureProp,
        /// Snapshot of the variable context (sorts for the solver).
        vars: VarCtx,
    },
    /// The context was found contradictory (vacuous branch).
    Contradiction {
        /// The rule detecting it (e.g. `locked-unique`).
        rule: String,
    },
    /// A case split started `branches` sub-proofs.
    CaseSplit {
        /// What the split is on.
        on: String,
        /// Number of branches.
        branches: usize,
    },
    /// A branch of the latest case split begins.
    BranchStart {
        /// Its index.
        index: usize,
    },
    /// The branch ends (successfully).
    BranchEnd {
        /// Its index.
        index: usize,
    },
    /// The `wp` reached a value (case 3a).
    ValueReached,
    /// A user tactic was consumed (manual proof work).
    TacticUsed {
        /// Description of the tactic.
        name: String,
    },
    /// A disjunct was chosen by guard reasoning (§5.3).
    DisjunctChosen {
        /// `"left"` or `"right"`.
        side: &'static str,
        /// Why (guard refuted / proved / backtracking).
        reason: &'static str,
    },
}

/// The kind (discriminant) of a [`TraceStep`], used by
/// [`crate::telemetry`] to count rule applications per step kind and by
/// the JSON codec ([`crate::trace_json`]) as the step tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // mirrors the TraceStep variants one-for-one
pub enum TraceKind {
    IntroVar,
    IntroHyp,
    Fact,
    PureStep,
    SymEx,
    HintApplied,
    InvOpened,
    InvClosed,
    PureObligation,
    Contradiction,
    CaseSplit,
    BranchStart,
    BranchEnd,
    ValueReached,
    TacticUsed,
    DisjunctChosen,
}

impl TraceKind {
    /// Number of step kinds.
    pub const COUNT: usize = 16;

    /// Every kind, in declaration order (the order of
    /// [`TraceKind::index`]).
    pub const ALL: [TraceKind; TraceKind::COUNT] = [
        TraceKind::IntroVar,
        TraceKind::IntroHyp,
        TraceKind::Fact,
        TraceKind::PureStep,
        TraceKind::SymEx,
        TraceKind::HintApplied,
        TraceKind::InvOpened,
        TraceKind::InvClosed,
        TraceKind::PureObligation,
        TraceKind::Contradiction,
        TraceKind::CaseSplit,
        TraceKind::BranchStart,
        TraceKind::BranchEnd,
        TraceKind::ValueReached,
        TraceKind::TacticUsed,
        TraceKind::DisjunctChosen,
    ];

    /// A stable dense index, suitable for counter arrays.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The stable snake_case name used as the JSON key for this kind.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::IntroVar => "intro_var",
            TraceKind::IntroHyp => "intro_hyp",
            TraceKind::Fact => "fact",
            TraceKind::PureStep => "pure_step",
            TraceKind::SymEx => "sym_ex",
            TraceKind::HintApplied => "hint_applied",
            TraceKind::InvOpened => "inv_opened",
            TraceKind::InvClosed => "inv_closed",
            TraceKind::PureObligation => "pure_obligation",
            TraceKind::Contradiction => "contradiction",
            TraceKind::CaseSplit => "case_split",
            TraceKind::BranchStart => "branch_start",
            TraceKind::BranchEnd => "branch_end",
            TraceKind::ValueReached => "value_reached",
            TraceKind::TacticUsed => "tactic_used",
            TraceKind::DisjunctChosen => "disjunct_chosen",
        }
    }

    /// The inverse of [`TraceKind::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<TraceKind> {
        TraceKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl TraceStep {
    /// The kind of this step.
    #[must_use]
    pub fn kind(&self) -> TraceKind {
        match self {
            TraceStep::IntroVar { .. } => TraceKind::IntroVar,
            TraceStep::IntroHyp { .. } => TraceKind::IntroHyp,
            TraceStep::Fact { .. } => TraceKind::Fact,
            TraceStep::PureStep { .. } => TraceKind::PureStep,
            TraceStep::SymEx { .. } => TraceKind::SymEx,
            TraceStep::HintApplied { .. } => TraceKind::HintApplied,
            TraceStep::InvOpened { .. } => TraceKind::InvOpened,
            TraceStep::InvClosed { .. } => TraceKind::InvClosed,
            TraceStep::PureObligation { .. } => TraceKind::PureObligation,
            TraceStep::Contradiction { .. } => TraceKind::Contradiction,
            TraceStep::CaseSplit { .. } => TraceKind::CaseSplit,
            TraceStep::BranchStart { .. } => TraceKind::BranchStart,
            TraceStep::BranchEnd { .. } => TraceKind::BranchEnd,
            TraceStep::ValueReached => TraceKind::ValueReached,
            TraceStep::TacticUsed { .. } => TraceKind::TacticUsed,
            TraceStep::DisjunctChosen { .. } => TraceKind::DisjunctChosen,
        }
    }
}

/// The full trace of one verification.
#[derive(Debug, Clone, Default)]
pub struct ProofTrace {
    steps: Vec<TraceStep>,
}

impl ProofTrace {
    #[must_use]
    /// An empty trace.
    pub fn new() -> ProofTrace {
        ProofTrace::default()
    }

    /// Appends a step.
    pub fn push(&mut self, step: TraceStep) {
        self.steps.push(step);
    }

    /// All steps, in order.
    #[must_use]
    pub fn steps(&self) -> &[TraceStep] {
        &self.steps
    }

    /// Consumes the trace, yielding its steps in order. Used to splice a
    /// speculative worker's branch trace into the parent trace without
    /// cloning every step.
    #[must_use]
    pub fn into_steps(self) -> Vec<TraceStep> {
        self.steps
    }

    /// Number of steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    #[must_use]
    /// Whether the trace has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The distinct hint rules used (the paper's "hints used" column).
    #[must_use]
    pub fn hints_used(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for s in &self.steps {
            if let TraceStep::HintApplied { rules, .. } = s {
                for r in rules {
                    out.insert(r.clone());
                }
            }
        }
        out
    }

    /// The distinct *custom* (user-provided) hint rules used.
    #[must_use]
    pub fn custom_hints_used(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for s in &self.steps {
            if let TraceStep::HintApplied {
                rules,
                custom: true,
                ..
            } = s
            {
                for r in rules {
                    out.insert(r.clone());
                }
            }
        }
        out
    }

    /// Number of user tactics consumed (manual proof work).
    #[must_use]
    pub fn tactics_used(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, TraceStep::TacticUsed { .. }))
            .count()
    }

    /// Number of symbolic execution steps.
    #[must_use]
    pub fn symex_steps(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, TraceStep::SymEx { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_hint_statistics() {
        let mut t = ProofTrace::new();
        t.push(TraceStep::HintApplied {
            rules: vec!["inv-open".into(), "token-mutate-incr".into()],
            hyp: Some("H1".into()),
            custom: false,
        });
        t.push(TraceStep::HintApplied {
            rules: vec!["my-custom".into()],
            hyp: None,
            custom: true,
        });
        t.push(TraceStep::TacticUsed {
            name: "case z = 1".into(),
        });
        assert_eq!(t.hints_used().len(), 3);
        assert_eq!(t.custom_hints_used().len(), 1);
        assert_eq!(t.tactics_used(), 1);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn accessors_on_empty_trace() {
        let t = ProofTrace::new();
        assert!(t.is_empty());
        assert!(t.hints_used().is_empty());
        assert!(t.custom_hints_used().is_empty());
        assert_eq!(t.tactics_used(), 0);
        assert_eq!(t.symex_steps(), 0);
    }

    #[test]
    fn hints_used_deduplicates_and_ignores_non_hints() {
        let mut t = ProofTrace::new();
        // The same rule fired twice must count once; a custom hint's rules
        // appear in `hints_used` too (it is the union).
        for _ in 0..2 {
            t.push(TraceStep::HintApplied {
                rules: vec!["points-to-agree".into()],
                hyp: Some("H2".into()),
                custom: false,
            });
        }
        t.push(TraceStep::HintApplied {
            rules: vec!["user-rule".into()],
            hyp: None,
            custom: true,
        });
        t.push(TraceStep::SymEx {
            spec: "CmpXchg".into(),
            atomic: true,
        });
        t.push(TraceStep::ValueReached);
        assert_eq!(
            t.hints_used().into_iter().collect::<Vec<_>>(),
            vec!["points-to-agree".to_owned(), "user-rule".to_owned()]
        );
        assert_eq!(
            t.custom_hints_used().into_iter().collect::<Vec<_>>(),
            vec!["user-rule".to_owned()]
        );
        assert_eq!(t.tactics_used(), 0);
        assert_eq!(t.symex_steps(), 1);
    }

    #[test]
    fn kind_classification_is_total_and_stable() {
        // Every kind has a distinct index and a distinct name, and
        // `from_name` inverts `name`.
        let mut seen = std::collections::BTreeSet::new();
        for (i, k) in TraceKind::ALL.into_iter().enumerate() {
            assert_eq!(k.index(), i);
            assert!(seen.insert(k.name()), "duplicate kind name {}", k.name());
            assert_eq!(TraceKind::from_name(k.name()), Some(k));
        }
        assert_eq!(seen.len(), TraceKind::COUNT);
        assert_eq!(TraceKind::from_name("nonsense"), None);
        assert_eq!(TraceStep::ValueReached.kind(), TraceKind::ValueReached);
        assert_eq!(
            TraceStep::PureStep { rule: "if-true" }.kind(),
            TraceKind::PureStep
        );
    }
}
