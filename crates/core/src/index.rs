//! Atom-head index over the hypothesis context `Δ`.
//!
//! `find_hint` probes every hypothesis for every goal atom, and a probe
//! is expensive: a checkpoint of the variable and mask stores, a
//! recursive descent, candidate generation, unification attempts, and a
//! rollback. Most probes fail for a *structural* reason visible without
//! any of that machinery — a points-to hypothesis can never key a hint
//! for an abstract-predicate goal. A [`HeadSet`] summarizes, per
//! hypothesis, which goal *heads* it could possibly produce a base hint
//! for, so the scan skips structurally hopeless hypotheses outright.
//!
//! ## Soundness of skipping
//!
//! The summary must over-approximate `hint_from_hyp`:
//!
//! - The walk mirrors the recursive-hint closure (§4.3): laters, wand
//!   conclusions, fancy-update bodies and `∀`-bodies are transparent,
//!   and invariant hypotheses additionally contribute the heads of their
//!   body (the left-goal descent of `hint_in_left_goal`). Timelessness
//!   and mask side conditions are *ignored* here — they can only make
//!   the real search fail, so ignoring them keeps the summary a
//!   superset.
//! - **Ghost leaves poison the set** ([`HeadSet::any`]): a ghost
//!   library's `hints(vars, hyp, goal)` may target any goal atom
//!   whatsoever (e.g. the counting library keys `P q` abstract-predicate
//!   goals on a `token γ` hypothesis), so a hypothesis containing a
//!   ghost atom is never skipped.
//! - **User hints disable head filtering** ([`HeadSet::has_atom`]):
//!   custom `CustomHintFn`s are arbitrary closures over `(hyp, goal)`
//!   pairs, so when any are registered a hypothesis may only be skipped
//!   if it has no reachable leaf atom at all (pure facts, disjunctions).
//!
//! Heads are *term-independent*: substitution and zonking rewrite term
//! leaves but preserve every constructor, `PredId`, `GhostKind` and
//! `Namespace` the walk inspects ([`diaframe_logic::Atom::map_terms`]),
//! and the strategy's in-place hypothesis rewrites (later-stripping,
//! ghost/points-to/fraction merges) also preserve heads. A `HeadSet`
//! computed at `add_hyp` time therefore never goes stale.
//!
//! Because every failed probe is fully rolled back (variable numbering
//! included — see `VarCtx::rollback`), skipping a doomed probe is
//! observationally identical to running it: proof traces are bit-equal
//! with the index on or off. `set_hint_index_enabled(false)` forces the
//! plain linear scan, which the equivalence tests use.

use diaframe_logic::{Assertion, Atom, Namespace, PredId, PredTable};
use std::sync::atomic::{AtomicBool, Ordering};

/// A human-readable name for a goal atom's *head* — the same structural
/// key [`HeadSet::may_key`] dispatches on. Telemetry uses this to label
/// failed-probe counters and the "unmatched goal head" line of a stuck
/// report, so the taxonomy here must stay in sync with `may_key`.
#[must_use]
pub fn goal_head(atom: &Atom, preds: &PredTable) -> String {
    match atom {
        Atom::PointsTo { .. } => "↦ (points-to)".to_string(),
        Atom::Ghost(g) => format!("ghost {}", g.kind),
        Atom::PredApp { pred, .. } => format!("pred {}", preds.info(*pred).name),
        Atom::Invariant { ns, .. } => format!("inv {ns}"),
        Atom::CloseInv { ns } => format!("close-inv {ns}"),
        Atom::Wp { .. } => "wp".to_string(),
    }
}

static HINT_INDEX_ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables/disables head-indexed hypothesis skipping (enabled
/// by default). Returns the previous setting. Disabling is
/// semantics-preserving — only probe *work* changes — so flipping this
/// concurrently with running verifications is safe.
pub fn set_hint_index_enabled(enabled: bool) -> bool {
    HINT_INDEX_ENABLED.swap(enabled, Ordering::Relaxed)
}

/// Whether head-indexed skipping is currently enabled.
#[must_use]
pub fn hint_index_enabled() -> bool {
    HINT_INDEX_ENABLED.load(Ordering::Relaxed)
}

/// The atom heads a hypothesis can possibly key a hint on — a
/// conservative, term-independent summary of `hint_from_hyp`'s reach.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeadSet {
    /// Contains a ghost leaf: may key *any* goal (ghost-library hints
    /// are goal-shape generic).
    any: bool,
    /// Contains a points-to leaf.
    points_to: bool,
    /// Contains at least one leaf atom of any shape (gate for
    /// user-provided hints, which are goal-shape generic).
    has_atom: bool,
    /// Abstract-predicate leaves (tiny in practice; linear scan beats
    /// hashing).
    preds: Vec<PredId>,
    /// Invariant hypotheses / leaves, by namespace (`inv-dup` targets).
    invs: Vec<Namespace>,
    /// Close-marker leaves, by namespace.
    closes: Vec<Namespace>,
}

impl HeadSet {
    /// The head summary of one (clean) hypothesis assertion.
    #[must_use]
    pub fn of(hyp: &Assertion) -> HeadSet {
        let mut hs = HeadSet::default();
        hs.add_hyp(hyp);
        hs
    }

    /// Whether a hypothesis with this summary could key a hint for
    /// `goal`. `custom_hints_active` must be true whenever the running
    /// `VerifyOptions` carry user hints.
    #[must_use]
    pub fn may_key(&self, goal: &Atom, custom_hints_active: bool) -> bool {
        if self.any || (custom_hints_active && self.has_atom) {
            return true;
        }
        match goal {
            Atom::PointsTo { .. } => self.points_to,
            // Ghost goals are keyed only by ghost hypotheses (`any`).
            Atom::Ghost(_) => false,
            Atom::PredApp { pred, .. } => self.preds.contains(pred),
            Atom::Invariant { ns, .. } => self.invs.contains(ns),
            Atom::CloseInv { ns } => self.closes.contains(ns),
            // `wp` goals never reach `find_hint`; stay safe if one does.
            Atom::Wp { .. } => true,
        }
    }

    /// Mirrors `hint_from_hyp`: the hypothesis-side recursive closure.
    fn add_hyp(&mut self, a: &Assertion) {
        match a {
            Assertion::Atom(at) => self.add_leaf(at),
            Assertion::Later(x) => self.add_hyp(x),
            Assertion::Wand(_, c) => self.add_hyp(c),
            Assertion::FUpd(_, _, c) => self.add_hyp(c),
            Assertion::Forall(_, body) => self.add_hyp(body),
            // Pure facts, disjunctions, existentials, `∗` and basic
            // updates produce no hypothesis-side hints.
            _ => {}
        }
    }

    /// Mirrors `hint_in_left_goal`: the descent into an opened
    /// invariant's body.
    fn add_left_goal(&mut self, lg: &Assertion) {
        match lg {
            Assertion::Atom(at) => self.add_leaf(at),
            Assertion::Exists(_, body) => self.add_left_goal(body),
            Assertion::Sep(l, r) => {
                self.add_left_goal(l);
                self.add_left_goal(r);
            }
            Assertion::Later(x) => self.add_left_goal(x),
            _ => {}
        }
    }

    fn add_leaf(&mut self, at: &Atom) {
        self.has_atom = true;
        match at {
            Atom::PointsTo { .. } => self.points_to = true,
            Atom::Ghost(_) => self.any = true,
            Atom::PredApp { pred, .. } => {
                if !self.preds.contains(pred) {
                    self.preds.push(*pred);
                }
            }
            Atom::Invariant { ns, body } => {
                if !self.invs.contains(ns) {
                    self.invs.push(ns.clone());
                }
                self.add_left_goal(body);
            }
            Atom::CloseInv { ns } => {
                if !self.closes.contains(ns) {
                    self.closes.push(ns.clone());
                }
            }
            Atom::Wp { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diaframe_logic::{Binder, GhostAtom, GhostKind, MaskT, PredTable, WpPost};
    use diaframe_term::{PureProp, Sort, Term, VarCtx};

    fn pto() -> Atom {
        Atom::points_to(Term::Loc(0), Term::v_unit())
    }

    fn ghost() -> Atom {
        Atom::Ghost(GhostAtom {
            kind: GhostKind { id: 9, name: "tok" },
            gname: Term::Loc(1),
            pred: None,
            args: Vec::new(),
        })
    }

    fn pred(preds: &mut PredTable, name: &str) -> Atom {
        let p = preds.fresh_plain(name);
        Atom::PredApp {
            pred: p,
            args: Vec::new(),
        }
    }

    #[test]
    fn heads_match_by_shape() {
        let mut preds = PredTable::new();
        let p = pred(&mut preds, "P");
        let q = pred(&mut preds, "Q");

        let hs = HeadSet::of(&Assertion::atom(pto()));
        assert!(hs.may_key(&pto(), false));
        assert!(!hs.may_key(&ghost(), false));
        assert!(!hs.may_key(&p, false));
        // Custom hints force a probe of any atom-bearing hypothesis.
        assert!(hs.may_key(&p, true));

        let hs = HeadSet::of(&Assertion::atom(p.clone()));
        assert!(hs.may_key(&p, false));
        assert!(!hs.may_key(&q, false));
        assert!(!hs.may_key(&pto(), false));
    }

    #[test]
    fn ghost_leaves_poison() {
        let mut preds = PredTable::new();
        let p = pred(&mut preds, "P");
        let hs = HeadSet::of(&Assertion::atom(ghost()));
        // Ghost-library hints may target any goal shape.
        assert!(hs.may_key(&p, false));
        assert!(hs.may_key(&pto(), false));
        assert!(hs.may_key(&ghost(), false));
    }

    #[test]
    fn pure_hypotheses_never_probe() {
        let hs = HeadSet::of(&Assertion::pure(PureProp::True));
        assert!(!hs.may_key(&pto(), false));
        // …even with custom hints active: there is no atom to hand them.
        assert!(!hs.may_key(&pto(), true));
    }

    #[test]
    fn recursive_closure_is_transparent() {
        // ▷(L −∗ ∀x. |⇛ ℓ ↦ v) exposes the points-to head.
        let mut vars = VarCtx::new();
        let x = vars.fresh_var(Sort::Int, "x");
        let a = Assertion::later(Assertion::wand(
            Assertion::pure(PureProp::True),
            Assertion::forall(
                Binder::new(x),
                Assertion::fupd(MaskT::top(), MaskT::top(), Assertion::atom(pto())),
            ),
        ));
        let hs = HeadSet::of(&a);
        assert!(hs.may_key(&pto(), false));
        assert!(!hs.may_key(&ghost(), false));
        // Wand *premises* contribute nothing.
        let a = Assertion::wand(Assertion::atom(pto()), Assertion::pure(PureProp::True));
        assert!(!HeadSet::of(&a).may_key(&pto(), false));
    }

    #[test]
    fn invariants_expose_interior_heads() {
        let ns = Namespace::new("N");
        // Ghost-free invariant: matching stays head-precise.
        let inv = Atom::invariant(
            ns.clone(),
            Assertion::exists(
                Binder::new(VarCtx::new().fresh_var(Sort::Int, "n")),
                Assertion::sep(Assertion::pure(PureProp::True), Assertion::atom(pto())),
            ),
        );
        let hs = HeadSet::of(&Assertion::atom(inv.clone()));
        // inv-dup on the same namespace, and opening reaches the interior…
        assert!(hs.may_key(&inv, false));
        assert!(hs.may_key(&pto(), false));
        // …but foreign namespaces and unrelated heads stay skippable.
        assert!(!hs.may_key(&Atom::CloseInv { ns: Namespace::new("M") }, false));
        assert!(!hs.may_key(&ghost(), false));
        assert!(!hs.may_key(
            &Atom::PredApp {
                pred: PredTable::new().fresh_plain("R"),
                args: Vec::new()
            },
            false
        ));

        // A ghost in the body poisons the whole summary.
        let inv = Atom::invariant(ns, Assertion::atom(ghost()));
        let hs = HeadSet::of(&Assertion::atom(inv));
        assert!(hs.may_key(&Atom::CloseInv { ns: Namespace::new("M") }, false));
        assert!(hs.may_key(
            &Atom::PredApp {
                pred: PredTable::new().fresh_plain("R"),
                args: Vec::new()
            },
            false
        ));
    }

    #[test]
    fn wp_hypotheses_add_nothing_but_wp_goals_stay_safe() {
        let mut vars = VarCtx::new();
        let r = vars.fresh_var(Sort::Val, "r");
        let wp = Atom::Wp {
            expr: diaframe_heaplang::Expr::Val(diaframe_heaplang::Val::Unit),
            mask: MaskT::top(),
            post: WpPost {
                ret: r,
                body: Box::new(Assertion::emp()),
            },
        };
        let hs = HeadSet::of(&Assertion::atom(wp.clone()));
        assert!(!hs.may_key(&pto(), false));
        // A wp *goal* is never pruned.
        assert!(HeadSet::of(&Assertion::atom(pto())).may_key(&wp, false));
    }

    #[test]
    fn toggle_roundtrip() {
        assert!(hint_index_enabled());
        let prev = set_hint_index_enabled(false);
        assert!(prev);
        assert!(!hint_index_enabled());
        set_hint_index_enabled(true);
        assert!(hint_index_enabled());
    }
}
