//! The fuzzer's deterministic pseudo-random stream.
//!
//! SplitMix64 (Steele–Lea–Flood), hand-rolled because the container has
//! no crate registry and — more importantly — because reproducibility is
//! a hard requirement: the same `(seed, index)` pair must generate the
//! same case on every platform and every run, so the CI gate can compare
//! two reports byte-for-byte. No floats, no global state, no time.

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable deterministic random-number generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// A generator for the given seed.
    #[must_use]
    pub fn new(seed: u64) -> FuzzRng {
        FuzzRng { state: seed }
    }

    /// Derives an independent stream for a sub-task (a case index, a
    /// mutation slot) without advancing this generator. Forking is how
    /// per-case determinism survives parallel execution: case `i` draws
    /// from `rng.fork(i)` no matter which worker runs it or in what
    /// order.
    #[must_use]
    pub fn fork(&self, salt: u64) -> FuzzRng {
        FuzzRng::new(mix(
            self.state
                .wrapping_add(GOLDEN.wrapping_mul(salt.wrapping_add(1))),
        ))
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        mix(self.state)
    }

    /// A draw in `0..n`. The modulo bias is irrelevant at fuzzing scale
    /// (`n` is always tiny next to `2^64`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// A draw in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range");
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as i64
    }

    /// True with probability `pct`/100.
    pub fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }

    /// A uniformly chosen element.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = FuzzRng::new(0xD1AF);
        let mut b = FuzzRng::new(0xD1AF);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_of_parent_draws() {
        let parent = FuzzRng::new(7);
        let mut advanced = FuzzRng::new(7);
        let _ = advanced.next_u64();
        // fork() reads only the fork-time state, so forking before or
        // after unrelated sibling forks gives the same stream.
        assert_eq!(parent.fork(3).next_u64(), FuzzRng::new(7).fork(3).next_u64());
        assert_ne!(parent.fork(3).next_u64(), parent.fork(4).next_u64());
    }

    #[test]
    fn bounded_draws_stay_in_bounds() {
        let mut rng = FuzzRng::new(1);
        for _ in 0..256 {
            assert!(rng.below(7) < 7);
            let r = rng.range(-3, 3);
            assert!((-3..=3).contains(&r));
        }
        let xs = [10, 20, 30];
        for _ in 0..32 {
            assert!(xs.contains(rng.pick(&xs)));
        }
    }
}
