//! A delta-debugging shrinker for failing traces.
//!
//! Greedy chunk removal (ddmin-style): repeatedly try deleting spans of
//! steps, keeping any deletion that preserves the caller's
//! "interesting" predicate, halving the span size until single steps.
//! Deterministic — the scan order is fixed — so a shrunk regression is
//! reproducible from the same input.

use crate::trace::TraceStep;

/// Shrinks `steps` to a (locally) minimal sequence still satisfying
/// `still_interesting`. The input itself must satisfy the predicate;
/// the result always does.
pub fn shrink_steps(
    steps: &[TraceStep],
    still_interesting: &mut dyn FnMut(&[TraceStep]) -> bool,
) -> Vec<TraceStep> {
    debug_assert!(still_interesting(steps), "input must be interesting");
    let mut cur = steps.to_vec();
    let mut chunk = cur.len().max(1);
    loop {
        let mut progressed = false;
        let mut i = 0;
        while i < cur.len() {
            let end = (i + chunk).min(cur.len());
            let mut cand = Vec::with_capacity(cur.len() - (end - i));
            cand.extend_from_slice(&cur[..i]);
            cand.extend_from_slice(&cur[end..]);
            if still_interesting(&cand) {
                cur = cand;
                progressed = true;
                // re-test the same position: the next chunk slid in
            } else {
                i = end;
            }
        }
        if chunk == 1 {
            if !progressed {
                break;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker;
    use crate::fuzz::spec::spec_check;
    use crate::trace::ProofTrace;
    use diaframe_logic::Namespace;

    fn trace_of(steps: &[TraceStep]) -> ProofTrace {
        let mut t = ProofTrace::new();
        for s in steps {
            t.push(s.clone());
        }
        t
    }

    #[test]
    fn shrinks_an_invalid_trace_to_its_core() {
        // Lots of valid padding around a single unmatched opening.
        let ns = Namespace::new("N");
        let mut steps = Vec::new();
        for i in 0..6 {
            steps.push(TraceStep::IntroVar {
                name: format!("x{i}"),
            });
        }
        steps.push(TraceStep::InvOpened { ns: ns.clone() });
        for i in 0..6 {
            steps.push(TraceStep::IntroHyp {
                hyp: format!("H{i}"),
            });
        }
        let mut pred =
            |s: &[TraceStep]| checker::check(&trace_of(s)).is_err() && spec_check(s).is_err();
        assert!(pred(&steps));
        let small = shrink_steps(&steps, &mut pred);
        assert_eq!(small.len(), 1, "core should be the lone opening: {small:?}");
        assert!(matches!(&small[0], TraceStep::InvOpened { ns: n } if *n == ns));
    }

    #[test]
    fn preserves_predicates_that_need_structure() {
        // The interesting predicate requires a *pair* of steps; the
        // shrinker must not break it apart.
        let ns = Namespace::new("N");
        let steps = vec![
            TraceStep::ValueReached,
            TraceStep::InvClosed { ns: ns.clone() },
            TraceStep::ValueReached,
            TraceStep::InvOpened { ns: ns.clone() },
            TraceStep::ValueReached,
        ];
        let mut pred = |s: &[TraceStep]| {
            // close-before-open, in that order
            let close = s
                .iter()
                .position(|x| matches!(x, TraceStep::InvClosed { .. }));
            let open = s
                .iter()
                .position(|x| matches!(x, TraceStep::InvOpened { .. }));
            matches!((close, open), (Some(c), Some(o)) if c < o)
        };
        let small = shrink_steps(&steps, &mut pred);
        assert_eq!(small.len(), 2);
    }
}
