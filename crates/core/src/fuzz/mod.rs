//! Soundness fuzzing for the trace checker and the search engine.
//!
//! The replay checker is this reproduction's trusted computing base: it
//! stands in for the Coq kernel (DESIGN §1), so its ability to *reject
//! wrong certificates* deserves adversarial evidence, not just the 24
//! traces the example suite happens to produce. This module supplies
//! that evidence with three deterministic, seedable pillars:
//!
//! 1. **Generation** ([`gen`]): random entailments over the embedded
//!    grammar — terms with sorts and evars, pure props, points-to atoms,
//!    invariants, laters, existentials, update modalities — with a
//!    tunable fraction provable *by construction* (the goal is derived
//!    from the generated hypothesis context by sound weakening), and
//!    random checker traces valid by construction.
//! 2. **Differential oracle** ([`oracle`]): engine-proved goals must
//!    replay identically through `checker::check` and
//!    `checker::check_json`, telemetry on/off must not change the trace,
//!    indexed vs linear hint search must agree (driven as a whole-pass
//!    comparison by `fuzz_driver`, since the index toggle is process
//!    global), and the independent executable spec ([`spec`]) must agree
//!    with the checker.
//! 3. **Adversarial mutation** ([`mutate`]): structured edits — swap a
//!    rule kind, drop/duplicate/reorder a step, retarget an obligation's
//!    facts, corrupt an evar solution, widen a mask, flip atomicity,
//!    unbalance the branch tree, truncate mid-window — each certified
//!    invalid by the spec before the checker sees it. The checker must
//!    kill every mutant; a survivor is a soundness hole, shrunk by
//!    [`shrink`] to a minimal witness and reported as a build failure.
//!
//! Everything is reproducible from a `u64` seed: no wall-clock, no
//! global RNG, no platform-dependent hashing. The `fuzz_driver` binary
//! in `crates/bench` runs the campaign in parallel (`run_ordered`) and
//! emits a byte-stable JSON report; `ci.sh` pins a fixed-seed smoke run.

pub mod gen;
pub mod mutate;
pub mod oracle;
pub mod rng;
pub mod shrink;
pub mod spec;

pub use gen::{gen_entailment, gen_trace, EntailmentCase, GenConfig};
pub use mutate::{mutate, mutate_trace, Mutant, MutationKind};
pub use oracle::{
    fuzz_options, mutation_round, run_case, search_once, trace_of_steps, CaseReport,
    MutationOutcome, SearchResult,
};
pub use rng::FuzzRng;
pub use shrink::shrink_steps;
pub use spec::spec_check;
