//! An executable specification of the checker contract.
//!
//! This is a *second*, structurally different implementation of the
//! replay rules in [`crate::checker`]: recursive descent over the branch
//! tree instead of an explicit frame stack. The fuzz harness uses it two
//! ways:
//!
//! * as the **certifier** for the trace mutator — a mutant is only
//!   emitted when this spec rejects it, so "the checker must kill every
//!   mutant" is a meaningful assertion (the mutant is known-invalid by an
//!   independent judgment, not by asking the checker itself);
//! * as a **differential leg** on valid traces — an engine-produced or
//!   generated trace the checker accepts must be accepted here too, and
//!   disagreement in either direction is a reported divergence.
//!
//! The pure-obligation rule necessarily shares [`PureSolver`] with the
//! checker (there is no simpler decision procedure to diff against); the
//! structural rules — reentrancy, close-without-open, atomicity, branch
//! balance, obligation inheritance and joint discharge — are implemented
//! from the contract in the checker's module docs, not from its code.

use crate::trace::TraceStep;
use diaframe_logic::Namespace;
use diaframe_term::solver::PureSolver;
use std::collections::BTreeSet;

/// Validates a step sequence against the checker contract.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn spec_check(steps: &[TraceStep]) -> Result<(), String> {
    let mut pos = 0usize;
    walk(
        steps,
        &mut pos,
        &BTreeSet::new(),
        &BTreeSet::new(),
        true,
    )?;
    debug_assert_eq!(pos, steps.len(), "root walk must consume the trace");
    Ok(())
}

/// Replays one branch body starting at `*pos*`, with the open set and
/// close-obligations inherited from the enclosing branch. Consumes up to
/// and including the branch's `BranchEnd` (or the end of the trace for
/// the root). Returns whether the branch was vacuous.
fn walk(
    steps: &[TraceStep],
    pos: &mut usize,
    inherited_open: &BTreeSet<Namespace>,
    inherited_obligations: &BTreeSet<Namespace>,
    root: bool,
) -> Result<bool, String> {
    let mut open = inherited_open.clone();
    let mut obligations = inherited_obligations.clone();
    let mut vacuous = false;
    // Case splits awaiting branches: (branches outstanding, obligations
    // at the split). When the last branch of a split has been replayed,
    // the at-split obligations are discharged for this level too — the
    // branches jointly covered every future of the proof.
    let mut splits: Vec<(usize, BTreeSet<Namespace>)> = Vec::new();

    while *pos < steps.len() {
        let step = &steps[*pos];
        *pos += 1;
        match step {
            TraceStep::PureObligation { facts, goal, vars } => {
                let solver = PureSolver::new(facts);
                let mut vars = vars.clone();
                if !solver.prove_frozen(&mut vars, goal) {
                    return Err(format!("obligation does not re-prove: {goal:?}"));
                }
            }
            TraceStep::InvOpened { ns } => {
                if !open.insert(ns.clone()) {
                    return Err(format!("invariant {ns} reentrant"));
                }
                obligations.insert(ns.clone());
            }
            TraceStep::InvClosed { ns } => {
                if !open.remove(ns) {
                    return Err(format!("invariant {ns} closed while not open"));
                }
                obligations.remove(ns);
            }
            TraceStep::SymEx { spec, atomic } if !atomic && !open.is_empty() => {
                return Err(format!("non-atomic {spec} under an open invariant"));
            }
            TraceStep::Contradiction { .. } => vacuous = true,
            TraceStep::CaseSplit { branches, .. } => {
                splits.push((*branches, obligations.clone()));
            }
            TraceStep::BranchStart { .. } => {
                walk(steps, pos, &open, &obligations, false)?;
                if let Some(last) = splits.last_mut() {
                    last.0 = last.0.saturating_sub(1);
                    if last.0 == 0 {
                        let (_, at_split) = splits.pop().expect("just inspected");
                        for ns in &at_split {
                            open.remove(ns);
                            obligations.remove(ns);
                        }
                    }
                }
            }
            TraceStep::BranchEnd { .. } => {
                if root {
                    return Err("branch end without branch start".into());
                }
                if !vacuous {
                    if let Some(ns) = obligations.iter().next() {
                        return Err(format!("invariant {ns} open at branch end"));
                    }
                }
                return Ok(vacuous);
            }
            _ => {}
        }
    }
    if !root {
        return Err("branch never ends".into());
    }
    if !vacuous {
        if let Some(ns) = obligations.iter().next() {
            return Err(format!("invariant {ns} open at trace end"));
        }
    }
    Ok(vacuous)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker;
    use crate::trace::ProofTrace;
    use diaframe_term::{PureProp, Term, VarCtx};

    fn trace(steps: Vec<TraceStep>) -> ProofTrace {
        let mut t = ProofTrace::new();
        for s in steps {
            t.push(s);
        }
        t
    }

    /// The spec and the checker must agree on a battery of hand-picked
    /// edge traces covering every structural rule.
    #[test]
    fn agrees_with_checker_on_edge_traces() {
        let ns = Namespace::new("N");
        let cases: Vec<Vec<TraceStep>> = vec![
            vec![],
            vec![TraceStep::InvOpened { ns: ns.clone() }],
            vec![
                TraceStep::InvOpened { ns: ns.clone() },
                TraceStep::InvClosed { ns: ns.clone() },
            ],
            vec![TraceStep::InvClosed { ns: ns.clone() }],
            vec![
                TraceStep::InvOpened { ns: ns.clone() },
                TraceStep::InvOpened { ns: ns.clone() },
            ],
            vec![
                TraceStep::InvOpened { ns: ns.clone() },
                TraceStep::SymEx {
                    spec: "f".into(),
                    atomic: false,
                },
            ],
            vec![
                TraceStep::InvOpened { ns: ns.clone() },
                TraceStep::Contradiction { rule: "r".into() },
            ],
            vec![TraceStep::BranchEnd { index: 0 }],
            vec![TraceStep::BranchStart { index: 0 }],
            vec![
                TraceStep::CaseSplit {
                    on: "x".into(),
                    branches: 2,
                },
                TraceStep::BranchStart { index: 0 },
                TraceStep::BranchEnd { index: 0 },
                TraceStep::BranchStart { index: 1 },
                TraceStep::BranchEnd { index: 1 },
            ],
            // Joint discharge of an inherited window.
            vec![
                TraceStep::InvOpened { ns: ns.clone() },
                TraceStep::CaseSplit {
                    on: "x".into(),
                    branches: 2,
                },
                TraceStep::BranchStart { index: 0 },
                TraceStep::InvClosed { ns: ns.clone() },
                TraceStep::BranchEnd { index: 0 },
                TraceStep::BranchStart { index: 1 },
                TraceStep::InvClosed { ns: ns.clone() },
                TraceStep::BranchEnd { index: 1 },
            ],
            // One branch forgets the inherited window.
            vec![
                TraceStep::InvOpened { ns: ns.clone() },
                TraceStep::CaseSplit {
                    on: "x".into(),
                    branches: 2,
                },
                TraceStep::BranchStart { index: 0 },
                TraceStep::BranchEnd { index: 0 },
                TraceStep::BranchStart { index: 1 },
                TraceStep::InvClosed { ns: ns.clone() },
                TraceStep::BranchEnd { index: 1 },
            ],
            vec![TraceStep::PureObligation {
                facts: vec![PureProp::lt(Term::int(0), Term::int(5))],
                goal: PureProp::le(Term::int(0), Term::int(5)),
                vars: VarCtx::new(),
            }],
            vec![TraceStep::PureObligation {
                facts: Vec::new(),
                goal: PureProp::lt(Term::int(5), Term::int(0)),
                vars: VarCtx::new(),
            }],
        ];
        for (i, steps) in cases.into_iter().enumerate() {
            let by_checker = checker::check(&trace(steps.clone())).is_ok();
            let by_spec = spec_check(&steps).is_ok();
            assert_eq!(
                by_checker, by_spec,
                "spec and checker disagree on edge case {i}: {steps:?}"
            );
        }
    }
}
